// Ablation A1 — the heap choice inside KO/YTO. The paper used
// Fibonacci heaps "which is the default heap data structure in LEDA"
// (§4.2) for both algorithms; this harness measures whether that choice
// mattered by swapping in pairing and addressable binary heaps. The
// pivot sequence (and hence the answer) is identical across heaps —
// only constant factors move.
#include <iostream>
#include <string>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("A1 heap ablation for KO/YTO", "design choice in §4.2 (DAC'99)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);
  const char* variants[6] = {"ko", "ko_pair", "ko_bin", "yto", "yto_pair", "yto_bin"};

  TextTable table({"n", "m", "ko_fib", "ko_pair", "ko_bin", "yto_fib", "yto_pair",
                   "yto_bin"});
  for (const GridCell cell : table2_grid(scale)) {
    RunStats stats[6];
    for (int t = 0; t < trials; ++t) {
      const Graph g = table2_instance(cell, t);
      for (int i = 0; i < 6; ++i) {
        const TimedRun run = time_solver(variants[i], g);
        if (run.ran) stats[i].add(run.seconds * 1e3);
      }
    }
    std::vector<std::string> row{std::to_string(cell.n), std::to_string(cell.m)};
    for (int i = 0; i < 6; ++i) row.push_back(fmt_fixed(stats[i].mean(), 2));
    table.add_row(std::move(row));
  }
  emit("Heap ablation: time [ms] (avg over " + std::to_string(trials) + " seeds)",
       "ablation_heaps", table);
  return 0;
}

}  // namespace

int main() { return run(); }
