// Ablation A2 — Howard's algorithm internals (§2.5 / Fig. 1):
//   * epsilon sensitivity: the paper's Fig. 1 stops when no distance
//     improves by more than epsilon. We sweep epsilon from exact
//     (default) to coarse and report iterations and the error of the
//     returned value versus the true optimum;
//   * the "improved" initialization (min-weight out-arc policy, Fig. 1
//     lines 1-4): compared against a naive first-out-arc policy.
#include <iostream>
#include <string>

#include "algo/algorithms.h"
#include "benchkit/report.h"
#include "benchkit/workloads.h"
#include "core/driver.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("A2 Howard epsilon ablation", "Fig. 1 semantics (DAC'99)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);

  TextTable table({"n", "m", "epsilon", "iters", "ms", "abs_err"});
  for (const GridCell cell : table2_grid(scale)) {
    if (cell.m != 2 * cell.n) continue;  // one density column suffices
    for (const double eps : {1e-9, 1e-3, 1.0, 100.0}) {
      RunStats iters, ms, err;
      for (int t = 0; t < trials; ++t) {
        const Graph g = table2_instance(cell, t);
        const auto exact = minimum_cycle_mean(g, "howard");
        SolverConfig cfg;
        cfg.epsilon = eps;
        const auto solver = make_howard_solver(cfg);
        Timer timer;
        const auto r = minimum_cycle_mean(g, *solver);
        ms.add(timer.seconds() * 1e3);
        iters.add(static_cast<double>(r.counters.iterations));
        err.add(r.value.to_double() - exact.value.to_double());
      }
      table.add_row({std::to_string(cell.n), std::to_string(cell.m), fmt_fixed(eps, 9),
                     fmt_fixed(iters.mean(), 1), fmt_fixed(ms.mean(), 2),
                     fmt_fixed(err.mean(), 4)});
    }
  }
  emit("Howard epsilon sweep: coarser epsilon trades accuracy for iterations",
       "ablation_howard", table);
  std::cout << "\n(abs_err is the gap between Howard's returned value and the exact\n"
               " optimum; with the default epsilon it is always 0.)\n";

  // Part 2: the Fig. 1 min-weight-arc initialization vs a naive
  // first-out-arc initial policy.
  TextTable init_table({"n", "m", "improved_iters", "naive_iters", "improved_ms",
                        "naive_ms"});
  for (const GridCell cell : table2_grid(scale)) {
    if (cell.m != 2 * cell.n) continue;
    RunStats ii, ni, ims, nms;
    for (int t = 0; t < trials; ++t) {
      const Graph g = table2_instance(cell, t);
      {
        const auto solver = make_howard_solver();
        Timer timer;
        const auto r = minimum_cycle_mean(g, *solver);
        ims.add(timer.seconds() * 1e3);
        ii.add(static_cast<double>(r.counters.iterations));
      }
      {
        const auto solver = make_howard_naive_init_solver();
        Timer timer;
        const auto r = minimum_cycle_mean(g, *solver);
        nms.add(timer.seconds() * 1e3);
        ni.add(static_cast<double>(r.counters.iterations));
      }
    }
    init_table.add_row({std::to_string(cell.n), std::to_string(cell.m),
                        fmt_fixed(ii.mean(), 1), fmt_fixed(ni.mean(), 1),
                        fmt_fixed(ims.mean(), 2), fmt_fixed(nms.mean(), 2)});
  }
  emit("Howard initialization ablation (Fig. 1 lines 1-4 vs naive first-arc policy)",
       "ablation_howard_init", init_table);
  return 0;
}

}  // namespace

int main() { return run(); }
