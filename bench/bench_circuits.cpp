// Experiment T2-circ — the benchmark-circuit half of the paper's test
// suite (§3). The paper ran the same ten algorithms on cyclic
// sequential multi-level logic circuits from the 1991 LGSynth suite
// (results relegated to TR [9] for space); we run them on the synthetic
// circuit family documented in gen/circuit.h and DESIGN.md.
//
// Circuit graphs differ from SPRAND in exactly the ways that matter:
// near-unit density, many small SCCs, locality — so DG's unfolding and
// Howard's policy iteration both look even better here.
#include <iostream>
#include <string>
#include <vector>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "gen/circuit.h"
#include "graph/scc.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("T2-circ runtime comparison on circuits", "Section 3 / TR[9] (DAC'99)");
  const std::vector<std::string> solvers{"burns", "ko",  "yto",    "howard", "ho",
                                         "karp",  "dg",  "lawler", "karp2",  "oa1"};

  std::vector<std::string> header{"circuit", "regs", "arcs", "sccs"};
  header.insert(header.end(), solvers.begin(), solvers.end());
  TextTable table(header);

  TimeBudget budget(default_time_budget());
  constexpr int kVariants = 3;  // average over generator seeds
  for (const CircuitCase& c : circuit_suite(bench_scale())) {
    std::vector<Graph> variants;
    for (int v = 0; v < kVariants; ++v) {
      gen::CircuitConfig cfg = c.config;
      cfg.seed = c.config.seed + static_cast<std::uint64_t>(v) * 100;
      variants.push_back(gen::circuit(cfg));
    }
    const auto scc = strongly_connected_components(variants[0]);
    std::vector<std::string> row{c.name, std::to_string(variants[0].num_nodes()),
                                 std::to_string(variants[0].num_arcs()),
                                 std::to_string(scc.num_components)};
    for (const std::string& solver : solvers) {
      if (budget.should_skip(solver)) {
        row.push_back("N/A(time)");
        continue;
      }
      RunStats stats;
      bool guarded = false;
      for (const Graph& g : variants) {
        const TimedRun run = time_solver(solver, g);
        if (!run.ran) {
          guarded = true;
          break;
        }
        stats.add(run.seconds);
        budget.record(solver, run.seconds);
      }
      row.push_back(guarded ? "N/A(mem)" : fmt_ms(stats.mean()));
    }
    table.add_row(std::move(row));
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  emit("Synthetic LGSynth-style circuits: running time [ms] per algorithm", "circuits",
       table);
  return 0;
}

}  // namespace

int main() { return run(); }
