// Experiment T2-circ — the benchmark-circuit half of the paper's test
// suite (§3). The paper ran the same ten algorithms on cyclic
// sequential multi-level logic circuits from the 1991 LGSynth suite
// (results relegated to TR [9] for space); we run them on the synthetic
// circuit family documented in gen/circuit.h and DESIGN.md.
//
// Circuit graphs differ from SPRAND in exactly the ways that matter:
// near-unit density, many small SCCs, locality — so DG's unfolding and
// Howard's policy iteration both look even better here.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "graph/builder.h"
#include "graph/scc.h"
#include "support/stats.h"
#include "support/thread_pool.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("T2-circ runtime comparison on circuits", "Section 3 / TR[9] (DAC'99)");
  const std::vector<std::string> solvers{"burns", "ko",  "yto",    "howard", "ho",
                                         "karp",  "dg",  "lawler", "karp2",  "oa1"};

  std::vector<std::string> header{"circuit", "regs", "arcs", "sccs"};
  header.insert(header.end(), solvers.begin(), solvers.end());
  TextTable table(header);

  TimeBudget budget(default_time_budget());
  constexpr int kVariants = 3;  // average over generator seeds
  for (const CircuitCase& c : circuit_suite(bench_scale())) {
    std::vector<Graph> variants;
    for (int v = 0; v < kVariants; ++v) {
      gen::CircuitConfig cfg = c.config;
      cfg.seed = c.config.seed + static_cast<std::uint64_t>(v) * 100;
      variants.push_back(gen::circuit(cfg));
    }
    const auto scc = strongly_connected_components(variants[0]);
    std::vector<std::string> row{c.name, std::to_string(variants[0].num_nodes()),
                                 std::to_string(variants[0].num_arcs()),
                                 std::to_string(scc.num_components)};
    for (const std::string& solver : solvers) {
      if (budget.should_skip(solver)) {
        row.push_back("N/A(time)");
        continue;
      }
      RunStats stats;
      bool guarded = false;
      for (const Graph& g : variants) {
        const TimedRun run = time_solver(solver, g);
        if (!run.ran) {
          guarded = true;
          break;
        }
        stats.add(run.seconds);
        budget.record(solver, run.seconds);
      }
      row.push_back(guarded ? "N/A(mem)" : fmt_ms(stats.mean()));
    }
    table.add_row(std::move(row));
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  emit("Synthetic LGSynth-style circuits: running time [ms] per algorithm", "circuits",
       table);

  // Parallel SCC driver scaling, the workload SolveOptions{num_threads}
  // is built for: many independent cyclic components, each with enough
  // work to amortize the pool (the circuit suite's SCCs are too small —
  // sub-ms solves lose to thread startup). Each instance is k disjoint
  // SPRAND blocks chained by one-way bridges, so the driver sees k
  // same-sized subproblems. The result is bit-identical across thread
  // counts (asserted here), only the wall clock changes.
  banner("Parallel SCC driver scaling (howard)", "SolveOptions::num_threads");
  std::cout << "hardware threads: " << ThreadPool::hardware_threads()
            << " (speedup is bounded by this; the bit-identity check runs "
               "regardless)\n";
  TextTable ptable({"instance", "sccs", "t=1 [ms]", "t=2 [ms]", "t=8 [ms]", "speedup x8"});
  for (const int k : {4, 8, 16}) {
    constexpr NodeId kBlock = 2000;
    gen::SprandConfig scfg;
    scfg.n = kBlock;
    scfg.m = 5 * kBlock;
    scfg.seed = 21;
    const Graph block = gen::sprand(scfg);
    GraphBuilder b(static_cast<NodeId>(k) * kBlock);
    for (int i = 0; i < k; ++i) {
      const NodeId base = static_cast<NodeId>(i) * kBlock;
      for (ArcId a = 0; a < block.num_arcs(); ++a) {
        b.add_arc(base + block.src(a), base + block.dst(a),
                  block.weight(a) + i,  // shift so components differ
                  block.transit(a));
      }
      if (i > 0) b.add_arc(base - 1, base, 1);  // one-way bridge
    }
    const Graph g = b.build();
    const auto scc = strongly_connected_components(g);
    const std::string name = "sprand x" + std::to_string(k);
    std::vector<double> ms;
    CycleResult ref;
    bool mismatch = false;
    for (const int threads : {1, 2, 8}) {
      const TimedRun run =
          time_solver("howard", g, 2ULL << 30, SolveOptions{.num_threads = threads});
      ms.push_back(run.seconds * 1e3);
      if (threads == 1) {
        ref = run.result;
      } else if (run.result.has_cycle != ref.has_cycle ||
                 (ref.has_cycle &&
                  (run.result.value != ref.value || run.result.cycle != ref.cycle))) {
        mismatch = true;
      }
    }
    ptable.add_row({name, std::to_string(scc.num_components), fmt_fixed(ms[0], 2),
                    fmt_fixed(ms[1], 2), fmt_fixed(ms[2], 2),
                    mismatch ? "MISMATCH" : fmt_fixed(ms[0] / std::max(ms[2], 1e-6), 2)});
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  emit("Parallel driver: same instance, same bit-identical result, n threads",
       "circuits_parallel", ptable);
  return 0;
}

}  // namespace

int main() { return run(); }
