// Ablation A4 — the precision knob ε that the paper attaches to its
// approximate algorithms (§1.2: "the amount of error that can be
// tolerated ... is denoted by ε"). Sweeps Lawler's bisection precision:
// probe counts fall linearly in lg(1/ε) while the returned value stays
// exact (the witness + cycle-canceling finish absorbs the slack) — the
// practical argument for treating Lawler's ε as a speed knob, not an
// accuracy knob.
#include <iostream>
#include <string>

#include "algo/algorithms.h"
#include "benchkit/report.h"
#include "benchkit/workloads.h"
#include "core/driver.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("A4 Lawler epsilon sweep", "the paper's precision parameter (§1.2)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);

  TextTable table({"n", "m", "epsilon", "probes", "ms", "exact?"});
  for (const GridCell cell : table2_grid(scale)) {
    if (cell.m != 2 * cell.n) continue;  // one density column
    for (const double eps : {1e-9, 1e-4, 1e-1, 10.0, 1000.0}) {
      RunStats probes, ms;
      bool all_exact = true;
      for (int t = 0; t < trials; ++t) {
        const Graph g = table2_instance(cell, t);
        SolverConfig cfg;
        cfg.epsilon = eps;
        const auto solver = make_lawler_solver(cfg);
        Timer timer;
        const auto r = minimum_cycle_mean(g, *solver);
        ms.add(timer.seconds() * 1e3);
        probes.add(static_cast<double>(r.counters.feasibility_checks));
        const auto exact = minimum_cycle_mean(g, "howard");
        all_exact = all_exact && r.value == exact.value;
      }
      table.add_row({std::to_string(cell.n), std::to_string(cell.m),
                     fmt_fixed(eps, 9), fmt_fixed(probes.mean(), 1),
                     fmt_fixed(ms.mean(), 2), all_exact ? "yes" : "NO"});
    }
  }
  emit("Lawler precision sweep: probes ~ lg(range/epsilon); result exact at every "
       "epsilon thanks to witness snapping + cycle canceling",
       "epsilon", table);
  return 0;
}

}  // namespace

int main() { return run(); }
