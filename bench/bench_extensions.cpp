// Extension experiment X1 — the paper's §5 closes with "we have
// developed improved versions of Howard's algorithm and Lawler's
// algorithm". This harness quantifies what such improvements buy:
//   * lawler vs lawler_improved: witness tightening collapses the
//     bisection (probe counts and time);
//   * cycle_cancel: how far the trivial baseline gets on the same
//     workloads (probes = negative-cycle rounds);
//   * howard vs howard_naive_init (iteration deltas, cf. A2).
#include <iostream>
#include <string>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("X1 improved-variant study", "Section 5 follow-up claims (DAC'99)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);
  const char* solvers[5] = {"lawler", "lawler_improved", "cycle_cancel", "howard",
                            "howard_naive_init"};

  TextTable table({"n", "m", "lawler_ms", "lawler_probes", "lawler+_ms", "lawler+_probes",
                   "cancel_ms", "cancel_rounds", "howard_ms", "howard_naive_ms"});
  for (const GridCell cell : table2_grid(scale)) {
    RunStats ms[5];
    RunStats probes[3];
    for (int t = 0; t < trials; ++t) {
      const Graph g = table2_instance(cell, t);
      for (int i = 0; i < 5; ++i) {
        const TimedRun run = time_solver(solvers[i], g);
        if (!run.ran) continue;
        ms[i].add(run.seconds * 1e3);
        if (i < 3) {
          probes[i].add(static_cast<double>(run.result.counters.feasibility_checks));
        }
      }
    }
    table.add_row({std::to_string(cell.n), std::to_string(cell.m),
                   fmt_fixed(ms[0].mean(), 2), fmt_fixed(probes[0].mean(), 1),
                   fmt_fixed(ms[1].mean(), 2), fmt_fixed(probes[1].mean(), 1),
                   fmt_fixed(ms[2].mean(), 2), fmt_fixed(probes[2].mean(), 1),
                   fmt_fixed(ms[3].mean(), 2), fmt_fixed(ms[4].mean(), 2)});
  }
  emit("Improved variants: witness tightening cuts Lawler's probes; cycle canceling "
       "needs only a handful of rounds; Howard's init matters ~25%",
       "extensions", table);
  return 0;
}

}  // namespace

int main() { return run(); }
