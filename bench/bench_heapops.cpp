// Experiment E2 — reproduces §4.2: KO vs YTO operation counts. Both
// process the same pivot sequence; the claim is that YTO saves heap
// operations — "especially in the number of insertions" — and that the
// savings grow with density, while running times stay comparable with
// YTO slightly ahead on denser graphs.
#include <iostream>
#include <string>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("E2 KO vs YTO heap operations", "observation 4.2 (DAC'99)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);

  TextTable table({"n", "m", "pivots", "ko_ins", "yto_ins", "ko_heap_ops", "yto_heap_ops",
                   "ko_ms", "yto_ms"});
  for (const GridCell cell : table2_grid(scale)) {
    RunStats ko_ins, yto_ins, ko_ops, yto_ops, ko_ms, yto_ms, pivots;
    for (int t = 0; t < trials; ++t) {
      const Graph g = table2_instance(cell, t);
      const TimedRun ko = time_solver("ko", g);
      const TimedRun yto = time_solver("yto", g);
      if (!ko.ran || !yto.ran) continue;
      pivots.add(static_cast<double>(ko.result.counters.iterations));
      ko_ins.add(static_cast<double>(ko.result.counters.heap_inserts));
      yto_ins.add(static_cast<double>(yto.result.counters.heap_inserts));
      ko_ops.add(static_cast<double>(ko.result.counters.heap_total()));
      yto_ops.add(static_cast<double>(yto.result.counters.heap_total()));
      ko_ms.add(ko.seconds * 1e3);
      yto_ms.add(yto.seconds * 1e3);
    }
    table.add_row({std::to_string(cell.n), std::to_string(cell.m),
                   fmt_fixed(pivots.mean(), 0), fmt_fixed(ko_ins.mean(), 0),
                   fmt_fixed(yto_ins.mean(), 0), fmt_fixed(ko_ops.mean(), 0),
                   fmt_fixed(yto_ops.mean(), 0), fmt_fixed(ko_ms.mean(), 2),
                   fmt_fixed(yto_ms.mean(), 2)});
  }
  emit("KO vs YTO (avg over " + std::to_string(trials) +
           " seeds): yto_ins << ko_ins, gap grows with m/n",
       "heapops", table);
  return 0;
}

}  // namespace

int main() { return run(); }
