// Experiment E3 — reproduces §4.3: convergence iteration counts.
// Burns/KO/YTO iterate ~n/2 times on SPRAND graphs (bound n^2); HO's
// terminating level k is always < n; Howard's iteration count is
// "drastically small" (conjectured O(lg n) average) and tends to shrink
// as density grows.
#include <iostream>
#include <string>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("E3 iteration counts", "observation 4.3 (DAC'99)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);

  TextTable table({"n", "m", "burns", "ko", "yto", "howard", "ho_k"});
  for (const GridCell cell : table2_grid(scale)) {
    RunStats burns, ko, yto, howard, ho;
    for (int t = 0; t < trials; ++t) {
      const Graph g = table2_instance(cell, t);
      burns.add(static_cast<double>(time_solver("burns", g).result.counters.iterations));
      ko.add(static_cast<double>(time_solver("ko", g).result.counters.iterations));
      yto.add(static_cast<double>(time_solver("yto", g).result.counters.iterations));
      howard.add(static_cast<double>(time_solver("howard", g).result.counters.iterations));
      const TimedRun hr = time_solver("ho", g);
      if (hr.ran) ho.add(static_cast<double>(hr.result.counters.iterations));
    }
    table.add_row({std::to_string(cell.n), std::to_string(cell.m),
                   fmt_fixed(burns.mean(), 0), fmt_fixed(ko.mean(), 0),
                   fmt_fixed(yto.mean(), 0), fmt_fixed(howard.mean(), 1),
                   ho.count() ? fmt_fixed(ho.mean(), 0) : std::string("N/A")});
  }
  emit("Iterations to converge (avg over " + std::to_string(trials) +
           " seeds): burns/ko/yto ~ n/2, howard tiny, ho_k < n",
       "iterations", table);
  return 0;
}

}  // namespace

int main() { return run(); }
