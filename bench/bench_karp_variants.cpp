// Experiment E4 — reproduces §4.4: Karp's algorithm against its three
// variants. Claims to reproduce:
//   * DG's saving in visited arcs is small on random graphs (dense
//     enough that every level touches every node) but dramatic on
//     m = n instances and circuits;
//   * Karp2 (Theta(n)-space) roughly doubles Karp's time;
//   * HO's early termination makes it the most effective improvement.
#include <iostream>
#include <string>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "gen/circuit.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

void sweep_row(TextTable& table, const std::string& label, const Graph& g, int trials_done,
               RunStats stats[4][2]) {
  static_cast<void>(g);
  const char* names[4] = {"karp", "dg", "ho", "karp2"};
  std::vector<std::string> row{label};
  for (int i = 0; i < 4; ++i) {
    static_cast<void>(names);
    if (stats[i][0].count() == 0) {
      row.push_back("N/A");
      row.push_back("N/A");
    } else {
      row.push_back(fmt_fixed(stats[i][0].mean(), 2));  // ms
      row.push_back(fmt_fixed(stats[i][1].mean(), 0));  // arc scans
    }
  }
  row.push_back(std::to_string(trials_done));
  table.add_row(std::move(row));
}

int run() {
  banner("E4 Karp and its variants", "observation 4.4 (DAC'99)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);
  const char* solvers[4] = {"karp", "dg", "ho", "karp2"};

  TextTable table({"instance", "karp_ms", "karp_scans", "dg_ms", "dg_scans", "ho_ms",
                   "ho_scans", "karp2_ms", "karp2_scans", "seeds"});

  for (const GridCell cell : table2_grid(scale)) {
    RunStats stats[4][2];
    for (int t = 0; t < trials; ++t) {
      const Graph g = table2_instance(cell, t);
      for (int i = 0; i < 4; ++i) {
        const TimedRun run = time_solver(solvers[i], g);
        if (!run.ran) continue;
        stats[i][0].add(run.seconds * 1e3);
        stats[i][1].add(static_cast<double>(run.result.counters.arc_scans +
                                            run.result.counters.node_visits));
      }
    }
    sweep_row(table, "sprand n=" + std::to_string(cell.n) + " m=" + std::to_string(cell.m),
              table2_instance(cell, 0), trials, stats);
  }

  // Circuits: where DG's unfolding shines (small frontiers).
  for (const CircuitCase& c : circuit_suite(scale)) {
    RunStats stats[4][2];
    const Graph g = gen::circuit(c.config);
    for (int i = 0; i < 4; ++i) {
      const TimedRun run = time_solver(solvers[i], g);
      if (!run.ran) continue;
      stats[i][0].add(run.seconds * 1e3);
      stats[i][1].add(static_cast<double>(run.result.counters.arc_scans +
                                          run.result.counters.node_visits));
    }
    sweep_row(table, "circuit " + c.name, g, 1, stats);
  }

  emit("Karp family: time [ms] and visited-arc counts — expect karp2_ms ~ 2x karp_ms, "
       "dg_scans << karp_scans at m = n and on circuits, ho fastest overall",
       "karp_variants", table);
  return 0;
}

}  // namespace

int main() { return run(); }
