// Experiment E1 — reproduces §4.1: how the minimum cycle mean itself
// depends on the graph parameters. The paper observes that on SPRAND
// graphs lambda* is "almost independent of the number of nodes, and it
// changes inversely with the density" (denser graphs contain more and
// smaller cycles).
#include <iostream>
#include <string>

#include "benchkit/report.h"
#include "benchkit/workloads.h"
#include "core/driver.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("E1 lambda* vs graph parameters", "observation 4.1 (DAC'99)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);

  TextTable table({"n", "m", "m/n", "lambda*", "critical_len"});
  for (const GridCell cell : table2_grid(scale)) {
    RunStats lambda;
    RunStats cycle_len;
    for (int t = 0; t < trials; ++t) {
      const Graph g = table2_instance(cell, t);
      const auto r = minimum_cycle_mean(g, "howard");
      if (!r.has_cycle) continue;
      lambda.add(r.value.to_double());
      cycle_len.add(static_cast<double>(r.cycle.size()));
    }
    table.add_row({std::to_string(cell.n), std::to_string(cell.m),
                   fmt_fixed(static_cast<double>(cell.m) / cell.n, 1),
                   fmt_fixed(lambda.mean(), 2), fmt_fixed(cycle_len.mean(), 1)});
  }
  emit("lambda* (avg over " + std::to_string(trials) +
           " seeds): near-constant down a density column, decreasing along a row",
       "mcm_params", table);
  return 0;
}

}  // namespace

int main() { return run(); }
