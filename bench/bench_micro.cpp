// B1 — google-benchmark microbenchmarks: one benchmark per solver on a
// fixed mid-size SPRAND instance plus substrate microbenchmarks (heaps,
// Bellman-Ford, SCC). These give CI-grade tracked numbers; the
// table-style experiments live in the bench_* table binaries.
#include <benchmark/benchmark.h>

#include "core/driver.h"
#include "core/registry.h"
#include "ds/binary_heap.h"
#include "ds/fibonacci_heap.h"
#include "ds/pairing_heap.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "graph/bellman_ford.h"
#include "graph/scc.h"
#include "support/prng.h"

namespace {

using namespace mcr;

const Graph& sprand_instance() {
  static const Graph g = [] {
    gen::SprandConfig cfg;
    cfg.n = 512;
    cfg.m = 1024;
    cfg.seed = 42;
    return gen::sprand(cfg);
  }();
  return g;
}

const Graph& circuit_instance() {
  static const Graph g = [] {
    gen::CircuitConfig cfg;
    cfg.registers = 512;
    cfg.seed = 42;
    return gen::circuit(cfg);
  }();
  return g;
}

void BM_Solver(benchmark::State& state, const std::string& name, bool circuit) {
  const Graph& g = circuit ? circuit_instance() : sprand_instance();
  const auto solver = SolverRegistry::instance().create(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize(minimum_cycle_mean(g, *solver));
  }
}

void BM_Scc(benchmark::State& state) {
  const Graph& g = circuit_instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(strongly_connected_components(g));
  }
}
BENCHMARK(BM_Scc);

void BM_BellmanFord(benchmark::State& state) {
  const Graph& g = sprand_instance();
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) cost[static_cast<std::size_t>(a)] = g.weight(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bellman_ford_all(g, cost));
  }
}
BENCHMARK(BM_BellmanFord);

template <typename Heap>
void BM_HeapSortPattern(benchmark::State& state) {
  const std::int32_t n = static_cast<std::int32_t>(state.range(0));
  Prng rng(7);
  std::vector<std::int64_t> keys(static_cast<std::size_t>(n));
  for (auto& k : keys) k = rng.uniform_int(0, 1 << 20);
  for (auto _ : state) {
    Heap h(n);
    for (std::int32_t i = 0; i < n; ++i) h.insert(i, keys[static_cast<std::size_t>(i)]);
    for (std::int32_t i = 0; i < n / 2; ++i) {
      h.decrease_key(static_cast<std::int32_t>(rng.uniform_int(0, n - 1)), -i);
    }
    while (!h.empty()) benchmark::DoNotOptimize(h.extract_min());
  }
}
BENCHMARK_TEMPLATE(BM_HeapSortPattern, BinaryHeap<std::int64_t>)->Arg(4096);
BENCHMARK_TEMPLATE(BM_HeapSortPattern, PairingHeap<std::int64_t>)->Arg(4096);
BENCHMARK_TEMPLATE(BM_HeapSortPattern, FibonacciHeap<std::int64_t>)->Arg(4096);

}  // namespace

// Per-solver registrations (sprand + circuit).
#define MCR_SOLVER_BENCH(name)                                               \
  BENCHMARK_CAPTURE(BM_Solver, name##_sprand, #name, false);                 \
  BENCHMARK_CAPTURE(BM_Solver, name##_circuit, #name, true)

MCR_SOLVER_BENCH(howard);
MCR_SOLVER_BENCH(ho);
MCR_SOLVER_BENCH(dg);
MCR_SOLVER_BENCH(karp);
MCR_SOLVER_BENCH(karp2);
MCR_SOLVER_BENCH(ko);
MCR_SOLVER_BENCH(yto);
MCR_SOLVER_BENCH(burns);
MCR_SOLVER_BENCH(lawler);
MCR_SOLVER_BENCH(oa1);
