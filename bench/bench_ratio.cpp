// Experiment R1 — the minimum cost-to-time ratio solvers (the paper's
// Table 1 lower half; the DAC text evaluates the mean versions, so this
// harness extends the study to true ratio instances: SPRAND graphs with
// transit times drawn from [1, 10]).
#include <iostream>
#include <string>
#include <vector>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "core/driver.h"
#include "core/registry.h"
#include "gen/sprand.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("R1 cost-to-time ratio solvers", "Table 1 MCR rows (DAC'99)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);
  const std::vector<std::string> solvers{"howard_ratio", "yto_ratio", "burns_ratio",
                                         "lawler_ratio", "ho_ratio",
                                         "cycle_cancel_ratio"};

  std::vector<std::string> header{"n", "m", "rho*"};
  for (const auto& s : solvers) header.push_back(s + "_ms");
  TextTable table(header);

  for (const GridCell cell : table2_grid(scale)) {
    RunStats rho;
    std::vector<RunStats> ms(solvers.size());
    for (int t = 0; t < trials; ++t) {
      const Graph g = ratio_instance(cell, t);
      for (std::size_t i = 0; i < solvers.size(); ++i) {
        const TimedRun run = time_solver(solvers[i], g);
        if (!run.ran) continue;  // ho_ratio memory guard at large T
        ms[i].add(run.seconds * 1e3);
        if (i == 0 && run.result.has_cycle) rho.add(run.result.value.to_double());
      }
    }
    std::vector<std::string> row{std::to_string(cell.n), std::to_string(cell.m),
                                 fmt_fixed(rho.mean(), 2)};
    for (auto& s : ms) row.push_back(fmt_fixed(s.mean(), 2));
    table.add_row(std::move(row));
  }
  emit("Ratio solvers: time [ms] (avg over " + std::to_string(trials) +
           " seeds) — Howard leads here as well",
       "ratio", table);
  return 0;
}

}  // namespace

int main() { return run(); }
