// Ablation A3 — parallel-arc simplification as preprocessing. SPRAND's
// random arcs create parallel bundles (more with density); every
// solver's work scales with m, so dominated parallels are free savings.
// Measures arc reduction and its effect on the three fastest solvers.
#include <iostream>
#include <string>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "graph/transforms.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("A3 parallel-arc simplification", "preprocessing ablation (extension)");
  const Scale scale = bench_scale();
  const int trials = trials_per_cell(scale);

  TextTable table({"n", "m", "m_simplified", "howard_ms", "howard_simpl_ms", "yto_ms",
                   "yto_simpl_ms", "karp_ms", "karp_simpl_ms"});
  for (const GridCell cell : table2_grid(scale)) {
    RunStats kept;
    RunStats ms[3][2];
    const char* solvers[3] = {"howard", "yto", "karp"};
    for (int t = 0; t < trials; ++t) {
      const Graph g = table2_instance(cell, t);
      const SimplifiedGraph s = simplify_parallel_arcs(g, false);
      kept.add(static_cast<double>(s.graph.num_arcs()));
      for (int i = 0; i < 3; ++i) {
        const TimedRun base = time_solver(solvers[i], g);
        const TimedRun simp = time_solver(solvers[i], s.graph);
        if (base.ran) ms[i][0].add(base.seconds * 1e3);
        if (simp.ran) ms[i][1].add(simp.seconds * 1e3);
      }
    }
    table.add_row({std::to_string(cell.n), std::to_string(cell.m),
                   fmt_fixed(kept.mean(), 0), fmt_fixed(ms[0][0].mean(), 2),
                   fmt_fixed(ms[0][1].mean(), 2), fmt_fixed(ms[1][0].mean(), 2),
                   fmt_fixed(ms[1][1].mean(), 2), fmt_fixed(ms[2][0].mean(), 2),
                   fmt_fixed(ms[2][1].mean(), 2)});
  }
  emit("Parallel-arc simplification: kept arcs and solver time before/after",
       "simplify", table);
  return 0;
}

}  // namespace

int main() { return run(); }
