// Experiment T2 — reproduces Table 2 of the paper: running times of the
// ten minimum-mean-cycle algorithms on SPRAND random graphs, averaged
// over several seeds per (n, m) cell. Cells the paper marked N/A
// (quadratic-space blowup or day-long runs) are guarded the same way
// here: "mem" when the D table would not fit, "time" once a solver
// exceeded the per-run budget on a smaller instance.
//
// Expected shape (paper §4.5): Howard fastest by a large margin, HO
// second, Karp strong on small cases but degrading, DG ~ Karp on random
// graphs except m = n where it wins big, Burns slower than KO/YTO,
// Lawler slowest, OA1 erratic and catastrophic at m = n.
#include <iostream>
#include <string>
#include <vector>

#include "benchkit/report.h"
#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "support/stats.h"
#include "support/table.h"

namespace {

using namespace mcr;
using namespace mcr::bench;

int run() {
  banner("T2 runtime comparison", "Table 2 (DAC'99)");
  const Scale scale = bench_scale();
  const std::vector<std::string> solvers{"burns", "ko",  "yto",    "howard", "ho",
                                         "karp",  "dg",  "lawler", "karp2",  "oa1"};

  std::vector<std::string> header{"n", "m"};
  header.insert(header.end(), solvers.begin(), solvers.end());
  TextTable table(header);

  TimeBudget budget(default_time_budget());
  const int trials = trials_per_cell(scale);

  for (const GridCell cell : table2_grid(scale)) {
    std::vector<std::string> row{std::to_string(cell.n), std::to_string(cell.m)};
    for (const std::string& solver : solvers) {
      if (budget.should_skip(solver)) {
        row.push_back("N/A(time)");
        continue;
      }
      RunStats stats;
      bool guarded = false;
      for (int t = 0; t < trials && !guarded; ++t) {
        const Graph g = table2_instance(cell, t);
        const TimedRun run = time_solver(solver, g);
        if (!run.ran) {
          guarded = true;
          break;
        }
        stats.add(run.seconds);
        budget.record(solver, run.seconds);
        if (budget.should_skip(solver)) break;  // stop burning time mid-cell
      }
      if (guarded) {
        row.push_back("N/A(mem)");
      } else {
        row.push_back(fmt_ms(stats.mean()));
      }
    }
    table.add_row(std::move(row));
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  emit("Table 2 reproduction: mean running time per algorithm [ms] (avg over " +
           std::to_string(trials) + " seeds)",
       "table2", table);

  // Per-phase breakdown (obs tracing) on the grid's largest cell: how
  // much of each solver's wall clock is SCC decomposition, per-component
  // solving, merging, and witness extraction. Solvers already guarded
  // out above (time or memory) stay guarded here.
  const GridCell big = table2_grid(scale).back();
  const Graph bg = table2_instance(big, 0);
  const std::vector<std::string> phases{"solve", "scc_decompose", "component",
                                        "merge", "witness_extract"};
  std::vector<std::string> pheader{"solver"};
  pheader.insert(pheader.end(), phases.begin(), phases.end());
  TextTable ptable(pheader);
  for (const std::string& solver : solvers) {
    std::vector<std::string> row{solver};
    if (budget.should_skip(solver) ||
        estimated_bytes(solver, bg.num_nodes(), bg.num_arcs()) > (2ULL << 30)) {
      row.insert(row.end(), phases.size(), "N/A");
    } else {
      const auto totals = phase_breakdown(solver, bg);
      for (const std::string& phase : phases) {
        const auto it = totals.find(phase);
        row.push_back(it == totals.end() ? "-" : fmt_ms(it->second));
      }
    }
    ptable.add_row(std::move(row));
    std::cout << "." << std::flush;
  }
  std::cout << '\n';
  emit("Per-phase breakdown [ms] on n=" + std::to_string(big.n) + " m=" +
           std::to_string(big.m) + " (obs tracing; serial driver)",
       "table2_phases", ptable);

  std::cout << "\nPaper landmarks to compare against (Sparc-20 seconds, relative "
               "ordering is the claim):\n"
               "  n=2048 m=4096:  Howard 0.88  HO 3.14  Karp 21.87  YTO 20.31  "
               "Burns 42.88  Lawler 165.61\n"
               "  n=512  m=512:   DG 0.06 beats Karp 0.79; OA1 328.88 collapses\n";
  return 0;
}

}  // namespace

int main() { return run(); }
