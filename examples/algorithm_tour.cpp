// Tour of the whole algorithm registry: run every minimum-mean-cycle
// solver on one instance, print a mini Table-2 row with timings and the
// paper's Table-1 metadata, and check that all agree exactly.
//
//   $ ./algorithm_tour [n] [m]
#include <cstdlib>
#include <iostream>

#include "core/driver.h"
#include "core/registry.h"
#include "gen/sprand.h"
#include "support/stats.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace mcr;

  gen::SprandConfig cfg;
  cfg.n = argc > 1 ? std::atoi(argv[1]) : 256;
  cfg.m = argc > 2 ? std::atoi(argv[2]) : 3 * cfg.n;
  cfg.seed = 7;
  const Graph g = gen::sprand(cfg);
  std::cout << "SPRAND instance: n=" << g.num_nodes() << " m=" << g.num_arcs()
            << " weights in [1,10000]\n\n";

  const auto& registry = SolverRegistry::instance();
  TextTable table({"algorithm", "source", "year", "bound", "exact", "lambda*", "ms",
                   "iterations"});
  bool all_agree = true;
  Rational reference;
  bool have_reference = false;

  for (const std::string& name : registry.names(ProblemKind::kCycleMean)) {
    if (name == "brute_force") continue;  // exponential oracle, skip
    const SolverInfo& info = registry.info(name);
    const auto solver = registry.create(name);
    Timer timer;
    const CycleResult r = minimum_cycle_mean(g, *solver);
    const double ms = timer.millis();
    if (!have_reference) {
      reference = r.value;
      have_reference = true;
    } else if (r.value != reference) {
      all_agree = false;
    }
    table.add_row({info.display, info.source, std::to_string(info.year), info.bound,
                   info.exact ? "exact" : "approx", r.value.to_string(), fmt_fixed(ms, 2),
                   std::to_string(r.counters.iterations)});
  }
  table.print(std::cout);
  std::cout << "\nall algorithms agree on lambda*: " << (all_agree ? "yes" : "NO!")
            << "\n";
  return all_agree ? 0 : 1;
}
