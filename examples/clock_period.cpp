// Optimal clock period of a synchronous circuit (the Szymanski /
// Teich-et-al. application from §1.1 of the paper).
//
// With registers as nodes and an arc u -> v of weight = the longest
// combinational delay from register u to register v (transit = 1
// register stage), the minimum feasible clock period with optimal clock
// skews equals the MAXIMUM cycle ratio of the latency graph: no skew
// assignment can beat the average delay per stage around the worst
// feedback loop, and a skew schedule achieving that bound exists (the
// critical-subgraph potentials ARE the optimal skews).
//
//   $ ./clock_period [registers]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "apps/clock_skew.h"
#include "core/critical.h"
#include "core/driver.h"
#include "gen/circuit.h"
#include "graph/builder.h"
#include "graph/transforms.h"

int main(int argc, char** argv) {
  using namespace mcr;

  gen::CircuitConfig cfg;
  cfg.registers = argc > 1 ? std::atoi(argv[1]) : 96;
  cfg.module_size = 16;
  cfg.avg_fanout = 1.7;
  cfg.min_delay = 2;
  cfg.max_delay = 35;  // gate delays in 0.1ns units
  cfg.seed = 2026;
  const Graph g = gen::circuit(cfg);
  std::cout << "synthesized circuit: " << g.num_nodes() << " registers, " << g.num_arcs()
            << " register-to-register paths\n";

  const CycleResult worst = maximum_cycle_ratio(g, "howard_ratio");
  if (!worst.has_cycle) {
    std::cout << "feed-forward circuit: clock period limited only by the longest "
                 "path, not by any loop\n";
    return 0;
  }

  std::cout << "optimal clock period (max cycle ratio): " << worst.value << " = "
            << worst.value.to_double() << " gate-delay units\n";
  std::cout << "critical loop (" << worst.cycle.size() << " stages):";
  for (const ArcId a : worst.cycle) {
    std::cout << " r" << g.src(a) << "-[" << g.weight(a) << "]->r" << g.dst(a);
  }
  std::cout << "\n";

  // The optimal skew schedule: potentials of the critical subgraph of
  // the negated graph (max problem == min on negated weights).
  const Graph neg = negate_weights(g);
  const CriticalSubgraph crit =
      critical_subgraph(neg, -worst.value, ProblemKind::kCycleRatio);
  std::cout << "skew schedule computed for " << crit.scaled_potential.size()
            << " registers (scaled by " << worst.value.den() << "); e.g. skew(r0) = "
            << static_cast<double>(crit.scaled_potential[0]) / worst.value.den() << "\n";

  // Sanity: without skew optimization the period is the max single-hop
  // delay; the loop bound can only be smaller or equal.
  std::cout << "max single-path delay (zero-skew lower bound on comparison): "
            << g.max_weight() << "\n";

  // Full setup/hold-aware schedule via the clock-skew app: reuse the
  // same topology with min delays at 40% of max (fast corners).
  GraphBuilder sb(g.num_nodes());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    sb.add_arc(g.src(a), g.dst(a), g.weight(a), std::max<std::int64_t>(0, g.weight(a) * 2 / 5));
  }
  const Graph skew_model = sb.build();
  const apps::ClockPeriodResult sched = apps::min_clock_period(skew_model);
  std::cout << "setup/hold-aware optimal period (clock_skew app): "
            << sched.min_period << " = " << sched.min_period.to_double() << "\n";
  std::cout << "zero-skew period for comparison: "
            << apps::zero_skew_period(skew_model) << "\n";
  return 0;
}
