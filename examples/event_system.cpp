// Max-plus spectral analysis of a discrete event system (the
// Baccelli-Cohen-Olsder-Quadrat setting the paper cites as [3]).
//
// A small manufacturing cell: three machines in a loop with transport
// delays, plus a downstream packaging line. The max-plus eigenvalue of
// the core loop is its cycle time (throughput = 1/eigenvalue); the
// eigenvector is a stationary schedule: firing machine v at
// x[v], x[v]+lambda, x[v]+2*lambda, ... meets every precedence.
//
//   $ ./event_system
#include <iostream>

#include "apps/maxplus.h"
#include "apps/selftimed.h"
#include "graph/builder.h"
#include "graph/scc.h"

int main() {
  using namespace mcr;

  // Core production loop (strongly connected): processing + transport.
  GraphBuilder core(3);
  core.add_arc(0, 1, 5);  // M0 -> M1 takes 5
  core.add_arc(1, 2, 3);  // M1 -> M2 takes 3
  core.add_arc(2, 0, 4);  // M2 -> M0 takes 4 (pallet returns)
  core.add_arc(1, 0, 6);  // rework path M1 -> M0 takes 6
  const Graph loop = core.build();

  const apps::MaxPlusSpectrum spec = apps::maxplus_spectrum(loop);
  std::cout << "core loop eigenvalue (cycle time): " << spec.eigenvalue << " = "
            << spec.eigenvalue.to_double() << " time units/part\n";
  std::cout << "throughput: " << 1.0 / spec.eigenvalue.to_double() << " parts/unit\n";
  std::cout << "stationary schedule (x[v]/" << spec.eigenvalue.den() << "):";
  for (const auto x : spec.scaled_eigenvector) std::cout << " " << x;
  std::cout << "\ncritical machines:";
  for (const NodeId v : spec.critical_nodes) std::cout << " M" << v;
  std::cout << "\neigen equation holds: "
            << (apps::is_maxplus_eigenpair(loop, spec.eigenvalue, spec.scaled_eigenvector)
                    ? "yes"
                    : "NO")
            << "\n\n";

  // Whole plant: the loop feeds a two-stage packaging line, and a
  // second slower loop feeds the same line.
  GraphBuilder plant(7);
  plant.add_arc(0, 1, 5);
  plant.add_arc(1, 2, 3);
  plant.add_arc(2, 0, 4);
  plant.add_arc(1, 0, 6);
  plant.add_arc(3, 4, 9);  // slow loop: 9 + 6 over 2 events = 7.5
  plant.add_arc(4, 3, 6);
  plant.add_arc(2, 5, 2);  // both feed packaging
  plant.add_arc(4, 5, 2);
  plant.add_arc(5, 6, 1);
  const Graph plant_g = plant.build();

  const apps::CycleTimeVector chi = apps::maxplus_cycle_time(plant_g);
  std::cout << "plant cycle-time vector (per node growth rate):\n";
  for (NodeId v = 0; v < plant_g.num_nodes(); ++v) {
    std::cout << "  node " << v << ": ";
    if (chi.has_rate[static_cast<std::size_t>(v)]) {
      std::cout << chi.chi[static_cast<std::size_t>(v)] << "\n";
    } else {
      std::cout << "(source-fed, no intrinsic rate)\n";
    }
  }
  std::cout << "packaging line is paced by the slow loop: rate(node 5) = "
            << chi.chi[5] << "\n";

  // Operational cross-check: run the plant self-timed for 500 cycles
  // and compare the measured rates with the analysis. (Tokens: one per
  // arc here, so weight doubles as the delay and transit as tokens.)
  GraphBuilder sim_b(plant_g.num_nodes());
  for (ArcId a = 0; a < plant_g.num_arcs(); ++a) {
    sim_b.add_arc(plant_g.src(a), plant_g.dst(a), plant_g.weight(a), 1);
  }
  const Graph sim_g = sim_b.build();
  const auto sim = apps::simulate_self_timed(sim_g, 500);
  const auto predicted = apps::analytic_rates(sim_g);
  std::cout << "self-timed simulation vs analysis (node: measured ~ predicted):\n";
  for (NodeId v = 0; v < sim_g.num_nodes(); ++v) {
    std::cout << "  node " << v << ": " << sim.measured_rate(v) << " ~ "
              << predicted[static_cast<std::size_t>(v)].to_double() << "\n";
  }
  return 0;
}
