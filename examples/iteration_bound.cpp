// Iteration bound of a DSP dataflow graph (the Ito & Parhi application
// from §1.1 of the paper).
//
// In a synchronous dataflow graph, nodes are operations with execution
// times and arcs carry delay registers (z^-1 elements). The iteration
// bound — the minimum achievable iteration period under unlimited
// parallelism — is the MAXIMUM cycle ratio of total computation time to
// total delay count around any loop:  T_inf = max_C t(C)/d(C).
//
// We model it as maximum_cycle_ratio with weight = execution time and
// transit = delay count, on two classic filters.
//
//   $ ./iteration_bound
#include <iostream>

#include "apps/dataflow.h"
#include "core/driver.h"
#include "graph/builder.h"

namespace {

using namespace mcr;

void report(const char* name, const Graph& g) {
  const CycleResult r = maximum_cycle_ratio(g, "howard_ratio");
  std::cout << name << ": iteration bound = " << r.value << " = "
            << r.value.to_double() << " time units";
  std::cout << "  (critical loop:";
  for (const ArcId a : r.cycle) std::cout << " " << g.src(a) << "->" << g.dst(a);
  std::cout << ")\n";
}

}  // namespace

int main() {
  // Second-order IIR biquad: y[n] = x[n] + a1*y[n-1] + a2*y[n-2].
  // Operations: 0 = add (1 t.u.), 1 = mult a1 (2 t.u.), 2 = mult a2 (2 t.u.).
  // Loop 1: add -> mult1 -> add through one delay:  (1+2)/1 = 3.
  // Loop 2: add -> mult2 -> add through two delays: (1+2)/2 = 3/2.
  {
    GraphBuilder b(3);
    // weight on arc (u, v) = execution time of the *source* operation,
    // transit = number of delay registers on the edge.
    b.add_arc(0, 1, 1, 1);  // add result through z^-1 into mult a1
    b.add_arc(1, 0, 2, 0);  // mult a1 feeds the adder directly
    b.add_arc(0, 2, 1, 2);  // add result through z^-2 into mult a2
    b.add_arc(2, 0, 2, 0);  // mult a2 feeds the adder
    report("IIR biquad", b.build());
  }

  // Two-stage lattice filter: tighter inner loop dominates.
  {
    GraphBuilder b(4);
    b.add_arc(0, 1, 1, 0);
    b.add_arc(1, 2, 2, 0);
    b.add_arc(2, 3, 1, 0);
    b.add_arc(3, 0, 2, 1);  // outer loop: 6 time units / 1 delay = 6
    b.add_arc(2, 1, 1, 1);  // inner loop: (2+1)/1 = 3
    report("lattice filter", b.build());
  }

  // A pipelined variant: retiming adds a register to the outer loop,
  // halving its ratio — the bound drops accordingly.
  {
    GraphBuilder b(4);
    b.add_arc(0, 1, 1, 0);
    b.add_arc(1, 2, 2, 1);  // extra pipeline register here
    b.add_arc(2, 3, 1, 0);
    b.add_arc(3, 0, 2, 1);  // outer loop now 6/2 = 3
    b.add_arc(2, 1, 1, 1);
    report("lattice filter (retimed)", b.build());
  }

  // Multirate SDF: a decimating filter stage. A (exec 2) produces 3
  // samples per firing; B (exec 7) consumes 2; feedback keeps 6 tokens
  // in flight. The analysis computes the repetition vector (2, 3), the
  // homogeneous expansion, and the iteration bound.
  {
    apps::SdfGraph sdf;
    sdf.actors = {{2}, {7}};
    sdf.channels.push_back({0, 1, 3, 2, 0});
    sdf.channels.push_back({1, 0, 2, 3, 6});
    const apps::SdfAnalysis a = apps::analyze_sdf(sdf);
    std::cout << "multirate SDF stage: repetitions (";
    for (std::size_t i = 0; i < a.repetitions.size(); ++i) {
      std::cout << (i ? ", " : "") << a.repetitions[i];
    }
    std::cout << "), iteration period bound = " << a.iteration_period << " = "
              << a.iteration_period.to_double() << " time units\n";
  }
  return 0;
}
