// Quickstart: build a small graph, compute its minimum cycle mean with
// the default solver (Howard's algorithm — the paper's fastest), print
// the critical cycle, and verify the result with the exact certificate.
//
//   $ ./quickstart
#include <iostream>

#include "core/critical.h"
#include "core/driver.h"
#include "core/verify.h"
#include "graph/builder.h"

int main() {
  using namespace mcr;

  // A toy "processor pipeline" with two feedback loops.
  //   0 --3--> 1 --4--> 2 --2--> 0      (mean 3)
  //            1 <--1-- 2              (2-cycle 1->2->1, mean 5/2)
  GraphBuilder builder(3);
  builder.add_arc(0, 1, 3);
  builder.add_arc(1, 2, 4);
  builder.add_arc(2, 0, 2);
  builder.add_arc(2, 1, 1);
  const Graph g = builder.build();

  // Solve. The driver decomposes into SCCs and runs the solver per
  // cyclic component; "howard" is the default recommendation.
  const CycleResult result = minimum_cycle_mean(g, "howard");
  if (!result.has_cycle) {
    std::cout << "graph is acyclic - no cycle mean\n";
    return 0;
  }

  std::cout << "minimum cycle mean: " << result.value << " (= "
            << result.value.to_double() << ")\n";
  std::cout << "critical cycle arcs:";
  for (const ArcId a : result.cycle) {
    std::cout << "  " << g.src(a) << "->" << g.dst(a) << " (w=" << g.weight(a) << ")";
  }
  std::cout << "\nsolver work: " << result.counters.summary() << "\n";

  // Exact certificate: the witness achieves the value and nothing beats it.
  const VerifyOutcome cert = verify_result(g, result, ProblemKind::kCycleMean);
  std::cout << "certificate: " << (cert.ok ? "OK" : cert.message) << "\n";

  // The critical subgraph: every arc that is tight at lambda*.
  const CriticalSubgraph crit =
      critical_subgraph(g, result.value, ProblemKind::kCycleMean);
  std::cout << "critical subgraph: " << crit.arcs.size() << " arcs over "
            << crit.nodes.size() << " nodes\n";
  return cert.ok ? 0 : 1;
}
