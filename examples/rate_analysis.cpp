// Rate analysis of an embedded real-time process network (the
// Mathur-Dasdan-Gupta application from §1.1 of the paper).
//
// Processes exchange events along arcs; arc weight = processing latency
// and transit = number of initial tokens. Each strongly connected
// component runs at its own steady-state rate, bounded by the worst
// cycle in that component: rate(SCC) = 1 / max_C (latency(C)/tokens(C)).
// The per-SCC structure is exactly what the library's driver computes;
// here we surface it per component rather than taking the global min.
//
//   $ ./rate_analysis
#include <iostream>

#include "core/driver.h"
#include "core/registry.h"
#include "graph/builder.h"
#include "graph/scc.h"

int main() {
  using namespace mcr;

  // A producer pipeline (SCC A: 0,1) feeding a consumer loop
  // (SCC B: 2,3,4) and an uncontrolled logger (node 5, no feedback).
  GraphBuilder b(6);
  b.add_arc(0, 1, 4, 1);   // produce -> filter, 4 ms, 1 token
  b.add_arc(1, 0, 2, 1);   // backpressure, 2 ms            loop: 6 ms / 2 tok
  b.add_arc(1, 2, 1, 1);   // hand-off into the consumer SCC
  b.add_arc(2, 3, 5, 1);   // decode, 5 ms
  b.add_arc(3, 4, 3, 1);   // render, 3 ms
  b.add_arc(4, 2, 2, 1);   // ack, 2 ms                     loop: 10 ms / 3 tok
  b.add_arc(3, 2, 1, 1);   // retry path                    loop: 6 ms / 2 tok
  b.add_arc(4, 5, 1, 1);   // log tap (acyclic)
  const Graph g = b.build();

  const auto scc = strongly_connected_components(g);
  const auto solver = SolverRegistry::instance().create("howard_ratio");
  std::cout << "process network: " << g.num_nodes() << " processes, "
            << scc.num_components << " components\n";

  for (NodeId c = 0; c < scc.num_components; ++c) {
    std::cout << "component " << c << " {";
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (scc.component[static_cast<std::size_t>(v)] == c) std::cout << " P" << v;
    }
    std::cout << " }: ";
    if (!scc.component_is_cyclic[static_cast<std::size_t>(c)]) {
      std::cout << "feed-forward (rate limited only by its inputs)\n";
      continue;
    }
    const InducedSubgraph sub = induced_subgraph(g, scc, c);
    const CycleResult worst = maximum_cycle_ratio(sub.graph, *solver);
    std::cout << "worst loop latency/token = " << worst.value << " ms"
              << " -> max sustainable rate = " << 1000.0 / worst.value.to_double()
              << " events/s\n";
  }

  // Global figure: the system rate is set by the slowest component.
  const CycleResult system = maximum_cycle_ratio(g, *solver);
  std::cout << "system-wide bottleneck ratio: " << system.value << " ms/token\n";
  return 0;
}
