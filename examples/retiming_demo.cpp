// Minimum-period retiming of a synthesized circuit (Leiserson-Saxe),
// showing the cycle-ratio lower bound from the core library next to the
// achieved optimum.
//
//   $ ./retiming_demo [registers]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "apps/retiming.h"
#include "gen/circuit.h"
#include "graph/builder.h"
#include "support/prng.h"

int main(int argc, char** argv) {
  using namespace mcr;

  // Synthesize a gate-level circuit: reuse the circuit generator's
  // topology but reinterpret arcs as nets with 0-2 registers and nodes
  // as gates with delays 1..12.
  gen::CircuitConfig cfg;
  cfg.registers = argc > 1 ? std::atoi(argv[1]) : 48;
  cfg.module_size = 12;
  cfg.avg_fanout = 1.5;
  cfg.seed = 7;
  const Graph topo = gen::circuit(cfg);

  Prng rng(42);
  GraphBuilder b(topo.num_nodes());
  std::vector<std::int64_t> delay(static_cast<std::size_t>(topo.num_nodes()));
  for (NodeId v = 0; v < topo.num_nodes(); ++v) delay[static_cast<std::size_t>(v)] = rng.uniform_int(1, 12);
  for (ArcId a = 0; a < topo.num_arcs(); ++a) {
    // Self-loops and backward arcs carry at least one register so the
    // circuit has no combinational loops.
    const bool needs_reg = topo.dst(a) <= topo.src(a);
    b.add_arc(topo.src(a), topo.dst(a), needs_reg ? rng.uniform_int(1, 2)
                                                  : rng.uniform_int(0, 1));
  }
  const Graph circuit = b.build();

  const std::int64_t before = apps::clock_period(circuit, delay);
  const apps::RetimingResult r = apps::min_period_retiming(circuit, delay);

  std::cout << "circuit: " << circuit.num_nodes() << " gates, " << circuit.num_arcs()
            << " nets\n";
  std::cout << "clock period before retiming: " << before << "\n";
  std::cout << "cycle-ratio lower bound:      " << r.cycle_ratio_bound << " ("
            << r.cycle_ratio_bound.to_double() << ")\n";
  std::cout << "clock period after retiming:  " << r.period << "\n";

  const Graph retimed = apps::apply_retiming(circuit, r.labels);
  std::cout << "verified retimed period:      " << apps::clock_period(retimed, delay)
            << "\n";
  std::int64_t moved = 0;
  for (ArcId a = 0; a < circuit.num_arcs(); ++a) {
    moved += std::abs(retimed.weight(a) - circuit.weight(a));
  }
  std::cout << "registers moved: " << moved / 2 << "-ish (L1 change " << moved << ")\n";
  return 0;
}
