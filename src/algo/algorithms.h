// Factory functions for every algorithm in the study.
//
// Most callers should go through the SolverRegistry (core/registry.h) or
// the driver conveniences (core/driver.h); these factories exist for
// direct instantiation with non-default template choices (e.g. the heap
// ablation on KO/YTO).
#ifndef MCR_ALGO_ALGORITHMS_H
#define MCR_ALGO_ALGORITHMS_H

#include <memory>

#include "core/problem.h"
#include "core/solver.h"

namespace mcr {

/// Heap used by the parametric shortest-path solvers. The paper used
/// Fibonacci heaps for both KO and YTO (LEDA's default, §4.2).
enum class HeapKind {
  kFibonacci,
  kPairing,
  kBinary,
};

// --- Minimum cycle mean solvers (Table 2 of the paper) ---
std::unique_ptr<Solver> make_karp_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_karp2_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_dg_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_ho_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_ko_solver(const SolverConfig& config = {},
                                       HeapKind heap = HeapKind::kFibonacci);
std::unique_ptr<Solver> make_yto_solver(const SolverConfig& config = {},
                                        HeapKind heap = HeapKind::kFibonacci);
std::unique_ptr<Solver> make_burns_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_lawler_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_howard_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_oa1_solver(const SolverConfig& config = {});

// --- Extension variants (the paper's §5 "improved versions") ---
/// Lawler with witness tightening: each negative cycle found snaps the
/// upper bound to that cycle's exact value instead of the midpoint.
std::unique_ptr<Solver> make_lawler_improved_solver(const SolverConfig& config = {});
/// Howard with the naive first-out-arc initial policy instead of the
/// Fig. 1 min-weight-arc initialization (for the A2 ablation).
std::unique_ptr<Solver> make_howard_naive_init_solver(const SolverConfig& config = {});
/// Cycle canceling: the simplest correct baseline (repeated negative-
/// cycle detection); also the engine behind detail::refine_to_exact.
std::unique_ptr<Solver> make_cycle_cancel_solver(ProblemKind kind);
/// Megiddo's parametric search (Table 1 #12): symbolic Bellman-Ford
/// with an exact feasibility oracle at line-crossing points.
std::unique_ptr<Solver> make_megiddo_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_megiddo_ratio_solver(const SolverConfig& config = {});

// --- Minimum cost-to-time ratio solvers ---
std::unique_ptr<Solver> make_howard_ratio_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_lawler_ratio_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_burns_ratio_solver(const SolverConfig& config = {});
std::unique_ptr<Solver> make_yto_ratio_solver(const SolverConfig& config = {},
                                              HeapKind heap = HeapKind::kFibonacci);
/// Hartmann-Orlin pseudopolynomial O(Tm) ratio algorithm (Table 1 #13);
/// Theta(Tn) space — intended for small integral transit times.
std::unique_ptr<Solver> make_hartmann_orlin_ratio_solver(const SolverConfig& config = {});

}  // namespace mcr

#endif  // MCR_ALGO_ALGORITHMS_H
