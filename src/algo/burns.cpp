// Burns' algorithm (Burns 1991; §2.1 of the paper), mean and
// cost-to-time-ratio versions.
//
// Burns solves the linear program  max lambda  s.t.
// d(v) - d(u) <= w(u,v) - lambda * t(u,v)  by the primal-dual method.
// Each iteration: (1) collect the *critical* arcs — those whose
// constraint is tight; (2) if the critical subgraph contains a cycle,
// that cycle attains lambda and the algorithm stops; (3) otherwise the
// critical subgraph is a DAG — compute theta(v), the longest (transit-
// weighted) critical path ending at v, and raise lambda by the largest
// step delta that keeps all constraints satisfied under the reshaped
// potentials d'(v) = d(v) - theta(v)*delta:
//     delta = min over arcs with theta(u) + t - theta(v) > 0
//             of slack(u,v) / (theta(u) + t - theta(v)).
// Unlike KO/YTO, nothing is maintained incrementally — the critical
// subgraph is rebuilt from scratch every iteration, which the paper
// identifies as the reason Burns trails them in time despite doing
// fewer iterations (§4.5).
//
// Arithmetic: the (lambda, d) trajectory has unboundedly growing exact
// denominators, so the iteration runs in doubles; the final answer is
// snapped to the exact mean of the detected critical cycle and then
// certified/corrected by detail::refine_to_exact, so the solver's
// results are exact like every other solver in the library.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "algo/algorithms.h"
#include "algo/detail.h"
#include "core/result.h"
#include "graph/bellman_ford.h"
#include "graph/traversal.h"
#include "obs/obs.h"

namespace mcr {

namespace {

class BurnsSolver final : public Solver {
 public:
  BurnsSolver(const SolverConfig& config, ProblemKind kind)
      : epsilon_(config.epsilon), kind_(kind) {}

  [[nodiscard]] std::string name() const override {
    return kind_ == ProblemKind::kCycleMean ? "burns" : "burns_ratio";
  }
  [[nodiscard]] ProblemKind kind() const override { return kind_; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    const NodeId n = g.num_nodes();
    const std::size_t un = static_cast<std::size_t>(n);
    const ArcId m = g.num_arcs();
    CycleResult result;

    const auto transit = [&](ArcId a) {
      return kind_ == ProblemKind::kCycleMean ? std::int64_t{1} : g.transit(a);
    };

    // Feasible start: lambda0 low enough that d = 0 works, or Bellman-
    // Ford potentials when zero-transit negative arcs make d = 0
    // infeasible for every lambda.
    std::vector<double> d(un, 0.0);
    double lambda = std::numeric_limits<double>::infinity();
    bool need_bf_init = false;
    for (ArcId a = 0; a < m; ++a) {
      const std::int64_t t = transit(a);
      if (t > 0) {
        lambda = std::min(lambda, static_cast<double>(g.weight(a)) /
                                      static_cast<double>(t));
      } else if (g.weight(a) < 0) {
        need_bf_init = true;
      }
    }
    if (need_bf_init) {
      // lambda* >= n * min(0, w_min); start just below that bound.
      lambda = static_cast<double>(n) *
                   std::min<double>(0.0, static_cast<double>(g.min_weight())) -
               1.0;
      std::vector<double> cost(static_cast<std::size_t>(m));
      for (ArcId a = 0; a < m; ++a) {
        cost[static_cast<std::size_t>(a)] =
            static_cast<double>(g.weight(a)) - lambda * static_cast<double>(transit(a));
      }
      BellmanFordRealResult bf = bellman_ford_all_real(g, cost, &result.counters);
      d = std::move(bf.dist);
    }

    // Criticality tolerance scaled to the weight magnitude: float slack
    // computations carry rounding error ~ eps * |w| * n. Misclassifying
    // an arc costs only iterations (the final exact refinement repairs
    // the value), so a modest overestimate is safe.
    const double wscale = std::max<double>(
        1.0, std::max(std::abs(static_cast<double>(g.min_weight())),
                      std::abs(static_cast<double>(g.max_weight()))));
    const double tol = std::max(1e-8, 1e-13 * wscale * static_cast<double>(n));
    std::vector<ArcId> critical;
    std::vector<std::int64_t> theta(un);
    std::vector<std::int32_t> indeg(un);
    std::vector<NodeId> topo;
    std::vector<std::vector<ArcId>> crit_in(un);

    const std::int64_t max_iterations =
        static_cast<std::int64_t>(un) * static_cast<std::int64_t>(un) + 1000;
    std::vector<ArcId> cycle;

    for (std::int64_t iter = 0; iter < max_iterations; ++iter) {
      ++result.counters.iterations;
      obs::emit(obs::EventKind::kIteration, "burns.iteration", iter);

      // (1) Critical arcs at the current (d, lambda).
      critical.clear();
      for (ArcId a = 0; a < m; ++a) {
        ++result.counters.arc_scans;
        const double slack = d[static_cast<std::size_t>(g.src(a))] +
                             static_cast<double>(g.weight(a)) -
                             lambda * static_cast<double>(transit(a)) -
                             d[static_cast<std::size_t>(g.dst(a))];
        if (slack <= tol) critical.push_back(a);
      }

      // (2) Cyclic critical subgraph => done.
      ++result.counters.feasibility_checks;
      obs::emit(obs::EventKind::kFeasibilityProbe, "burns.critical_cycle_check", iter);
      cycle = find_any_cycle(g, critical);
      if (!cycle.empty()) break;

      // (3) theta = longest transit-weighted critical path (critical
      // subgraph is a DAG here). Kahn order over critical arcs.
      std::fill(theta.begin(), theta.end(), 0);
      std::fill(indeg.begin(), indeg.end(), 0);
      for (auto& lst : crit_in) lst.clear();
      for (const ArcId a : critical) {
        ++indeg[static_cast<std::size_t>(g.dst(a))];
        crit_in[static_cast<std::size_t>(g.dst(a))].push_back(a);
      }
      topo.clear();
      for (NodeId v = 0; v < n; ++v) {
        if (indeg[static_cast<std::size_t>(v)] == 0) topo.push_back(v);
      }
      // Process nodes; only out-arcs that are critical shrink indegrees.
      std::vector<std::vector<ArcId>> crit_out(un);
      for (const ArcId a : critical) {
        crit_out[static_cast<std::size_t>(g.src(a))].push_back(a);
      }
      for (std::size_t head = 0; head < topo.size(); ++head) {
        const NodeId u = topo[head];
        ++result.counters.node_visits;
        for (const ArcId a : crit_out[static_cast<std::size_t>(u)]) {
          const NodeId v = g.dst(a);
          theta[static_cast<std::size_t>(v)] =
              std::max(theta[static_cast<std::size_t>(v)],
                       theta[static_cast<std::size_t>(u)] + transit(a));
          if (--indeg[static_cast<std::size_t>(v)] == 0) topo.push_back(v);
        }
      }

      // (4) Largest feasible step.
      double delta = std::numeric_limits<double>::infinity();
      for (ArcId a = 0; a < m; ++a) {
        const double coef =
            static_cast<double>(theta[static_cast<std::size_t>(g.src(a))] + transit(a) -
                                theta[static_cast<std::size_t>(g.dst(a))]);
        if (coef <= 0) continue;
        const double slack = d[static_cast<std::size_t>(g.src(a))] +
                             static_cast<double>(g.weight(a)) -
                             lambda * static_cast<double>(transit(a)) -
                             d[static_cast<std::size_t>(g.dst(a))];
        delta = std::min(delta, std::max(0.0, slack) / coef);
      }
      if (!std::isfinite(delta)) break;  // numerically stuck; refine below

      for (NodeId v = 0; v < n; ++v) {
        d[static_cast<std::size_t>(v)] -=
            static_cast<double>(theta[static_cast<std::size_t>(v)]) * delta;
      }
      lambda += delta;
      static_cast<void>(epsilon_);
    }

    if (cycle.empty()) {
      // Iteration cap or a degenerate step: fall back to any real cycle
      // and let the exact refinement descend to the optimum.
      cycle = find_any_cycle_whole_graph(g);
    }
    result.value = detail::exact_cycle_value(g, kind_, cycle);
    result.cycle = std::move(cycle);
    detail::refine_to_exact(g, kind_, result.value, result.cycle, result.counters);
    result.has_cycle = true;
    return result;
  }

 private:
  static std::vector<ArcId> find_any_cycle_whole_graph(const Graph& g) {
    std::vector<ArcId> all(static_cast<std::size_t>(g.num_arcs()));
    for (ArcId a = 0; a < g.num_arcs(); ++a) all[static_cast<std::size_t>(a)] = a;
    return find_any_cycle(g, all);
  }

  double epsilon_;
  ProblemKind kind_;
};

}  // namespace

std::unique_ptr<Solver> make_burns_solver(const SolverConfig& config) {
  return std::make_unique<BurnsSolver>(config, ProblemKind::kCycleMean);
}

std::unique_ptr<Solver> make_burns_ratio_solver(const SolverConfig& config) {
  return std::make_unique<BurnsSolver>(config, ProblemKind::kCycleRatio);
}

}  // namespace mcr
