// Cycle canceling: the simplest correct MCM/MCR algorithm, included as
// a baseline the paper's taxonomy implies but never names.
//
// Start from any cycle; while G_lambda (lambda = incumbent cycle's
// value) contains a negative cycle, adopt that cycle and repeat. Each
// round strictly decreases lambda over the finite set of cycle values,
// so it terminates at the optimum with a certificate (the final
// Bellman-Ford pass proves no better cycle exists). Worst case is
// pseudopolynomial like Lawler's, but on the study's workloads it
// converges in a handful of rounds — a useful sanity baseline when
// comparing against the sophisticated algorithms, and the engine behind
// detail::refine_to_exact that keeps every approximate solver exact.
#include <vector>

#include "algo/algorithms.h"
#include "algo/detail.h"
#include "core/result.h"
#include "graph/traversal.h"

namespace mcr {

namespace {

class CycleCancelSolver final : public Solver {
 public:
  explicit CycleCancelSolver(ProblemKind kind) : kind_(kind) {}

  [[nodiscard]] std::string name() const override {
    return kind_ == ProblemKind::kCycleMean ? "cycle_cancel" : "cycle_cancel_ratio";
  }
  [[nodiscard]] ProblemKind kind() const override { return kind_; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    CycleResult result;
    std::vector<ArcId> all(static_cast<std::size_t>(g.num_arcs()));
    for (ArcId a = 0; a < g.num_arcs(); ++a) all[static_cast<std::size_t>(a)] = a;
    result.cycle = find_any_cycle(g, all);
    result.value = detail::exact_cycle_value(g, kind_, result.cycle);
    detail::refine_to_exact(g, kind_, result.value, result.cycle, result.counters);
    result.counters.iterations = result.counters.feasibility_checks;
    result.has_cycle = true;
    return result;
  }

 private:
  ProblemKind kind_;
};

}  // namespace

std::unique_ptr<Solver> make_cycle_cancel_solver(ProblemKind kind) {
  return std::make_unique<CycleCancelSolver>(kind);
}

}  // namespace mcr
