#include "algo/detail.h"

#include "core/critical.h"
#include "graph/bellman_ford.h"
#include "obs/obs.h"
#include "support/checked.h"
#include "support/int128.h"

namespace mcr::detail {

Rational exact_cycle_value(const Graph& g, ProblemKind kind,
                           const std::vector<ArcId>& cycle) {
  // Sum in 128 bits: a cycle has at most n arcs, so |w|,|t| < 2^95 and
  // the Rational reduction decides whether the value fits int64.
  int128 w = 0;
  int128 t = 0;
  for (const ArcId a : cycle) {
    w += g.weight(a);
    t += kind == ProblemKind::kCycleMean ? 1 : g.transit(a);
  }
  return Rational::from_int128(w, t);
}

void refine_to_exact(const Graph& g, ProblemKind kind, Rational& value,
                     std::vector<ArcId>& cycle, OpCounters& counters,
                     const TileExec& tiles) {
  for (;;) {
    ++counters.feasibility_checks;
    obs::emit(obs::EventKind::kFeasibilityProbe, "refine.probe",
              static_cast<std::int64_t>(counters.feasibility_checks));
    bool negative = false;
    std::vector<ArcId> witness;
    try {
      const std::vector<std::int64_t> cost = lambda_costs(g, value, kind);
      BellmanFordResult bf = bellman_ford_all(g, cost, &counters, tiles);
      negative = bf.has_negative_cycle;
      witness = std::move(bf.cycle);
    } catch (const NumericOverflow&) {
      // Either the lambda transform or the distance recurrence left
      // int64: the probe only needs the negative-cycle verdict, so
      // repeat it wholesale in 128-bit costs.
      ++counters.numeric_promotions;
      const std::vector<int128> cost = lambda_costs_wide(g, value, kind);
      BellmanFordWideResult bf = bellman_ford_all_wide(g, cost, &counters, tiles);
      negative = bf.has_negative_cycle;
      witness = std::move(bf.cycle);
    }
    if (!negative) return;
    cycle = std::move(witness);
    value = exact_cycle_value(g, kind, cycle);
  }
}

}  // namespace mcr::detail
