#include "algo/detail.h"

#include "core/critical.h"
#include "graph/bellman_ford.h"
#include "obs/obs.h"

namespace mcr::detail {

Rational exact_cycle_value(const Graph& g, ProblemKind kind,
                           const std::vector<ArcId>& cycle) {
  std::int64_t w = 0;
  std::int64_t t = 0;
  for (const ArcId a : cycle) {
    w += g.weight(a);
    t += kind == ProblemKind::kCycleMean ? 1 : g.transit(a);
  }
  return Rational(w, t);
}

void refine_to_exact(const Graph& g, ProblemKind kind, Rational& value,
                     std::vector<ArcId>& cycle, OpCounters& counters) {
  for (;;) {
    ++counters.feasibility_checks;
    obs::emit(obs::EventKind::kFeasibilityProbe, "refine.probe",
              static_cast<std::int64_t>(counters.feasibility_checks));
    const std::vector<std::int64_t> cost = lambda_costs(g, value, kind);
    BellmanFordResult bf = bellman_ford_all(g, cost, &counters);
    if (!bf.has_negative_cycle) return;
    cycle = std::move(bf.cycle);
    value = exact_cycle_value(g, kind, cycle);
  }
}

}  // namespace mcr::detail
