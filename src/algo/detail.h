// Shared internals for the solver implementations. Not public API.
#ifndef MCR_ALGO_DETAIL_H
#define MCR_ALGO_DETAIL_H

#include <vector>

#include "core/problem.h"
#include "graph/arc_tiles.h"
#include "graph/graph.h"
#include "support/op_counters.h"
#include "support/rational.h"

namespace mcr::detail {

/// Exact cycle-canceling refinement: given a candidate (value, cycle)
/// where `cycle` is a real cycle achieving `value`, repeatedly test
/// G_value for a negative cycle and adopt it until none exists. On
/// return (value, cycle) is the exact optimum with an exact witness.
///
/// The iterative solvers that do floating-point work internally (Burns,
/// Lawler, OA1) finish with this pass so that every solver in the
/// library returns exact rationals; it converges in one Bellman-Ford
/// check when the float phase already found the optimum (the common
/// case), and each extra round strictly decreases the candidate value.
/// `tiles` spreads the Bellman-Ford probes' relaxation sweeps across
/// the driver's worker pool (graph/arc_tiles.h); the default keeps
/// them serial. The outcome is identical either way.
void refine_to_exact(const Graph& g, ProblemKind kind, Rational& value,
                     std::vector<ArcId>& cycle, OpCounters& counters,
                     const TileExec& tiles = {});

/// Exact mean/ratio of a cycle (transit treated as 1 for kCycleMean).
[[nodiscard]] Rational exact_cycle_value(const Graph& g, ProblemKind kind,
                                         const std::vector<ArcId>& cycle);

}  // namespace mcr::detail

#endif  // MCR_ALGO_DETAIL_H
