// DG: the Dasdan-Gupta breadth-first unfolding variant of Karp's
// algorithm (Dasdan & Gupta, TCAD 1998; §2.2 of the paper).
//
// Karp's recurrence pulls D_k(v) from every predecessor of every node at
// every level, paying Theta(nm) regardless of the graph. DG instead
// pushes from the set of nodes that actually have a k-arc path from the
// source ("visits the successors of nodes rather than their
// predecessors"), i.e. it breadth-first-expands the unfolding of G. The
// work equals the size of the unfolded graph: Theta(m) when per-level
// frontiers stay small (rings, circuit-like graphs — the 512x512 row of
// Table 2 shows 0.06s vs Karp's 0.79s) and O(nm) when the graph is
// dense enough that every level touches every node (the paper's random
// graphs, where "the improvement ... is very small", §4.4).
#include <limits>
#include <vector>

#include "algo/algorithms.h"
#include "core/result.h"
#include "obs/obs.h"
#include "support/int128.h"

namespace mcr {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

class DgSolver final : public Solver {
 public:
  explicit DgSolver(const SolverConfig&) {}

  [[nodiscard]] std::string name() const override { return "dg"; }
  [[nodiscard]] ProblemKind kind() const override { return ProblemKind::kCycleMean; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    const NodeId n = g.num_nodes();
    const std::size_t un = static_cast<std::size_t>(n);
    CycleResult result;

    // The unfolding: one flat arena of (node, D_k(node)) entries with
    // per-level offsets — exactly the nodes that have a k-arc path from
    // the source. The arena's total size is the "size of the unfolded
    // graph" that bounds DG's running time, and keeping it flat (one
    // allocation, appended linearly) is what makes each visited arc as
    // cheap as one of Karp's recurrence reads.
    struct Entry {
      NodeId node;
      std::int64_t dist;
    };
    std::vector<Entry> arena;
    // Worst case the unfolding touches every node at every level (dense
    // random graphs); reserving the full Theta(n^2) arena up front
    // avoids reallocation copies and is the same quadratic footprint
    // the paper attributes to DG (Table 2 shows N/A at n >= 8192).
    arena.reserve((un + 1) * un);
    std::vector<std::size_t> level_first(un + 2, 0);
    arena.push_back({0, 0});
    level_first[1] = 1;

    std::vector<std::int64_t> cur_val(un, 0);
    std::vector<NodeId> stamp(un, -1);
    std::vector<NodeId> touched;
    touched.reserve(un);
    for (NodeId k = 1; k <= n; ++k) {
      const std::size_t begin = level_first[static_cast<std::size_t>(k - 1)];
      const std::size_t end = level_first[static_cast<std::size_t>(k)];
      touched.clear();
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId u = arena[i].node;
        const std::int64_t du = arena[i].dist;
        ++result.counters.node_visits;
        for (const ArcId a : g.out_arcs(u)) {
          ++result.counters.arc_scans;
          const NodeId v = g.dst(a);
          const std::int64_t cand = du + g.weight(a);
          if (stamp[static_cast<std::size_t>(v)] != k) {
            stamp[static_cast<std::size_t>(v)] = k;
            cur_val[static_cast<std::size_t>(v)] = cand;
            touched.push_back(v);
          } else if (cand < cur_val[static_cast<std::size_t>(v)]) {
            cur_val[static_cast<std::size_t>(v)] = cand;
          }
        }
      }
      for (const NodeId v : touched) {
        arena.push_back({v, cur_val[static_cast<std::size_t>(v)]});
      }
      level_first[static_cast<std::size_t>(k) + 1] = arena.size();
    }
    result.counters.iterations = static_cast<std::uint64_t>(n);
    obs::emit(obs::EventKind::kIteration, "dg.levels", n);

    // Evaluate Karp's formula over the touched (k, v) entries only.
    std::vector<std::int64_t> dn(un, kInf);
    for (std::size_t i = level_first[un]; i < level_first[un + 1]; ++i) {
      dn[static_cast<std::size_t>(arena[i].node)] = arena[i].dist;
    }

    std::vector<std::int64_t> vmax_num(un, 0);
    std::vector<std::int64_t> vmax_den(un, 0);  // 0 marks "no value yet"
    for (NodeId k = 0; k < n; ++k) {
      for (std::size_t i = level_first[static_cast<std::size_t>(k)];
           i < level_first[static_cast<std::size_t>(k) + 1]; ++i) {
        const NodeId v = arena[i].node;
        const std::int64_t dk = arena[i].dist;
        if (dn[static_cast<std::size_t>(v)] == kInf) continue;
        const std::int64_t num = dn[static_cast<std::size_t>(v)] - dk;
        const std::int64_t den = n - k;
        if (vmax_den[static_cast<std::size_t>(v)] == 0 ||
            static_cast<int128>(num) * vmax_den[static_cast<std::size_t>(v)] >
                static_cast<int128>(vmax_num[static_cast<std::size_t>(v)]) * den) {
          vmax_num[static_cast<std::size_t>(v)] = num;
          vmax_den[static_cast<std::size_t>(v)] = den;
        }
      }
    }

    bool found = false;
    std::int64_t best_num = 0;
    std::int64_t best_den = 1;
    for (NodeId v = 0; v < n; ++v) {
      if (vmax_den[static_cast<std::size_t>(v)] == 0) continue;
      if (!found ||
          static_cast<int128>(vmax_num[static_cast<std::size_t>(v)]) * best_den <
              static_cast<int128>(best_num) * vmax_den[static_cast<std::size_t>(v)]) {
        best_num = vmax_num[static_cast<std::size_t>(v)];
        best_den = vmax_den[static_cast<std::size_t>(v)];
        found = true;
      }
    }
    if (!found) return result;

    result.has_cycle = true;
    result.value = Rational(best_num, best_den);
    return result;
  }
};

}  // namespace

std::unique_ptr<Solver> make_dg_solver(const SolverConfig& config) {
  return std::make_unique<DgSolver>(config);
}

}  // namespace mcr
