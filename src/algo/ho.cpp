// HO: Hartmann & Orlin's early-terminating variant of Karp's algorithm
// (Hartmann & Orlin, Networks 1993; §2.2 of the paper).
//
// HO runs Karp's recurrence unchanged but notices that "many of the
// shortest paths computed by Karp's algorithm will contain cycles. If
// one of these cycles is critical, then the minimum cycle mean is
// found". Realization here:
//
//  * After each level k we walk the parent chain of the node with the
//    smallest D_k (O(k) with stamps; O(n^2) in total — the overhead the
//    paper quotes). The first cycle on that path becomes the candidate
//    mu = its exact mean, if it improves the incumbent.
//  * Criticality test: mu equals lambda* iff the potentials
//    pi(v) = min_{0<=j<=k} (D_j(v) - j*mu) are feasible for G_mu, i.e.
//    pi(v) <= pi(u) + w(u,v) - mu on every arc. The test is exact — all
//    quantities are scaled by den(mu) and checked in integers. It runs
//    when mu improves and at geometrically spaced checkpoints
//    (adding the O(m lg n) term of the paper's overhead bound).
//  * On success the algorithm exits at level k ("the number of
//    iterations" reported for HO, always < n, §4.3); otherwise level n
//    is reached and Karp's formula finishes exactly.
//
// Space is Theta(n^2) like Karp's — the reason Table 2 shows N/A for HO
// at n >= 4096; the Karp2 rolling-row trick would apply here as well
// (§4.4), at the cost of a second pass.
#include <algorithm>
#include <limits>
#include <vector>

#include "algo/algorithms.h"
#include "core/result.h"
#include "obs/obs.h"

namespace mcr {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

class HoSolver final : public Solver {
 public:
  explicit HoSolver(const SolverConfig&) {}

  [[nodiscard]] std::string name() const override { return "ho"; }
  [[nodiscard]] ProblemKind kind() const override { return ProblemKind::kCycleMean; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    const NodeId n = g.num_nodes();
    const std::size_t un = static_cast<std::size_t>(n);
    CycleResult result;

    // D and parent tables, (n+1) rows.
    std::vector<std::int64_t> d((un + 1) * un, kInf);
    std::vector<ArcId> parent((un + 1) * un, kInvalidArc);
    d[0] = 0;

    // Incumbent candidate.
    bool have_mu = false;
    Rational mu;
    std::vector<ArcId> witness;

    // Scaled potentials pi(v) = min_j (D_j(v)*den(mu) - j*num(mu)),
    // maintained incrementally; fully recomputed when mu changes.
    std::vector<std::int64_t> pi(un, kInf);

    // Walk scratch.
    std::vector<NodeId> walk_stamp(un, -1);
    std::vector<std::int32_t> walk_pos(un, 0);
    NodeId next_checkpoint = 4;

    for (NodeId k = 1; k <= n; ++k) {
      const std::size_t prev = static_cast<std::size_t>(k - 1) * un;
      const std::size_t cur = static_cast<std::size_t>(k) * un;
      NodeId argmin = kInvalidNode;
      for (NodeId v = 0; v < n; ++v) {
        std::int64_t best = kInf;
        ArcId best_arc = kInvalidArc;
        for (const ArcId a : g.in_arcs(v)) {
          ++result.counters.arc_scans;
          const std::int64_t du = d[prev + static_cast<std::size_t>(g.src(a))];
          if (du == kInf) continue;
          const std::int64_t cand = du + g.weight(a);
          if (cand < best) {
            best = cand;
            best_arc = a;
          }
        }
        d[cur + static_cast<std::size_t>(v)] = best;
        parent[cur + static_cast<std::size_t>(v)] = best_arc;
        if (best < kInf &&
            (argmin == kInvalidNode || best < d[cur + static_cast<std::size_t>(argmin)])) {
          argmin = v;
        }
      }
      result.counters.iterations = static_cast<std::uint64_t>(k);
      obs::emit(obs::EventKind::kIteration, "ho.level", k);
      if (k == n) break;  // level n only feeds Karp's formula

      // Look for a cycle on the shortest k-arc path to the argmin node.
      bool mu_changed = false;
      if (argmin != kInvalidNode) {
        const std::vector<ArcId> cyc = find_cycle_on_path(g, d, parent, walk_stamp,
                                                          walk_pos, k, argmin, n);
        if (!cyc.empty()) {
          ++result.counters.cycle_evaluations;
          const Rational cand_mu = cycle_mean(g, cyc);
          if (!have_mu || cand_mu < mu) {
            have_mu = true;
            mu = cand_mu;
            witness = cyc;
            mu_changed = true;
          }
        }
      }

      if (!have_mu) continue;

      if (mu_changed) {
        // Recompute scaled potentials from all levels 0..k.
        std::fill(pi.begin(), pi.end(), kInf);
        for (NodeId j = 0; j <= k; ++j) {
          const std::size_t row = static_cast<std::size_t>(j) * un;
          for (NodeId v = 0; v < n; ++v) {
            const std::int64_t dj = d[row + static_cast<std::size_t>(v)];
            if (dj == kInf) continue;
            const std::int64_t scaled = dj * mu.den() - static_cast<std::int64_t>(j) * mu.num();
            if (scaled < pi[static_cast<std::size_t>(v)]) {
              pi[static_cast<std::size_t>(v)] = scaled;
            }
          }
        }
      } else {
        // Fold in the new level only.
        for (NodeId v = 0; v < n; ++v) {
          const std::int64_t dk = d[cur + static_cast<std::size_t>(v)];
          if (dk == kInf) continue;
          const std::int64_t scaled = dk * mu.den() - static_cast<std::int64_t>(k) * mu.num();
          if (scaled < pi[static_cast<std::size_t>(v)]) {
            pi[static_cast<std::size_t>(v)] = scaled;
          }
        }
      }

      // Criticality (feasibility) test at mu — exact, in scaled integers.
      if (mu_changed || k >= next_checkpoint) {
        if (k >= next_checkpoint) next_checkpoint *= 2;
        ++result.counters.feasibility_checks;
        obs::emit(obs::EventKind::kFeasibilityProbe, "ho.criticality_check", k);
        if (potentials_feasible(g, pi, mu)) {
          result.has_cycle = true;
          result.value = mu;
          result.cycle = std::move(witness);
          return result;  // early termination at level k
        }
      }
    }

    // No early exit: finish with Karp's formula (exact).
    const std::size_t last = un * un;
    bool found = false;
    Rational best_value;
    for (NodeId v = 0; v < n; ++v) {
      const std::int64_t dn = d[last + static_cast<std::size_t>(v)];
      if (dn == kInf) continue;
      bool have_max = false;
      Rational vmax;
      for (NodeId k = 0; k < n; ++k) {
        const std::int64_t dk =
            d[static_cast<std::size_t>(k) * un + static_cast<std::size_t>(v)];
        if (dk == kInf) continue;
        const Rational frac(dn - dk, n - k);
        if (!have_max || frac > vmax) {
          vmax = frac;
          have_max = true;
        }
      }
      if (have_max && (!found || vmax < best_value)) {
        best_value = vmax;
        found = true;
      }
    }
    if (!found) return result;
    result.has_cycle = true;
    result.value = best_value;
    // Witness recovery is left to the driver (extract_optimal_cycle).
    return result;
  }

 private:
  /// Walks the parent chain of (level k, node v) and returns the first
  /// cycle encountered (arcs in forward order), or empty.
  static std::vector<ArcId> find_cycle_on_path(const Graph& g,
                                               const std::vector<std::int64_t>& d,
                                               const std::vector<ArcId>& parent,
                                               std::vector<NodeId>& stamp,
                                               std::vector<std::int32_t>& pos, NodeId k,
                                               NodeId v, NodeId n) {
    static_cast<void>(d);
    const std::size_t un = static_cast<std::size_t>(n);
    // Stamp with a per-walk id derived from k and v (unique per call).
    // Simpler: clear-by-visit using the walk list.
    std::vector<ArcId> walk_arcs;
    std::vector<NodeId> walk_nodes;
    NodeId node = v;
    NodeId level = k;
    std::vector<ArcId> cycle;
    for (;;) {
      if (stamp[static_cast<std::size_t>(node)] == 1) {
        const std::int32_t first = pos[static_cast<std::size_t>(node)];
        // walk_arcs[first..] lead backwards around the cycle.
        cycle.assign(walk_arcs.begin() + first, walk_arcs.end());
        std::reverse(cycle.begin(), cycle.end());
        break;
      }
      stamp[static_cast<std::size_t>(node)] = 1;
      pos[static_cast<std::size_t>(node)] = static_cast<std::int32_t>(walk_arcs.size());
      walk_nodes.push_back(node);
      if (level == 0) break;
      const ArcId a = parent[static_cast<std::size_t>(level) * un +
                             static_cast<std::size_t>(node)];
      if (a == kInvalidArc) break;
      walk_arcs.push_back(a);
      node = g.src(a);
      --level;
    }
    for (const NodeId u : walk_nodes) stamp[static_cast<std::size_t>(u)] = -1;
    return cycle;
  }

  /// Exact feasibility of the scaled potentials for G_mu.
  static bool potentials_feasible(const Graph& g, const std::vector<std::int64_t>& pi,
                                  const Rational& mu) {
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const std::int64_t pu = pi[static_cast<std::size_t>(g.src(a))];
      const std::int64_t pv = pi[static_cast<std::size_t>(g.dst(a))];
      if (pu == kInf) return false;  // node not yet reached: cannot certify
      if (pv == kInf) return false;
      if (pv > pu + g.weight(a) * mu.den() - mu.num()) return false;
    }
    return true;
  }
};

}  // namespace

std::unique_ptr<Solver> make_ho_solver(const SolverConfig& config) {
  return std::make_unique<HoSolver>(config);
}

}  // namespace mcr
