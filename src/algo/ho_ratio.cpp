// Hartmann-Orlin pseudopolynomial minimum cost-to-time ratio algorithm
// (Table 1 row 13 of the paper: "Hartmann & Orlin 1993, O(Tm), exact,
// pseudopolynomial", from "Finding minimum cost to time ratio cycles
// with small integral transit times").
//
// The idea generalizes Karp's theorem from arc counts to transit time:
// with integral transit times and T = the total transit time of G, let
// D_t(v) be the minimum weight of a walk from the source to v with
// transit exactly t. Then
//     rho* = min_v max_{0<=t<T} (D_T(v) - D_t(v)) / (T - t)
// over the finite entries. The DP fills T+1 rows of n entries — O(Tm)
// time and O(Tn) space, attractive exactly when transit times are small
// integers (the paper's DSP/iteration-bound setting).
//
// Zero-transit arcs relax *within* a level; they form a DAG (guaranteed
// by validate_ratio_instance), so one pass in topological order per
// level suffices.
//
// Guard rails: walks of transit exactly T may not exist in degenerate
// instances (all cycle transits sharing a divisor that T misses). The
// candidate from the formula is therefore cross-checked — the witness
// is extracted from the critical subgraph when the candidate is the
// exact optimum, and detail::refine_to_exact repairs the rare rest, so
// the solver is exact unconditionally.
#include <algorithm>
#include <limits>
#include <vector>

#include "algo/algorithms.h"
#include "algo/detail.h"
#include "core/critical.h"
#include "core/result.h"
#include "graph/traversal.h"
#include "obs/obs.h"
#include "support/int128.h"

namespace mcr {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

class HartmannOrlinRatioSolver final : public Solver {
 public:
  explicit HartmannOrlinRatioSolver(const SolverConfig&) {}

  [[nodiscard]] std::string name() const override { return "ho_ratio"; }
  [[nodiscard]] ProblemKind kind() const override { return ProblemKind::kCycleRatio; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    const NodeId n = g.num_nodes();
    const std::size_t un = static_cast<std::size_t>(n);
    const std::int64_t total = g.total_transit();
    CycleResult result;

    // Topological order of the zero-transit subgraph for in-level
    // relaxation (empty if there are no zero-transit arcs).
    std::vector<ArcSpec> zero_specs;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      if (g.transit(a) == 0) {
        zero_specs.push_back(ArcSpec{g.src(a), g.dst(a), 0, 0});
      }
      if (g.transit(a) < 0) {
        throw std::invalid_argument("ho_ratio: negative transit time");
      }
    }
    std::vector<NodeId> zero_topo;
    std::vector<std::vector<ArcId>> zero_out(un);
    if (!zero_specs.empty()) {
      const Graph zero_sub(n, zero_specs);
      zero_topo = topological_order(zero_sub);
      if (zero_topo.empty()) {
        throw std::invalid_argument("ho_ratio: zero-transit cycle");
      }
      for (ArcId a = 0; a < g.num_arcs(); ++a) {
        if (g.transit(a) == 0) {
          zero_out[static_cast<std::size_t>(g.src(a))].push_back(a);
        }
      }
    }

    const std::size_t levels = static_cast<std::size_t>(total) + 1;
    std::vector<std::int64_t> d(levels * un, kInf);
    const auto cell = [&](std::int64_t t, NodeId v) -> std::int64_t& {
      return d[static_cast<std::size_t>(t) * un + static_cast<std::size_t>(v)];
    };

    const auto relax_zero_arcs = [&](std::int64_t t) {
      if (zero_topo.empty()) return;
      for (const NodeId u : zero_topo) {
        const std::int64_t du = cell(t, u);
        if (du == kInf) continue;
        for (const ArcId a : zero_out[static_cast<std::size_t>(u)]) {
          ++result.counters.arc_scans;
          std::int64_t& dv = cell(t, g.dst(a));
          if (du + g.weight(a) < dv) dv = du + g.weight(a);
        }
      }
    };

    cell(0, 0) = 0;
    relax_zero_arcs(0);
    for (std::int64_t t = 1; t <= total; ++t) {
      ++result.counters.iterations;
      obs::emit(obs::EventKind::kIteration, "ho_ratio.level", t);
      for (NodeId v = 0; v < n; ++v) {
        std::int64_t best = kInf;
        for (const ArcId a : g.in_arcs(v)) {
          const std::int64_t ta = g.transit(a);
          if (ta == 0 || ta > t) continue;
          ++result.counters.arc_scans;
          const std::int64_t du = cell(t - ta, g.src(a));
          if (du == kInf) continue;
          if (du + g.weight(a) < best) best = du + g.weight(a);
        }
        cell(t, v) = best;
      }
      relax_zero_arcs(t);
    }

    // rho-hat = min_v max_t (D_T(v) - D_t(v)) / (T - t).
    bool found = false;
    std::int64_t best_num = 0;
    std::int64_t best_den = 1;
    for (NodeId v = 0; v < n; ++v) {
      const std::int64_t dT = cell(total, v);
      if (dT == kInf) continue;
      bool have_max = false;
      std::int64_t vmax_num = 0;
      std::int64_t vmax_den = 1;
      for (std::int64_t t = 0; t < total; ++t) {
        const std::int64_t dt = cell(t, v);
        if (dt == kInf) continue;
        const std::int64_t num = dT - dt;
        const std::int64_t den = total - t;
        if (!have_max || static_cast<int128>(num) * vmax_den >
                             static_cast<int128>(vmax_num) * den) {
          vmax_num = num;
          vmax_den = den;
          have_max = true;
        }
      }
      if (have_max && (!found || static_cast<int128>(vmax_num) * best_den <
                                     static_cast<int128>(best_num) * vmax_den)) {
        best_num = vmax_num;
        best_den = vmax_den;
        found = true;
      }
    }

    if (found) {
      const Rational candidate(best_num, best_den);
      // The candidate is exact whenever transit-T walks exist to the
      // right nodes; extract a witness and certify/refine.
      try {
        result.cycle =
            extract_optimal_cycle(g, candidate, ProblemKind::kCycleRatio);
        result.value = candidate;
        result.has_cycle = true;
        return result;
      } catch (const std::invalid_argument&) {
        // Degenerate: fall through to the generic finish below.
      }
    }
    // No usable transit-T row (or the candidate missed): start from any
    // cycle and let exact cycle canceling finish.
    std::vector<ArcId> all(static_cast<std::size_t>(g.num_arcs()));
    for (ArcId a = 0; a < g.num_arcs(); ++a) all[static_cast<std::size_t>(a)] = a;
    result.cycle = find_any_cycle(g, all);
    result.value = detail::exact_cycle_value(g, ProblemKind::kCycleRatio, result.cycle);
    detail::refine_to_exact(g, ProblemKind::kCycleRatio, result.value, result.cycle,
                            result.counters);
    result.has_cycle = true;
    return result;
  }
};

}  // namespace

std::unique_ptr<Solver> make_hartmann_orlin_ratio_solver(const SolverConfig& config) {
  return std::make_unique<HartmannOrlinRatioSolver>(config);
}

}  // namespace mcr
