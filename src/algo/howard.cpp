// Howard's minimum mean cycle algorithm — the improved version of
// Figure 1 of the paper (policy iteration; Cochet-Terrasson, Cohen,
// Gaubert, McGettrick & Quadrat 1997).
//
// Each iteration costs Theta(m): (1) evaluate the *policy graph* G_pi
// (every node keeps exactly one out-arc), whose components each contain
// exactly one cycle; take lambda = the smallest policy-cycle mean;
// (2) recompute node distances by a reverse BFS from a node s on that
// cycle; (3) improve: for every arc (u,v), if routing u through v
// lowers d(u), adopt it into the policy. Stop when no improvement
// exceeds the precision threshold.
//
// Implementation note (exactness): the paper's Figure 1 works with
// floating-point distances and a precision epsilon. Here lambda is kept
// as an exact rational and distances are kept as integers scaled by a
// running common denominator cur_den, maintained as a multiple of
// den(lambda) — every update d(u) = d(v) + w - lambda is then exact
// integer arithmetic, improvements of delta > 0 are detected exactly,
// and termination follows from strict integer decrease. When a new
// lambda's denominator does not divide cur_den, the scale grows to
// lcm(cur_den, den(lambda)) and every distance is multiplied by the
// exact integer factor — never rescaled by a truncating division, which
// would perturb stale distances (nodes off the chosen policy cycle's
// reverse-BFS tree) and void the strict-decrease argument. With the
// default (tiny) epsilon this makes Howard exact while preserving the
// Figure-1 structure; a larger epsilon reproduces the paper's
// approximate ("not much improvement -> exit") semantics, which the
// bench_ablation_howard harness measures.
//
// Loop-structure note: the improve step is a snapshot sweep — every
// arc (u,v) is judged against the distances as they stood after the
// reverse BFS, and each node adopts its best improving out-arc (ties
// to the lowest arc id). That per-node min-fold runs through the tiled
// engine (graph/arc_tiles.h), so one big SCC's improve step spreads
// over the worker pool with bit-identical results for any tile size
// and thread count. The policy-cycle evaluation and the reverse BFS
// stay serial (pointer chases, Theta(n) against the sweep's Theta(m));
// the reverse-policy adjacency they walk is flat CSR arrays rebuilt by
// counting sort each iteration, not per-node vectors.
#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <vector>

#include "algo/algorithms.h"
#include "algo/detail.h"
#include "core/result.h"
#include "obs/obs.h"
#include "support/int128.h"

namespace mcr {
namespace {

// Multiplies the distance scale by `factor`, returning false when the
// grown denominator or any rescaled distance would leave the headroom
// needed by the per-arc updates d(v) + w*den - lam_num*t. On failure
// `dist` may be partially rescaled; the caller must abandon it.
bool grow_scale(std::vector<std::int64_t>& dist, std::int64_t& cur_den,
                std::int64_t factor) {
  constexpr std::int64_t kDenLimit = std::int64_t{1} << 31;
  constexpr std::int64_t kDistLimit = std::int64_t{1} << 62;
  const int128 den = static_cast<int128>(cur_den) * factor;
  if (den > kDenLimit) return false;
  for (auto& d : dist) {
    const int128 scaled = static_cast<int128>(d) * factor;
    if (scaled > kDistLimit || scaled < -kDistLimit) return false;
    d = static_cast<std::int64_t>(scaled);
  }
  cur_den = static_cast<std::int64_t>(den);
  return true;
}

class HowardSolver final : public Solver {
 public:
  HowardSolver(const SolverConfig& config, ProblemKind kind, bool improved_init = true)
      : epsilon_(config.epsilon), kind_(kind), improved_init_(improved_init) {}

  [[nodiscard]] std::string name() const override {
    std::string base = kind_ == ProblemKind::kCycleMean ? "howard" : "howard_ratio";
    if (!improved_init_) base += "_naive_init";
    return base;
  }
  [[nodiscard]] ProblemKind kind() const override { return kind_; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    return solve_scc(g, TileExec{});
  }

  [[nodiscard]] CycleResult solve_scc(const Graph& g,
                                      const TileExec& tiles) const override {
    const NodeId n = g.num_nodes();
    const std::size_t un = static_cast<std::size_t>(n);
    CycleResult result;

    const auto transit = [&](ArcId a) {
      return kind_ == ProblemKind::kCycleMean ? std::int64_t{1} : g.transit(a);
    };

    // Initial policy: the out-arc with the smallest weight (Fig. 1,
    // lines 1-4). d(u) = weight of that arc, scaled denominator 1. The
    // naive-init ablation variant just takes the first out-arc instead.
    std::vector<ArcId> policy(un, kInvalidArc);
    std::vector<std::int64_t> dist(un, 0);
    for (NodeId u = 0; u < n; ++u) {
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      for (const ArcId a : g.out_arcs(u)) {
        if (g.weight(a) < best) {
          best = g.weight(a);
          if (improved_init_) policy[static_cast<std::size_t>(u)] = a;
        }
        if (!improved_init_ && policy[static_cast<std::size_t>(u)] == kInvalidArc) {
          policy[static_cast<std::size_t>(u)] = a;
        }
      }
      dist[static_cast<std::size_t>(u)] =
          improved_init_ ? best : g.weight(policy[static_cast<std::size_t>(u)]);
    }
    std::int64_t cur_den = 1;

    // Scratch for policy-cycle evaluation and the reverse BFS. The
    // reverse-policy adjacency is flat CSR (offsets + node array),
    // rebuilt by counting sort each iteration — cheaper to refill and
    // walk than n per-node vectors.
    std::vector<std::int32_t> visit_mark(un, -1);
    std::vector<std::int32_t> chain_pos(un, 0);
    std::vector<NodeId> chain;
    std::vector<std::int32_t> rev_first(un + 1, 0);
    std::vector<std::int32_t> rev_cursor(un, 0);
    std::vector<NodeId> rev_nodes(un, kInvalidNode);
    std::vector<NodeId> bfs;
    std::vector<std::int64_t> dist_prev(un, 0);

    const std::span<const ArcId> out_ids = g.out_arc_ids();
    TiledSweep sweep(g.out_first(), tiles);
    struct Cand {
      std::int64_t val;
      std::int32_t pos;
      bool operator<(const Cand& o) const {
        if (val != o.val) return val < o.val;
        return pos < o.pos;
      }
    };
    constexpr Cand kNoCand{std::numeric_limits<std::int64_t>::max(),
                           std::numeric_limits<std::int32_t>::max()};

    Rational lambda;
    std::vector<ArcId> best_cycle;

    for (std::int32_t iter = 0;; ++iter) {
      ++result.counters.iterations;
      obs::emit(obs::EventKind::kIteration, "howard.iteration", iter);

      // --- Evaluate: find the minimum mean (ratio) cycle of G_pi. ---
      bool have_lambda = false;
      Rational new_lambda;
      std::vector<ArcId> new_cycle;
      for (NodeId start = 0; start < n; ++start) {
        if (visit_mark[static_cast<std::size_t>(start)] >= 0 &&
            visit_mark[static_cast<std::size_t>(start)] >= 2 * iter) {
          continue;  // already classified this iteration
        }
        chain.clear();
        NodeId u = start;
        // Follow the policy until we hit something visited. Marks:
        // 2*iter = on current chain, 2*iter+1 = classified done.
        while (visit_mark[static_cast<std::size_t>(u)] < 2 * iter) {
          visit_mark[static_cast<std::size_t>(u)] = 2 * iter;
          chain_pos[static_cast<std::size_t>(u)] = static_cast<std::int32_t>(chain.size());
          chain.push_back(u);
          u = g.dst(policy[static_cast<std::size_t>(u)]);
        }
        if (visit_mark[static_cast<std::size_t>(u)] == 2 * iter) {
          // New policy cycle found, starting at u on the current chain.
          ++result.counters.cycle_evaluations;
          std::int64_t w = 0;
          std::int64_t t = 0;
          std::vector<ArcId> cyc;
          for (std::size_t i = static_cast<std::size_t>(chain_pos[static_cast<std::size_t>(u)]);
               i < chain.size(); ++i) {
            const ArcId a = policy[static_cast<std::size_t>(chain[i])];
            cyc.push_back(a);
            w += g.weight(a);
            t += transit(a);
          }
          const Rational mean(w, t);
          if (!have_lambda || mean < new_lambda) {
            have_lambda = true;
            new_lambda = mean;
            new_cycle = std::move(cyc);
          }
        }
        for (const NodeId v : chain) {
          visit_mark[static_cast<std::size_t>(v)] = 2 * iter + 1;
        }
      }

      lambda = new_lambda;
      best_cycle = new_cycle;

      // --- Bring lambda to the distance scale, exactly. ---
      // cur_den is kept a multiple of den(lambda): when it is not, grow
      // the scale to lcm(cur_den, den(lambda)) so every distance is
      // multiplied by an exact integer factor. Rescaling by a truncating
      // dist * den / cur_den division here would round stale distances
      // (nodes whose tree leads to a non-optimal policy cycle, which the
      // reverse BFS below does not refresh) toward zero and void the
      // strict-decrease termination argument.
      if (cur_den % lambda.den() != 0) {
        const std::int64_t factor =
            lambda.den() / std::gcd(cur_den, lambda.den());
        if (!grow_scale(dist, cur_den, factor)) {
          // Out of 64-bit headroom (unreachable for the supported
          // weight/transit ranges): finish exactly by cycle canceling,
          // like the iteration safety valve below.
          obs::emit(obs::EventKind::kSafetyValve, "howard.scale_overflow", iter);
          detail::refine_to_exact(g, kind_, lambda, best_cycle, result.counters,
                                  tiles);
          break;
        }
      }
      const std::int64_t lam_num = lambda.num() * (cur_den / lambda.den());

      // --- Reverse BFS from s on the policy graph (Fig. 1, 10-12). ---
      // Counting sort the reverse-policy adjacency into the flat CSR
      // scratch; ascending-v fill keeps the per-target order (and thus
      // the BFS visit order) identical to a per-node push_back build.
      const NodeId s = g.src(new_cycle.front());
      std::fill(rev_first.begin(), rev_first.end(), 0);
      for (NodeId v = 0; v < n; ++v) {
        if (v != s) {
          ++rev_first[static_cast<std::size_t>(
                          g.dst(policy[static_cast<std::size_t>(v)])) +
                      1];
        }
      }
      for (std::size_t i = 0; i < un; ++i) rev_first[i + 1] += rev_first[i];
      std::copy(rev_first.begin(), rev_first.end() - 1, rev_cursor.begin());
      for (NodeId v = 0; v < n; ++v) {
        if (v != s) {
          const auto t = static_cast<std::size_t>(
              g.dst(policy[static_cast<std::size_t>(v)]));
          rev_nodes[static_cast<std::size_t>(rev_cursor[t]++)] = v;
        }
      }
      bfs.clear();
      bfs.push_back(s);
      for (std::size_t head = 0; head < bfs.size(); ++head) {
        const NodeId v = bfs[head];
        ++result.counters.node_visits;
        for (std::int32_t i = rev_first[static_cast<std::size_t>(v)];
             i < rev_first[static_cast<std::size_t>(v) + 1]; ++i) {
          const NodeId u = rev_nodes[static_cast<std::size_t>(i)];
          const ArcId a = policy[static_cast<std::size_t>(u)];
          dist[static_cast<std::size_t>(u)] =
              dist[static_cast<std::size_t>(v)] + g.weight(a) * cur_den -
              lam_num * transit(a);
          bfs.push_back(u);
        }
      }

      // --- Improve (Fig. 1, 13-18). ---
      // An improvement smaller than epsilon (scaled) does not count as
      // progress; with integer-scaled distances and a tiny epsilon the
      // effective threshold is delta >= 1, which makes the solver exact.
      const std::int64_t eps_scaled =
          static_cast<std::int64_t>(epsilon_ * static_cast<double>(cur_den));
      // Snapshot sweep over the out-arc CSR: each node folds the best
      // candidate among its out-arcs against the post-BFS distances
      // (dist_prev) and adopts it when strictly better. Improvement
      // flags and counts are order-free folds, so the tiled sweep is
      // deterministic for any tile size and thread count.
      std::copy(dist.begin(), dist.end(), dist_prev.begin());
      std::atomic<bool> improved{false};
      std::atomic<std::int64_t> adopted{0};
      std::atomic<std::uint64_t> relaxed{0};
      sweep.run(
          kNoCand,
          [&](std::int32_t p) {
            const ArcId a = out_ids[static_cast<std::size_t>(p)];
            return Cand{dist_prev[static_cast<std::size_t>(g.dst(a))] +
                            g.weight(a) * cur_den - lam_num * transit(a),
                        p};
          },
          [&](NodeId u, const Cand& best) {
            if (best.pos == std::numeric_limits<std::int32_t>::max()) return;
            const std::int64_t delta =
                dist_prev[static_cast<std::size_t>(u)] - best.val;
            if (delta > 0) {
              dist[static_cast<std::size_t>(u)] = best.val;
              policy[static_cast<std::size_t>(u)] =
                  out_ids[static_cast<std::size_t>(best.pos)];
              relaxed.fetch_add(1, std::memory_order_relaxed);
              adopted.fetch_add(1, std::memory_order_relaxed);
              if (delta > eps_scaled) {
                improved.store(true, std::memory_order_relaxed);
              }
            }
          });
      result.counters.arc_scans += static_cast<std::uint64_t>(sweep.positions());
      result.counters.relaxations += relaxed.load(std::memory_order_relaxed);
      obs::emit(obs::EventKind::kPolicyImprove, "howard.policy_improve",
                adopted.load(std::memory_order_relaxed));
      if (!improved.load(std::memory_order_relaxed)) break;

      // Safety valve: policy iteration is only pseudo-polynomial (the
      // paper proves O(n m alpha) / O(n^2 m (wmax-wmin)/eps) bounds). If
      // an adversarial instance stalls it, finish exactly by cycle
      // canceling: repeatedly replace lambda by the mean of any cycle
      // negative in G_lambda until none exists. Never triggers on the
      // paper's workloads; counted in feasibility_checks when it does.
      if (iter > iteration_cap(n, g.num_arcs())) {
        obs::emit(obs::EventKind::kSafetyValve, "howard.iteration_cap", iter);
        detail::refine_to_exact(g, kind_, lambda, best_cycle, result.counters,
                                  tiles);
        break;
      }
    }

    result.has_cycle = true;
    result.value = lambda;
    result.cycle = std::move(best_cycle);
    return result;
  }

 private:
  static std::int32_t iteration_cap(NodeId n, ArcId m) {
    return 1000 + 20 * std::max<std::int32_t>(n, m);
  }

  double epsilon_;
  ProblemKind kind_;
  bool improved_init_;
};

}  // namespace

std::unique_ptr<Solver> make_howard_solver(const SolverConfig& config) {
  return std::make_unique<HowardSolver>(config, ProblemKind::kCycleMean);
}

std::unique_ptr<Solver> make_howard_naive_init_solver(const SolverConfig& config) {
  return std::make_unique<HowardSolver>(config, ProblemKind::kCycleMean, false);
}

std::unique_ptr<Solver> make_howard_ratio_solver(const SolverConfig& config) {
  return std::make_unique<HowardSolver>(config, ProblemKind::kCycleRatio);
}

}  // namespace mcr
