// Karp's minimum mean cycle algorithm (Karp 1978), Theta(nm) time,
// Theta(n^2) space.
//
// Karp's theorem: for any source s in a strongly connected graph,
//   lambda* = min_v max_{0<=k<=n-1} (D_n(v) - D_k(v)) / (n - k),
// where D_k(v) is the minimum weight of a k-arc path from s to v
// (+infinity if none). The D table is filled by the recurrence
//   D_k(v) = min over arcs (u,v) of D_{k-1}(u) + w(u,v),
// which makes the best and worst cases identical — the reason the
// paper's variants (DG, HO, Karp2) exist.
//
// The witness cycle is recovered generically from the critical subgraph
// at lambda* (core/critical.h), keeping this implementation exactly the
// three simple nested loops whose compiler-friendliness the paper
// remarks on (§4.5).
#include <limits>
#include <vector>

#include "algo/algorithms.h"
#include "core/result.h"
#include "obs/obs.h"
#include "support/int128.h"

namespace mcr {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

class KarpSolver final : public Solver {
 public:
  explicit KarpSolver(const SolverConfig&) {}

  [[nodiscard]] std::string name() const override { return "karp"; }
  [[nodiscard]] ProblemKind kind() const override { return ProblemKind::kCycleMean; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    const NodeId n = g.num_nodes();
    const std::size_t un = static_cast<std::size_t>(n);
    CycleResult result;

    // D[k][v], k = 0..n. Row-major in one allocation.
    std::vector<std::int64_t> d((un + 1) * un, kInf);
    d[0] = 0;  // D_0(source = node 0)

    for (NodeId k = 1; k <= n; ++k) {
      const std::size_t prev = static_cast<std::size_t>(k - 1) * un;
      const std::size_t cur = static_cast<std::size_t>(k) * un;
      for (NodeId v = 0; v < n; ++v) {
        std::int64_t best = kInf;
        for (const ArcId a : g.in_arcs(v)) {
          ++result.counters.arc_scans;
          const std::int64_t du = d[prev + static_cast<std::size_t>(g.src(a))];
          if (du == kInf) continue;
          const std::int64_t cand = du + g.weight(a);
          if (cand < best) best = cand;
        }
        d[cur + static_cast<std::size_t>(v)] = best;
      }
    }
    result.counters.iterations = static_cast<std::uint64_t>(n);
    // Karp is a fixed n-level table fill; one summary instant in place
    // of n per-level events keeps traces of big instances readable.
    obs::emit(obs::EventKind::kIteration, "karp.levels", n);

    // lambda* = min_v max_k (D_n(v) - D_k(v)) / (n - k). Fractions are
    // compared raw (128-bit cross multiplication); the Rational is
    // built once at the end. The witness cycle is left to the driver
    // (extract_optimal_cycle), keeping this the paper's "three simple
    // nested loops".
    const std::size_t last = static_cast<std::size_t>(n) * un;
    bool found = false;
    std::int64_t best_num = 0;
    std::int64_t best_den = 1;
    for (NodeId v = 0; v < n; ++v) {
      const std::int64_t dn = d[last + static_cast<std::size_t>(v)];
      if (dn == kInf) continue;  // no n-arc path to v
      bool have_max = false;
      std::int64_t vmax_num = 0;
      std::int64_t vmax_den = 1;
      for (NodeId k = 0; k < n; ++k) {
        const std::int64_t dk =
            d[static_cast<std::size_t>(k) * un + static_cast<std::size_t>(v)];
        if (dk == kInf) continue;
        const std::int64_t num = dn - dk;
        const std::int64_t den = n - k;
        if (!have_max || static_cast<int128>(num) * vmax_den >
                             static_cast<int128>(vmax_num) * den) {
          vmax_num = num;
          vmax_den = den;
          have_max = true;
        }
      }
      // In a strongly connected graph D_k(v) is finite for some k < n.
      if (have_max && (!found || static_cast<int128>(vmax_num) * best_den <
                                     static_cast<int128>(best_num) * vmax_den)) {
        best_num = vmax_num;
        best_den = vmax_den;
        found = true;
      }
    }
    if (!found) return result;  // no cycle (cannot happen per contract)

    result.has_cycle = true;
    result.value = Rational(best_num, best_den);
    return result;
  }
};

}  // namespace

std::unique_ptr<Solver> make_karp_solver(const SolverConfig& config) {
  return std::make_unique<KarpSolver>(config);
}

}  // namespace mcr
