// Karp's minimum mean cycle algorithm (Karp 1978), Theta(nm) time,
// Theta(n^2) space.
//
// Karp's theorem: for any source s in a strongly connected graph,
//   lambda* = min_v max_{0<=k<=n-1} (D_n(v) - D_k(v)) / (n - k),
// where D_k(v) is the minimum weight of a k-arc path from s to v
// (+infinity if none). The D table is filled by the recurrence
//   D_k(v) = min over arcs (u,v) of D_{k-1}(u) + w(u,v),
// which makes the best and worst cases identical — the reason the
// paper's variants (DG, HO, Karp2) exist.
//
// The recurrence normally runs in int64 with overflow-checked sums
// (support/checked.h); if a path sum leaves the representable band the
// whole table is re-filled in int128 (counted as a numeric promotion)
// instead of reporting a wrapped mean. The witness cycle is recovered
// generically from the critical subgraph at lambda* (core/critical.h),
// keeping this implementation exactly the three simple nested loops
// whose compiler-friendliness the paper remarks on (§4.5).
//
// Both hot phases tile (graph/arc_tiles.h): each level of the table
// fill is a snapshot sweep — level k reads only level k-1, so tiling it
// over in-arc CSR ranges is trivially deterministic — and the final
// min_v max_k extraction splits into node chunks whose per-chunk
// minima merge in chunk order (first node wins ties, exactly like the
// serial scan). Results are bit-identical for any tile size and thread
// count.
#include <limits>
#include <optional>
#include <vector>

#include "algo/algorithms.h"
#include "core/result.h"
#include "obs/obs.h"
#include "support/checked.h"
#include "support/int128.h"
#include "support/thread_pool.h"

namespace mcr {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
// Any |d| in the wide table is bounded by n * max|w| < 2^95; this
// sentinel is far above that and still leaves int128 headroom.
constexpr int128 kInfWide = static_cast<int128>(1) << 100;

/// Sum with promotion semantics: the narrow (int64) path throws
/// NumericOverflow both on a genuine wrap and when the sum strays into
/// the sentinel band [kInf, +inf) / (-inf, -kInf], where it could no
/// longer be told apart from "no path".
std::int64_t dist_add(std::int64_t a, std::int64_t b) {
  const std::int64_t s = checked_add(a, b);
  if (s >= kInf || s <= -kInf) {
    throw NumericOverflow("karp distance table (sum reached sentinel band)");
  }
  return s;
}
int128 dist_add(int128 a, int128 b) { return a + b; }

std::int64_t dist_sub(std::int64_t a, std::int64_t b) { return checked_sub(a, b); }
int128 dist_sub(int128 a, int128 b) { return a - b; }

/// Fills D and extracts lambda* = min_v max_k (D_n(v)-D_k(v))/(n-k).
/// Fractions are compared raw (128-bit cross multiplication); in the
/// wide instantiation |num| < 2^95 and den <= n, so the products stay
/// within int128. Returns nullopt when no node has an n-arc path
/// (cannot happen for a strongly connected component per contract).
template <typename D>
std::optional<std::pair<int128, int128>> karp_table(const Graph& g, D inf,
                                                    OpCounters& counters,
                                                    const TileExec& tiles) {
  const NodeId n = g.num_nodes();
  const std::size_t un = static_cast<std::size_t>(n);

  // D[k][v], k = 0..n. Row-major in one allocation.
  std::vector<D> d((un + 1) * un, inf);
  d[0] = D{0};  // D_0(source = node 0)

  const std::span<const ArcId> in_ids = g.in_arc_ids();
  TiledSweep sweep(g.in_first(), tiles);
  for (NodeId k = 1; k <= n; ++k) {
    const D* prev = d.data() + static_cast<std::size_t>(k - 1) * un;
    D* cur = d.data() + static_cast<std::size_t>(k) * un;
    sweep.run(
        inf,
        [&](std::int32_t p) -> D {
          const ArcId a = in_ids[static_cast<std::size_t>(p)];
          const D du = prev[static_cast<std::size_t>(g.src(a))];
          if (du == inf) return inf;
          return dist_add(du, D{g.weight(a)});
        },
        [&](NodeId v, const D& best) { cur[static_cast<std::size_t>(v)] = best; });
    counters.arc_scans += static_cast<std::uint64_t>(sweep.positions());
  }

  // Extraction: per-node max over k, global min over v. Nodes are
  // independent, so chunk them; the chunk minima then merge in chunk
  // (= ascending node) order with the same strict comparison, which
  // reproduces the serial first-node-wins tie-break for any chunking.
  struct ChunkBest {
    bool found = false;
    int128 num = 0;
    int128 den = 1;
  };
  ThreadPool* pool = tiles.enabled() ? tiles.pool : nullptr;
  const std::size_t chunks =
      pool != nullptr
          ? std::min<std::size_t>(un, 8 * static_cast<std::size_t>(pool->size()))
          : std::size_t{1};
  const std::size_t chunk_nodes = chunks ? (un + chunks - 1) / chunks : 0;
  std::vector<ChunkBest> chunk_best(chunks);
  const std::size_t last = static_cast<std::size_t>(n) * un;
  run_tiles(pool, chunks, [&](std::size_t c) {
    ChunkBest best;
    const NodeId lo = static_cast<NodeId>(c * chunk_nodes);
    const NodeId hi = static_cast<NodeId>(std::min(un, (c + 1) * chunk_nodes));
    for (NodeId v = lo; v < hi; ++v) {
      const D dn = d[last + static_cast<std::size_t>(v)];
      if (dn == inf) continue;  // no n-arc path to v
      bool have_max = false;
      int128 vmax_num = 0;
      int128 vmax_den = 1;
      for (NodeId k = 0; k < n; ++k) {
        const D dk = d[static_cast<std::size_t>(k) * un + static_cast<std::size_t>(v)];
        if (dk == inf) continue;
        const int128 num = static_cast<int128>(dist_sub(dn, dk));
        const int128 den = n - k;
        if (!have_max || num * vmax_den > vmax_num * den) {
          vmax_num = num;
          vmax_den = den;
          have_max = true;
        }
      }
      // In a strongly connected graph D_k(v) is finite for some k < n.
      if (have_max &&
          (!best.found || vmax_num * best.den < best.num * vmax_den)) {
        best.num = vmax_num;
        best.den = vmax_den;
        best.found = true;
      }
    }
    chunk_best[c] = best;
  });
  bool found = false;
  int128 best_num = 0;
  int128 best_den = 1;
  for (const ChunkBest& cb : chunk_best) {
    if (!cb.found) continue;
    if (!found || cb.num * best_den < best_num * cb.den) {
      best_num = cb.num;
      best_den = cb.den;
      found = true;
    }
  }
  if (!found) return std::nullopt;
  return std::make_pair(best_num, best_den);
}

class KarpSolver final : public Solver {
 public:
  explicit KarpSolver(const SolverConfig&) {}

  [[nodiscard]] std::string name() const override { return "karp"; }
  [[nodiscard]] ProblemKind kind() const override { return ProblemKind::kCycleMean; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    return solve_scc(g, TileExec{});
  }

  [[nodiscard]] CycleResult solve_scc(const Graph& g,
                                      const TileExec& tiles) const override {
    const NodeId n = g.num_nodes();
    CycleResult result;

    std::optional<std::pair<int128, int128>> best;
    try {
      best = karp_table<std::int64_t>(g, kInf, result.counters, tiles);
    } catch (const NumericOverflow&) {
      // A path sum left the int64 band: redo the table in int128.
      ++result.counters.numeric_promotions;
      result.counters.arc_scans = 0;  // count only the run that produced the answer
      best = karp_table<int128>(g, kInfWide, result.counters, tiles);
    }
    result.counters.iterations = static_cast<std::uint64_t>(n);
    // Karp is a fixed n-level table fill; one summary instant in place
    // of n per-level events keeps traces of big instances readable.
    obs::emit(obs::EventKind::kIteration, "karp.levels", n);

    if (!best) return result;  // no cycle (cannot happen per contract)

    result.has_cycle = true;
    result.value = Rational::from_int128(best->first, best->second);
    return result;
  }
};

}  // namespace

std::unique_ptr<Solver> make_karp_solver(const SolverConfig& config) {
  return std::make_unique<KarpSolver>(config);
}

}  // namespace mcr
