// Karp2: the space-efficient two-pass version of Karp's algorithm
// (suggested to the authors by S. Gaubert; §2.2 of the paper).
//
// Karp's algorithm needs the whole Theta(n^2) D table only to evaluate
// min_v max_k (D_n(v) - D_k(v)) / (n - k) at the end. Karp2 runs the
// recurrence twice with two rolling rows of Theta(n) space: pass 1
// computes D_n(v); pass 2 recomputes each D_k(v) in order and folds it
// into the running max for each v. The paper observes this "roughly
// doubles the running time, as expected" (§4.4) — the shape
// bench_karp_variants reproduces.
//
// Each level advance is a snapshot sweep (level k reads only level
// k-1), so it runs through the tiled engine (graph/arc_tiles.h); the
// pass-2 per-node max fold rides inside the same sweep's apply step.
// Both are per-node-independent, so results are bit-identical for any
// tile size and thread count.
#include <limits>
#include <vector>

#include "algo/algorithms.h"
#include "core/result.h"
#include "obs/obs.h"
#include "support/int128.h"

namespace mcr {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

class Karp2Solver final : public Solver {
 public:
  explicit Karp2Solver(const SolverConfig&) {}

  [[nodiscard]] std::string name() const override { return "karp2"; }
  [[nodiscard]] ProblemKind kind() const override { return ProblemKind::kCycleMean; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    return solve_scc(g, TileExec{});
  }

  [[nodiscard]] CycleResult solve_scc(const Graph& g,
                                      const TileExec& tiles) const override {
    const NodeId n = g.num_nodes();
    const std::size_t un = static_cast<std::size_t>(n);
    CycleResult result;

    std::vector<std::int64_t> prev(un, kInf);
    std::vector<std::int64_t> cur(un, kInf);

    const std::span<const ArcId> in_ids = g.in_arc_ids();
    TiledSweep sweep(g.in_first(), tiles);
    const auto candidate = [&](std::int32_t p) -> std::int64_t {
      const ArcId a = in_ids[static_cast<std::size_t>(p)];
      const std::int64_t du = prev[static_cast<std::size_t>(g.src(a))];
      if (du == kInf) return kInf;
      return du + g.weight(a);
    };
    const auto advance = [&](const auto& apply) {
      sweep.run(kInf, candidate, apply);
      result.counters.arc_scans += static_cast<std::uint64_t>(sweep.positions());
      prev.swap(cur);
    };
    const auto store = [&](NodeId v, std::int64_t best) {
      cur[static_cast<std::size_t>(v)] = best;
    };

    // Pass 1: compute D_n into `prev`.
    prev[0] = 0;
    for (NodeId k = 1; k <= n; ++k) advance(store);
    std::vector<std::int64_t> dn = prev;

    // Pass 2: recompute D_k for k = 0..n-1, folding the max ratio with
    // raw 128-bit fraction comparisons. The fold for level k rides in
    // the advance to level k (each node folds its own slot, so the
    // tiled sweep stays race-free and deterministic).
    std::vector<std::int64_t> vmax_num(un, 0);
    std::vector<std::int64_t> vmax_den(un, 0);  // 0 marks "no value yet"
    const auto fold = [&](NodeId v, std::int64_t dk, NodeId k) {
      if (dk == kInf || dn[static_cast<std::size_t>(v)] == kInf) return;
      const std::int64_t num = dn[static_cast<std::size_t>(v)] - dk;
      const std::int64_t den = n - k;
      if (vmax_den[static_cast<std::size_t>(v)] == 0 ||
          static_cast<int128>(num) * vmax_den[static_cast<std::size_t>(v)] >
              static_cast<int128>(vmax_num[static_cast<std::size_t>(v)]) * den) {
        vmax_num[static_cast<std::size_t>(v)] = num;
        vmax_den[static_cast<std::size_t>(v)] = den;
      }
    };
    prev.assign(un, kInf);
    cur.assign(un, kInf);
    prev[0] = 0;
    fold(0, 0, 0);  // level 0 has the single finite entry D_0(0) = 0
    for (NodeId k = 1; k < n; ++k) {
      advance([&](NodeId v, std::int64_t best) {
        cur[static_cast<std::size_t>(v)] = best;
        fold(v, best, k);
      });
    }
    result.counters.iterations = 2 * static_cast<std::uint64_t>(n);
    obs::emit(obs::EventKind::kIteration, "karp2.levels", 2 * n);

    bool found = false;
    std::int64_t best_num = 0;
    std::int64_t best_den = 1;
    for (NodeId v = 0; v < n; ++v) {
      if (vmax_den[static_cast<std::size_t>(v)] == 0) continue;
      if (!found ||
          static_cast<int128>(vmax_num[static_cast<std::size_t>(v)]) * best_den <
              static_cast<int128>(best_num) * vmax_den[static_cast<std::size_t>(v)]) {
        best_num = vmax_num[static_cast<std::size_t>(v)];
        best_den = vmax_den[static_cast<std::size_t>(v)];
        found = true;
      }
    }
    if (!found) return result;

    result.has_cycle = true;
    result.value = Rational(best_num, best_den);
    return result;
  }
};

}  // namespace

std::unique_ptr<Solver> make_karp2_solver(const SolverConfig& config) {
  return std::make_unique<Karp2Solver>(config);
}

}  // namespace mcr
