// KO: the Karp-Orlin parametric shortest path algorithm (Karp & Orlin
// 1981; §2.3 of the paper). Engine in algo/parametric.h; this file
// instantiates the arc-heap strategy with the chosen heap (Fibonacci by
// default, as in the paper's LEDA implementation).
#include "algo/algorithms.h"
#include "algo/parametric.h"
#include "ds/binary_heap.h"
#include "ds/fibonacci_heap.h"
#include "ds/pairing_heap.h"

namespace mcr {

namespace {

class KoSolver final : public Solver {
 public:
  KoSolver(ProblemKind kind, HeapKind heap) : kind_(kind), heap_(heap) {}

  [[nodiscard]] std::string name() const override {
    std::string base = kind_ == ProblemKind::kCycleMean ? "ko" : "ko_ratio";
    if (heap_ == HeapKind::kBinary) base += "_bin";
    if (heap_ == HeapKind::kPairing) base += "_pair";
    return base;
  }
  [[nodiscard]] ProblemKind kind() const override { return kind_; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    switch (heap_) {
      case HeapKind::kFibonacci:
        return detail::solve_ko_with<FibonacciHeap>(g, kind_);
      case HeapKind::kPairing:
        return detail::solve_ko_with<PairingHeap>(g, kind_);
      case HeapKind::kBinary:
        return detail::solve_ko_with<BinaryHeap>(g, kind_);
    }
    throw std::logic_error("KoSolver: unknown heap kind");
  }

 private:
  ProblemKind kind_;
  HeapKind heap_;
};

}  // namespace

std::unique_ptr<Solver> make_ko_solver(const SolverConfig&, HeapKind heap) {
  return std::make_unique<KoSolver>(ProblemKind::kCycleMean, heap);
}

}  // namespace mcr
