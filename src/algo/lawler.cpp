// Lawler's algorithm (Lawler 1976; §2.4 of the paper), mean and ratio
// versions, plus the improved variant the paper's conclusion announces
// as follow-up work.
//
// lambda* is the largest lambda for which G_lambda has no negative
// cycle, and it lies between the smallest and largest arc weight
// (weight/transit ratio). Lawler binary-searches that interval; each
// probe is a Bellman-Ford negative-cycle check on the lambda-
// transformed costs. The interval width epsilon at termination is the
// algorithm's precision — the paper classifies it as approximate and
// measures it as the slowest algorithm in Table 2 (each infeasible
// probe pays the full Theta(nm) negative-cycle proof).
//
// Variants:
//   * "lawler" — the classic bisection the paper timed: hi/lo move to
//     the probed midpoint only.
//   * "lawler_improved" — the strengthening from the authors' §5
//     follow-up: every negative cycle found becomes a witness whose
//     exact mean tightens the upper bound directly, collapsing the
//     search after a handful of probes.
// Both track the best witness cycle and finish with
// detail::refine_to_exact, so the returned value is exact regardless of
// epsilon.
#include <algorithm>
#include <vector>

#include "algo/algorithms.h"
#include "algo/detail.h"
#include "core/result.h"
#include "graph/bellman_ford.h"
#include "graph/traversal.h"
#include "obs/obs.h"

namespace mcr {

namespace {

class LawlerSolver final : public Solver {
 public:
  LawlerSolver(const SolverConfig& config, ProblemKind kind, bool improved)
      : epsilon_(config.epsilon), kind_(kind), improved_(improved) {}

  [[nodiscard]] std::string name() const override {
    std::string base = kind_ == ProblemKind::kCycleMean ? "lawler" : "lawler_ratio";
    if (improved_) base += "_improved";
    return base;
  }
  [[nodiscard]] ProblemKind kind() const override { return kind_; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    return solve_scc(g, TileExec{});
  }

  [[nodiscard]] CycleResult solve_scc(const Graph& g,
                                      const TileExec& tiles) const override {
    const ArcId m = g.num_arcs();
    CycleResult result;

    const auto transit = [&](ArcId a) {
      return kind_ == ProblemKind::kCycleMean ? std::int64_t{1} : g.transit(a);
    };

    // Initial witness: any cycle; its exact value is an upper bound.
    std::vector<ArcId> all_arcs(static_cast<std::size_t>(m));
    for (ArcId a = 0; a < m; ++a) all_arcs[static_cast<std::size_t>(a)] = a;
    std::vector<ArcId> witness = find_any_cycle(g, all_arcs);
    Rational best = detail::exact_cycle_value(g, kind_, witness);

    // Search interval. For the mean, [w_min, w_max]; for ratios the
    // mediant inequality gives the same with per-arc w/t when all
    // transits are positive, and the witness bounds it otherwise.
    double lo = static_cast<double>(g.min_weight());
    if (kind_ == ProblemKind::kCycleRatio) {
      bool all_positive = true;
      double arc_lo = 0.0;
      bool first = true;
      for (ArcId a = 0; a < m; ++a) {
        if (g.transit(a) <= 0) {
          all_positive = false;
          break;
        }
        const double r = static_cast<double>(g.weight(a)) / static_cast<double>(g.transit(a));
        arc_lo = first ? r : std::min(arc_lo, r);
        first = false;
      }
      lo = all_positive
               ? arc_lo
               : static_cast<double>(g.num_nodes()) *
                         std::min(0.0, static_cast<double>(g.min_weight())) -
                     1.0;
    }
    double hi = best.to_double();

    std::vector<double> cost(static_cast<std::size_t>(m));
    while (hi - lo > epsilon_) {
      ++result.counters.iterations;
      obs::emit(obs::EventKind::kIteration, "lawler.bisection",
                static_cast<std::int64_t>(result.counters.iterations));
      const double mid = lo + (hi - lo) / 2.0;
      // Guard against double-precision stall: at large weight
      // magnitudes the interval can stop shrinking before reaching
      // epsilon; the exact refinement below finishes the job.
      if (mid <= lo || mid >= hi) break;
      for (ArcId a = 0; a < m; ++a) {
        cost[static_cast<std::size_t>(a)] =
            static_cast<double>(g.weight(a)) - mid * static_cast<double>(transit(a));
      }
      ++result.counters.feasibility_checks;
      obs::emit(obs::EventKind::kFeasibilityProbe, "lawler.probe",
                static_cast<std::int64_t>(result.counters.feasibility_checks));
      BellmanFordRealResult bf =
          bellman_ford_all_real(g, cost, &result.counters, tiles);
      if (bf.has_negative_cycle) {
        // lambda* < mid: the probed value is too large.
        const Rational found = detail::exact_cycle_value(g, kind_, bf.cycle);
        if (found < best) {
          best = found;
          witness = std::move(bf.cycle);
        }
        // Classic Lawler halves to the midpoint; the improved variant
        // jumps straight to the witness cycle's value.
        hi = improved_ ? std::min(mid, best.to_double()) : mid;
      } else {
        lo = mid;  // lambda* >= mid
      }
    }

    result.value = best;
    result.cycle = std::move(witness);
    detail::refine_to_exact(g, kind_, result.value, result.cycle, result.counters,
                            tiles);
    result.has_cycle = true;
    return result;
  }

 private:
  double epsilon_;
  ProblemKind kind_;
  bool improved_;
};

}  // namespace

std::unique_ptr<Solver> make_lawler_solver(const SolverConfig& config) {
  return std::make_unique<LawlerSolver>(config, ProblemKind::kCycleMean, false);
}

std::unique_ptr<Solver> make_lawler_improved_solver(const SolverConfig& config) {
  return std::make_unique<LawlerSolver>(config, ProblemKind::kCycleMean, true);
}

std::unique_ptr<Solver> make_lawler_ratio_solver(const SolverConfig& config) {
  return std::make_unique<LawlerSolver>(config, ProblemKind::kCycleRatio, false);
}

}  // namespace mcr
