// Megiddo's parametric-search algorithm for minimum cost-to-time ratio
// cycles (Megiddo 1979, "Combinatorial optimization with rational
// objective functions" — Table 1 row 12 of the paper, O(n^2 m lg n)).
//
// Idea: run Bellman-Ford *symbolically* at the unknown optimum rho*.
// Every tentative distance is a linear function a + b*rho (a = path
// weight, b = -path transit); relaxation must compare two such lines at
// rho = rho*. Megiddo's trick: maintain an interval (lo, hi) certified
// to contain rho*; if the two lines do not cross inside it, the
// comparison is already decided; otherwise ask the *oracle* — an exact
// integer Bellman-Ford feasibility test at the crossing point rho0 —
// which simultaneously decides the comparison and shrinks the interval
// (and, on the infeasible side, returns a witness cycle that tightens
// hi to an exact cycle value). When the symbolic run converges, rho*
// has been pinned: the best witness, finished by exact cycle canceling,
// is the optimum. Comparisons at interval endpoints use exact rational
// evaluation (128-bit), so no floating point enters the control flow.
#include <vector>

#include "algo/algorithms.h"
#include "algo/detail.h"
#include "core/critical.h"
#include "core/result.h"
#include "graph/bellman_ford.h"
#include "graph/traversal.h"
#include "obs/obs.h"
#include "support/int128.h"

namespace mcr {

namespace {

/// Sign of (a + b*rho) at rho = p/q (q > 0): sign of a*q + b*p.
int sign_at(std::int64_t a, std::int64_t b, const Rational& rho) {
  const int128 v = static_cast<int128>(a) * rho.den() + static_cast<int128>(b) * rho.num();
  return v < 0 ? -1 : (v > 0 ? 1 : 0);
}

class MegiddoSolver final : public Solver {
 public:
  MegiddoSolver(const SolverConfig&, ProblemKind kind) : kind_(kind) {}

  [[nodiscard]] std::string name() const override {
    return kind_ == ProblemKind::kCycleMean ? "megiddo" : "megiddo_ratio";
  }
  [[nodiscard]] ProblemKind kind() const override { return kind_; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    const NodeId n = g.num_nodes();
    const std::size_t un = static_cast<std::size_t>(n);
    const ArcId m = g.num_arcs();
    CycleResult result;

    const auto transit = [&](ArcId a) {
      return kind_ == ProblemKind::kCycleMean ? std::int64_t{1} : g.transit(a);
    };

    // Certified interval (lo, hi]: lo below every cycle value, hi the
    // exact value of a concrete witness cycle.
    std::vector<ArcId> all(static_cast<std::size_t>(m));
    for (ArcId a = 0; a < m; ++a) all[static_cast<std::size_t>(a)] = a;
    std::vector<ArcId> witness = find_any_cycle(g, all);
    Rational hi = detail::exact_cycle_value(g, kind_, witness);
    Rational lo =
        Rational(-(std::abs(g.min_weight()) + std::abs(g.max_weight()) + 1) *
                 static_cast<std::int64_t>(n)) -
        Rational(1);

    // Oracle: is rho* >= rho0? (no negative cycle at rho0). Shrinks the
    // interval either way; infeasible probes snap hi to a cycle value.
    const auto oracle_geq = [&](const Rational& rho0) -> bool {
      ++result.counters.feasibility_checks;
      obs::emit(obs::EventKind::kFeasibilityProbe, "megiddo.oracle",
                static_cast<std::int64_t>(result.counters.feasibility_checks));
      const std::vector<std::int64_t> cost = lambda_costs(g, rho0, kind_);
      BellmanFordResult bf = bellman_ford_all(g, cost, &result.counters);
      if (!bf.has_negative_cycle) {
        if (rho0 > lo) lo = rho0;
        return true;
      }
      const Rational found = detail::exact_cycle_value(g, kind_, bf.cycle);
      if (found < hi) {
        hi = found;
        witness = std::move(bf.cycle);
      }
      return false;
    };

    // Symbolic distances a + b*rho from the virtual super-source.
    std::vector<std::int64_t> av(un, 0);
    std::vector<std::int64_t> bv(un, 0);

    // Returns true iff (a1 + b1*rho*) < (a2 + b2*rho*).
    const auto less_at_opt = [&](std::int64_t a1, std::int64_t b1, std::int64_t a2,
                                 std::int64_t b2) -> bool {
      const std::int64_t da = a1 - a2;
      const std::int64_t db = b1 - b2;
      const int s_lo = sign_at(da, db, lo);
      const int s_hi = sign_at(da, db, hi);
      if (s_lo < 0 && s_hi < 0) return true;
      if (s_lo >= 0 && s_hi >= 0) return false;
      // The lines cross strictly inside (lo, hi): resolve at rho0.
      if (db == 0) return da < 0;  // parallel: cannot actually cross
      const Rational rho0(-da, db);
      if (oracle_geq(rho0)) {
        // rho* >= rho0: the sign at (rho0, hi] rules; use hi's sign,
        // treating exact ties at rho* == rho0 as "not less" (safe for
        // shortest paths; the final refinement is exact regardless).
        return sign_at(da, db, hi) < 0 && sign_at(da, db, rho0) <= 0;
      }
      return sign_at(da, db, lo) < 0;
    };

    // Bellman-Ford over the symbolic labels with early exit.
    for (NodeId pass = 0; pass <= n; ++pass) {
      ++result.counters.iterations;
      obs::emit(obs::EventKind::kIteration, "megiddo.pass", pass);
      bool changed = false;
      for (ArcId a = 0; a < m; ++a) {
        ++result.counters.arc_scans;
        const NodeId u = g.src(a);
        const NodeId v = g.dst(a);
        const std::int64_t ca = av[static_cast<std::size_t>(u)] + g.weight(a);
        const std::int64_t cb = bv[static_cast<std::size_t>(u)] - transit(a);
        if (less_at_opt(ca, cb, av[static_cast<std::size_t>(v)],
                        bv[static_cast<std::size_t>(v)])) {
          av[static_cast<std::size_t>(v)] = ca;
          bv[static_cast<std::size_t>(v)] = cb;
          changed = true;
          ++result.counters.relaxations;
        }
      }
      if (!changed) break;
    }

    // The symbolic run pinned rho* into (lo, hi] with hi achieved by a
    // real cycle; cycle canceling certifies (and repairs any boundary
    // tie decisions).
    result.value = hi;
    result.cycle = std::move(witness);
    detail::refine_to_exact(g, kind_, result.value, result.cycle, result.counters);
    result.has_cycle = true;
    return result;
  }

 private:
  ProblemKind kind_;
};

}  // namespace

std::unique_ptr<Solver> make_megiddo_solver(const SolverConfig& config) {
  return std::make_unique<MegiddoSolver>(config, ProblemKind::kCycleMean);
}

std::unique_ptr<Solver> make_megiddo_ratio_solver(const SolverConfig& config) {
  return std::make_unique<MegiddoSolver>(config, ProblemKind::kCycleRatio);
}

}  // namespace mcr
