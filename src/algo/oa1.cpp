// OA1: the Orlin-Ahuja scaling algorithm (Orlin & Ahuja 1992; §2.6 of
// the paper), O(sqrt(n) m lg(nW)) with integer weights bounded by W.
//
// Reproduction note (see DESIGN.md): the original OA1 couples an
// approximate binary search on lambda with scaling phases of an
// auction-style assignment algorithm. The auction machinery is several
// thousand lines on its own and the paper's observations about OA1 are
// about its *external* behaviour — pseudopolynomial lg(nW) phase count,
// poor constant factors, hopeless performance at m = n, N/A beyond
// n = 2048. This implementation keeps the scaling skeleton faithfully —
// geometric precision halving, approximate feasibility tests that spend
// only O(sqrt(n)) Bellman-Ford passes per probe (the sqrt(n) budget is
// where the original's hybrid gets its bound) — and replaces the
// auction inner loop with those bounded label-correcting passes. The
// qualitative Table-2 behaviour (slow everywhere, catastrophic on the
// Hamiltonian-cycle instances whose negative cycles exceed any sqrt(n)
// pass budget) emerges from the same mechanism as the original's.
//
// Because a bounded feasibility test can misclassify, the final witness
// is certified and, if needed, corrected by detail::refine_to_exact;
// like the paper's OA1 the search itself is approximate (precision
// epsilon), but the returned value is the exact optimum.
#include <algorithm>
#include <cmath>
#include <vector>

#include "algo/algorithms.h"
#include "algo/detail.h"
#include "core/result.h"
#include "graph/traversal.h"
#include "obs/obs.h"

namespace mcr {

namespace {

class Oa1Solver final : public Solver {
 public:
  explicit Oa1Solver(const SolverConfig& config) : epsilon_(config.epsilon) {}

  [[nodiscard]] std::string name() const override { return "oa1"; }
  [[nodiscard]] ProblemKind kind() const override { return ProblemKind::kCycleMean; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    const NodeId n = g.num_nodes();
    const ArcId m = g.num_arcs();
    CycleResult result;

    std::vector<ArcId> all_arcs(static_cast<std::size_t>(m));
    for (ArcId a = 0; a < m; ++a) all_arcs[static_cast<std::size_t>(a)] = a;
    std::vector<ArcId> witness = find_any_cycle(g, all_arcs);
    Rational best = detail::exact_cycle_value(g, ProblemKind::kCycleMean, witness);

    double lo = static_cast<double>(g.min_weight());
    double hi = best.to_double();

    // Scaling phases: resolve the interval geometrically. Early phases
    // probe with a small O(sqrt(n)) pass budget (the cheap auction-like
    // sweeps); the budget doubles as the precision scales down, so late
    // phases are exact. On m = n instances the one negative cycle spans
    // all n nodes and defeats every bounded-budget probe — the source of
    // OA1's catastrophic Table-2 column at that density.
    std::size_t pass_budget =
        static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n)))) + 2;
    std::vector<double> dist(static_cast<std::size_t>(n));
    std::vector<ArcId> parent(static_cast<std::size_t>(n));

    while (hi - lo > epsilon_) {
      ++result.counters.iterations;
      obs::emit(obs::EventKind::kIteration, "oa1.phase",
                static_cast<std::int64_t>(result.counters.iterations));
      pass_budget = std::min<std::size_t>(static_cast<std::size_t>(n) + 1,
                                          pass_budget + pass_budget / 4 + 1);
      const double mid = lo + (hi - lo) / 2.0;
      if (mid <= lo || mid >= hi) break;  // double-precision stall guard

      // Approximate feasibility of G_mid: at most pass_budget rounds of
      // label correction; any negative cycle reachable within the
      // budget is extracted as an exact witness.
      std::fill(dist.begin(), dist.end(), 0.0);
      std::fill(parent.begin(), parent.end(), kInvalidArc);
      NodeId last_relaxed = kInvalidNode;
      for (std::size_t pass = 0; pass < pass_budget; ++pass) {
        last_relaxed = kInvalidNode;
        for (ArcId a = 0; a < m; ++a) {
          ++result.counters.arc_scans;
          const double c = static_cast<double>(g.weight(a)) - mid;
          const double cand = dist[static_cast<std::size_t>(g.src(a))] + c;
          if (cand < dist[static_cast<std::size_t>(g.dst(a))]) {
            dist[static_cast<std::size_t>(g.dst(a))] = cand;
            parent[static_cast<std::size_t>(g.dst(a))] = a;
            last_relaxed = g.dst(a);
            ++result.counters.relaxations;
          }
        }
        if (last_relaxed == kInvalidNode) break;
      }
      ++result.counters.feasibility_checks;
      obs::emit(obs::EventKind::kFeasibilityProbe, "oa1.budgeted_probe",
                static_cast<std::int64_t>(pass_budget));

      std::vector<ArcId> cyc;
      if (last_relaxed != kInvalidNode) {
        cyc = cycle_in_parent_forest(g, parent, last_relaxed);
      }
      if (!cyc.empty()) {
        const Rational found = detail::exact_cycle_value(g, ProblemKind::kCycleMean, cyc);
        if (found < best) {
          best = found;
          witness = std::move(cyc);
        }
        hi = mid;
      } else {
        // No negative cycle surfaced within the budget: treat mid as
        // feasible (this is the approximate step; refine fixes errors).
        lo = mid;
      }
    }

    result.value = best;
    result.cycle = std::move(witness);
    detail::refine_to_exact(g, ProblemKind::kCycleMean, result.value, result.cycle,
                            result.counters);
    result.has_cycle = true;
    return result;
  }

 private:
  /// Walks the parent forest from `start`; returns the cycle it runs
  /// into, or empty if the walk reaches a parentless node first.
  static std::vector<ArcId> cycle_in_parent_forest(const Graph& g,
                                                   const std::vector<ArcId>& parent,
                                                   NodeId start) {
    std::vector<std::int8_t> seen(static_cast<std::size_t>(g.num_nodes()), 0);
    NodeId v = start;
    while (v != kInvalidNode && !seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = 1;
      const ArcId pa = parent[static_cast<std::size_t>(v)];
      if (pa == kInvalidArc) return {};
      v = g.src(pa);
    }
    if (v == kInvalidNode) return {};
    // v is on a cycle of the parent forest; collect it.
    std::vector<ArcId> rev;
    NodeId u = v;
    do {
      const ArcId pa = parent[static_cast<std::size_t>(u)];
      rev.push_back(pa);
      u = g.src(pa);
    } while (u != v);
    std::reverse(rev.begin(), rev.end());
    return rev;
  }

  double epsilon_;
};

}  // namespace

std::unique_ptr<Solver> make_oa1_solver(const SolverConfig& config) {
  return std::make_unique<Oa1Solver>(config);
}

}  // namespace mcr
