// Shared engine for the parametric shortest-path solvers KO and YTO
// (§2.3 of the paper). Internal header.
//
// Both algorithms maintain a tree of shortest paths from a source s in
// G_lambda while lambda grows from -infinity. A path's cost is
// a - lambda*b where a is its weight and b its transit (b = length for
// the mean problem). The tree is optimal for an interval of lambda; the
// next breakpoint is the smallest *key*
//     lambda_e = (a(u) + w(e) - a(v)) / (b(u) + t(e) - b(v))
// over non-tree arcs e = (u,v) whose denominator is positive (only
// those lose slack as lambda grows). Processing a breakpoint pivots v
// onto parent arc e, shifting v's whole subtree by a constant
// (delta_a, delta_b). When a pivot's target v is an ancestor of u the
// tree would close into a cycle: that cycle's mean is exactly lambda_e
// and equals lambda* — the algorithm stops.
//
// The two algorithms differ only in how the event queue is organized:
//   * KO keeps one heap entry per qualifying ARC; every pivot
//     recomputes the keys of all arcs crossing the moved subtree's
//     boundary (delete + insert / update per arc).
//   * YTO keeps one entry per NODE, keyed by the best qualifying
//     incoming arc; a pivot recomputes node keys for the moved subtree
//     and its out-neighborhood. This is the paper's "efficient
//     implementation" — same pivots, far fewer heap operations
//     (especially insertions), which §4.2 measures.
//
// Exactness: keys are exact fractions of 64-bit integers compared by
// 128-bit cross multiplication; the returned cycle mean is exact.
#ifndef MCR_ALGO_PARAMETRIC_H
#define MCR_ALGO_PARAMETRIC_H

#include <cassert>
#include <stdexcept>
#include <vector>

#include "core/problem.h"
#include "core/result.h"
#include "graph/graph.h"
#include "obs/obs.h"
#include "support/int128.h"
#include "support/op_counters.h"
#include "support/rational.h"

namespace mcr::detail {

/// An exact fraction num/den with den > 0, ordered by value.
struct Frac {
  std::int64_t num = 0;
  std::int64_t den = 1;
};

struct FracLess {
  bool operator()(const Frac& x, const Frac& y) const {
    return static_cast<int128>(x.num) * y.den < static_cast<int128>(y.num) * x.den;
  }
};

/// Shortest-path-tree state shared by KO and YTO.
class ParametricTree {
 public:
  ParametricTree(const Graph& g, ProblemKind kind, OpCounters& counters)
      : g_(g), kind_(kind), counters_(counters) {
    const std::size_t un = static_cast<std::size_t>(g.num_nodes());
    a_.assign(un, 0);
    b_.assign(un, 0);
    parent_.assign(un, kInvalidArc);
    in_subtree_.assign(un, false);
    init_tree();
  }

  [[nodiscard]] std::int64_t transit(ArcId a) const {
    return kind_ == ProblemKind::kCycleMean ? std::int64_t{1} : g_.transit(a);
  }

  /// Key of arc e, qualifying iff denominator > 0.
  [[nodiscard]] bool arc_key(ArcId e, Frac& out) const {
    const NodeId u = g_.src(e);
    const NodeId v = g_.dst(e);
    if (parent_[static_cast<std::size_t>(v)] == e) return false;  // tree arc
    const std::int64_t den = b_[static_cast<std::size_t>(u)] + transit(e) -
                             b_[static_cast<std::size_t>(v)];
    if (den <= 0) return false;
    out.num = a_[static_cast<std::size_t>(u)] + g_.weight(e) -
              a_[static_cast<std::size_t>(v)];
    out.den = den;
    return true;
  }

  /// Marks and collects the subtree rooted at v into `subtree_nodes()`.
  void collect_subtree(NodeId v) {
    subtree_.clear();
    subtree_.push_back(v);
    in_subtree_[static_cast<std::size_t>(v)] = true;
    for (std::size_t head = 0; head < subtree_.size(); ++head) {
      for (const NodeId c : children_[static_cast<std::size_t>(subtree_[head])]) {
        in_subtree_[static_cast<std::size_t>(c)] = true;
        subtree_.push_back(c);
      }
    }
  }

  void clear_subtree_marks() {
    for (const NodeId x : subtree_) in_subtree_[static_cast<std::size_t>(x)] = false;
  }

  [[nodiscard]] const std::vector<NodeId>& subtree_nodes() const { return subtree_; }
  [[nodiscard]] bool in_subtree(NodeId v) const {
    return in_subtree_[static_cast<std::size_t>(v)];
  }

  /// Re-hangs v below arc e = (u, v) and shifts the collected subtree's
  /// labels by the pivot deltas. collect_subtree(v) must have run.
  void apply_pivot(ArcId e) {
    const NodeId u = g_.src(e);
    const NodeId v = g_.dst(e);
    const std::int64_t delta_a = a_[static_cast<std::size_t>(u)] + g_.weight(e) -
                                 a_[static_cast<std::size_t>(v)];
    const std::int64_t delta_b = b_[static_cast<std::size_t>(u)] + transit(e) -
                                 b_[static_cast<std::size_t>(v)];
    for (const NodeId x : subtree_) {
      a_[static_cast<std::size_t>(x)] += delta_a;
      b_[static_cast<std::size_t>(x)] += delta_b;
    }
    // Move v in the child lists.
    const ArcId old_parent = parent_[static_cast<std::size_t>(v)];
    if (old_parent != kInvalidArc) {
      auto& siblings = children_[static_cast<std::size_t>(g_.src(old_parent))];
      for (std::size_t i = 0; i < siblings.size(); ++i) {
        if (siblings[i] == v) {
          siblings[i] = siblings.back();
          siblings.pop_back();
          break;
        }
      }
    }
    parent_[static_cast<std::size_t>(v)] = e;
    children_[static_cast<std::size_t>(u)].push_back(v);
  }

  /// The cycle closed by pivot arc e = (u, v) with v an ancestor of u:
  /// tree path v -> ... -> u plus e.
  [[nodiscard]] std::vector<ArcId> close_cycle(ArcId e) const {
    const NodeId u = g_.src(e);
    const NodeId v = g_.dst(e);
    std::vector<ArcId> rev;
    NodeId x = u;
    while (x != v) {
      const ArcId pa = parent_[static_cast<std::size_t>(x)];
      assert(pa != kInvalidArc);
      rev.push_back(pa);
      x = g_.src(pa);
    }
    std::vector<ArcId> cycle(rev.rbegin(), rev.rend());
    cycle.push_back(e);
    return cycle;
  }

  [[nodiscard]] const Graph& graph() const { return g_; }
  [[nodiscard]] OpCounters& counters() const { return counters_; }

 private:
  /// Initial tree: shortest paths from node 0 under the lexicographic
  /// cost (transit, weight) — the lambda -> -infinity limit. Plain
  /// label-correcting; safe because every cycle has positive transit.
  void init_tree() {
    const NodeId n = g_.num_nodes();
    const std::size_t un = static_cast<std::size_t>(n);
    children_.assign(un, {});
    constexpr std::int64_t kInf = INT64_MAX / 4;
    std::vector<std::int64_t> bb(un, kInf), aa(un, kInf);
    bb[0] = 0;
    aa[0] = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (ArcId e = 0; e < g_.num_arcs(); ++e) {
        ++counters_.arc_scans;
        const NodeId u = g_.src(e);
        const NodeId v = g_.dst(e);
        if (bb[static_cast<std::size_t>(u)] == kInf) continue;
        const std::int64_t cb = bb[static_cast<std::size_t>(u)] + transit(e);
        const std::int64_t ca = aa[static_cast<std::size_t>(u)] + g_.weight(e);
        if (cb < bb[static_cast<std::size_t>(v)] ||
            (cb == bb[static_cast<std::size_t>(v)] && ca < aa[static_cast<std::size_t>(v)])) {
          bb[static_cast<std::size_t>(v)] = cb;
          aa[static_cast<std::size_t>(v)] = ca;
          parent_[static_cast<std::size_t>(v)] = e;
          changed = true;
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (v != 0 && parent_[static_cast<std::size_t>(v)] == kInvalidArc) {
        throw std::invalid_argument("parametric solver: graph is not strongly connected");
      }
      a_[static_cast<std::size_t>(v)] = aa[static_cast<std::size_t>(v)];
      b_[static_cast<std::size_t>(v)] = bb[static_cast<std::size_t>(v)];
      if (v != 0) {
        children_[static_cast<std::size_t>(g_.src(parent_[static_cast<std::size_t>(v)]))]
            .push_back(v);
      }
    }
  }

  const Graph& g_;
  ProblemKind kind_;
  OpCounters& counters_;
  std::vector<std::int64_t> a_;
  std::vector<std::int64_t> b_;
  std::vector<ArcId> parent_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<NodeId> subtree_;
  std::vector<bool> in_subtree_;
};

/// KO: one heap entry per qualifying arc.
template <template <typename, typename> class Heap>
CycleResult solve_ko_with(const Graph& g, ProblemKind kind) {
  CycleResult result;
  ParametricTree tree(g, kind, result.counters);
  Heap<Frac, FracLess> heap(g.num_arcs());

  const auto refresh_arc = [&](ArcId e) {
    ++result.counters.arc_scans;
    Frac key;
    if (tree.arc_key(e, key)) {
      if (heap.contains(e)) {
        heap.update_key(e, key);
        ++result.counters.heap_decrease_keys;
      } else {
        heap.insert(e, key);
        ++result.counters.heap_inserts;
      }
    } else if (heap.contains(e)) {
      heap.erase(e);
      ++result.counters.heap_delete_mins;
    }
  };

  for (ArcId e = 0; e < g.num_arcs(); ++e) refresh_arc(e);

  // Hoist the sink lookup out of the pivot loop: pivots are the whole
  // running time here, so the disabled path must stay one register test.
  obs::TraceSink* const sink = obs::current_sink();
  while (!heap.empty()) {
    ++result.counters.iterations;
    if (sink != nullptr) {
      sink->instant(obs::EventKind::kIteration, "ko.pivot",
                    static_cast<std::int64_t>(result.counters.iterations));
    }
    const ArcId e = heap.extract_min();
    ++result.counters.heap_delete_mins;
    Frac key;
    if (!tree.arc_key(e, key)) continue;  // stale (should not happen)

    const NodeId u = g.src(e);
    const NodeId v = g.dst(e);
    tree.collect_subtree(v);
    if (tree.in_subtree(u)) {
      // Pivot closes a cycle: lambda* = key.
      tree.clear_subtree_marks();
      result.has_cycle = true;
      result.value = Rational(key.num, key.den);
      result.cycle = tree.close_cycle(e);
      return result;
    }
    tree.apply_pivot(e);
    // Keys change exactly for arcs with one endpoint in the subtree.
    for (const NodeId x : tree.subtree_nodes()) {
      for (const ArcId out : g.out_arcs(x)) {
        if (!tree.in_subtree(g.dst(out))) refresh_arc(out);
      }
      for (const ArcId in : g.in_arcs(x)) {
        if (!tree.in_subtree(g.src(in))) refresh_arc(in);
      }
    }
    // The pivot arc itself became a tree arc.
    if (heap.contains(e)) {
      heap.erase(e);
      ++result.counters.heap_delete_mins;
    }
    tree.clear_subtree_marks();
  }
  throw std::logic_error("KO: event queue exhausted without closing a cycle");
}

/// YTO: one heap entry per node, keyed by its best qualifying in-arc.
template <template <typename, typename> class Heap>
CycleResult solve_yto_with(const Graph& g, ProblemKind kind) {
  CycleResult result;
  ParametricTree tree(g, kind, result.counters);
  Heap<Frac, FracLess> heap(g.num_nodes());
  std::vector<ArcId> best_arc(static_cast<std::size_t>(g.num_nodes()), kInvalidArc);

  const auto refresh_node = [&](NodeId v) {
    Frac best;
    ArcId arg = kInvalidArc;
    for (const ArcId e : g.in_arcs(v)) {
      ++result.counters.arc_scans;
      Frac key;
      if (!tree.arc_key(e, key)) continue;
      if (arg == kInvalidArc || FracLess{}(key, best)) {
        best = key;
        arg = e;
      }
    }
    best_arc[static_cast<std::size_t>(v)] = arg;
    if (arg != kInvalidArc) {
      if (heap.contains(v)) {
        heap.update_key(v, best);
        ++result.counters.heap_decrease_keys;
      } else {
        heap.insert(v, best);
        ++result.counters.heap_inserts;
      }
    } else if (heap.contains(v)) {
      heap.erase(v);
      ++result.counters.heap_delete_mins;
    }
  };

  for (NodeId v = 0; v < g.num_nodes(); ++v) refresh_node(v);

  // Same hoist as KO: keep the untraced pivot loop free of TLS loads.
  obs::TraceSink* const sink = obs::current_sink();
  while (!heap.empty()) {
    ++result.counters.iterations;
    if (sink != nullptr) {
      sink->instant(obs::EventKind::kIteration, "yto.pivot",
                    static_cast<std::int64_t>(result.counters.iterations));
    }
    const NodeId v = heap.min_item();
    const ArcId e = best_arc[static_cast<std::size_t>(v)];
    Frac key;
    if (e == kInvalidArc || !tree.arc_key(e, key)) {
      refresh_node(v);
      continue;
    }

    const NodeId u = g.src(e);
    tree.collect_subtree(v);
    if (tree.in_subtree(u)) {
      tree.clear_subtree_marks();
      result.has_cycle = true;
      result.value = Rational(key.num, key.den);
      result.cycle = tree.close_cycle(e);
      return result;
    }
    tree.apply_pivot(e);
    // Node keys change for the moved subtree (their in-arc keys moved)
    // and for out-neighbors of the subtree.
    for (const NodeId x : tree.subtree_nodes()) {
      for (const ArcId out : g.out_arcs(x)) {
        const NodeId y = g.dst(out);
        if (!tree.in_subtree(y)) refresh_node(y);
      }
    }
    // Refresh subtree nodes after clearing marks is wrong — their keys
    // depend on arcs from outside, which changed; do it while marked.
    for (const NodeId x : tree.subtree_nodes()) refresh_node(x);
    tree.clear_subtree_marks();
  }
  throw std::logic_error("YTO: event queue exhausted without closing a cycle");
}

}  // namespace mcr::detail

#endif  // MCR_ALGO_PARAMETRIC_H
