// Central registration: wires every algorithm into the SolverRegistry
// with its Table-1 metadata.
#include "algo/algorithms.h"
#include "core/brute_force.h"
#include "core/registry.h"

namespace mcr {

void register_all_solvers(SolverRegistry& r) {
  using PK = ProblemKind;
  const auto mean = [](SolverInfo i) {
    i.kind = PK::kCycleMean;
    return i;
  };
  const auto ratio = [](SolverInfo i) {
    i.kind = PK::kCycleRatio;
    return i;
  };

  // --- Minimum cycle mean (ordered as in the paper's Table 2) ---
  r.add(mean({.name = "burns",
              .display = "Burns",
              .source = "Burns",
              .year = 1991,
              .bound = "O(n^2 m)",
              .exact = true,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_burns_solver(c); });
  r.add(mean({.name = "ko",
              .display = "KO",
              .source = "Karp & Orlin",
              .year = 1981,
              .bound = "O(nm lg n)",
              .exact = true,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_ko_solver(c); });
  r.add(mean({.name = "yto",
              .display = "YTO",
              .source = "Young, Tarjan & Orlin",
              .year = 1991,
              .bound = "O(nm + n^2 lg n)",
              .exact = true,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_yto_solver(c); });
  r.add(mean({.name = "howard",
              .display = "Howard",
              .source = "Cochet-Terrasson et al.",
              .year = 1997,
              .bound = "O(N m)",
              .exact = true,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_howard_solver(c); });
  r.add(mean({.name = "ho",
              .display = "HO",
              .source = "Hartmann & Orlin",
              .year = 1993,
              .bound = "O(nm)",
              .exact = true,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_ho_solver(c); });
  r.add(mean({.name = "karp",
              .display = "Karp",
              .source = "Karp",
              .year = 1978,
              .bound = "Theta(nm)",
              .exact = true,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_karp_solver(c); });
  r.add(mean({.name = "dg",
              .display = "DG",
              .source = "Dasdan & Gupta",
              .year = 1997,
              .bound = "O(nm)",
              .exact = true,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_dg_solver(c); });
  r.add(mean({.name = "lawler",
              .display = "Lawler",
              .source = "Lawler",
              .year = 1976,
              .bound = "O(nm lg(nW))",
              .exact = false,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_lawler_solver(c); });
  r.add(mean({.name = "karp2",
              .display = "Karp2",
              .source = "Karp (space-efficient; Gaubert)",
              .year = 1998,
              .bound = "Theta(nm)",
              .exact = true,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_karp2_solver(c); });
  r.add(mean({.name = "oa1",
              .display = "OA1",
              .source = "Orlin & Ahuja",
              .year = 1992,
              .bound = "O(sqrt(n) m lg(nW))",
              .exact = false,
              .in_paper_table2 = true}),
        [](const SolverConfig& c) { return make_oa1_solver(c); });

  // --- Heap-ablation variants (not separate rows in the paper) ---
  r.add(mean({.name = "ko_bin",
              .display = "KO/bin",
              .source = "Karp & Orlin (binary heap)",
              .year = 1981,
              .bound = "O(nm lg n)",
              .exact = true}),
        [](const SolverConfig& c) { return make_ko_solver(c, HeapKind::kBinary); });
  r.add(mean({.name = "ko_pair",
              .display = "KO/pair",
              .source = "Karp & Orlin (pairing heap)",
              .year = 1981,
              .bound = "O(nm lg n)",
              .exact = true}),
        [](const SolverConfig& c) { return make_ko_solver(c, HeapKind::kPairing); });
  r.add(mean({.name = "yto_bin",
              .display = "YTO/bin",
              .source = "Young, Tarjan & Orlin (binary heap)",
              .year = 1991,
              .bound = "O(nm + n^2 lg n)",
              .exact = true}),
        [](const SolverConfig& c) { return make_yto_solver(c, HeapKind::kBinary); });
  r.add(mean({.name = "yto_pair",
              .display = "YTO/pair",
              .source = "Young, Tarjan & Orlin (pairing heap)",
              .year = 1991,
              .bound = "O(nm + n^2 lg n)",
              .exact = true}),
        [](const SolverConfig& c) { return make_yto_solver(c, HeapKind::kPairing); });

  // --- Extension variants (§5 "improved versions", ablations) ---
  r.add(mean({.name = "lawler_improved",
              .display = "Lawler+",
              .source = "Lawler (witness-tightened, per §5)",
              .year = 1999,
              .bound = "O(nm lg(nW))",
              .exact = true}),
        [](const SolverConfig& c) { return make_lawler_improved_solver(c); });
  r.add(mean({.name = "howard_naive_init",
              .display = "Howard/naive",
              .source = "Cochet-Terrasson et al. (naive init)",
              .year = 1997,
              .bound = "O(N m)",
              .exact = true}),
        [](const SolverConfig& c) { return make_howard_naive_init_solver(c); });

  r.add(mean({.name = "megiddo",
              .display = "Megiddo",
              .source = "Megiddo",
              .year = 1979,
              .bound = "O(n^2 m lg n)",
              .exact = true}),
        [](const SolverConfig& c) { return make_megiddo_solver(c); });
  r.add(mean({.name = "cycle_cancel",
              .display = "CycleCancel",
              .source = "folklore baseline",
              .year = 0,
              .bound = "O(nm * cycles)",
              .exact = true}),
        [](const SolverConfig&) { return make_cycle_cancel_solver(PK::kCycleMean); });
  r.add(ratio({.name = "megiddo_ratio",
               .display = "Megiddo (ratio)",
               .source = "Megiddo",
               .year = 1979,
               .bound = "O(n^2 m lg n)",
               .exact = true}),
        [](const SolverConfig& c) { return make_megiddo_ratio_solver(c); });
  r.add(ratio({.name = "cycle_cancel_ratio",
               .display = "CycleCancel (ratio)",
               .source = "folklore baseline",
               .year = 0,
               .bound = "O(nm * cycles)",
               .exact = true}),
        [](const SolverConfig&) { return make_cycle_cancel_solver(PK::kCycleRatio); });

  // --- Test oracle ---
  r.add(mean({.name = "brute_force",
              .display = "BruteForce",
              .source = "cycle enumeration",
              .year = 0,
              .bound = "O(2^m)",
              .exact = true}),
        [](const SolverConfig&) { return make_brute_force_solver(PK::kCycleMean); });

  // --- Minimum cost-to-time ratio ---
  r.add(ratio({.name = "howard_ratio",
               .display = "Howard (ratio)",
               .source = "Cochet-Terrasson et al.",
               .year = 1997,
               .bound = "O(N m)",
               .exact = true}),
        [](const SolverConfig& c) { return make_howard_ratio_solver(c); });
  r.add(ratio({.name = "yto_ratio",
               .display = "YTO (ratio)",
               .source = "Young, Tarjan & Orlin",
               .year = 1991,
               .bound = "O(nm + n^2 lg n)",
               .exact = true}),
        [](const SolverConfig& c) { return make_yto_ratio_solver(c); });
  r.add(ratio({.name = "burns_ratio",
               .display = "Burns (ratio)",
               .source = "Burns",
               .year = 1991,
               .bound = "O(n^2 m)",
               .exact = true}),
        [](const SolverConfig& c) { return make_burns_ratio_solver(c); });
  r.add(ratio({.name = "ho_ratio",
               .display = "Hartmann-Orlin (ratio)",
               .source = "Hartmann & Orlin",
               .year = 1993,
               .bound = "O(Tm)",
               .exact = true}),
        [](const SolverConfig& c) { return make_hartmann_orlin_ratio_solver(c); });
  r.add(ratio({.name = "lawler_ratio",
               .display = "Lawler (ratio)",
               .source = "Lawler",
               .year = 1976,
               .bound = "O(nm lg(nW))",
               .exact = false}),
        [](const SolverConfig& c) { return make_lawler_ratio_solver(c); });
  r.add(ratio({.name = "brute_force_ratio",
               .display = "BruteForce (ratio)",
               .source = "cycle enumeration",
               .year = 0,
               .bound = "O(2^m)",
               .exact = true}),
        [](const SolverConfig&) { return make_brute_force_solver(PK::kCycleRatio); });
}

}  // namespace mcr
