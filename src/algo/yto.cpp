// YTO: the Young-Tarjan-Orlin parametric shortest path algorithm
// (Young, Tarjan & Orlin 1991; §2.3 of the paper) — "essentially an
// efficient implementation of the KO algorithm": identical pivots,
// node-keyed event queue. Engine in algo/parametric.h. The ratio
// variant (minimum cost-to-time ratio) uses transit-weighted keys.
#include "algo/algorithms.h"
#include "algo/parametric.h"
#include "ds/binary_heap.h"
#include "ds/fibonacci_heap.h"
#include "ds/pairing_heap.h"

namespace mcr {

namespace {

class YtoSolver final : public Solver {
 public:
  YtoSolver(ProblemKind kind, HeapKind heap) : kind_(kind), heap_(heap) {}

  [[nodiscard]] std::string name() const override {
    std::string base = kind_ == ProblemKind::kCycleMean ? "yto" : "yto_ratio";
    if (heap_ == HeapKind::kBinary) base += "_bin";
    if (heap_ == HeapKind::kPairing) base += "_pair";
    return base;
  }
  [[nodiscard]] ProblemKind kind() const override { return kind_; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    switch (heap_) {
      case HeapKind::kFibonacci:
        return detail::solve_yto_with<FibonacciHeap>(g, kind_);
      case HeapKind::kPairing:
        return detail::solve_yto_with<PairingHeap>(g, kind_);
      case HeapKind::kBinary:
        return detail::solve_yto_with<BinaryHeap>(g, kind_);
    }
    throw std::logic_error("YtoSolver: unknown heap kind");
  }

 private:
  ProblemKind kind_;
  HeapKind heap_;
};

}  // namespace

std::unique_ptr<Solver> make_yto_solver(const SolverConfig&, HeapKind heap) {
  return std::make_unique<YtoSolver>(ProblemKind::kCycleMean, heap);
}

std::unique_ptr<Solver> make_yto_ratio_solver(const SolverConfig&, HeapKind heap) {
  return std::make_unique<YtoSolver>(ProblemKind::kCycleRatio, heap);
}

}  // namespace mcr
