#include "apps/async_timing.h"

#include <limits>
#include <stdexcept>

#include "core/critical.h"
#include "core/driver.h"
#include "graph/builder.h"
#include "graph/scc.h"
#include "graph/transforms.h"
#include "graph/traversal.h"

namespace mcr::apps {

namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;

Graph rule_graph(const ErSystem& sys) {
  GraphBuilder b(sys.num_events);
  for (const EventRule& r : sys.rules) {
    if (r.delay < 0) throw std::invalid_argument("er_system: negative delay");
    if (r.occurrence < 0) {
      throw std::invalid_argument("er_system: negative occurrence offset");
    }
    b.add_arc(r.from, r.to, r.delay, r.occurrence);
  }
  return b.build();
}

}  // namespace

ErAnalysis analyze_er_system(const ErSystem& sys) {
  const Graph g = rule_graph(sys);
  if (!is_strongly_connected(g)) {
    throw std::invalid_argument("er_system: rule graph must be strongly connected");
  }
  ErAnalysis out;

  // Causality/liveness: a cycle of zero-occurrence rules means an event
  // waits on its own current occurrence — deadlock.
  std::vector<ArcSpec> zero;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.transit(a) == 0) zero.push_back(ArcSpec{g.src(a), g.dst(a), 0, 0});
  }
  if (has_cycle(Graph(g.num_nodes(), zero))) {
    out.live = false;
    return out;
  }
  out.live = true;

  const CycleResult worst = maximum_cycle_ratio(g, "howard_ratio");
  out.period = worst.value;

  // Critical events + periodic offsets from the max-problem critical
  // structure (same construction as the max-plus eigenvector).
  const Graph neg = negate_weights(g);
  const auto optimal_arcs =
      optimal_arc_set(neg, -out.period, ProblemKind::kCycleRatio);
  std::vector<bool> seed(static_cast<std::size_t>(g.num_nodes()), false);
  for (const ArcId a : optimal_arcs) {
    seed[static_cast<std::size_t>(g.src(a))] = true;
    seed[static_cast<std::size_t>(g.dst(a))] = true;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (seed[static_cast<std::size_t>(v)]) out.critical_events.push_back(v);
  }

  // Longest paths from the critical events under the scaled costs
  // delay*den - num*occurrence (no positive cycles at the optimum).
  const std::int64_t den = out.period.den();
  const std::int64_t num = out.period.num();
  auto& x = out.scaled_offset;
  x.assign(static_cast<std::size_t>(g.num_nodes()), kNegInf);
  for (const NodeId v : out.critical_events) x[static_cast<std::size_t>(v)] = 0;
  for (NodeId pass = 0; pass <= g.num_nodes(); ++pass) {
    bool changed = false;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const std::int64_t xu = x[static_cast<std::size_t>(g.src(a))];
      if (xu == kNegInf) continue;
      const std::int64_t cand = xu + g.weight(a) * den - num * g.transit(a);
      if (cand > x[static_cast<std::size_t>(g.dst(a))]) {
        x[static_cast<std::size_t>(g.dst(a))] = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return out;
}

bool is_valid_timing(const ErSystem& sys, const Rational& period,
                     const std::vector<std::int64_t>& scaled_offset) {
  if (scaled_offset.size() != static_cast<std::size_t>(sys.num_events)) return false;
  for (const EventRule& r : sys.rules) {
    const std::int64_t lhs = scaled_offset[static_cast<std::size_t>(r.to)];
    const std::int64_t rhs = scaled_offset[static_cast<std::size_t>(r.from)] +
                             r.delay * period.den() - period.num() * r.occurrence;
    if (lhs < rhs) return false;
  }
  return true;
}

}  // namespace mcr::apps
