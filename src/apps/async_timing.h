// Performance analysis of asynchronous circuits via timed event-rule
// systems (Burns' thesis — reference [4] of the paper — and the
// Hulgaard-Burns-Amon-Borriello line of work [13]).
//
// An ER system has events (signal transitions) and rules
// e' -> e  with delay δ and occurrence-index offset ε:
// the k-th occurrence of e waits for the (k - ε)-th occurrence of e'
// plus δ. The steady-state *cycle period* of the circuit — the paper's
// motivating quantity for Burns' algorithm — is the maximum cycle ratio
//     max over cycles C of  δ(C) / ε(C)
// of the rule graph, and a valid timing assignment (occurrence
// timestamps t_k(e) = k*period + offset(e)) comes from the max-plus
// eigen structure. This module is a thin, domain-named layer over the
// mcr core: it exists so asynchronous-design users get the vocabulary
// and validation they expect (occurrence offsets, liveness) without
// hand-translating to graphs.
#ifndef MCR_APPS_ASYNC_TIMING_H
#define MCR_APPS_ASYNC_TIMING_H

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "support/rational.h"

namespace mcr::apps {

struct EventRule {
  NodeId from = 0;  // triggering event
  NodeId to = 0;    // triggered event
  std::int64_t delay = 0;       // δ >= 0
  std::int64_t occurrence = 0;  // ε >= 0 (0 = same occurrence index)
};

struct ErSystem {
  NodeId num_events = 0;
  std::vector<EventRule> rules;
};

struct ErAnalysis {
  /// A live system fires every event infinitely often; false when some
  /// zero-offset rule cycle deadlocks it or events are unconstrained by
  /// any cycle ("unbounded" rate — reported per event below).
  bool live = false;
  /// The steady-state cycle period: max_C delay(C)/occurrence(C).
  Rational period;
  /// Events on period-critical cycles (the performance bottleneck the
  /// paper says the critical subgraph identifies).
  std::vector<NodeId> critical_events;
  /// A periodic timing assignment scaled by period.den():
  /// t_k(e) = (k*period.num() + offset[e]) / period.den() satisfies
  /// every rule with equality on the critical cycles.
  std::vector<std::int64_t> scaled_offset;
};

/// Analyzes a strongly connected ER system (every event constrains
/// every other — the usual closed-circuit model). Throws
/// std::invalid_argument on malformed rules, a non-strongly-connected
/// rule graph, or a zero-occurrence cycle (causality violation).
[[nodiscard]] ErAnalysis analyze_er_system(const ErSystem& sys);

/// Exact check that (period, scaled_offset) is a valid periodic timing:
/// for every rule, offset[to] >= offset[from] + delay*den - period.num*occurrence.
[[nodiscard]] bool is_valid_timing(const ErSystem& sys, const Rational& period,
                                   const std::vector<std::int64_t>& scaled_offset);

}  // namespace mcr::apps

#endif  // MCR_APPS_ASYNC_TIMING_H
