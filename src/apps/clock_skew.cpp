#include "apps/clock_skew.h"

#include <algorithm>
#include <stdexcept>

#include "core/critical.h"
#include "core/driver.h"
#include "graph/bellman_ford.h"
#include "graph/builder.h"

namespace mcr::apps {

namespace {

void validate(const Graph& g) {
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.transit(a) < 0 || g.transit(a) > g.weight(a)) {
      throw std::invalid_argument(
          "clock_skew: need 0 <= min delay (transit) <= max delay (weight)");
    }
  }
}

/// Constraint graph for period T = num/den, costs scaled by den:
///   setup arc  dst->src  with cost  num - maxd*den
///   hold  arc  src->dst  with cost  mind*den
/// plus a record of which constraint arcs are setup arcs (transit 1 in
/// the race-cycle reading) for exact ratio extraction.
struct ConstraintGraph {
  Graph graph;
  std::vector<std::int64_t> cost;
  std::vector<bool> is_setup;
  /// Original circuit arc behind each constraint arc.
  std::vector<ArcId> origin;
};

ConstraintGraph build_constraints(const Graph& g, std::int64_t num, std::int64_t den) {
  GraphBuilder b(g.num_nodes());
  ConstraintGraph out{Graph(0, {}), {}, {}, {}};
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    b.add_arc(g.dst(a), g.src(a), 0);  // setup
    out.cost.push_back(num - g.weight(a) * den);
    out.is_setup.push_back(true);
    out.origin.push_back(a);
    b.add_arc(g.src(a), g.dst(a), 0);  // hold
    out.cost.push_back(g.transit(a) * den);
    out.is_setup.push_back(false);
    out.origin.push_back(a);
  }
  out.graph = b.build();
  return out;
}

}  // namespace

std::optional<ClockSchedule> feasible_schedule(const Graph& circuit, std::int64_t period) {
  validate(circuit);
  const ConstraintGraph cg = build_constraints(circuit, period, 1);
  BellmanFordResult bf = bellman_ford_all(cg.graph, cg.cost);
  if (bf.has_negative_cycle) return std::nullopt;
  return ClockSchedule{std::move(bf.dist)};
}

std::int64_t zero_skew_period(const Graph& circuit) {
  validate(circuit);
  std::int64_t period = 0;
  for (ArcId a = 0; a < circuit.num_arcs(); ++a) {
    period = std::max(period, circuit.weight(a));
  }
  return period;
}

ClockPeriodResult min_clock_period(const Graph& circuit) {
  validate(circuit);
  // Dinkelbach-style ascent on exact rationals: start at T = 0; while
  // infeasible, the violated constraint cycle's race ratio
  //   (sum maxd over its setup arcs - sum mind over its hold arcs) / #setup
  // is a valid lower bound strictly above T — adopt it and retry. The
  // first feasible T is exactly the maximum race-cycle ratio, i.e. the
  // optimum. Each round strictly increases T over the finite set of
  // cycle ratios, so this terminates.
  Rational period(0);
  for (;;) {
    const ConstraintGraph cg = build_constraints(circuit, period.num(), period.den());
    BellmanFordResult bf = bellman_ford_all(cg.graph, cg.cost);
    if (!bf.has_negative_cycle) break;
    std::int64_t setup_count = 0;
    std::int64_t max_sum = 0;
    std::int64_t min_sum = 0;
    for (const ArcId ca : bf.cycle) {
      const ArcId a = cg.origin[static_cast<std::size_t>(ca)];
      if (cg.is_setup[static_cast<std::size_t>(ca)]) {
        ++setup_count;
        max_sum += circuit.weight(a);
      } else {
        min_sum += circuit.transit(a);
      }
    }
    if (setup_count == 0) {
      // A pure hold cycle is infeasible at every period (its total
      // min-delay is negative only if validation was bypassed; with
      // mind >= 0 this cannot happen).
      throw std::invalid_argument("min_clock_period: unfixable hold violation");
    }
    const Rational race(max_sum - min_sum, setup_count);
    if (race <= period) {
      // Defensive: numeric impossibility with exact arithmetic; avoid
      // a livelock if it ever changes.
      throw std::logic_error("min_clock_period: no progress in ascent");
    }
    period = race;
  }

  ClockPeriodResult out;
  out.min_period = period;
  const std::int64_t ceiling =
      (period.num() + period.den() - 1) / period.den();  // ceil for num >= 0
  const auto sched = feasible_schedule(circuit, std::max<std::int64_t>(0, ceiling));
  if (!sched.has_value()) {
    throw std::logic_error("min_clock_period: ceiling schedule infeasible");
  }
  out.skew_at_ceiling = sched->skew;
  return out;
}

MarginSchedule max_margin_schedule(const Graph& circuit, std::int64_t period) {
  validate(circuit);
  // Margin graph: weight(e) = T - maxd(e); the best uniform margin is
  // its minimum cycle mean, and the skews are shortest-path potentials
  // at that value (critical arcs have exactly the optimal margin).
  GraphBuilder b(circuit.num_nodes());
  for (ArcId a = 0; a < circuit.num_arcs(); ++a) {
    b.add_arc(circuit.src(a), circuit.dst(a), period - circuit.weight(a));
  }
  const Graph margin_graph = b.build();
  const CycleResult r = minimum_cycle_mean(margin_graph, "howard");
  MarginSchedule out;
  if (!r.has_cycle) {
    // Feed-forward circuit: margin limited by the single worst stage.
    out.margin = Rational(period - zero_skew_period(circuit));
    out.scaled_skew = feasible_schedule(circuit, period)
                          ? feasible_schedule(circuit, period)->skew
                          : std::vector<std::int64_t>();
    return out;
  }
  out.margin = r.value;
  const CriticalSubgraph crit =
      critical_subgraph(margin_graph, r.value, ProblemKind::kCycleMean);
  // Potentials satisfy d(v) - d(u) <= (T - maxd - t)*den per arc (u,v);
  // the setup constraint needs s(u) - s(v) <= the same, so s = -d.
  out.scaled_skew.reserve(crit.scaled_potential.size());
  for (const std::int64_t d : crit.scaled_potential) out.scaled_skew.push_back(-d);
  return out;
}

}  // namespace mcr::apps
