// Optimal clock-skew scheduling (Szymanski, "Computing optimal clock
// schedules", DAC 1992 — reference [22] of the DAC'99 paper; also
// Fishburn's "Clock skew optimization").
//
// Model: nodes are registers; an arc e = (u, v) is the combinational
// logic from u to v with a maximum path delay (Graph weight) and a
// minimum path delay (Graph transit — reusing the field; both in the
// same time unit). With per-register skews s(v), a clock period T is
// met iff every arc satisfies
//   setup: s(u) + maxd(e) <= s(v) + T   ->  s(u) - s(v) <= T - maxd(e)
//   hold:  s(u) + mind(e) >= s(v)       ->  s(v) - s(u) <= mind(e)
// Both are difference constraints, so feasibility of a given T is one
// Bellman-Ford run, and the minimum feasible T is found by binary
// search. The limiting structure is a *critical race cycle*: a cycle
// alternating setup arcs (each contributing maxd - T) and hold arcs
// (each contributing -mind); T* equals the maximum over such cycles of
//   (sum of maxd on setup arcs - sum of mind on hold arcs) / #setup arcs
// — a cycle-ratio quantity, which is why this sits next to the MCR
// machinery. min_period() returns that exact rational optimum by
// running the library's maximum_cycle_ratio on the constraint structure.
#ifndef MCR_APPS_CLOCK_SKEW_H
#define MCR_APPS_CLOCK_SKEW_H

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "support/rational.h"

namespace mcr::apps {

struct ClockSchedule {
  /// Feasible skews (one per register) for the queried period.
  std::vector<std::int64_t> skew;
};

struct ClockPeriodResult {
  /// The exact minimum feasible period (a cycle ratio; may be fractional).
  Rational min_period;
  /// A feasible skew schedule at ceil(min_period) (integer clocks);
  /// scaled by min_period.den() when you need the exact-rational point.
  std::vector<std::int64_t> skew_at_ceiling;
};

/// Is period T feasible? If so, returns skews; otherwise nullopt.
/// Requirements: 0 <= mind(e) <= maxd(e) for every arc.
[[nodiscard]] std::optional<ClockSchedule> feasible_schedule(const Graph& circuit,
                                                             std::int64_t period);

/// The exact minimum feasible clock period with optimal skews, plus an
/// integer-period schedule. Throws std::invalid_argument if no finite
/// period works (a hold violation no skew assignment can fix: a cycle
/// of hold constraints with negative total min-delay).
[[nodiscard]] ClockPeriodResult min_clock_period(const Graph& circuit);

/// The zero-skew baseline: the largest max-delay of any arc (every
/// register sees the same edge, so each stage must fit in one period).
[[nodiscard]] std::int64_t zero_skew_period(const Graph& circuit);

/// Margin-maximizing schedule at a given period T (Fishburn's "minimize
/// the worst slack" objective): the largest margin t such that skews
/// exist with  s(u) + maxd(e) + t <= s(v) + T  on every arc — i.e.
/// every setup check passes with at least t to spare. That largest t is
/// exactly the minimum cycle mean of the graph with arc weights
/// T - maxd(e) (an MCM instance!), and the skews are its critical
/// potentials. Returns margin < 0 when T itself is infeasible (the
/// margin then says how far). Hold constraints are not included (pad
/// mind into maxd or check separately via feasible_schedule).
struct MarginSchedule {
  Rational margin;
  /// Skews scaled by margin.den().
  std::vector<std::int64_t> scaled_skew;
};
[[nodiscard]] MarginSchedule max_margin_schedule(const Graph& circuit,
                                                 std::int64_t period);

}  // namespace mcr::apps

#endif  // MCR_APPS_CLOCK_SKEW_H
