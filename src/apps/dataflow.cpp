#include "apps/dataflow.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/driver.h"
#include "graph/builder.h"
#include "graph/traversal.h"

namespace mcr::apps {

namespace {

void validate(const SdfGraph& sdf) {
  const auto n = static_cast<NodeId>(sdf.actors.size());
  for (const SdfActor& a : sdf.actors) {
    if (a.exec_time < 0) throw std::invalid_argument("sdf: negative execution time");
  }
  for (const SdfChannel& c : sdf.channels) {
    if (c.src < 0 || c.src >= n || c.dst < 0 || c.dst >= n) {
      throw std::invalid_argument("sdf: channel endpoint out of range");
    }
    if (c.produce < 1 || c.consume < 1) {
      throw std::invalid_argument("sdf: production/consumption rates must be >= 1");
    }
    if (c.initial_tokens < 0) {
      throw std::invalid_argument("sdf: negative initial tokens");
    }
  }
}

std::int64_t lcm64(std::int64_t a, std::int64_t b) { return a / std::gcd(a, b) * b; }

}  // namespace

std::vector<std::int64_t> repetition_vector(const SdfGraph& sdf) {
  validate(sdf);
  const std::size_t n = sdf.actors.size();
  // Assign rational firing rates by BFS over the channel structure
  // (treated undirected), then scale to the smallest integer vector.
  std::vector<Rational> rate(n, Rational(0));
  std::vector<bool> assigned(n, false);
  std::vector<std::vector<std::pair<std::size_t, bool>>> adj(n);  // (channel, forward?)
  for (std::size_t c = 0; c < sdf.channels.size(); ++c) {
    adj[static_cast<std::size_t>(sdf.channels[c].src)].push_back({c, true});
    adj[static_cast<std::size_t>(sdf.channels[c].dst)].push_back({c, false});
  }

  std::vector<std::int64_t> q(n, 0);
  std::vector<std::size_t> queue;
  for (std::size_t root = 0; root < n; ++root) {
    if (assigned[root]) continue;
    rate[root] = Rational(1);
    assigned[root] = true;
    queue.clear();
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t v = queue[head];
      for (const auto& [ci, forward] : adj[v]) {
        const SdfChannel& ch = sdf.channels[ci];
        // Balance: rate[src]*produce == rate[dst]*consume.
        const std::size_t other =
            forward ? static_cast<std::size_t>(ch.dst) : static_cast<std::size_t>(ch.src);
        const Rational implied =
            forward ? rate[v] * Rational(ch.produce, ch.consume)
                    : rate[v] * Rational(ch.consume, ch.produce);
        if (!assigned[other]) {
          rate[other] = implied;
          assigned[other] = true;
          queue.push_back(other);
        } else if (rate[other] != implied) {
          return {};  // inconsistent
        }
      }
    }
    // Normalize this connected component independently: scale by the
    // lcm of its denominators, then divide by the gcd.
    std::int64_t den_lcm = 1;
    for (const std::size_t v : queue) den_lcm = lcm64(den_lcm, rate[v].den());
    std::int64_t g = 0;
    for (const std::size_t v : queue) {
      q[v] = rate[v].num() * (den_lcm / rate[v].den());
      g = std::gcd(g, q[v]);
    }
    if (g > 1) {
      for (const std::size_t v : queue) q[v] /= g;
    }
  }
  return q;
}

HsdfExpansion expand_to_hsdf(const SdfGraph& sdf) {
  const std::vector<std::int64_t> q = repetition_vector(sdf);
  if (q.empty() && !sdf.actors.empty()) {
    throw std::invalid_argument("expand_to_hsdf: inconsistent SDF graph");
  }
  HsdfExpansion out{Graph(0, {}), {}, {}};
  const std::size_t n = sdf.actors.size();
  std::vector<NodeId> first_copy(n, 0);
  NodeId total = 0;
  for (std::size_t a = 0; a < n; ++a) {
    first_copy[a] = total;
    total += static_cast<NodeId>(q[a]);
  }
  GraphBuilder b(total);
  out.actor_of.resize(static_cast<std::size_t>(total));
  out.firing_of.resize(static_cast<std::size_t>(total));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::int64_t j = 0; j < q[a]; ++j) {
      const auto node = static_cast<std::size_t>(first_copy[a] + j);
      out.actor_of[node] = static_cast<NodeId>(a);
      out.firing_of[node] = j;
    }
  }

  // For channel (src, dst, p, c, d): consumer firing j (iteration I)
  // consumes stream tokens T = (I*qd + j)*c + {0..c-1}. With d initial
  // tokens, token T maps to producer global firing F = (T - d)/p when
  // T >= d. Within one iteration T < qd*c = qs*p, so for T >= d the
  // producing firing lies in the same iteration (F < qs): a delay-0
  // precedence arc to producer copy F mod qs. Tokens with T < d are
  // initially present; in steady state they are refilled by producer
  // firings `delay` iterations earlier — computed below by viewing the
  // same token from a later iteration K where its producer exists.
  for (const SdfChannel& ch : sdf.channels) {
    const std::int64_t qs = q[static_cast<std::size_t>(ch.src)];
    const std::int64_t qd = q[static_cast<std::size_t>(ch.dst)];
    const std::int64_t w = sdf.actors[static_cast<std::size_t>(ch.src)].exec_time;
    const std::int64_t per_iter = qd * ch.consume;  // == qs * ch.produce
    for (std::int64_t j = 0; j < qd; ++j) {
      std::vector<std::pair<std::int64_t, std::int64_t>> deps;  // (copy, delay)
      for (std::int64_t i = 0; i < ch.consume; ++i) {
        const std::int64_t token = j * ch.consume + i;
        std::int64_t produced_index = token - ch.initial_tokens;
        std::int64_t delay = 0;
        while (produced_index < 0) {
          // Initial token: view from `delay` iterations later until the
          // producing firing exists.
          produced_index += per_iter;
          ++delay;
        }
        const std::int64_t f = produced_index / ch.produce;
        const std::int64_t copy = f % qs;
        // The producing firing sits f/qs iterations after the viewing
        // origin; net backward delay:
        const std::int64_t net_delay = delay - f / qs;
        if (net_delay < 0) {
          throw std::logic_error("expand_to_hsdf: negative precedence delay");
        }
        deps.push_back({copy, net_delay});
      }
      std::sort(deps.begin(), deps.end());
      deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
      for (const auto& [copy, delay] : deps) {
        b.add_arc(first_copy[static_cast<std::size_t>(ch.src)] + static_cast<NodeId>(copy),
                  first_copy[static_cast<std::size_t>(ch.dst)] + static_cast<NodeId>(j),
                  w, delay);
      }
    }
  }
  out.graph = b.build();
  return out;
}

SdfAnalysis analyze_sdf(const SdfGraph& sdf) {
  SdfAnalysis out;
  out.repetitions = repetition_vector(sdf);
  out.consistent = !out.repetitions.empty() || sdf.actors.empty();
  if (!out.consistent) return out;

  const HsdfExpansion hsdf = expand_to_hsdf(sdf);
  // Deadlock: zero-delay precedence cycle.
  std::vector<ArcSpec> zero_arcs;
  for (ArcId a = 0; a < hsdf.graph.num_arcs(); ++a) {
    if (hsdf.graph.transit(a) == 0) {
      zero_arcs.push_back(ArcSpec{hsdf.graph.src(a), hsdf.graph.dst(a), 0, 0});
    }
  }
  out.deadlock_free = !has_cycle(Graph(hsdf.graph.num_nodes(), zero_arcs));
  if (!out.deadlock_free) return out;

  const CycleResult r = maximum_cycle_ratio(hsdf.graph, "howard_ratio");
  out.iteration_period = r.has_cycle ? r.value : Rational(0);
  return out;
}

}  // namespace mcr::apps
