// Synchronous dataflow (SDF) analysis — the DSP application domain of
// the paper's Ito & Parhi reference (Table 1 rows 15-17: "determining
// the minimum iteration period of an algorithm").
//
// A multirate SDF graph has actors with execution times and channels
// that produce/consume fixed token counts per firing, with initial
// tokens (delays). The standard analysis pipeline, implemented here on
// top of the mcr core:
//
//   1. consistency — solve the balance equations
//        q[src] * produce == q[dst] * consume        (per channel)
//      for the smallest positive integer repetition vector q (exact
//      rational arithmetic; inconsistent graphs have no bounded-memory
//      periodic schedule);
//   2. HSDF expansion — unfold each actor into its q copies and expand
//      every channel into precedence arcs with iteration-shift delays;
//   3. deadlock check — the zero-delay precedence subgraph must be
//      acyclic;
//   4. iteration period bound — the MAXIMUM cycle ratio (total
//      execution time / delays) of the expansion: no schedule, with
//      unlimited processors, completes an iteration faster.
#ifndef MCR_APPS_DATAFLOW_H
#define MCR_APPS_DATAFLOW_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/rational.h"

namespace mcr::apps {

struct SdfActor {
  std::int64_t exec_time = 1;
};

struct SdfChannel {
  NodeId src = 0;
  NodeId dst = 0;
  std::int64_t produce = 1;  // tokens produced per src firing
  std::int64_t consume = 1;  // tokens consumed per dst firing
  std::int64_t initial_tokens = 0;
};

struct SdfGraph {
  std::vector<SdfActor> actors;
  std::vector<SdfChannel> channels;
};

/// Smallest positive integer repetition vector, or empty if the graph
/// is inconsistent (rate mismatch around some cycle of channels).
/// Disconnected graphs get independent minimal components.
[[nodiscard]] std::vector<std::int64_t> repetition_vector(const SdfGraph& sdf);

struct HsdfExpansion {
  /// Precedence event graph: one node per (actor, firing index) pair;
  /// arc weight = source copy's execution time, transit = iteration
  /// delay (0 = same iteration).
  Graph graph;
  /// actor_of[node] = original actor, firing_of[node] = firing index.
  std::vector<NodeId> actor_of;
  std::vector<std::int64_t> firing_of;
};

/// Homogeneous expansion; requires a consistent graph (throws
/// std::invalid_argument otherwise).
[[nodiscard]] HsdfExpansion expand_to_hsdf(const SdfGraph& sdf);

struct SdfAnalysis {
  bool consistent = false;
  bool deadlock_free = false;
  /// Repetitions per actor per iteration (empty when inconsistent).
  std::vector<std::int64_t> repetitions;
  /// Minimum iteration period (valid when consistent && deadlock_free).
  /// Zero when the expansion has no cycle (fully pipelineable).
  Rational iteration_period;
  /// Throughput of actor a = repetitions[a] / iteration_period
  /// (callers compute; exposed via the two fields above).
};

/// Full pipeline: consistency, expansion, deadlock, iteration bound.
[[nodiscard]] SdfAnalysis analyze_sdf(const SdfGraph& sdf);

}  // namespace mcr::apps

#endif  // MCR_APPS_DATAFLOW_H
