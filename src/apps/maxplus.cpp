#include "apps/maxplus.h"

#include <limits>
#include <stdexcept>

#include "core/critical.h"
#include "core/problem.h"
#include "core/driver.h"
#include "graph/scc.h"
#include "graph/transforms.h"
#include "graph/traversal.h"

namespace mcr::apps {

namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min() / 4;

}  // namespace

MaxPlusSpectrum maxplus_spectrum(const Graph& g) {
  if (!is_strongly_connected(g) || !has_cycle(g)) {
    throw std::invalid_argument("maxplus_spectrum: graph must be strongly connected "
                                "and cyclic");
  }
  MaxPlusSpectrum out;
  const CycleResult mx = maximum_cycle_mean(g, "howard");
  out.eigenvalue = mx.value;

  // Critical structure of the max problem = critical structure of the
  // min problem on the negated graph at -lambda.
  const Graph neg = negate_weights(g);
  // Only nodes on critical *cycles* seed the eigenvector.
  const auto optimal_arcs = optimal_arc_set(neg, -out.eigenvalue, ProblemKind::kCycleMean);
  std::vector<bool> is_seed(static_cast<std::size_t>(g.num_nodes()), false);
  for (const ArcId a : optimal_arcs) {
    is_seed[static_cast<std::size_t>(g.src(a))] = true;
    is_seed[static_cast<std::size_t>(g.dst(a))] = true;
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (is_seed[static_cast<std::size_t>(v)]) out.critical_nodes.push_back(v);
  }

  // Eigenvector: longest-path distances from the critical nodes under
  // the scaled weights w' = w*den - num (no positive cycles remain).
  const std::int64_t den = out.eigenvalue.den();
  const std::int64_t num = out.eigenvalue.num();
  std::vector<std::int64_t>& x = out.scaled_eigenvector;
  x.assign(static_cast<std::size_t>(g.num_nodes()), kNegInf);
  for (const NodeId v : out.critical_nodes) x[static_cast<std::size_t>(v)] = 0;
  // Bellman-Ford style longest path; at most n passes (no positive cycle).
  for (NodeId pass = 0; pass <= g.num_nodes(); ++pass) {
    bool changed = false;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const std::int64_t xu = x[static_cast<std::size_t>(g.src(a))];
      if (xu == kNegInf) continue;
      const std::int64_t cand = xu + g.weight(a) * den - num;
      if (cand > x[static_cast<std::size_t>(g.dst(a))]) {
        x[static_cast<std::size_t>(g.dst(a))] = cand;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return out;
}

bool is_maxplus_eigenpair(const Graph& g, const Rational& eigenvalue,
                          const std::vector<std::int64_t>& scaled_vector) {
  if (scaled_vector.size() != static_cast<std::size_t>(g.num_nodes())) return false;
  const std::int64_t den = eigenvalue.den();
  const std::int64_t num = eigenvalue.num();
  // max over in-arcs of (x[u] + w*den - num) must equal x[v], for all v.
  std::vector<std::int64_t> best(static_cast<std::size_t>(g.num_nodes()), kNegInf);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const std::int64_t cand =
        scaled_vector[static_cast<std::size_t>(g.src(a))] + g.weight(a) * den - num;
    if (cand > best[static_cast<std::size_t>(g.dst(a))]) {
      best[static_cast<std::size_t>(g.dst(a))] = cand;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (best[static_cast<std::size_t>(v)] != scaled_vector[static_cast<std::size_t>(v)]) {
      return false;
    }
  }
  return true;
}

namespace {

CycleTimeVector cycle_time_impl(const Graph& g, ProblemKind kind) {
  const SccDecomposition scc = strongly_connected_components(g);
  const std::size_t num_comp = static_cast<std::size_t>(scc.num_components);
  std::vector<Rational> rate(num_comp);
  std::vector<bool> has(num_comp, false);

  // Own eigenvalue of each cyclic component.
  for (NodeId c = 0; c < scc.num_components; ++c) {
    if (!scc.component_is_cyclic[static_cast<std::size_t>(c)]) continue;
    const InducedSubgraph sub = induced_subgraph(g, scc, c);
    const CycleResult r = kind == ProblemKind::kCycleMean
                              ? maximum_cycle_mean(sub.graph, "howard")
                              : maximum_cycle_ratio(sub.graph, "howard_ratio");
    rate[static_cast<std::size_t>(c)] = r.value;
    has[static_cast<std::size_t>(c)] = true;
  }
  // Tarjan numbers components in reverse topological order (an arc
  // u -> v has comp(u) >= comp(v)); propagate rates downstream by
  // scanning components from sources (high ids) to sinks (low ids).
  // One pass over arcs per component would be quadratic; instead sweep
  // arcs grouped by source component id, descending.
  std::vector<std::vector<std::pair<NodeId, NodeId>>> cross(num_comp);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId cu = scc.component[static_cast<std::size_t>(g.src(a))];
    const NodeId cv = scc.component[static_cast<std::size_t>(g.dst(a))];
    if (cu != cv) cross[static_cast<std::size_t>(cu)].push_back({cu, cv});
  }
  for (std::size_t c = num_comp; c-- > 0;) {
    if (!has[c]) continue;
    for (const auto& [cu, cv] : cross[c]) {
      const auto dst = static_cast<std::size_t>(cv);
      if (!has[dst] || rate[dst] < rate[c]) {
        rate[dst] = rate[c];
        has[dst] = true;
      }
    }
  }

  CycleTimeVector out;
  out.chi.assign(static_cast<std::size_t>(g.num_nodes()), Rational(0));
  out.has_rate.assign(static_cast<std::size_t>(g.num_nodes()), false);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto c = static_cast<std::size_t>(scc.component[static_cast<std::size_t>(v)]);
    out.chi[static_cast<std::size_t>(v)] = rate[c];
    out.has_rate[static_cast<std::size_t>(v)] = has[c];
  }
  return out;
}

}  // namespace

CycleTimeVector maxplus_cycle_time(const Graph& g) {
  return cycle_time_impl(g, ProblemKind::kCycleMean);
}

CycleTimeVector maxplus_cycle_time_ratio(const Graph& g) {
  return cycle_time_impl(g, ProblemKind::kCycleRatio);
}

}  // namespace mcr::apps
