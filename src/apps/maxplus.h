// Max-plus spectral analysis of timed event graphs.
//
// The DAC'99 paper's Howard reference (Cochet-Terrasson et al., "Numerical
// computation of spectral elements in max-plus algebra") frames MCM as
// an eigenproblem: for the max-plus matrix A with A[v][u] = w(u, v)
// (-inf where no arc), a strongly connected graph has a unique
// eigenvalue lambda = the MAXIMUM cycle mean, with eigenvectors x
// satisfying  max_u (x[u] + w(u, v)) = lambda + x[v]  for every v.
//
// In discrete event systems x is the stationary schedule: firing node v
// at time x[v] + k*lambda for k = 0, 1, ... respects every precedence
// arc with delay w. This module computes the spectrum from the library
// primitives: lambda from maximum_cycle_mean, the eigenvector from
// longest-path distances out of the critical nodes, and the per-SCC
// cycle-time vector for non-strongly-connected systems.
#ifndef MCR_APPS_MAXPLUS_H
#define MCR_APPS_MAXPLUS_H

#include <vector>

#include "graph/graph.h"
#include "support/rational.h"

namespace mcr::apps {

struct MaxPlusSpectrum {
  /// The unique eigenvalue (maximum cycle mean).
  Rational eigenvalue;
  /// An eigenvector, scaled by eigenvalue.den(): x[v] = scaled[v]/den.
  /// Satisfies max_u (x[u] + w(u,v)) = eigenvalue + x[v] for all v.
  std::vector<std::int64_t> scaled_eigenvector;
  /// Nodes on critical (eigenvalue-achieving) cycles.
  std::vector<NodeId> critical_nodes;
};

/// Spectral elements of a strongly connected, cyclic graph. Throws
/// std::invalid_argument otherwise.
[[nodiscard]] MaxPlusSpectrum maxplus_spectrum(const Graph& g);

/// Cycle-time vector for an arbitrary graph: chi[v] = the asymptotic
/// growth rate of v's firing times = the largest eigenvalue among the
/// SCCs that can reach v (nodes in acyclic components that nothing
/// cyclic feeds have no rate; their entry is nullopt-like, encoded as
/// has_rate[v] = false).
struct CycleTimeVector {
  std::vector<Rational> chi;
  std::vector<bool> has_rate;
};
[[nodiscard]] CycleTimeVector maxplus_cycle_time(const Graph& g);

/// Ratio flavor: per-SCC rate = maximum cycle ratio w(C)/t(C) (delay
/// per token) instead of the mean — the cycle-time vector of a timed
/// event graph whose arcs carry t initial tokens (see apps/selftimed.h).
[[nodiscard]] CycleTimeVector maxplus_cycle_time_ratio(const Graph& g);

/// Checks the eigen equation exactly; used by tests and exposed for
/// callers validating externally produced schedules.
[[nodiscard]] bool is_maxplus_eigenpair(const Graph& g, const Rational& eigenvalue,
                                        const std::vector<std::int64_t>& scaled_vector);

}  // namespace mcr::apps

#endif  // MCR_APPS_MAXPLUS_H
