#include "apps/retiming.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/driver.h"
#include "graph/bellman_ford.h"
#include "graph/builder.h"
#include "graph/traversal.h"

namespace mcr::apps {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

void validate(const Graph& g, std::span<const std::int64_t> gate_delay) {
  if (gate_delay.size() != static_cast<std::size_t>(g.num_nodes())) {
    throw std::invalid_argument("retiming: gate_delay size mismatch");
  }
  for (const std::int64_t d : gate_delay) {
    if (d < 0) throw std::invalid_argument("retiming: negative gate delay");
  }
  std::vector<ArcSpec> zero_arcs;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.weight(a) < 0) {
      throw std::invalid_argument("retiming: negative register count");
    }
    if (g.weight(a) == 0) zero_arcs.push_back(ArcSpec{g.src(a), g.dst(a), 0, 0});
  }
  if (!zero_arcs.empty() && has_cycle(Graph(g.num_nodes(), zero_arcs))) {
    throw std::invalid_argument("retiming: combinational loop (zero-register cycle)");
  }
}

/// Longest register-free-path delay ending at each node.
std::int64_t period_of(const Graph& g, std::span<const std::int64_t> gate_delay) {
  std::vector<ArcSpec> zero_arcs;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.weight(a) == 0) {
      zero_arcs.push_back(ArcSpec{g.src(a), g.dst(a), 0, 0});
    }
  }
  const Graph zero_sub(g.num_nodes(), zero_arcs);
  const std::vector<NodeId> topo = topological_order(zero_sub);
  std::vector<std::int64_t> ending(static_cast<std::size_t>(g.num_nodes()), 0);
  std::int64_t period = 0;
  for (const NodeId v : topo) {
    std::int64_t best = 0;
    for (const ArcId a : zero_sub.in_arcs(v)) {
      best = std::max(best, ending[static_cast<std::size_t>(zero_sub.src(a))]);
    }
    ending[static_cast<std::size_t>(v)] = best + gate_delay[static_cast<std::size_t>(v)];
    period = std::max(period, ending[static_cast<std::size_t>(v)]);
  }
  return period;
}

struct WdMatrices {
  // Row-major n x n; W = min registers on any u->v path, D = max delay
  // among the register-minimal paths. kInf in W marks "no path".
  std::vector<std::int64_t> w;
  std::vector<std::int64_t> d;
};

/// All-pairs lexicographic shortest paths (Floyd-Warshall on the pair
/// (registers, -delay)); the Leiserson-Saxe W/D matrices.
WdMatrices compute_wd(const Graph& g, std::span<const std::int64_t> gate_delay) {
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  WdMatrices out;
  out.w.assign(n * n, kInf);
  out.d.assign(n * n, 0);
  const auto at = [n](std::vector<std::int64_t>& v, std::size_t i, std::size_t j)
      -> std::int64_t& { return v[i * n + j]; };

  // Arc base cases: pair cost (w(e), -d(src)).
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto u = static_cast<std::size_t>(g.src(a));
    const auto v = static_cast<std::size_t>(g.dst(a));
    if (u == v) continue;  // self-loop: never on a simple u->v path
    const std::int64_t wr = g.weight(a);
    const std::int64_t neg_d = -gate_delay[u];
    if (wr < at(out.w, u, v) ||
        (wr == at(out.w, u, v) && neg_d < at(out.d, u, v))) {
      at(out.w, u, v) = wr;
      at(out.d, u, v) = neg_d;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t wik = at(out.w, i, k);
      if (wik == kInf) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const std::int64_t wkj = at(out.w, k, j);
        if (wkj == kInf) continue;
        const std::int64_t cand_w = wik + wkj;
        const std::int64_t cand_d = at(out.d, i, k) + at(out.d, k, j);
        if (cand_w < at(out.w, i, j) ||
            (cand_w == at(out.w, i, j) && cand_d < at(out.d, i, j))) {
          at(out.w, i, j) = cand_w;
          at(out.d, i, j) = cand_d;
        }
      }
    }
  }
  // Convert -delay(prefix) into D(u,v) = delay of the whole path
  // including v's own gate delay.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (at(out.w, i, j) != kInf) {
        at(out.d, i, j) =
            -at(out.d, i, j) + static_cast<std::int64_t>(gate_delay[j]);
      }
    }
  }
  return out;
}

/// Feasibility of clock period c: solve the difference constraints by
/// Bellman-Ford on the constraint graph; returns labels or empty.
std::vector<std::int64_t> feasible_retiming(const Graph& g,
                                            std::span<const std::int64_t> gate_delay,
                                            const WdMatrices& wd, std::int64_t c) {
  const NodeId n = g.num_nodes();
  const std::size_t un = static_cast<std::size_t>(n);
  GraphBuilder b(n);
  std::vector<std::int64_t> costs;
  // r(u) - r(v) <= w(e): constraint arc v -> u with cost w(e).
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    b.add_arc(g.dst(a), g.src(a), 0);
    costs.push_back(g.weight(a));
  }
  // r(u) - r(v) <= W(u,v) - 1 whenever D(u,v) > c.
  for (std::size_t u = 0; u < un; ++u) {
    for (std::size_t v = 0; v < un; ++v) {
      if (u == v) continue;
      if (wd.w[u * un + v] == kInf) continue;
      if (wd.d[u * un + v] > c) {
        b.add_arc(static_cast<NodeId>(v), static_cast<NodeId>(u), 0);
        costs.push_back(wd.w[u * un + v] - 1);
      }
    }
  }
  // Node delays themselves must fit: d(v) > c is infeasible outright.
  for (std::size_t v = 0; v < un; ++v) {
    if (gate_delay[v] > c) return {};
  }
  const Graph constraint = b.build();
  const BellmanFordResult bf = bellman_ford_all(constraint, costs);
  if (bf.has_negative_cycle) return {};
  return bf.dist;  // r(v) = dist(v) satisfies all constraints
}

}  // namespace

std::int64_t clock_period(const Graph& circuit, std::span<const std::int64_t> gate_delay) {
  validate(circuit, gate_delay);
  return period_of(circuit, gate_delay);
}

Graph apply_retiming(const Graph& circuit, std::span<const std::int64_t> labels) {
  if (labels.size() != static_cast<std::size_t>(circuit.num_nodes())) {
    throw std::invalid_argument("apply_retiming: label count mismatch");
  }
  std::vector<ArcSpec> arcs;
  arcs.reserve(static_cast<std::size_t>(circuit.num_arcs()));
  for (ArcId a = 0; a < circuit.num_arcs(); ++a) {
    const std::int64_t wr = circuit.weight(a) +
                            labels[static_cast<std::size_t>(circuit.dst(a))] -
                            labels[static_cast<std::size_t>(circuit.src(a))];
    if (wr < 0) throw std::invalid_argument("apply_retiming: illegal retiming");
    arcs.push_back(ArcSpec{circuit.src(a), circuit.dst(a), wr, circuit.transit(a)});
  }
  return Graph(circuit.num_nodes(), arcs);
}

RetimingResult min_period_retiming(const Graph& circuit,
                                   std::span<const std::int64_t> gate_delay) {
  validate(circuit, gate_delay);
  RetimingResult result;

  // Cycle-ratio lower bound: weight each arc with its source's gate
  // delay, transit with the register count.
  {
    GraphBuilder b(circuit.num_nodes());
    for (ArcId a = 0; a < circuit.num_arcs(); ++a) {
      b.add_arc(circuit.src(a), circuit.dst(a),
                gate_delay[static_cast<std::size_t>(circuit.src(a))],
                circuit.weight(a));
    }
    const CycleResult r = maximum_cycle_ratio(b.build(), "howard_ratio");
    result.has_cycle = r.has_cycle;
    if (r.has_cycle) result.cycle_ratio_bound = r.value;
  }

  const WdMatrices wd = compute_wd(circuit, gate_delay);

  // Candidate periods: the distinct D values plus the max single delay.
  std::vector<std::int64_t> candidates;
  candidates.reserve(wd.d.size() + 1);
  const std::size_t un = static_cast<std::size_t>(circuit.num_nodes());
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t j = 0; j < un; ++j) {
      if (i != j && wd.w[i * un + j] != kInf) candidates.push_back(wd.d[i * un + j]);
    }
  }
  for (std::size_t v = 0; v < un; ++v) {
    candidates.push_back(gate_delay[v]);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  // Binary search the smallest feasible candidate.
  std::size_t lo = 0;
  std::size_t hi = candidates.size();  // candidates[hi-1] is always feasible
  std::vector<std::int64_t> best_labels;
  std::int64_t best_period = -1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    auto labels = feasible_retiming(circuit, gate_delay, wd, candidates[mid]);
    if (!labels.empty() || circuit.num_arcs() == 0) {
      best_labels = std::move(labels);
      best_period = candidates[mid];
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (best_period < 0) {
    throw std::logic_error("min_period_retiming: no feasible period found");
  }
  if (best_labels.empty()) {
    best_labels.assign(un, 0);
  }

  result.period = best_period;
  result.labels = std::move(best_labels);
  result.retimed_registers.reserve(static_cast<std::size_t>(circuit.num_arcs()));
  for (ArcId a = 0; a < circuit.num_arcs(); ++a) {
    result.retimed_registers.push_back(
        circuit.weight(a) + result.labels[static_cast<std::size_t>(circuit.dst(a))] -
        result.labels[static_cast<std::size_t>(circuit.src(a))]);
  }
  return result;
}

}  // namespace mcr::apps
