// Minimum clock-period retiming (Leiserson & Saxe, "Retiming
// synchronous circuitry", Algorithmica 1991) — the flagship CAD
// application of cycle-ratio analysis (§1.1 of the DAC'99 paper).
//
// Circuit model: nodes are combinational gates with delay d(v) >= 0;
// an arc e = (u, v) with *register count* w(e) >= 0 (stored in the
// Graph's weight field; transit is unused) carries u's output through
// w(e) flip-flops into v. The clock period is the largest total gate
// delay along any register-free path. A retiming r : V -> Z moves
// registers across gates, w_r(e) = w(e) + r(v) - r(u), preserving
// behaviour; minimum-period retiming finds the r minimizing the period.
//
// Connection to this library: the best achievable period is lower-
// bounded by the maximum cycle ratio  max_C (total gate delay on C) /
// (registers on C) — no retiming can change either cycle sum. The
// implementation reports that bound (computed with the library's
// maximum_cycle_ratio) next to the achieved optimum.
//
// Algorithm: the classic OPT1 — W/D matrices by all-pairs lexicographic
// shortest paths (O(n^3)), binary search over the distinct D values,
// feasibility of a candidate period by Bellman-Ford over the difference
// constraints. Intended for circuits up to a few thousand gates.
#ifndef MCR_APPS_RETIMING_H
#define MCR_APPS_RETIMING_H

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "support/rational.h"

namespace mcr::apps {

struct RetimingResult {
  /// The minimum achievable clock period.
  std::int64_t period = 0;
  /// Retiming labels r(v); registers move as w_r(e) = w(e)+r(dst)-r(src).
  std::vector<std::int64_t> labels;
  /// Register counts after retiming, indexed by arc id.
  std::vector<std::int64_t> retimed_registers;
  /// The cycle-ratio lower bound max_C delay(C)/registers(C); the
  /// achieved period always satisfies period >= ceil-ish of this bound.
  Rational cycle_ratio_bound;
  /// True iff the graph has a cycle (the bound is meaningless otherwise).
  bool has_cycle = false;
};

/// Clock period of the circuit as-is: the maximum total gate delay over
/// register-free paths. Throws std::invalid_argument on a combinational
/// loop (a cycle with zero registers) or negative delays/registers.
[[nodiscard]] std::int64_t clock_period(const Graph& circuit,
                                        std::span<const std::int64_t> gate_delay);

/// Minimum-period retiming. Requirements as clock_period. The returned
/// labels give a legal retiming (all retimed register counts >= 0)
/// achieving `period`, which is minimal over all retimings.
[[nodiscard]] RetimingResult min_period_retiming(const Graph& circuit,
                                                 std::span<const std::int64_t> gate_delay);

/// The circuit with registers redistributed per `labels` (weights
/// become the retimed register counts; delays/transits unchanged).
[[nodiscard]] Graph apply_retiming(const Graph& circuit,
                                   std::span<const std::int64_t> labels);

}  // namespace mcr::apps

#endif  // MCR_APPS_RETIMING_H
