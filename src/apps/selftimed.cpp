#include "apps/selftimed.h"

#include <algorithm>
#include <stdexcept>

#include "apps/maxplus.h"
#include "graph/traversal.h"

namespace mcr::apps {

double SimulationResult::measured_rate(NodeId v) const {
  if (iterations < 4) return 0.0;
  const std::int64_t k1 = iterations / 2;
  const std::int64_t k2 = iterations - 1;
  return static_cast<double>(at(k2, v) - at(k1, v)) / static_cast<double>(k2 - k1);
}

SimulationResult simulate_self_timed(const Graph& g, std::int64_t iterations) {
  if (iterations < 1) throw std::invalid_argument("simulate_self_timed: iterations >= 1");
  const NodeId n = g.num_nodes();
  const std::size_t un = static_cast<std::size_t>(n);

  // Validate and find the zero-token subgraph's topological order (for
  // same-iteration dependencies).
  std::vector<ArcSpec> zero_arcs;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.weight(a) < 0) {
      throw std::invalid_argument("simulate_self_timed: negative delay");
    }
    if (g.transit(a) < 0) {
      throw std::invalid_argument("simulate_self_timed: negative token count");
    }
    if (g.transit(a) == 0) {
      zero_arcs.push_back(ArcSpec{g.src(a), g.dst(a), 0, 0});
    }
  }
  std::vector<NodeId> order;
  if (zero_arcs.empty()) {
    order.resize(un);
    for (NodeId v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  } else {
    order = topological_order(Graph(n, zero_arcs));
    if (order.empty()) {
      throw std::invalid_argument("simulate_self_timed: token-free cycle (deadlock)");
    }
  }

  SimulationResult out;
  out.iterations = iterations;
  out.num_nodes = n;
  out.firing.assign(static_cast<std::size_t>(iterations) * un, 0);

  for (std::int64_t k = 0; k < iterations; ++k) {
    for (const NodeId v : order) {
      std::int64_t t = 0;
      for (const ArcId a : g.in_arcs(v)) {
        const std::int64_t kk = k - g.transit(a);
        if (kk < 0) {
          // Initial tokens were available at time 0; the firing still
          // waits for the arc's delay measured from t = 0.
          t = std::max(t, g.weight(a));
          continue;
        }
        t = std::max(t, out.at(kk, g.src(a)) + g.weight(a));
      }
      out.firing[static_cast<std::size_t>(k) * un + static_cast<std::size_t>(v)] = t;
    }
  }
  return out;
}

std::vector<Rational> analytic_rates(const Graph& g) {
  // The simulator's recurrence uses arc delay as "weight" and tokens as
  // "transit"; the cycle-time vector of exactly that system comes from
  // apps::maxplus_cycle_time on the same graph.
  const CycleTimeVector chi = maxplus_cycle_time_ratio(g);
  std::vector<Rational> out(static_cast<std::size_t>(g.num_nodes()), Rational(0));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (chi.has_rate[static_cast<std::size_t>(v)]) {
      out[static_cast<std::size_t>(v)] = chi.chi[static_cast<std::size_t>(v)];
    }
  }
  return out;
}

}  // namespace mcr::apps
