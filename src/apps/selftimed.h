// Self-timed (data-driven) execution of a timed event graph — the
// operational ground truth behind cycle-mean/ratio analysis.
//
// Model: a marked event graph. Arc e = (u, v) with delay w(e) >= 0 and
// t(e) initial tokens means v's k-th firing needs u's (k - t(e))-th
// firing completed w(e) time earlier:
//     x_k(v) = max over in-arcs e=(u,v) of  x_{k - t(e)}(u) + w(e),
// with x_j(u) = 0 for j < 0 (all initial tokens available at time 0).
//
// The fundamental theorem of such systems (Baccelli et al. [3] in the
// paper) says firing times grow linearly: x_k(v) = chi(v) * k + O(1)
// where chi(v) is exactly the max-plus cycle-time vector — the maximum
// cycle ratio delay(C)/tokens(C) over cycles that reach v. The paper's
// algorithms compute chi analytically; this simulator produces it
// operationally, and the test suite checks they agree. It is also the
// tool a user reaches for when the question is about transients (time
// to enter the periodic regime), not just the asymptotic rate.
#ifndef MCR_APPS_SELFTIMED_H
#define MCR_APPS_SELFTIMED_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/rational.h"

namespace mcr::apps {

struct SimulationResult {
  /// firing[k * n + v] = completion time of v's k-th firing.
  std::vector<std::int64_t> firing;
  std::int64_t iterations = 0;
  NodeId num_nodes = 0;

  [[nodiscard]] std::int64_t at(std::int64_t k, NodeId v) const {
    return firing[static_cast<std::size_t>(k) * static_cast<std::size_t>(num_nodes) +
                  static_cast<std::size_t>(v)];
  }

  /// Empirical rate of node v over the second half of the run.
  [[nodiscard]] double measured_rate(NodeId v) const;
};

/// Simulates `iterations` firings of every node. Requirements: delays
/// >= 0, tokens >= 0, and no token-free cycle (validated; such a cycle
/// would deadlock the system). O(iterations * m) time.
[[nodiscard]] SimulationResult simulate_self_timed(const Graph& g,
                                                   std::int64_t iterations);

/// The analytic rate per node (max cycle ratio delay/tokens over cycles
/// reaching v) — the prediction the simulator must converge to. Nodes
/// no cycle reaches fire at t=O(1) forever (rate 0).
[[nodiscard]] std::vector<Rational> analytic_rates(const Graph& g);

}  // namespace mcr::apps

#endif  // MCR_APPS_SELFTIMED_H
