#include "benchkit/artifact.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/trace_recorder.h"  // json_escape
#include "support/table.h"

namespace mcr::bench {

namespace {

/// Shortest round-trip double formatting; JSON has no NaN/Inf, so
/// non-finite values (which our pipeline never produces) become 0.
std::string fmt_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) return probe;
  }
  return buf;
}

void append_string(std::string& out, std::string_view s) {
  out += '"';
  obs::json_escape(out, s);
  out += '"';
}

void append_kv(std::string& out, std::string_view key, std::string_view value) {
  append_string(out, key);
  out += ':';
  append_string(out, value);
}

void append_kv_num(std::string& out, std::string_view key, double value) {
  append_string(out, key);
  out += ':';
  out += fmt_number(value);
}

void append_map(std::string& out, const std::map<std::string, double>& map) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : map) {
    if (!first) out += ',';
    first = false;
    append_kv_num(out, key, value);
  }
  out += '}';
}

std::map<std::string, double> map_from_json(const json::Value& v) {
  std::map<std::string, double> out;
  for (const auto& [key, value] : v.as_object()) {
    out[key] = value.as_double();
  }
  return out;
}

SampleStats stats_from_json(const json::Value& v) {
  SampleStats s;
  s.median = v.number_or("median", 0.0);
  s.mad = v.number_or("mad", 0.0);
  s.ci_lower = v.number_or("ci_lower", s.median);
  s.ci_upper = v.number_or("ci_upper", s.median);
  if (v.has("samples")) {
    for (const json::Value& sample : v.at("samples").as_array()) {
      s.samples.push_back(sample.as_double());
    }
  }
  return s;
}

std::string cell_key(const std::string& workload, const std::string& instance,
                     const std::string& solver) {
  return workload + '\x1f' + instance + '\x1f' + solver;
}

}  // namespace

std::string artifact_json(const BenchArtifact& artifact) {
  std::string out;
  out.reserve(4096 + artifact.cells.size() * 512);
  out += "{";
  append_kv(out, "schema", "mcr-bench");
  out += ',';
  append_kv_num(out, "schema_version", artifact.schema_version);
  out += ',';
  append_kv(out, "name", artifact.name);
  out += ',';
  append_kv(out, "scale", artifact.scale);
  out += ',';
  append_kv_num(out, "warmup", artifact.warmup);
  out += ',';
  append_kv_num(out, "repetitions", artifact.repetitions);
  out += ',';
  append_kv(out, "counters", artifact.counters_backend);
  if (!artifact.counters_fallback_reason.empty()) {
    out += ',';
    append_kv(out, "counters_fallback_reason", artifact.counters_fallback_reason);
  }
  out += ',';
  append_string(out, "build");
  out += ":{";
  append_kv(out, "git_sha", artifact.build.git_sha);
  out += ',';
  append_kv(out, "compiler", artifact.build.compiler);
  out += ',';
  append_kv(out, "flags", artifact.build.flags);
  out += ',';
  append_kv(out, "build_type", artifact.build.build_type);
  out += ',';
  append_kv(out, "cpu_model", artifact.build.cpu_model);
  out += ',';
  append_kv(out, "governor", artifact.build.governor);
  out += ',';
  append_kv_num(out, "hardware_threads", artifact.build.hardware_threads);
  out += "},";
  append_string(out, "cells");
  out += ":[";
  bool first_cell = true;
  for (const BenchCell& cell : artifact.cells) {
    if (!first_cell) out += ',';
    first_cell = false;
    out += '{';
    append_kv(out, "workload", cell.workload);
    out += ',';
    append_kv(out, "instance", cell.instance);
    out += ',';
    append_kv_num(out, "n", cell.n);
    out += ',';
    append_kv_num(out, "m", cell.m);
    out += ',';
    append_kv(out, "solver", cell.solver);
    out += ',';
    append_string(out, "ran");
    out += cell.ran ? ":true" : ":false";
    if (!cell.ran) {
      out += ',';
      append_kv(out, "skip_reason", cell.skip_reason);
      out += '}';
      continue;
    }
    out += ',';
    append_string(out, "seconds");
    out += ":{";
    append_kv_num(out, "median", cell.seconds.median);
    out += ',';
    append_kv_num(out, "mad", cell.seconds.mad);
    out += ',';
    append_kv_num(out, "ci_lower", cell.seconds.ci_lower);
    out += ',';
    append_kv_num(out, "ci_upper", cell.seconds.ci_upper);
    out += ',';
    append_string(out, "samples");
    out += ":[";
    for (std::size_t i = 0; i < cell.seconds.samples.size(); ++i) {
      if (i != 0) out += ',';
      out += fmt_number(cell.seconds.samples[i]);
    }
    out += "]},";
    append_string(out, "phases");
    out += ':';
    append_map(out, cell.phases);
    out += ',';
    append_string(out, "counters");
    out += ':';
    if (cell.counters_available) {
      append_map(out, cell.counters);
    } else {
      append_string(out, "unavailable");
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void write_artifact(std::ostream& os, const BenchArtifact& artifact) {
  os << artifact_json(artifact) << '\n';
}

BenchArtifact artifact_from_json(const json::Value& doc) {
  BenchArtifact a;
  if (doc.string_or("schema", "") != "mcr-bench") {
    throw std::runtime_error("not an mcr-bench artifact (missing schema marker)");
  }
  a.schema_version = static_cast<int>(doc.at("schema_version").as_double());
  if (a.schema_version > kBenchSchemaVersion) {
    throw std::runtime_error(
        "artifact schema_version " + std::to_string(a.schema_version) +
        " is newer than this binary (" + std::to_string(kBenchSchemaVersion) + ")");
  }
  a.name = doc.string_or("name", "");
  a.scale = doc.string_or("scale", "");
  a.warmup = static_cast<int>(doc.number_or("warmup", 0));
  a.repetitions = static_cast<int>(doc.number_or("repetitions", 0));
  a.counters_backend = doc.string_or("counters", "unavailable");
  a.counters_fallback_reason = doc.string_or("counters_fallback_reason", "");
  if (doc.has("build")) {
    const json::Value& b = doc.at("build");
    a.build.git_sha = b.string_or("git_sha", "unknown");
    a.build.compiler = b.string_or("compiler", "unknown");
    a.build.flags = b.string_or("flags", "");
    a.build.build_type = b.string_or("build_type", "");
    a.build.cpu_model = b.string_or("cpu_model", "unknown");
    a.build.governor = b.string_or("governor", "unknown");
    a.build.hardware_threads = static_cast<int>(b.number_or("hardware_threads", 0));
  }
  for (const json::Value& c : doc.at("cells").as_array()) {
    BenchCell cell;
    cell.workload = c.at("workload").as_string();
    cell.instance = c.at("instance").as_string();
    cell.n = static_cast<NodeId>(c.number_or("n", 0));
    cell.m = static_cast<ArcId>(c.number_or("m", 0));
    cell.solver = c.at("solver").as_string();
    cell.ran = c.at("ran").as_bool();
    if (!cell.ran) {
      cell.skip_reason = c.string_or("skip_reason", "");
    } else {
      cell.seconds = stats_from_json(c.at("seconds"));
      if (c.has("phases")) cell.phases = map_from_json(c.at("phases"));
      if (c.has("counters") && c.at("counters").is_object()) {
        cell.counters = map_from_json(c.at("counters"));
        cell.counters_available = true;
      }
    }
    a.cells.push_back(std::move(cell));
  }
  return a;
}

BenchArtifact load_artifact(const std::string& path) {
  return artifact_from_json(json::parse_file(path));
}

DiffReport diff_artifacts(const BenchArtifact& baseline,
                          const BenchArtifact& candidate,
                          const DiffOptions& options) {
  DiffReport report;
  std::map<std::string, const BenchCell*> candidate_cells;
  for (const BenchCell& cell : candidate.cells) {
    candidate_cells[cell_key(cell.workload, cell.instance, cell.solver)] = &cell;
  }

  for (const BenchCell& base : baseline.cells) {
    CellDiff d;
    d.workload = base.workload;
    d.instance = base.instance;
    d.solver = base.solver;
    const std::string key = cell_key(base.workload, base.instance, base.solver);
    const auto it = candidate_cells.find(key);
    if (it == candidate_cells.end()) {
      d.note = "missing in candidate";
      ++report.incomparable;
      report.cells.push_back(std::move(d));
      continue;
    }
    const BenchCell& cand = *it->second;
    candidate_cells.erase(it);
    if (!base.ran || !cand.ran) {
      if (base.ran != cand.ran) {
        d.note = base.ran ? "newly skipped: " + cand.skip_reason
                          : "newly runs (was " + base.skip_reason + ")";
        ++report.incomparable;
      }  // both skipped: silently fine, not even listed
      report.cells.push_back(std::move(d));
      continue;
    }
    d.comparable = true;
    d.baseline_median = base.seconds.median;
    d.candidate_median = cand.seconds.median;
    if (base.seconds.median > 0.0) {
      d.delta_pct =
          (cand.seconds.median - base.seconds.median) / base.seconds.median * 100.0;
    }
    // Perf counters: compare only fields both sides recorded. Whether a
    // run has counters at all depends on the machine (perf_event_open
    // permissions), so availability asymmetry is a note, not a verdict.
    if (base.counters_available != cand.counters_available) {
      d.note = base.counters_available ? "counters: baseline only"
                                       : "counters: candidate only";
    } else if (base.counters_available) {
      for (const auto& [field, base_value] : base.counters) {
        const auto cit = cand.counters.find(field);
        if (cit == cand.counters.end() || base_value == 0.0) continue;
        d.counter_delta_pct[field] =
            (cit->second - base_value) / base_value * 100.0;
      }
    }
    const double threshold = options.threshold_pct;
    // Regression: slower than the threshold AND outside the baseline's
    // CI (so a wide, noisy baseline cannot flag).
    if (d.delta_pct > threshold && cand.seconds.median > base.seconds.ci_upper) {
      d.regression = true;
      ++report.regressions;
    } else if (d.delta_pct < -threshold &&
               cand.seconds.median < base.seconds.ci_lower) {
      d.improvement = true;
      ++report.improvements;
    }
    report.cells.push_back(std::move(d));
  }
  // Cells only the candidate has: informational.
  for (const auto& [key, cell] : candidate_cells) {
    (void)key;
    CellDiff d;
    d.workload = cell->workload;
    d.instance = cell->instance;
    d.solver = cell->solver;
    d.note = "new in candidate";
    ++report.incomparable;
    report.cells.push_back(std::move(d));
  }
  return report;
}

void print_diff(std::ostream& os, const DiffReport& report, bool all_cells) {
  TextTable table({"workload", "instance", "solver", "baseline", "candidate",
                   "delta", "verdict"});
  std::size_t listed = 0;
  for (const CellDiff& d : report.cells) {
    const bool interesting = d.regression || d.improvement || !d.note.empty();
    if (!all_cells && !interesting) continue;
    ++listed;
    std::string verdict = "ok";
    if (d.regression) verdict = "REGRESSION";
    else if (d.improvement) verdict = "improved";
    else if (!d.note.empty()) verdict = d.note;
    table.add_row({d.workload, d.instance, d.solver,
                   d.comparable ? fmt_ms(d.baseline_median) : "-",
                   d.comparable ? fmt_ms(d.candidate_median) : "-",
                   d.comparable ? fmt_fixed(d.delta_pct, 1) + "%" : "-", verdict});
  }
  if (listed != 0) {
    table.print(os);
  } else if (!all_cells) {
    os << "(no per-cell changes to report)\n";
  }
  if (all_cells) {
    for (const CellDiff& d : report.cells) {
      if (d.counter_delta_pct.empty()) continue;
      os << "  counters " << d.workload << '/' << d.instance << '/' << d.solver
         << ':';
      for (const auto& [key, pct] : d.counter_delta_pct) {
        os << ' ' << key << ' ' << fmt_fixed(pct, 1) << '%';
      }
      os << '\n';
    }
  }
  os << report.cells.size() << " cells compared: " << report.regressions
     << " regression(s), " << report.improvements << " improvement(s), "
     << report.incomparable << " incomparable\n";
}

}  // namespace mcr::bench
