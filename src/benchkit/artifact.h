// BENCH_*.json artifacts — the machine-readable perf trajectory.
//
// One artifact is one run of a named workload grid (mcr_bench): every
// cell carries the robust timing summary (median/MAD/95% bootstrap CI),
// the driver phase breakdown, and hardware counters when
// perf_event_open is available. The schema is versioned so future PRs
// can evolve it without silently breaking mcr_bench_diff, and every
// artifact embeds BuildInfo so a number is always attributable to a
// binary and a machine.
//
// diff_artifacts() is the regression gate: a cell regresses when its
// median slows by more than the threshold AND lands above the
// baseline's CI upper bound — the CI guard keeps noisy micro-cells from
// flagging, the threshold keeps a tight CI from flagging a 0.3% drift.
#ifndef MCR_BENCHKIT_ARTIFACT_H
#define MCR_BENCHKIT_ARTIFACT_H

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "benchkit/runner.h"
#include "graph/graph.h"
#include "obs/build_info.h"
#include "support/json.h"

namespace mcr::bench {

inline constexpr int kBenchSchemaVersion = 1;

struct BenchCell {
  std::string workload;  // "sprand" | "sprand_ratio" | "circuit"
  std::string instance;  // "n128_m256" or the circuit name
  NodeId n = 0;
  ArcId m = 0;
  std::string solver;
  bool ran = false;
  std::string skip_reason;  // "mem" | "time" when !ran
  SampleStats seconds;
  std::map<std::string, double> phases;    // phase_breakdown() seconds
  std::map<std::string, double> counters;  // per-counter medians
  bool counters_available = false;
};

struct BenchArtifact {
  int schema_version = kBenchSchemaVersion;
  std::string name;   // grid name; file becomes BENCH_<name>.json
  std::string scale;  // bench scale the grid was built at
  int warmup = 0;
  int repetitions = 0;
  std::string counters_backend;  // "perf_event" | "unavailable"
  std::string counters_fallback_reason;  // errno name when unavailable
  obs::BuildInfo build;
  std::vector<BenchCell> cells;
};

/// Serializes the artifact as schema-versioned JSON (stable key order).
void write_artifact(std::ostream& os, const BenchArtifact& artifact);
[[nodiscard]] std::string artifact_json(const BenchArtifact& artifact);

/// Parses an artifact from a DOM / file. Throws std::runtime_error on a
/// schema_version newer than this binary understands or missing fields.
[[nodiscard]] BenchArtifact artifact_from_json(const json::Value& doc);
[[nodiscard]] BenchArtifact load_artifact(const std::string& path);

struct DiffOptions {
  double threshold_pct = 5.0;  // median slowdown needed to flag
};

struct CellDiff {
  std::string workload;
  std::string instance;
  std::string solver;
  bool comparable = false;  // both sides ran
  double baseline_median = 0.0;
  double candidate_median = 0.0;
  double delta_pct = 0.0;  // (candidate - baseline) / baseline * 100
  bool regression = false;
  bool improvement = false;
  std::string note;  // "missing in candidate", "skip: mem -> time", ...
  /// Per-counter relative deltas, computed only over counter fields
  /// present on BOTH sides (perf counters depend on kernel config, so a
  /// baseline recorded with perf_event and a candidate without — or the
  /// reverse — simply has no counter intersection). Availability
  /// asymmetry is reported via `note`, never as a regression.
  std::map<std::string, double> counter_delta_pct;
};

struct DiffReport {
  std::vector<CellDiff> cells;
  int regressions = 0;
  int improvements = 0;
  int incomparable = 0;
};

/// Compares candidate against baseline cell-by-cell (keyed on
/// workload/instance/solver). Candidate-only cells are reported as
/// incomparable, never as regressions.
[[nodiscard]] DiffReport diff_artifacts(const BenchArtifact& baseline,
                                        const BenchArtifact& candidate,
                                        const DiffOptions& options = {});

/// Per-cell table plus a verdict line ("2 regressions, ..."). When
/// `all_cells` is false only regressions/improvements/notes are listed.
void print_diff(std::ostream& os, const DiffReport& report, bool all_cells);

}  // namespace mcr::bench

#endif  // MCR_BENCHKIT_ARTIFACT_H
