#include "benchkit/report.h"

#include <filesystem>
#include <fstream>
#include <iostream>

#include "benchkit/workloads.h"
#include "obs/build_info.h"

namespace mcr::bench {

void emit(const std::string& title, const std::string& slug, const TextTable& table) {
  std::cout << '\n' << title << '\n';
  table.print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  if (!ec) {
    std::ofstream csv("bench_out/" + slug + ".csv");
    if (csv) {
      // Schema header: '#' comment lines before the CSV header row, so
      // downstream loaders can skip them (pandas: comment='#') while the
      // artifact stays self-describing (see docs/BENCHMARKING.md).
      const obs::BuildInfo& build = obs::build_info();
      csv << "# mcr-bench-csv v1: " << slug << "\n"
          << "# " << title << "\n"
          << "# scale=" << scale_name(bench_scale()) << " git_sha="
          << build.git_sha << " compiler=" << build.compiler << "\n";
      table.print_csv(csv);
      std::cout << "[csv: bench_out/" << slug << ".csv]\n";
      return;
    }
  }
  std::cout << "[csv not written for " << slug << "]\n";
}

void banner(const std::string& experiment, const std::string& reproduces) {
  std::cout << "=== " << experiment << " — reproduces " << reproduces
            << " (scale: " << scale_name(bench_scale())
            << "; set MCR_BENCH_SCALE=medium|full for more) ===\n";
}

}  // namespace mcr::bench
