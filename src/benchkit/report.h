// Report emission for the bench binaries: paper-style text tables on
// stdout plus CSV files under bench_out/ for downstream plotting.
#ifndef MCR_BENCHKIT_REPORT_H
#define MCR_BENCHKIT_REPORT_H

#include <string>

#include "support/table.h"

namespace mcr::bench {

/// Prints a titled table to stdout and, when possible, writes
/// bench_out/<slug>.csv (failures to write are reported, not fatal).
void emit(const std::string& title, const std::string& slug, const TextTable& table);

/// Prints the standard header for a bench binary: experiment id, the
/// paper table/figure it reproduces, and the active scale.
void banner(const std::string& experiment, const std::string& reproduces);

}  // namespace mcr::bench

#endif  // MCR_BENCHKIT_REPORT_H
