#include "benchkit/runner.h"

#include <algorithm>
#include <cmath>

#include "benchkit/workloads.h"
#include "core/driver.h"
#include "core/registry.h"
#include "obs/trace_recorder.h"
#include "support/prng.h"
#include "support/stats.h"

namespace mcr::bench {

namespace {

/// Median of an unsorted copy; 0 on empty input.
double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

}  // namespace

SampleStats summarize_samples(std::vector<double> samples, int resamples,
                              std::uint64_t seed) {
  SampleStats out;
  out.samples = std::move(samples);
  if (out.samples.empty()) return out;
  out.median = median_of(out.samples);

  std::vector<double> deviations;
  deviations.reserve(out.samples.size());
  for (const double x : out.samples) deviations.push_back(std::abs(x - out.median));
  out.mad = median_of(std::move(deviations));

  const auto [lo_it, hi_it] =
      std::minmax_element(out.samples.begin(), out.samples.end());
  if (out.samples.size() < 3 || resamples < 10) {
    // Too few points for a meaningful bootstrap: the honest interval is
    // the observed range.
    out.ci_lower = *lo_it;
    out.ci_upper = *hi_it;
    return out;
  }

  Prng prng(seed);
  std::vector<double> medians;
  medians.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> draw(out.samples.size());
  for (int r = 0; r < resamples; ++r) {
    for (double& d : draw) {
      d = out.samples[static_cast<std::size_t>(prng.uniform_int(
          0, static_cast<std::int64_t>(out.samples.size()) - 1))];
    }
    medians.push_back(median_of(draw));
  }
  std::sort(medians.begin(), medians.end());
  const auto pct = [&](double p) {
    const double pos = p * static_cast<double>(medians.size() - 1);
    const auto i = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(i);
    if (i + 1 >= medians.size()) return medians.back();
    return medians[i] * (1.0 - frac) + medians[i + 1] * frac;
  };
  out.ci_lower = pct(0.025);
  out.ci_upper = pct(0.975);
  return out;
}

RepeatedRun time_solver_repeated(const std::string& name, const Graph& g,
                                 const RepeatOptions& repeat,
                                 obs::PerfCounterGroup* perf,
                                 std::size_t mem_budget_bytes,
                                 const SolveOptions& options) {
  RepeatedRun out;
  if (estimated_bytes(name, g.num_nodes(), g.num_arcs()) > mem_budget_bytes) {
    out.skip_reason = "mem";
    return out;
  }
  const auto solver = SolverRegistry::instance().create(name);
  const auto solve_once = [&] {
    if (solver->kind() == ProblemKind::kCycleMean) {
      (void)minimum_cycle_mean(g, *solver, options);
    } else {
      (void)minimum_cycle_ratio(g, *solver, options);
    }
  };
  for (int w = 0; w < repeat.warmup; ++w) solve_once();

  const int reps = std::max(repeat.repetitions, 1);
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(reps));
  std::array<std::vector<double>, obs::kNumPerfCounters> counter_samples;
  std::array<bool, obs::kNumPerfCounters> counter_ok{};
  counter_ok.fill(perf != nullptr);
  for (int r = 0; r < reps; ++r) {
    if (perf != nullptr) perf->start();
    Timer timer;
    solve_once();
    seconds.push_back(timer.seconds());
    if (perf != nullptr) {
      const obs::PerfSample sample = perf->stop();
      for (std::size_t i = 0; i < obs::kNumPerfCounters; ++i) {
        if (!sample.available[i]) {
          counter_ok[i] = false;
        } else {
          counter_samples[i].push_back(static_cast<double>(sample.value[i]));
        }
      }
    }
  }
  out.seconds = summarize_samples(std::move(seconds));
  for (std::size_t i = 0; i < obs::kNumPerfCounters; ++i) {
    if (!counter_ok[i]) continue;
    out.counters.available[i] = true;
    out.counters.value[i] =
        static_cast<std::uint64_t>(median_of(counter_samples[i]));
  }
  out.counters.wall_seconds = out.seconds.median;
  out.ran = true;
  return out;
}

std::size_t estimated_bytes(const std::string& name, NodeId n, ArcId m) {
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t um = static_cast<std::size_t>(m);
  if (name == "karp") return (un + 1) * un * 8;
  if (name == "ho") return (un + 1) * un * 12;  // D + parent tables
  if (name == "dg") {
    // Worst case: every level touches every node (random graphs do).
    return (un + 1) * un * 12;
  }
  if (name == "ho_ratio") {
    // Theta(T n) rows; T <= 10 * m on the ratio workloads.
    return 10 * um * un * 8;
  }
  // Everything else is O(n + m).
  return (un + um) * 64;
}

TimedRun time_solver(const std::string& name, const Graph& g,
                     std::size_t mem_budget_bytes, const SolveOptions& options) {
  TimedRun out;
  if (estimated_bytes(name, g.num_nodes(), g.num_arcs()) > mem_budget_bytes) {
    out.skip_reason = "mem";
    return out;
  }
  const auto solver = SolverRegistry::instance().create(name);
  Timer timer;
  if (solver->kind() == ProblemKind::kCycleMean) {
    out.result = minimum_cycle_mean(g, *solver, options);
  } else {
    out.result = minimum_cycle_ratio(g, *solver, options);
  }
  out.seconds = timer.seconds();
  out.ran = true;
  return out;
}

std::map<std::string, double> phase_breakdown(const std::string& name, const Graph& g,
                                              const SolveOptions& options) {
  obs::TraceRecorder recorder;
  SolveOptions traced = options;
  traced.trace = &recorder;
  const auto solver = SolverRegistry::instance().create(name);
  if (solver->kind() == ProblemKind::kCycleMean) {
    (void)minimum_cycle_mean(g, *solver, traced);
  } else {
    (void)minimum_cycle_ratio(g, *solver, traced);
  }
  return recorder.span_totals();
}

TimedBatch time_solver_batch(const std::string& name, std::span<const Graph> graphs,
                             const SolveOptions& options) {
  const auto solver = SolverRegistry::instance().create(name);
  TimedBatch out;
  Timer timer;
  out.results = solve_many(graphs, *solver, options);
  out.seconds = timer.seconds();
  return out;
}

double default_time_budget() {
  switch (bench_scale()) {
    case Scale::kSmall:
      return 5.0;
    case Scale::kMedium:
      return 30.0;
    case Scale::kFull:
      return 3600.0;
  }
  return 5.0;
}

}  // namespace mcr::bench
