#include "benchkit/runner.h"

#include "benchkit/workloads.h"
#include "core/driver.h"
#include "core/registry.h"
#include "obs/trace_recorder.h"
#include "support/stats.h"

namespace mcr::bench {

std::size_t estimated_bytes(const std::string& name, NodeId n, ArcId m) {
  const std::size_t un = static_cast<std::size_t>(n);
  const std::size_t um = static_cast<std::size_t>(m);
  if (name == "karp") return (un + 1) * un * 8;
  if (name == "ho") return (un + 1) * un * 12;  // D + parent tables
  if (name == "dg") {
    // Worst case: every level touches every node (random graphs do).
    return (un + 1) * un * 12;
  }
  if (name == "ho_ratio") {
    // Theta(T n) rows; T <= 10 * m on the ratio workloads.
    return 10 * um * un * 8;
  }
  // Everything else is O(n + m).
  return (un + um) * 64;
}

TimedRun time_solver(const std::string& name, const Graph& g,
                     std::size_t mem_budget_bytes, const SolveOptions& options) {
  TimedRun out;
  if (estimated_bytes(name, g.num_nodes(), g.num_arcs()) > mem_budget_bytes) {
    out.skip_reason = "mem";
    return out;
  }
  const auto solver = SolverRegistry::instance().create(name);
  Timer timer;
  if (solver->kind() == ProblemKind::kCycleMean) {
    out.result = minimum_cycle_mean(g, *solver, options);
  } else {
    out.result = minimum_cycle_ratio(g, *solver, options);
  }
  out.seconds = timer.seconds();
  out.ran = true;
  return out;
}

std::map<std::string, double> phase_breakdown(const std::string& name, const Graph& g,
                                              const SolveOptions& options) {
  obs::TraceRecorder recorder;
  SolveOptions traced = options;
  traced.trace = &recorder;
  const auto solver = SolverRegistry::instance().create(name);
  if (solver->kind() == ProblemKind::kCycleMean) {
    (void)minimum_cycle_mean(g, *solver, traced);
  } else {
    (void)minimum_cycle_ratio(g, *solver, traced);
  }
  return recorder.span_totals();
}

TimedBatch time_solver_batch(const std::string& name, std::span<const Graph> graphs,
                             const SolveOptions& options) {
  const auto solver = SolverRegistry::instance().create(name);
  TimedBatch out;
  Timer timer;
  out.results = solve_many(graphs, *solver, options);
  out.seconds = timer.seconds();
  return out;
}

double default_time_budget() {
  switch (bench_scale()) {
    case Scale::kSmall:
      return 5.0;
    case Scale::kMedium:
      return 30.0;
    case Scale::kFull:
      return 3600.0;
  }
  return 5.0;
}

}  // namespace mcr::bench
