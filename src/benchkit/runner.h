// Timed solver execution with the guard rails the paper applied:
// quadratic-space algorithms are skipped (reported N/A) when the D
// table would not fit, and a per-solver time budget stops scaling a
// solver up once a row exceeds it ("we could not get a result in a
// day", Table 2 caption).
#ifndef MCR_BENCHKIT_RUNNER_H
#define MCR_BENCHKIT_RUNNER_H

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/driver.h"
#include "core/result.h"
#include "graph/graph.h"

namespace mcr::bench {

struct TimedRun {
  bool ran = false;        // false => N/A (guarded out)
  std::string skip_reason;  // "mem" or "time" when !ran
  double seconds = 0.0;
  CycleResult result;
};

/// Runs the registry solver `name` on g through the SCC driver, wall-
/// clock timed. Returns ran == false without running when the solver's
/// estimated memory exceeds `mem_budget_bytes`. `options` is forwarded
/// to the driver (per-SCC parallelism; the result is thread-count
/// independent).
[[nodiscard]] TimedRun time_solver(const std::string& name, const Graph& g,
                                   std::size_t mem_budget_bytes = 2ULL << 30,
                                   const SolveOptions& options = {});

/// Timed batch solve of many instances through solve_many — the
/// "serving" workload: one request stream, per-instance parallelism.
struct TimedBatch {
  double seconds = 0.0;
  std::vector<CycleResult> results;
};
[[nodiscard]] TimedBatch time_solver_batch(const std::string& name,
                                           std::span<const Graph> graphs,
                                           const SolveOptions& options = {});

/// Estimated peak scratch bytes for a solver on an (n, m) instance;
/// only the Karp-family quadratic-space algorithms matter.
[[nodiscard]] std::size_t estimated_bytes(const std::string& name, NodeId n, ArcId m);

/// Runs the registry solver `name` on g with an obs::TraceRecorder
/// installed and returns seconds spent per driver phase, keyed by span
/// kind ("solve", "scc_decompose", "component", "merge",
/// "witness_extract"). Component time is summed across worker threads,
/// so with num_threads > 1 it can exceed the enclosing solve span.
[[nodiscard]] std::map<std::string, double> phase_breakdown(
    const std::string& name, const Graph& g, const SolveOptions& options = {});

/// Tracks per-solver worst-case times; once a solver exceeds the budget
/// it is skipped for all subsequent (larger) instances, like the
/// paper's day-long cutoffs.
class TimeBudget {
 public:
  explicit TimeBudget(double per_run_seconds) : budget_(per_run_seconds) {}

  [[nodiscard]] bool should_skip(const std::string& name) const {
    const auto it = worst_.find(name);
    return it != worst_.end() && it->second > budget_;
  }
  void record(const std::string& name, double seconds) {
    auto& w = worst_[name];
    if (seconds > w) w = seconds;
  }

 private:
  double budget_;
  std::map<std::string, double> worst_;
};

/// Per-run time budget by scale: small 5s, medium 30s, full 3600s.
[[nodiscard]] double default_time_budget();

}  // namespace mcr::bench

#endif  // MCR_BENCHKIT_RUNNER_H
