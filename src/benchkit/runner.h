// Timed solver execution with the guard rails the paper applied:
// quadratic-space algorithms are skipped (reported N/A) when the D
// table would not fit, and a per-solver time budget stops scaling a
// solver up once a row exceeds it ("we could not get a result in a
// day", Table 2 caption) — plus the statistical layer behind the BENCH
// artifacts: warmup + repeated timing, median/MAD, and a bootstrap
// confidence interval so regression gates can tell noise from change.
#ifndef MCR_BENCHKIT_RUNNER_H
#define MCR_BENCHKIT_RUNNER_H

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/driver.h"
#include "core/result.h"
#include "graph/graph.h"
#include "obs/perf_counters.h"

namespace mcr::bench {

struct TimedRun {
  bool ran = false;        // false => N/A (guarded out)
  std::string skip_reason;  // "mem" or "time" when !ran
  double seconds = 0.0;
  CycleResult result;
};

/// Runs the registry solver `name` on g through the SCC driver, wall-
/// clock timed. Returns ran == false without running when the solver's
/// estimated memory exceeds `mem_budget_bytes`. `options` is forwarded
/// to the driver (per-SCC parallelism; the result is thread-count
/// independent).
[[nodiscard]] TimedRun time_solver(const std::string& name, const Graph& g,
                                   std::size_t mem_budget_bytes = 2ULL << 30,
                                   const SolveOptions& options = {});

/// Timed batch solve of many instances through solve_many — the
/// "serving" workload: one request stream, per-instance parallelism.
struct TimedBatch {
  double seconds = 0.0;
  std::vector<CycleResult> results;
};
[[nodiscard]] TimedBatch time_solver_batch(const std::string& name,
                                           std::span<const Graph> graphs,
                                           const SolveOptions& options = {});

/// Estimated peak scratch bytes for a solver on an (n, m) instance;
/// only the Karp-family quadratic-space algorithms matter.
[[nodiscard]] std::size_t estimated_bytes(const std::string& name, NodeId n, ArcId m);

/// Robust summary of repeated measurements. Median and MAD (median
/// absolute deviation) instead of mean/stddev — a single preempted run
/// should not move the cell — plus a percentile-bootstrap 95% CI of the
/// median, resampled with a fixed seed so artifacts are reproducible.
struct SampleStats {
  std::vector<double> samples;  // raw values, run order
  double median = 0.0;
  double mad = 0.0;
  double ci_lower = 0.0;  // 95% bootstrap CI of the median
  double ci_upper = 0.0;
};

/// Computes SampleStats over `samples` (empty input yields all zeros).
/// `resamples` bootstrap draws; with fewer than 3 samples the CI
/// degenerates to [min, max].
[[nodiscard]] SampleStats summarize_samples(std::vector<double> samples,
                                            int resamples = 1000,
                                            std::uint64_t seed = 0x5eedb007);

/// Repetition policy for one benchmark cell.
struct RepeatOptions {
  int warmup = 1;       // untimed runs before measuring
  int repetitions = 5;  // timed runs
};

/// One solver x instance cell measured `repetitions` times after
/// `warmup` discarded runs. Counters are per-counter medians across the
/// timed repetitions (available only if available in every repetition);
/// pass perf == nullptr to skip counters entirely.
struct RepeatedRun {
  bool ran = false;
  std::string skip_reason;  // "mem" when !ran (time handled by caller)
  SampleStats seconds;
  obs::PerfSample counters;  // value[i] = median over repetitions
};
[[nodiscard]] RepeatedRun time_solver_repeated(
    const std::string& name, const Graph& g, const RepeatOptions& repeat,
    obs::PerfCounterGroup* perf = nullptr,
    std::size_t mem_budget_bytes = 2ULL << 30, const SolveOptions& options = {});

/// Runs the registry solver `name` on g with an obs::TraceRecorder
/// installed and returns seconds spent per driver phase, keyed by span
/// kind ("solve", "scc_decompose", "component", "merge",
/// "witness_extract"). Component time is summed across worker threads,
/// so with num_threads > 1 it can exceed the enclosing solve span.
[[nodiscard]] std::map<std::string, double> phase_breakdown(
    const std::string& name, const Graph& g, const SolveOptions& options = {});

/// Tracks per-solver worst-case times; once a solver exceeds the budget
/// it is skipped for all subsequent (larger) instances, like the
/// paper's day-long cutoffs.
class TimeBudget {
 public:
  explicit TimeBudget(double per_run_seconds) : budget_(per_run_seconds) {}

  [[nodiscard]] bool should_skip(const std::string& name) const {
    const auto it = worst_.find(name);
    return it != worst_.end() && it->second > budget_;
  }
  void record(const std::string& name, double seconds) {
    auto& w = worst_[name];
    if (seconds > w) w = seconds;
  }

 private:
  double budget_;
  std::map<std::string, double> worst_;
};

/// Per-run time budget by scale: small 5s, medium 30s, full 3600s.
[[nodiscard]] double default_time_budget();

}  // namespace mcr::bench

#endif  // MCR_BENCHKIT_RUNNER_H
