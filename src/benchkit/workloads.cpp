#include "benchkit/workloads.h"

#include <cstdlib>

namespace mcr::bench {

Scale bench_scale() {
  const char* env = std::getenv("MCR_BENCH_SCALE");
  if (env == nullptr) return Scale::kSmall;
  const std::string v(env);
  if (v == "full") return Scale::kFull;
  if (v == "medium") return Scale::kMedium;
  return Scale::kSmall;
}

std::string scale_name(Scale s) {
  switch (s) {
    case Scale::kSmall:
      return "small";
    case Scale::kMedium:
      return "medium";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

std::vector<GridCell> table2_grid(Scale s) {
  std::vector<NodeId> sizes;
  switch (s) {
    case Scale::kSmall:
      sizes = {128, 256, 512};
      break;
    case Scale::kMedium:
      sizes = {512, 1024, 2048};
      break;
    case Scale::kFull:
      sizes = {512, 1024, 2048, 4096, 8192};
      break;
  }
  std::vector<GridCell> grid;
  for (const NodeId n : sizes) {
    // m/n in {1, 1.5, 2, 2.5, 3} — the paper's five density columns.
    for (const ArcId m : {n, n + n / 2, 2 * n, 2 * n + n / 2, 3 * n}) {
      grid.push_back(GridCell{n, m});
    }
  }
  return grid;
}

int trials_per_cell(Scale s) { return s == Scale::kSmall ? 5 : 10; }

Graph table2_instance(GridCell cell, int trial) {
  gen::SprandConfig cfg;
  cfg.n = cell.n;
  cfg.m = cell.m;
  cfg.min_weight = 1;
  cfg.max_weight = 10000;  // SPRAND's default interval, used by the paper
  cfg.seed = 0x5eed0000ULL + static_cast<std::uint64_t>(cell.n) * 131 +
             static_cast<std::uint64_t>(cell.m) * 7 + static_cast<std::uint64_t>(trial);
  return gen::sprand(cfg);
}

Graph ratio_instance(GridCell cell, int trial) {
  gen::SprandConfig cfg;
  cfg.n = cell.n;
  cfg.m = cell.m;
  cfg.min_transit = 1;
  cfg.max_transit = 10;
  cfg.seed = 0xBEEF + static_cast<std::uint64_t>(cell.n) * 31 +
             static_cast<std::uint64_t>(cell.m) + static_cast<std::uint64_t>(trial);
  return gen::sprand(cfg);
}

std::vector<CircuitCase> circuit_suite(Scale s) {
  std::vector<CircuitCase> cases;
  const auto add = [&](std::string name, NodeId regs, NodeId module, double fanout,
                       double feedback, std::uint64_t seed) {
    gen::CircuitConfig cfg;
    cfg.registers = regs;
    cfg.module_size = module;
    cfg.avg_fanout = fanout;
    cfg.feedback_prob = feedback;
    cfg.seed = seed;
    cases.push_back(CircuitCase{std::move(name), cfg});
  };
  // Densities and feedback rates follow the spread of real sequential-
  // suite register graphs: small controllers are nearly chains
  // (m/n ~ 1.2) of shift-ring SCCs, big datapaths run denser (m/n up
  // to ~2) with more global control feedback merging modules.
  add("s208-like", 32, 8, 1.2, 0.02, 11);
  add("s400-like", 64, 16, 1.25, 0.03, 12);
  add("s838-like", 128, 16, 1.3, 0.03, 13);
  add("s1488-like", 256, 32, 1.4, 0.05, 14);
  add("s5378-like", 512, 32, 1.45, 0.04, 15);
  if (s != Scale::kSmall) {
    add("s9234-like", 1024, 64, 1.7, 0.08, 16);
    add("s15850-like", 2048, 64, 2.0, 0.1, 17);
  }
  if (s == Scale::kFull) {
    add("s38584-like", 8192, 128, 2.0, 0.1, 18);
  }
  return cases;
}

}  // namespace mcr::bench
