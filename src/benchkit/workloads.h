// Benchmark workloads: the paper's experimental grid.
//
// Table 2 uses SPRAND graphs with n in {512, 1024, 2048, 4096, 8192}
// and m/n in {1, 1.5, 2, 2.5, 3}, ten seeds per cell, weights uniform
// in [1, 10000]. The default bench scale trims the grid so the whole
// harness finishes in minutes; MCR_BENCH_SCALE=full reproduces the
// paper's full grid (hours, like the original).
#ifndef MCR_BENCHKIT_WORKLOADS_H
#define MCR_BENCHKIT_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

#include "gen/circuit.h"
#include "gen/sprand.h"
#include "graph/graph.h"

namespace mcr::bench {

enum class Scale { kSmall, kMedium, kFull };

/// Reads MCR_BENCH_SCALE (small | medium | full); default small.
[[nodiscard]] Scale bench_scale();
[[nodiscard]] std::string scale_name(Scale s);

struct GridCell {
  NodeId n;
  ArcId m;
};

/// The (n, m) grid of the paper's Table 2, trimmed per scale:
///   small:  n in {128, 256, 512},        m/n in {1, 1.5, 2, 2.5, 3}
///   medium: n in {512, 1024, 2048},      same densities
///   full:   n in {512 .. 8192},          same densities (paper grid)
[[nodiscard]] std::vector<GridCell> table2_grid(Scale s);

/// Seeds per cell (paper: 10; small scale: 5).
[[nodiscard]] int trials_per_cell(Scale s);

/// The paper's SPRAND instance for a grid cell and trial index.
[[nodiscard]] Graph table2_instance(GridCell cell, int trial);

/// The ratio-extension SPRAND instance (transit times U[1, 10], the R1
/// experiment's workload) for a grid cell and trial index.
[[nodiscard]] Graph ratio_instance(GridCell cell, int trial);

/// Synthetic circuit suite standing in for the 1991 LGSynth benchmarks
/// (see gen/circuit.h and DESIGN.md §1). Names mimic the flavor of the
/// MCNC sequential suite; sizes span small FSMs to large datapaths.
struct CircuitCase {
  std::string name;
  gen::CircuitConfig config;
};
[[nodiscard]] std::vector<CircuitCase> circuit_suite(Scale s);

}  // namespace mcr::bench

#endif  // MCR_BENCHKIT_WORKLOADS_H
