#include "core/brute_force.h"

#include <vector>

#include "core/result.h"
#include "graph/cycle_enum.h"

namespace mcr {

namespace {

class BruteForceSolver final : public Solver {
 public:
  BruteForceSolver(ProblemKind kind, std::uint64_t max_cycles)
      : kind_(kind), max_cycles_(max_cycles) {}

  [[nodiscard]] std::string name() const override {
    return kind_ == ProblemKind::kCycleMean ? "brute_force" : "brute_force_ratio";
  }

  [[nodiscard]] ProblemKind kind() const override { return kind_; }

  [[nodiscard]] CycleResult solve_scc(const Graph& g) const override {
    CycleResult best;
    enumerate_simple_cycles(
        g,
        [&](std::span<const ArcId> cycle) {
          ++best.counters.cycle_evaluations;
          std::int64_t w = 0;
          std::int64_t t = 0;
          for (const ArcId a : cycle) {
            w += g.weight(a);
            t += kind_ == ProblemKind::kCycleMean ? 1 : g.transit(a);
          }
          const Rational value(w, t);
          if (!best.has_cycle || value < best.value) {
            best.has_cycle = true;
            best.value = value;
            best.cycle.assign(cycle.begin(), cycle.end());
          }
          return true;
        },
        max_cycles_);
    return best;
  }

 private:
  ProblemKind kind_;
  std::uint64_t max_cycles_;
};

}  // namespace

std::unique_ptr<Solver> make_brute_force_solver(ProblemKind kind, std::uint64_t max_cycles) {
  return std::make_unique<BruteForceSolver>(kind, max_cycles);
}

}  // namespace mcr
