// Brute-force oracle: exhaustive simple-cycle enumeration.
//
// Exponential; exists as the ground truth the test suite validates all
// real solvers against, and to measure alpha (the simple-cycle count in
// the paper's O(nm*alpha) Howard bound). Registered as "brute_force"
// and "brute_force_ratio".
#ifndef MCR_CORE_BRUTE_FORCE_H
#define MCR_CORE_BRUTE_FORCE_H

#include <cstdint>
#include <memory>

#include "core/solver.h"

namespace mcr {

/// Creates the oracle. `max_cycles` aborts (throws) on graphs with more
/// simple cycles than the cap, so tests fail loudly instead of hanging.
[[nodiscard]] std::unique_ptr<Solver> make_brute_force_solver(
    ProblemKind kind, std::uint64_t max_cycles = 50'000'000);

}  // namespace mcr

#endif  // MCR_CORE_BRUTE_FORCE_H
