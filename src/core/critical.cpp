#include "core/critical.h"

#include <algorithm>
#include <stdexcept>

#include "graph/bellman_ford.h"
#include "graph/scc.h"
#include "graph/traversal.h"
#include "support/checked.h"

namespace mcr {

std::vector<std::int64_t> lambda_costs(const Graph& g, const Rational& value,
                                       ProblemKind kind) {
  std::vector<std::int64_t> cost(static_cast<std::size_t>(g.num_arcs()));
  const std::int64_t num = value.num();
  const std::int64_t den = value.den();
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const std::int64_t t = kind == ProblemKind::kCycleMean ? 1 : g.transit(a);
    cost[static_cast<std::size_t>(a)] =
        checked_sub(checked_mul(g.weight(a), den), checked_mul(num, t));
  }
  return cost;
}

std::vector<int128> lambda_costs_wide(const Graph& g, const Rational& value,
                                      ProblemKind kind) {
  std::vector<int128> cost(static_cast<std::size_t>(g.num_arcs()));
  const int128 num = value.num();
  const int128 den = value.den();
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const int128 t = kind == ProblemKind::kCycleMean ? 1 : g.transit(a);
    cost[static_cast<std::size_t>(a)] = g.weight(a) * den - num * t;
  }
  return cost;
}

CriticalSubgraph critical_subgraph(const Graph& g, const Rational& value,
                                   ProblemKind kind) {
  const std::vector<std::int64_t> cost = lambda_costs(g, value, kind);
  BellmanFordResult bf = bellman_ford_all(g, cost);
  if (bf.has_negative_cycle) {
    throw std::invalid_argument(
        "critical_subgraph: value exceeds the optimum (negative cycle exists)");
  }
  CriticalSubgraph out;
  out.scaled_potential = std::move(bf.dist);
  std::vector<bool> node_critical(static_cast<std::size_t>(g.num_nodes()), false);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId u = g.src(a);
    const NodeId v = g.dst(a);
    if (out.scaled_potential[static_cast<std::size_t>(v)] ==
        out.scaled_potential[static_cast<std::size_t>(u)] + cost[static_cast<std::size_t>(a)]) {
      out.arcs.push_back(a);
      node_critical[static_cast<std::size_t>(u)] = true;
      node_critical[static_cast<std::size_t>(v)] = true;
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (node_critical[static_cast<std::size_t>(v)]) out.nodes.push_back(v);
  }
  return out;
}

std::vector<std::int64_t> arc_slacks(const Graph& g, const Rational& value,
                                     ProblemKind kind) {
  const std::vector<std::int64_t> cost = lambda_costs(g, value, kind);
  BellmanFordResult bf = bellman_ford_all(g, cost);
  if (bf.has_negative_cycle) {
    throw std::invalid_argument("arc_slacks: value exceeds the optimum");
  }
  std::vector<std::int64_t> slack(static_cast<std::size_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    slack[static_cast<std::size_t>(a)] =
        bf.dist[static_cast<std::size_t>(g.src(a))] + cost[static_cast<std::size_t>(a)] -
        bf.dist[static_cast<std::size_t>(g.dst(a))];
  }
  return slack;
}

std::vector<ArcId> optimal_arc_set(const Graph& g, const Rational& value,
                                   ProblemKind kind) {
  const CriticalSubgraph crit = critical_subgraph(g, value, kind);
  // Build the critical subgraph as its own Graph (nodes unchanged) and
  // decompose; arcs inside cyclic components are exactly the arcs on
  // optimum cycles.
  std::vector<ArcSpec> specs;
  specs.reserve(crit.arcs.size());
  for (const ArcId a : crit.arcs) {
    specs.push_back(ArcSpec{g.src(a), g.dst(a), 0, 0});
  }
  const Graph crit_graph(g.num_nodes(), specs);
  const SccDecomposition scc = strongly_connected_components(crit_graph);
  std::vector<ArcId> out;
  for (std::size_t i = 0; i < crit.arcs.size(); ++i) {
    const ArcId a = crit.arcs[i];
    const NodeId cu = scc.component[static_cast<std::size_t>(g.src(a))];
    const NodeId cv = scc.component[static_cast<std::size_t>(g.dst(a))];
    if (cu == cv && scc.component_is_cyclic[static_cast<std::size_t>(cu)]) {
      out.push_back(a);
    }
  }
  return out;
}

std::vector<ArcId> extract_optimal_cycle(const Graph& g, const Rational& value,
                                         ProblemKind kind) {
  const CriticalSubgraph crit = critical_subgraph(g, value, kind);
  std::vector<ArcId> cycle = find_any_cycle(g, crit.arcs);
  if (cycle.empty()) {
    throw std::invalid_argument(
        "extract_optimal_cycle: no cycle in the critical subgraph (value below optimum?)");
  }
  return cycle;
}

}  // namespace mcr
