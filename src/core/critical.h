// Critical subgraph extraction (§2 of the paper).
//
// Given lambda*, an arc (u,v) is *critical* when d(v) - d(u) =
// w(u,v) - lambda* * t(u,v), where d are shortest-path potentials in
// G_lambda*. The critical subgraph contains every optimum cycle; it is
// "the arcs and nodes that determine the performance of the system".
// We compute it exactly with integer arithmetic: scale all quantities by
// den(lambda*).
#ifndef MCR_CORE_CRITICAL_H
#define MCR_CORE_CRITICAL_H

#include <vector>

#include "core/problem.h"
#include "graph/graph.h"
#include "support/int128.h"
#include "support/rational.h"

namespace mcr {

struct CriticalSubgraph {
  /// Arcs satisfying the criticality criterion.
  std::vector<ArcId> arcs;
  /// Nodes adjacent to at least one critical arc, sorted ascending.
  std::vector<NodeId> nodes;
  /// Shortest-path potentials used (scaled by den(lambda)); exposed for
  /// clock-schedule style applications that need slacks.
  std::vector<std::int64_t> scaled_potential;
};

/// Computes the critical subgraph of g at the given optimum value.
/// `kind` selects mean (transit ignored) or ratio. Throws
/// std::invalid_argument if `value` exceeds the true optimum (then
/// G_value has a negative cycle, so potentials do not exist).
[[nodiscard]] CriticalSubgraph critical_subgraph(const Graph& g, const Rational& value,
                                                 ProblemKind kind);

/// Extracts one optimum cycle given the optimum value: every cycle made
/// solely of critical arcs achieves `value` exactly (summing the tight
/// inequalities around the cycle), and at least one such cycle exists.
/// O(n + m) after the O(nm) potential computation. Throws if `value` is
/// not the exact optimum of a cyclic graph.
[[nodiscard]] std::vector<ArcId> extract_optimal_cycle(const Graph& g,
                                                       const Rational& value,
                                                       ProblemKind kind);

/// Per-arc slack at the given value, scaled by den(value):
///   slack(e) = d(u) + w(e)*den - num*t(e) - d(v)  >= 0,
/// where d are the scaled shortest-path potentials. Zero slack ==
/// critical arc. For clock-scheduling applications the slack is the
/// timing margin of the register-to-register path at the optimum
/// period. Throws like critical_subgraph when value exceeds the optimum.
[[nodiscard]] std::vector<std::int64_t> arc_slacks(const Graph& g, const Rational& value,
                                                   ProblemKind kind);

/// The arcs lying on at least one *optimum* cycle: the union of the
/// cyclic strongly connected components of the critical subgraph (a
/// critical arc chains into an optimum cycle iff it sits inside such a
/// component — every cycle of critical arcs achieves the optimum).
/// `value` must be the exact optimum of a cyclic graph.
[[nodiscard]] std::vector<ArcId> optimal_arc_set(const Graph& g, const Rational& value,
                                                 ProblemKind kind);

/// The lambda-transformed integer arc costs used throughout the library:
/// cost(e) = w(e)*den(value) - num(value)*t(e), with t(e) == 1 for mean
/// problems. A cycle is negative under these costs iff its mean/ratio is
/// below `value`. The products are overflow-checked: throws
/// NumericOverflow (support/checked.h) when a transformed cost does not
/// fit int64; callers then rebuild with lambda_costs_wide and re-probe
/// in 128-bit arithmetic.
[[nodiscard]] std::vector<std::int64_t> lambda_costs(const Graph& g, const Rational& value,
                                                     ProblemKind kind);

/// 128-bit variant of lambda_costs for the numeric promotion path; never
/// overflows (|w|,|num|,|den|,|t| < 2^63 so |cost| < 2^127).
[[nodiscard]] std::vector<int128> lambda_costs_wide(const Graph& g, const Rational& value,
                                                    ProblemKind kind);

}  // namespace mcr

#endif  // MCR_CORE_CRITICAL_H
