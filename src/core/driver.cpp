#include "core/driver.h"

#include <exception>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/critical.h"
#include "core/registry.h"
#include "fault/fault.h"
#include "graph/arc_tiles.h"
#include "graph/scc.h"
#include "graph/transforms.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace mcr {

namespace {

int resolve_threads(int num_threads) {
  return num_threads <= 0 ? ThreadPool::hardware_threads() : num_threads;
}

/// Fault-injection hook at a solve-phase boundary (no-op unless built
/// with MCR_FAULT_INJECTION and an Injector is installed). An injected
/// phase error surfaces as a plain runtime_error, which the service
/// layer maps to its INTERNAL error code — exactly the path a real
/// mid-solve failure would take.
void fault_phase_boundary(const char* phase) {
  const fault::Decision d = MCR_FAULT_POINT(fault::Site::kPhase);
  if (d.action == fault::Action::kFail) {
    throw std::runtime_error(std::string("injected fault: solve phase ") + phase);
  }
}

void throw_if_cancelled(const SolveOptions& options) {
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    throw SolveCancelled();
  }
}

/// Records the pool's per-worker utilization (scheduling-dependent, so
/// deliberately kept out of the deterministic solver metrics). Worker
/// stats are cumulative over the pool's lifetime, so this must run
/// EXACTLY ONCE per pool, after its last wait — a solve that drives
/// several task waves (tiled sweeps, batch instances) through one pool
/// would otherwise re-add every earlier wave's totals each time and
/// double-count mcr_pool_*_total.
void record_pool_metrics(obs::MetricsRegistry& metrics, const ThreadPool& pool) {
  const std::vector<ThreadPool::WorkerStats> stats = pool.worker_stats();
  for (std::size_t w = 0; w < stats.size(); ++w) {
    const std::string worker = std::to_string(w);
    const auto name = [&](std::string_view base) {
      return obs::labeled_name(base, {{"worker", worker}});
    };
    metrics.counter(name("mcr_pool_tasks_total")).add(stats[w].tasks_executed);
    metrics.counter(name("mcr_pool_steals_total")).add(stats[w].steals);
    metrics.counter(name("mcr_pool_idle_microseconds_total"))
        .add(static_cast<std::uint64_t>(stats[w].idle_seconds * 1e6));
  }
}

/// Runs tasks[0..n) either inline (null pool or a single task) or
/// across the given pool, capturing any exception per slot; the first
/// (lowest-index) exception is rethrown so failure behaviour does not
/// depend on thread scheduling. The caller owns the pool — sizing it,
/// sharing it across waves, and recording its metrics once at the end.
template <typename Fn>
void run_indexed(ThreadPool* pool, std::size_t n, const Fn& task) {
  if (pool == nullptr || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }
  std::vector<std::exception_ptr> errors(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool->submit([&task, &errors, i] {
      try {
        task(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool->wait_idle();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

CycleResult solve_decomposed(const Graph& g, const Solver& solver,
                             const SolveOptions& options) {
  throw_if_cancelled(options);
  // Install the sink on the calling thread for the whole solve; worker
  // threads install it per task below. With options.trace == nullptr
  // every emission site reduces to a pointer check.
  const obs::SinkScope sink_scope(options.trace);
  std::string solve_label;
  if (options.trace != nullptr) solve_label = "solve:" + solver.name();
  const obs::Span solve_span(obs::EventKind::kSolve, solve_label);

  fault_phase_boundary("scc_decompose");
  CycleResult best;
  // The decomposition either comes precomputed with the graph (packs
  // attach Tarjan's exact output as a hint, see Graph::SccHint) or is
  // computed here. Both paths normalize into the same three views, so
  // the grouping below — and therefore every solve result — is
  // bit-identical regardless of where the decomposition came from.
  SccDecomposition scc_storage;
  std::span<const NodeId> comp_of;
  std::vector<bool> comp_cyclic;
  NodeId scc_num_components = 0;
  std::vector<NodeId> local_id(static_cast<std::size_t>(g.num_nodes()), kInvalidNode);
  std::vector<NodeId> comp_size;
  // Per-component arcs, grouped structure-of-arrays: one flat array per
  // arc field plus a component offset table. The counting-sort grouping
  // keeps every per-component slice contiguous, so component subgraphs
  // build straight from subspans (no ArcSpec repacking) and the hot
  // compare-update loops downstream scan dense arrays.
  std::vector<std::size_t> comp_arc_first;
  std::vector<NodeId> arc_src;
  std::vector<NodeId> arc_dst;
  std::vector<std::int64_t> arc_weight;
  std::vector<std::int64_t> arc_transit;
  std::vector<ArcId> arc_parent;
  std::vector<std::size_t> cyclic;
  {
    const obs::Span span(obs::EventKind::kSccDecompose, "scc_decompose");
    if (const Graph::SccHint* hint = g.scc_hint(); hint != nullptr) {
      comp_of = hint->component;
      scc_num_components = hint->num_components;
      comp_cyclic.assign(static_cast<std::size_t>(scc_num_components), false);
      for (const NodeId c : hint->cyclic_components) {
        comp_cyclic[static_cast<std::size_t>(c)] = true;
      }
      if (options.metrics != nullptr) {
        options.metrics->counter("mcr_scc_hint_solves_total").add(1);
      }
    } else {
      scc_storage = strongly_connected_components(g);
      comp_of = scc_storage.component;
      scc_num_components = scc_storage.num_components;
      comp_cyclic = std::move(scc_storage.component_is_cyclic);
    }
    const std::size_t num_comp = static_cast<std::size_t>(scc_num_components);

    // Group nodes and arcs by cyclic component in one pass each (building
    // per-component subgraphs via induced_subgraph would rescan all arcs
    // once per component — O(m * #components) on circuit-like graphs with
    // hundreds of SCCs).
    comp_size.assign(num_comp, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto c = static_cast<std::size_t>(comp_of[static_cast<std::size_t>(v)]);
      if (!comp_cyclic[c]) continue;
      local_id[static_cast<std::size_t>(v)] = comp_size[c]++;
    }
    const auto arc_component = [&](ArcId a) -> std::size_t {
      // Intra-component arc of a cyclic component, or num_comp.
      const auto cu = static_cast<std::size_t>(comp_of[static_cast<std::size_t>(g.src(a))]);
      if (comp_of[static_cast<std::size_t>(g.dst(a))] !=
          comp_of[static_cast<std::size_t>(g.src(a))]) {
        return num_comp;
      }
      return comp_cyclic[cu] ? cu : num_comp;
    };
    comp_arc_first.assign(num_comp + 1, 0);
    std::size_t kept = 0;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const std::size_t c = arc_component(a);
      if (c == num_comp) continue;
      ++comp_arc_first[c + 1];
      ++kept;
    }
    for (std::size_t c = 0; c < num_comp; ++c) {
      comp_arc_first[c + 1] += comp_arc_first[c];
    }
    arc_src.resize(kept);
    arc_dst.resize(kept);
    arc_weight.resize(kept);
    arc_transit.resize(kept);
    arc_parent.resize(kept);
    std::vector<std::size_t> cursor(comp_arc_first.begin(), comp_arc_first.end() - 1);
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const std::size_t c = arc_component(a);
      if (c == num_comp) continue;
      const std::size_t i = cursor[c]++;
      arc_src[i] = local_id[static_cast<std::size_t>(g.src(a))];
      arc_dst[i] = local_id[static_cast<std::size_t>(g.dst(a))];
      arc_weight[i] = g.weight(a);
      arc_transit[i] = g.transit(a);
      arc_parent[i] = a;
    }

    cyclic.reserve(num_comp);
    for (std::size_t c = 0; c < num_comp; ++c) {
      if (comp_cyclic[c]) cyclic.push_back(c);
    }
  }
  const std::size_t num_comp = static_cast<std::size_t>(scc_num_components);
  const auto component_graph = [&](std::size_t c) {
    const std::size_t off = comp_arc_first[c];
    const std::size_t len = comp_arc_first[c + 1] - off;
    return Graph(comp_size[c], std::span(arc_src).subspan(off, len),
                 std::span(arc_dst).subspan(off, len),
                 std::span(arc_weight).subspan(off, len),
                 std::span(arc_transit).subspan(off, len));
  };
  fault_phase_boundary("component_solve");

  // Solve each cyclic component independently (possibly concurrently;
  // solve_scc is const and solvers keep all state in locals, so one
  // solver instance serves every worker). Each task installs the trace
  // sink on its worker thread, so component spans carry that worker's
  // thread id in the exported trace.
  obs::Histogram* component_seconds =
      options.metrics != nullptr
          ? &options.metrics->histogram("mcr_component_solve_seconds")
          : nullptr;

  // One pool serves the whole solve, in one of two mutually exclusive
  // modes (never both, which could deadlock a component task waiting on
  // its own tile tasks):
  //   * component mode — components are the pool's tasks, tiles (if
  //     any) run inline inside each;
  //   * tile mode — components run sequentially on this thread and
  //     each one's relaxation sweeps fan tiles out over the pool. This
  //     is the right shape when there are too few cyclic components to
  //     keep the workers busy — in particular the 1-giant-SCC instance,
  //     which used to run fully serially at any thread count.
  // Either way the result is bit-identical to the serial solve.
  const int threads = resolve_threads(options.num_threads);
  const bool tiling = options.tile_arcs > 0;
  const bool tile_mode =
      tiling && threads > 1 &&
      cyclic.size() < 2 * static_cast<std::size_t>(threads);
  std::optional<ThreadPool> pool;
  if (threads > 1 && (tile_mode || cyclic.size() > 1)) {
    pool.emplace(tile_mode ? threads
                           : static_cast<int>(std::min<std::size_t>(
                                 static_cast<std::size_t>(threads), cyclic.size())));
  }
  TileStats tile_stats;
  const TileExec tile_exec{tile_mode && pool ? &*pool : nullptr,
                           tiling ? options.tile_arcs : 0,
                           tiling ? &tile_stats : nullptr};
  ThreadPool* component_pool = !tile_mode && pool ? &*pool : nullptr;

  std::vector<CycleResult> sub_results(cyclic.size());
  run_indexed(component_pool, cyclic.size(), [&](std::size_t i) {
    throw_if_cancelled(options);
    const obs::SinkScope worker_scope(options.trace);
    const std::size_t c = cyclic[i];
    const Graph sub = component_graph(c);
    std::string label;
    if (options.trace != nullptr) {
      label = "component#" + std::to_string(c) +
              " n=" + std::to_string(sub.num_nodes()) +
              " m=" + std::to_string(sub.num_arcs());
    }
    const obs::Span span(obs::EventKind::kComponent, label);
    Timer timer;
    sub_results[i] = solver.solve_scc(sub, tile_exec);
    if (component_seconds != nullptr) {
      component_seconds->observe(timer.seconds());
    }
  });

  // Deterministic merge in component-index order: identical output for
  // any thread count.
  fault_phase_boundary("merge");
  std::size_t best_comp = num_comp;  // sentinel: none
  std::vector<ArcId> best_local_cycle;
  {
    const obs::Span span(obs::EventKind::kMerge, "merge");
    for (std::size_t i = 0; i < cyclic.size(); ++i) {
      CycleResult& r = sub_results[i];
      if (!r.has_cycle) {
        throw std::logic_error("solver " + solver.name() +
                               " returned no cycle on a cyclic SCC");
      }
      best.counters += r.counters;
      if (!best.has_cycle || r.value < best.value) {
        best.has_cycle = true;
        best.value = r.value;
        best_comp = cyclic[i];
        best_local_cycle = std::move(r.cycle);
      }
    }
  }

  if (best.has_cycle) {
    // Value-only solvers leave the witness to us: recover it once, for
    // the winning component only.
    if (best_local_cycle.empty()) {
      const obs::Span span(obs::EventKind::kWitnessExtract, "witness_extract");
      const Graph sub = component_graph(best_comp);
      best_local_cycle = extract_optimal_cycle(sub, best.value, solver.kind());
      if (options.metrics != nullptr) {
        options.metrics->counter("mcr_witness_extractions_total").add(1);
      }
    }
    best.cycle.reserve(best_local_cycle.size());
    for (const ArcId a : best_local_cycle) {
      best.cycle.push_back(
          arc_parent[comp_arc_first[best_comp] + static_cast<std::size_t>(a)]);
    }
  }

  // The pool's work is done (tile waves and component tasks both drain
  // through run_tiles/run_indexed wait_idle); record its utilization
  // exactly once per pool lifetime — see record_pool_metrics.
  if (pool && options.metrics != nullptr) {
    record_pool_metrics(*options.metrics, *pool);
  }
  pool.reset();

  if (options.metrics != nullptr) {
    // Solver-work totals: sums over components in merge order, so they
    // are identical for every thread count (the pool metrics recorded
    // by run_indexed are the scheduling-dependent complement).
    obs::MetricsRegistry& m = *options.metrics;
    m.counter("mcr_solves_total").add(1);
    m.counter("mcr_components_cyclic_total").add(cyclic.size());
    const OpCounters& c = best.counters;
    m.counter("mcr_ops_iterations_total").add(c.iterations);
    m.counter("mcr_ops_arc_scans_total").add(c.arc_scans);
    m.counter("mcr_ops_relaxations_total").add(c.relaxations);
    m.counter("mcr_ops_node_visits_total").add(c.node_visits);
    m.counter("mcr_ops_heap_total").add(c.heap_total());
    m.counter("mcr_ops_feasibility_checks_total").add(c.feasibility_checks);
    m.counter("mcr_ops_cycle_evaluations_total").add(c.cycle_evaluations);
    m.counter("mcr_numeric_promotions_total").add(c.numeric_promotions);
    if (tiling) {
      // Tile-engine work (docs/OBSERVABILITY.md): counted only when
      // tile_arcs > 0, and a pure function of (graph, solver,
      // tile_arcs) — independent of the thread count, like every other
      // mcr_ops_* counter.
      m.counter("mcr_ops_tiles_partitions_total")
          .add(tile_stats.partitions.load(std::memory_order_relaxed));
      m.counter("mcr_ops_tiles_total")
          .add(tile_stats.tiles.load(std::memory_order_relaxed));
      m.counter("mcr_ops_tiles_waves_total")
          .add(tile_stats.waves.load(std::memory_order_relaxed));
    }
  }
  fault_phase_boundary("finalize");
  return best;
}

void check_kind(const Solver& solver, ProblemKind expected, const char* fn) {
  if (solver.kind() != expected) {
    throw std::invalid_argument(std::string(fn) + ": solver " + solver.name() +
                                " solves the wrong problem kind");
  }
}

CycleResult negate_back(CycleResult r) {
  if (r.has_cycle) r.value = -r.value;
  return r;
}

}  // namespace

CycleResult minimum_cycle_mean(const Graph& g, const Solver& solver,
                               const SolveOptions& options) {
  check_kind(solver, ProblemKind::kCycleMean, "minimum_cycle_mean");
  return solve_decomposed(g, solver, options);
}

CycleResult minimum_cycle_ratio(const Graph& g, const Solver& solver,
                                const SolveOptions& options) {
  check_kind(solver, ProblemKind::kCycleRatio, "minimum_cycle_ratio");
  validate_ratio_instance(g);
  return solve_decomposed(g, solver, options);
}

CycleResult maximum_cycle_mean(const Graph& g, const Solver& solver,
                               const SolveOptions& options) {
  check_kind(solver, ProblemKind::kCycleMean, "maximum_cycle_mean");
  const Graph neg = negate_weights(g);
  return negate_back(solve_decomposed(neg, solver, options));
}

CycleResult maximum_cycle_ratio(const Graph& g, const Solver& solver,
                                const SolveOptions& options) {
  check_kind(solver, ProblemKind::kCycleRatio, "maximum_cycle_ratio");
  validate_ratio_instance(g);
  const Graph neg = negate_weights(g);
  return negate_back(solve_decomposed(neg, solver, options));
}

std::vector<CycleResult> solve_many(std::span<const Graph* const> graphs,
                                    const Solver& solver, const SolveOptions& options) {
  const bool ratio = solver.kind() == ProblemKind::kCycleRatio;
  // Validate up front (cheap, and keeps the parallel phase exception-free
  // for well-formed batches).
  if (ratio) {
    for (const Graph* g : graphs) validate_ratio_instance(*g);
  }
  std::vector<CycleResult> results(graphs.size());
  const obs::SinkScope sink_scope(options.trace);
  std::string batch_label;
  if (options.trace != nullptr) {
    batch_label = "batch:" + solver.name() + " instances=" +
                  std::to_string(graphs.size());
  }
  const obs::Span batch_span(obs::EventKind::kBatch, batch_label);
  // Parallelism is across instances here; each instance solves its own
  // SCCs serially so a batch of b graphs costs b tasks, not b * #SCCs.
  // tile_arcs still propagates: the per-instance sweeps run their tiles
  // inline (no nested pool), so tiling changes nothing but the
  // mcr_ops_tiles_* accounting — results stay bit-identical with the
  // single-instance entry points. Trace/metrics propagate into the
  // per-instance solves (each runs solve_decomposed on a worker thread,
  // which installs the sink there).
  const SolveOptions instance_options{
      .num_threads = 1,
      .tile_arcs = options.tile_arcs,
      .trace = options.trace,
      .metrics = options.metrics,
      .cancel = options.cancel};
  const int threads = resolve_threads(options.num_threads);
  std::optional<ThreadPool> pool;
  if (threads > 1 && graphs.size() > 1) {
    pool.emplace(static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(threads), graphs.size())));
  }
  run_indexed(pool ? &*pool : nullptr, graphs.size(), [&](std::size_t i) {
    results[i] = solve_decomposed(*graphs[i], solver, instance_options);
  });
  if (pool && options.metrics != nullptr) {
    record_pool_metrics(*options.metrics, *pool);
  }
  return results;
}

std::vector<CycleResult> solve_many(std::span<const Graph> graphs, const Solver& solver,
                                    const SolveOptions& options) {
  std::vector<const Graph*> ptrs;
  ptrs.reserve(graphs.size());
  for (const Graph& g : graphs) ptrs.push_back(&g);
  return solve_many(std::span<const Graph* const>(ptrs), solver, options);
}

CycleResult minimum_cycle_mean(const Graph& g, const std::string& solver_name,
                               const SolveOptions& options) {
  return minimum_cycle_mean(g, *SolverRegistry::instance().create(solver_name), options);
}

CycleResult minimum_cycle_ratio(const Graph& g, const std::string& solver_name,
                                const SolveOptions& options) {
  return minimum_cycle_ratio(g, *SolverRegistry::instance().create(solver_name), options);
}

CycleResult maximum_cycle_mean(const Graph& g, const std::string& solver_name,
                               const SolveOptions& options) {
  return maximum_cycle_mean(g, *SolverRegistry::instance().create(solver_name), options);
}

CycleResult maximum_cycle_ratio(const Graph& g, const std::string& solver_name,
                                const SolveOptions& options) {
  return maximum_cycle_ratio(g, *SolverRegistry::instance().create(solver_name), options);
}

}  // namespace mcr
