#include "core/driver.h"

#include <stdexcept>

#include "core/critical.h"
#include "core/registry.h"
#include "graph/scc.h"
#include "graph/transforms.h"

namespace mcr {

namespace {

CycleResult solve_decomposed(const Graph& g, const Solver& solver) {
  CycleResult best;
  const SccDecomposition scc = strongly_connected_components(g);
  const std::size_t num_comp = static_cast<std::size_t>(scc.num_components);

  // Group nodes and arcs by cyclic component in one pass each (building
  // per-component subgraphs via induced_subgraph would rescan all arcs
  // once per component — O(m * #components) on circuit-like graphs with
  // hundreds of SCCs).
  std::vector<NodeId> local_id(static_cast<std::size_t>(g.num_nodes()), kInvalidNode);
  std::vector<NodeId> comp_size(num_comp, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto c = static_cast<std::size_t>(scc.component[static_cast<std::size_t>(v)]);
    if (!scc.component_is_cyclic[c]) continue;
    local_id[static_cast<std::size_t>(v)] = comp_size[c]++;
  }
  std::vector<std::vector<ArcSpec>> comp_arcs(num_comp);
  std::vector<std::vector<ArcId>> comp_parent_arc(num_comp);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId u = g.src(a);
    const NodeId v = g.dst(a);
    const auto c = static_cast<std::size_t>(scc.component[static_cast<std::size_t>(u)]);
    if (scc.component[static_cast<std::size_t>(v)] != scc.component[static_cast<std::size_t>(u)]) {
      continue;
    }
    if (!scc.component_is_cyclic[c]) continue;
    comp_arcs[c].push_back(ArcSpec{local_id[static_cast<std::size_t>(u)],
                                   local_id[static_cast<std::size_t>(v)], g.weight(a),
                                   g.transit(a)});
    comp_parent_arc[c].push_back(a);
  }

  std::size_t best_comp = num_comp;  // sentinel: none
  std::vector<ArcId> best_local_cycle;
  for (std::size_t c = 0; c < num_comp; ++c) {
    if (!scc.component_is_cyclic[c]) continue;
    const Graph sub(comp_size[c], comp_arcs[c]);
    CycleResult r = solver.solve_scc(sub);
    if (!r.has_cycle) {
      throw std::logic_error("solver " + solver.name() +
                             " returned no cycle on a cyclic SCC");
    }
    best.counters += r.counters;
    if (!best.has_cycle || r.value < best.value) {
      best.has_cycle = true;
      best.value = r.value;
      best_comp = c;
      best_local_cycle = std::move(r.cycle);
    }
  }

  if (best.has_cycle) {
    // Value-only solvers leave the witness to us: recover it once, for
    // the winning component only.
    if (best_local_cycle.empty()) {
      const Graph sub(comp_size[best_comp], comp_arcs[best_comp]);
      best_local_cycle = extract_optimal_cycle(sub, best.value, solver.kind());
    }
    best.cycle.reserve(best_local_cycle.size());
    for (const ArcId a : best_local_cycle) {
      best.cycle.push_back(comp_parent_arc[best_comp][static_cast<std::size_t>(a)]);
    }
  }
  return best;
}

void check_kind(const Solver& solver, ProblemKind expected, const char* fn) {
  if (solver.kind() != expected) {
    throw std::invalid_argument(std::string(fn) + ": solver " + solver.name() +
                                " solves the wrong problem kind");
  }
}

CycleResult negate_back(CycleResult r) {
  if (r.has_cycle) r.value = -r.value;
  return r;
}

}  // namespace

CycleResult minimum_cycle_mean(const Graph& g, const Solver& solver) {
  check_kind(solver, ProblemKind::kCycleMean, "minimum_cycle_mean");
  return solve_decomposed(g, solver);
}

CycleResult minimum_cycle_ratio(const Graph& g, const Solver& solver) {
  check_kind(solver, ProblemKind::kCycleRatio, "minimum_cycle_ratio");
  validate_ratio_instance(g);
  return solve_decomposed(g, solver);
}

CycleResult maximum_cycle_mean(const Graph& g, const Solver& solver) {
  check_kind(solver, ProblemKind::kCycleMean, "maximum_cycle_mean");
  const Graph neg = negate_weights(g);
  return negate_back(solve_decomposed(neg, solver));
}

CycleResult maximum_cycle_ratio(const Graph& g, const Solver& solver) {
  check_kind(solver, ProblemKind::kCycleRatio, "maximum_cycle_ratio");
  validate_ratio_instance(g);
  const Graph neg = negate_weights(g);
  return negate_back(solve_decomposed(neg, solver));
}

CycleResult minimum_cycle_mean(const Graph& g, const std::string& solver_name) {
  return minimum_cycle_mean(g, *SolverRegistry::instance().create(solver_name));
}

CycleResult minimum_cycle_ratio(const Graph& g, const std::string& solver_name) {
  return minimum_cycle_ratio(g, *SolverRegistry::instance().create(solver_name));
}

CycleResult maximum_cycle_mean(const Graph& g, const std::string& solver_name) {
  return maximum_cycle_mean(g, *SolverRegistry::instance().create(solver_name));
}

CycleResult maximum_cycle_ratio(const Graph& g, const std::string& solver_name) {
  return maximum_cycle_ratio(g, *SolverRegistry::instance().create(solver_name));
}

}  // namespace mcr
