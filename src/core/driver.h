// Public entry points: solve MCM/MCR on arbitrary graphs.
//
// The driver reproduces the paper's experimental setup (§2): partition
// the input into strongly connected components, run the solver on each
// cyclic component, and return the minimum over components. Graphs with
// no cycle at all yield has_cycle == false.
//
// Components are independent subproblems, so the driver can solve them
// concurrently (SolveOptions::num_threads). The merge is deterministic
// regardless of thread count: the best value wins with ties broken by
// component index, counters are summed over components in index order,
// and the witness is recovered once for the winning component — the
// returned CycleResult is bit-identical for any num_threads.
#ifndef MCR_CORE_DRIVER_H
#define MCR_CORE_DRIVER_H

#include <atomic>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/solver.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace mcr {

/// Knobs for the solve entry points below.
struct SolveOptions {
  /// Worker threads for per-SCC (and per-instance) parallelism.
  /// 1 = fully serial (default, no threads spawned); 0 = one worker per
  /// hardware thread; n > 1 = exactly n workers.
  int num_threads = 1;

  /// Arc-tile granularity for intra-SCC parallelism (graph/arc_tiles.h).
  /// 0 (default) leaves every relaxation sweep a single work item, so a
  /// lone giant SCC runs serially no matter how many threads are
  /// available. > 0 splits each sweep into tiles of at most this many
  /// CSR positions; when the component count would leave workers idle,
  /// the driver solves components sequentially and spreads the tiles of
  /// each across the pool instead. The returned CycleResult (value,
  /// witness, counters) is bit-identical for every (num_threads,
  /// tile_arcs) combination; only the mcr_ops_tiles_* metrics reflect
  /// the chosen granularity. 4096 is a good cache-sized default.
  std::int32_t tile_arcs = 0;

  /// Optional trace sink (see obs/obs.h). The driver installs it on
  /// every thread the solve touches, brackets the phases
  /// (scc_decompose / component / merge / witness_extract) in spans,
  /// and solvers emit iteration-level instants into it. nullptr (the
  /// default) disables tracing at the cost of a pointer check.
  obs::TraceSink* trace = nullptr;

  /// Optional metrics registry. When set, the driver records solve /
  /// component / operation-count totals and thread-pool worker stats
  /// into it. Counter totals derived from solver work are identical
  /// for every num_threads; pool utilization metrics are inherently
  /// scheduling-dependent. nullptr disables metrics entirely.
  obs::MetricsRegistry* metrics = nullptr;

  /// Optional cooperative cancellation flag (deadline enforcement in
  /// the solve service, shutdown paths). The driver polls it at phase
  /// boundaries — on entry, before each component solve, and before
  /// each batch instance in solve_many — and throws SolveCancelled once
  /// it observes true. A component solve already in progress runs to
  /// completion; cancellation latency is therefore one component, not
  /// one iteration.
  const std::atomic<bool>* cancel = nullptr;
};

/// Thrown by the solve entry points when SolveOptions::cancel is set
/// and observed true at a driver phase boundary.
class SolveCancelled : public std::runtime_error {
 public:
  SolveCancelled() : std::runtime_error("solve cancelled (deadline or shutdown)") {}
};

/// Minimum cycle mean of g using `solver` (a kCycleMean solver).
/// Arc ids in the returned cycle refer to g.
[[nodiscard]] CycleResult minimum_cycle_mean(const Graph& g, const Solver& solver,
                                             const SolveOptions& options = {});

/// Minimum cycle ratio of g using `solver` (a kCycleRatio solver).
/// Validates the transit times (see validate_ratio_instance).
[[nodiscard]] CycleResult minimum_cycle_ratio(const Graph& g, const Solver& solver,
                                              const SolveOptions& options = {});

/// Maximum variants via weight negation. The returned value and cycle
/// are for the original graph (value is the true maximum).
[[nodiscard]] CycleResult maximum_cycle_mean(const Graph& g, const Solver& solver,
                                             const SolveOptions& options = {});
[[nodiscard]] CycleResult maximum_cycle_ratio(const Graph& g, const Solver& solver,
                                              const SolveOptions& options = {});

/// Batch API for many-instance serving workloads: solves the minimum
/// cycle mean (or ratio, per solver->kind()) of every graph, spreading
/// whole instances across the worker pool. results[i] corresponds to
/// graphs[i] and is identical to what the single-instance entry point
/// would return. Ratio instances are validated like minimum_cycle_ratio.
[[nodiscard]] std::vector<CycleResult> solve_many(std::span<const Graph> graphs,
                                                  const Solver& solver,
                                                  const SolveOptions& options = {});

/// Pointer variant for callers whose graphs are not contiguous (the
/// solve service batches registry-held graphs this way). Null pointers
/// are invalid. Semantics otherwise identical to the span-of-values
/// overload.
[[nodiscard]] std::vector<CycleResult> solve_many(std::span<const Graph* const> graphs,
                                                  const Solver& solver,
                                                  const SolveOptions& options = {});

/// Conveniences that look the solver up by registry name with a default
/// configuration. "howard" / "howard_ratio" are the recommended defaults.
[[nodiscard]] CycleResult minimum_cycle_mean(const Graph& g,
                                             const std::string& solver_name = "howard",
                                             const SolveOptions& options = {});
[[nodiscard]] CycleResult minimum_cycle_ratio(
    const Graph& g, const std::string& solver_name = "howard_ratio",
    const SolveOptions& options = {});
[[nodiscard]] CycleResult maximum_cycle_mean(const Graph& g,
                                             const std::string& solver_name = "howard",
                                             const SolveOptions& options = {});
[[nodiscard]] CycleResult maximum_cycle_ratio(
    const Graph& g, const std::string& solver_name = "howard_ratio",
    const SolveOptions& options = {});

}  // namespace mcr

#endif  // MCR_CORE_DRIVER_H
