// Public entry points: solve MCM/MCR on arbitrary graphs.
//
// The driver reproduces the paper's experimental setup (§2): partition
// the input into strongly connected components, run the solver on each
// cyclic component, and return the minimum over components. Graphs with
// no cycle at all yield has_cycle == false.
#ifndef MCR_CORE_DRIVER_H
#define MCR_CORE_DRIVER_H

#include <string>

#include "core/result.h"
#include "core/solver.h"
#include "graph/graph.h"

namespace mcr {

/// Minimum cycle mean of g using `solver` (a kCycleMean solver).
/// Arc ids in the returned cycle refer to g.
[[nodiscard]] CycleResult minimum_cycle_mean(const Graph& g, const Solver& solver);

/// Minimum cycle ratio of g using `solver` (a kCycleRatio solver).
/// Validates the transit times (see validate_ratio_instance).
[[nodiscard]] CycleResult minimum_cycle_ratio(const Graph& g, const Solver& solver);

/// Maximum variants via weight negation. The returned value and cycle
/// are for the original graph (value is the true maximum).
[[nodiscard]] CycleResult maximum_cycle_mean(const Graph& g, const Solver& solver);
[[nodiscard]] CycleResult maximum_cycle_ratio(const Graph& g, const Solver& solver);

/// Conveniences that look the solver up by registry name with a default
/// configuration. "howard" / "howard_ratio" are the recommended defaults.
[[nodiscard]] CycleResult minimum_cycle_mean(const Graph& g,
                                             const std::string& solver_name = "howard");
[[nodiscard]] CycleResult minimum_cycle_ratio(
    const Graph& g, const std::string& solver_name = "howard_ratio");
[[nodiscard]] CycleResult maximum_cycle_mean(const Graph& g,
                                             const std::string& solver_name = "howard");
[[nodiscard]] CycleResult maximum_cycle_ratio(
    const Graph& g, const std::string& solver_name = "howard_ratio");

}  // namespace mcr

#endif  // MCR_CORE_DRIVER_H
