#include "core/problem.h"

#include <stdexcept>
#include <vector>

#include "graph/traversal.h"

namespace mcr {

void validate_ratio_instance(const Graph& g) {
  std::vector<ArcSpec> zero_arcs;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.transit(a) < 0) {
      throw std::invalid_argument("ratio instance: negative transit time on arc " +
                                  std::to_string(a));
    }
    if (g.transit(a) == 0) {
      zero_arcs.push_back(ArcSpec{g.src(a), g.dst(a), 0, 0});
    }
  }
  if (zero_arcs.empty()) return;
  const Graph zero_sub(g.num_nodes(), zero_arcs);
  if (has_cycle(zero_sub)) {
    throw std::invalid_argument(
        "ratio instance: contains a cycle of total transit time 0");
  }
}

}  // namespace mcr
