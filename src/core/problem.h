// Problem statements and solver configuration.
//
// The library solves, over a directed graph G (§1 of the paper):
//   * MCMP — the minimum cycle mean  λ* = min_C w(C)/|C|
//   * MCRP — the minimum cycle ratio ρ* = min_C w(C)/t(C), t(C) > 0
// and their maximum variants by weight negation (see core/driver.h).
//
// MCMP is the special case of MCRP with t(e) = 1 on every arc; mean
// solvers simply ignore the transit field of Graph.
#ifndef MCR_CORE_PROBLEM_H
#define MCR_CORE_PROBLEM_H

#include "graph/graph.h"

namespace mcr {

/// Which quantity a solver optimizes.
enum class ProblemKind {
  kCycleMean,   // w(C)/|C|
  kCycleRatio,  // w(C)/t(C)
};

/// Tuning knobs shared by all solvers. Exact solvers ignore epsilon.
struct SolverConfig {
  /// Convergence precision for the iterative/approximate algorithms
  /// (Howard's improvement threshold, Lawler's binary-search interval,
  /// OA1's scaling cutoff). All of them still return an exact rational:
  /// the mean/ratio of a concrete extracted cycle.
  double epsilon = 1e-9;
};

/// Validates that a ratio instance is well-posed: all transit times are
/// non-negative and no cycle has total transit 0 (i.e. the subgraph of
/// zero-transit arcs is acyclic). Throws std::invalid_argument otherwise.
void validate_ratio_instance(const Graph& g);

}  // namespace mcr

#endif  // MCR_CORE_PROBLEM_H
