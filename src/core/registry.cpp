#include "core/registry.h"

#include <stdexcept>

namespace mcr {

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry* registry = [] {
    auto* r = new SolverRegistry();
    register_all_solvers(*r);
    return r;
  }();
  return *registry;
}

void SolverRegistry::add(SolverInfo info, SolverFactory factory) {
  if (find(info.name) != nullptr) {
    throw std::invalid_argument("SolverRegistry: duplicate name " + info.name);
  }
  entries_.push_back(Entry{std::move(info), std::move(factory)});
}

const SolverRegistry::Entry* SolverRegistry::find(const std::string& name) const {
  for (const Entry& e : entries_) {
    if (e.info.name == name) return &e;
  }
  return nullptr;
}

std::string SolverRegistry::unknown_solver_message(const std::string& name) const {
  std::string msg = "unknown solver '" + name + "'; registered solvers:";
  for (const Entry& e : entries_) {
    msg += ' ';
    msg += e.info.name;
  }
  return msg;
}

std::unique_ptr<Solver> SolverRegistry::create(const std::string& name,
                                               const SolverConfig& config) const {
  const Entry* e = find(name);
  if (e == nullptr) throw std::out_of_range(unknown_solver_message(name));
  return e->factory(config);
}

bool SolverRegistry::has(const std::string& name) const { return find(name) != nullptr; }

const SolverInfo& SolverRegistry::info(const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr) throw std::out_of_range(unknown_solver_message(name));
  return e->info;
}

std::vector<std::string> SolverRegistry::names(ProblemKind kind) const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.info.kind == kind) out.push_back(e.info.name);
  }
  return out;
}

std::vector<std::string> SolverRegistry::all_names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info.name);
  return out;
}

}  // namespace mcr
