// Solver registry: string name -> factory + metadata.
//
// Benches, tests, and the examples enumerate algorithms through this
// registry so that adding an algorithm is one registration away from
// appearing in every experiment. The metadata reproduces the columns of
// the paper's Table 1 (source, year, bound, exact/approximate).
#ifndef MCR_CORE_REGISTRY_H
#define MCR_CORE_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/problem.h"
#include "core/solver.h"

namespace mcr {

/// Table-1-style metadata for one registered algorithm.
struct SolverInfo {
  std::string name;        // registry key, e.g. "yto"
  std::string display;     // e.g. "YTO"
  std::string source;      // e.g. "Young, Tarjan & Orlin"
  int year = 0;            // publication year
  std::string bound;       // e.g. "O(nm + n^2 lg n)"
  bool exact = true;       // exact vs approximate result
  ProblemKind kind = ProblemKind::kCycleMean;
  /// True for the solvers the DAC'99 study times in Table 2.
  bool in_paper_table2 = false;
};

using SolverFactory = std::function<std::unique_ptr<Solver>(const SolverConfig&)>;

class SolverRegistry {
 public:
  /// The process-wide registry, populated by register_all_solvers().
  static SolverRegistry& instance();

  void add(SolverInfo info, SolverFactory factory);

  /// Creates a solver by name; throws std::out_of_range for unknown
  /// names, with a message listing every registered solver so CLI and
  /// service errors are self-documenting.
  [[nodiscard]] std::unique_ptr<Solver> create(const std::string& name,
                                               const SolverConfig& config = {}) const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] const SolverInfo& info(const std::string& name) const;

  /// All names of the given kind, in registration order.
  [[nodiscard]] std::vector<std::string> names(ProblemKind kind) const;
  /// All registered names.
  [[nodiscard]] std::vector<std::string> all_names() const;

 private:
  struct Entry {
    SolverInfo info;
    SolverFactory factory;
  };
  std::vector<Entry> entries_;

  [[nodiscard]] const Entry* find(const std::string& name) const;
  [[nodiscard]] std::string unknown_solver_message(const std::string& name) const;
};

/// Registers every algorithm in the library (idempotent). Called lazily
/// by SolverRegistry::instance(), so user code never needs to call it.
void register_all_solvers(SolverRegistry& registry);

}  // namespace mcr

#endif  // MCR_CORE_REGISTRY_H
