#include "core/result.h"

#include <stdexcept>

#include "support/checked.h"

namespace mcr {

std::int64_t cycle_weight(const Graph& g, const std::vector<ArcId>& cycle) {
  std::int64_t w = 0;
  for (const ArcId a : cycle) w = checked_add(w, g.weight(a));
  return w;
}

std::int64_t cycle_transit(const Graph& g, const std::vector<ArcId>& cycle) {
  std::int64_t t = 0;
  for (const ArcId a : cycle) t = checked_add(t, g.transit(a));
  return t;
}

namespace {

// Witness sums must stay exact for adversarial weights: a cycle of m
// arcs bounds the int128 sum by m * INT64_MAX, far inside int128 range,
// so the mean/ratio helpers sum wide and reduce through from_int128.
int128 cycle_weight_wide(const Graph& g, const std::vector<ArcId>& cycle) {
  int128 w = 0;
  for (const ArcId a : cycle) w += g.weight(a);
  return w;
}

int128 cycle_transit_wide(const Graph& g, const std::vector<ArcId>& cycle) {
  int128 t = 0;
  for (const ArcId a : cycle) t += g.transit(a);
  return t;
}

}  // namespace

Rational cycle_mean(const Graph& g, const std::vector<ArcId>& cycle) {
  if (cycle.empty()) throw std::invalid_argument("cycle_mean: empty cycle");
  return Rational::from_int128(cycle_weight_wide(g, cycle),
                               static_cast<int128>(cycle.size()));
}

Rational cycle_ratio(const Graph& g, const std::vector<ArcId>& cycle) {
  if (cycle.empty()) throw std::invalid_argument("cycle_ratio: empty cycle");
  const int128 t = cycle_transit_wide(g, cycle);
  if (t <= 0) throw std::invalid_argument("cycle_ratio: non-positive cycle transit");
  return Rational::from_int128(cycle_weight_wide(g, cycle), t);
}

bool is_valid_cycle(const Graph& g, const std::vector<ArcId>& cycle) {
  if (cycle.empty()) return false;
  for (const ArcId a : cycle) {
    if (a < 0 || a >= g.num_arcs()) return false;
  }
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const ArcId cur = cycle[i];
    const ArcId next = cycle[(i + 1) % cycle.size()];
    if (g.dst(cur) != g.src(next)) return false;
  }
  return true;
}

}  // namespace mcr
