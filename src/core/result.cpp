#include "core/result.h"

#include <stdexcept>

namespace mcr {

std::int64_t cycle_weight(const Graph& g, const std::vector<ArcId>& cycle) {
  std::int64_t w = 0;
  for (const ArcId a : cycle) w += g.weight(a);
  return w;
}

std::int64_t cycle_transit(const Graph& g, const std::vector<ArcId>& cycle) {
  std::int64_t t = 0;
  for (const ArcId a : cycle) t += g.transit(a);
  return t;
}

Rational cycle_mean(const Graph& g, const std::vector<ArcId>& cycle) {
  if (cycle.empty()) throw std::invalid_argument("cycle_mean: empty cycle");
  return Rational(cycle_weight(g, cycle), static_cast<std::int64_t>(cycle.size()));
}

Rational cycle_ratio(const Graph& g, const std::vector<ArcId>& cycle) {
  if (cycle.empty()) throw std::invalid_argument("cycle_ratio: empty cycle");
  const std::int64_t t = cycle_transit(g, cycle);
  if (t <= 0) throw std::invalid_argument("cycle_ratio: non-positive cycle transit");
  return Rational(cycle_weight(g, cycle), t);
}

bool is_valid_cycle(const Graph& g, const std::vector<ArcId>& cycle) {
  if (cycle.empty()) return false;
  for (const ArcId a : cycle) {
    if (a < 0 || a >= g.num_arcs()) return false;
  }
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const ArcId cur = cycle[i];
    const ArcId next = cycle[(i + 1) % cycle.size()];
    if (g.dst(cur) != g.src(next)) return false;
  }
  return true;
}

}  // namespace mcr
