// Solver results.
#ifndef MCR_CORE_RESULT_H
#define MCR_CORE_RESULT_H

#include <vector>

#include "graph/graph.h"
#include "support/op_counters.h"
#include "support/rational.h"

namespace mcr {

/// The answer to an MCM/MCR query.
///
/// Every solver — including the approximate ones — reports `value` as
/// the exact mean (or ratio) of the concrete `cycle` it found, so results
/// from different solvers compare exactly. For approximate solvers the
/// guarantee is that `value` is within the configured epsilon of the
/// optimum; for exact solvers it *is* the optimum (and verify() can
/// certify that).
struct CycleResult {
  /// False iff the graph has no cycle at all; all other fields are then
  /// meaningless.
  bool has_cycle = false;

  /// The optimum cycle mean lambda* (or cycle ratio rho*).
  Rational value;

  /// Arcs of one optimum cycle, in traversal order: dst(cycle[i]) ==
  /// src(cycle[i+1]) cyclically. Ids refer to the graph the query was
  /// made on (the driver maps per-SCC ids back).
  std::vector<ArcId> cycle;

  /// Representative operation counts (see support/op_counters.h).
  OpCounters counters;
};

/// Exact weight/length/transit sums of a cycle given by arc ids.
/// cycle_mean / cycle_ratio are exact for any int64 weights (the sum is
/// accumulated in 128 bits); the int64 helpers throw NumericOverflow
/// rather than wrap when the sum leaves int64 range.
[[nodiscard]] Rational cycle_mean(const Graph& g, const std::vector<ArcId>& cycle);
[[nodiscard]] Rational cycle_ratio(const Graph& g, const std::vector<ArcId>& cycle);
[[nodiscard]] std::int64_t cycle_weight(const Graph& g, const std::vector<ArcId>& cycle);
[[nodiscard]] std::int64_t cycle_transit(const Graph& g, const std::vector<ArcId>& cycle);

/// Checks that `cycle` is a well-formed cycle in g (consecutive arcs
/// chain and it closes).
[[nodiscard]] bool is_valid_cycle(const Graph& g, const std::vector<ArcId>& cycle);

}  // namespace mcr

#endif  // MCR_CORE_RESULT_H
