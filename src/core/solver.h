// The solver interface all algorithms implement.
//
// A solver answers one query: the minimum cycle mean (or ratio) of a
// STRONGLY CONNECTED, CYCLIC graph. The public entry points in
// core/driver.h take arbitrary graphs, decompose into SCCs, and call
// solve_scc per cyclic component — exactly the setup the paper used for
// all algorithms (§2). Keeping the per-SCC contract here lets each
// algorithm shed its special cases, "which simplifies most of the
// algorithms and generally improves their running times in practice".
#ifndef MCR_CORE_SOLVER_H
#define MCR_CORE_SOLVER_H

#include <string>

#include "core/problem.h"
#include "core/result.h"
#include "graph/arc_tiles.h"
#include "graph/graph.h"

namespace mcr {

class Solver {
 public:
  virtual ~Solver() = default;

  /// Registry name, e.g. "howard".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Which objective this solver computes.
  [[nodiscard]] virtual ProblemKind kind() const = 0;

  /// Solves on a strongly connected graph containing at least one cycle.
  /// Must return has_cycle == true with the exact optimum value.
  /// Solvers whose computation yields a witness cycle for free (policy
  /// iteration, parametric pivots, negative-cycle probes) return it in
  /// `cycle`; the Karp-family solvers, which compute only the value,
  /// may leave `cycle` empty — the driver then recovers a witness once,
  /// for the winning component, via extract_optimal_cycle().
  /// Preconditions are the caller's responsibility (see core/driver.h).
  [[nodiscard]] virtual CycleResult solve_scc(const Graph& g) const = 0;

  /// Tile-aware variant: the driver passes its TileExec so solvers with
  /// tiled relaxation kernels (Bellman-Ford-based probes, the Karp
  /// family, Howard's improve step) can spread one component's sweeps
  /// across the worker pool. The default ignores the hint — every
  /// solver remains correct untiled — and overriders must return a
  /// result bit-identical to solve_scc(g) for every tile size and
  /// thread count (the driver's determinism contract).
  [[nodiscard]] virtual CycleResult solve_scc(const Graph& g,
                                              const TileExec& tiles) const {
    (void)tiles;
    return solve_scc(g);
  }
};

}  // namespace mcr

#endif  // MCR_CORE_SOLVER_H
