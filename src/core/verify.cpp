#include "core/verify.h"

#include <cmath>
#include <vector>

#include "core/critical.h"
#include "graph/bellman_ford.h"
#include "graph/traversal.h"
#include "support/checked.h"

namespace mcr {

namespace {

VerifyOutcome fail(std::string msg) { return VerifyOutcome{false, std::move(msg)}; }

VerifyOutcome check_witness(const Graph& g, const CycleResult& result, ProblemKind kind) {
  if (!result.has_cycle) {
    if (has_cycle(g)) return fail("result reports no cycle but the graph is cyclic");
    return VerifyOutcome{true, {}};
  }
  if (!has_cycle(g)) return fail("result reports a cycle but the graph is acyclic");
  if (!is_valid_cycle(g, result.cycle)) return fail("witness is not a valid cycle");
  const Rational achieved = kind == ProblemKind::kCycleMean
                                ? cycle_mean(g, result.cycle)
                                : cycle_ratio(g, result.cycle);
  if (achieved != result.value) {
    return fail("witness cycle achieves " + achieved.to_string() + ", result claims " +
                result.value.to_string());
  }
  return VerifyOutcome{true, {}};
}

}  // namespace

VerifyOutcome verify_result(const Graph& g, const CycleResult& result, ProblemKind kind) {
  VerifyOutcome w = check_witness(g, result, kind);
  if (!w.ok || !result.has_cycle) return w;
  // Optimality: no cycle in G_value is negative. The narrow lambda
  // transform throws once w*den - num*t leaves int64; the verifier must
  // stay exact for exactly those adversarial instances, so it re-checks
  // with 128-bit costs instead of giving up.
  try {
    const std::vector<std::int64_t> cost = lambda_costs(g, result.value, kind);
    if (has_negative_cycle(g, cost)) {
      return fail("a cycle better than " + result.value.to_string() + " exists");
    }
  } catch (const NumericOverflow&) {
    const std::vector<int128> cost = lambda_costs_wide(g, result.value, kind);
    if (bellman_ford_all_wide(g, cost).has_negative_cycle) {
      return fail("a cycle better than " + result.value.to_string() + " exists");
    }
  }
  return VerifyOutcome{true, {}};
}

VerifyOutcome verify_result_approx(const Graph& g, const CycleResult& result,
                                   ProblemKind kind, double epsilon) {
  VerifyOutcome w = check_witness(g, result, kind);
  if (!w.ok || !result.has_cycle) return w;
  // Floating-point Bellman-Ford at value - epsilon: adequate for an
  // epsilon-slack check (the exact verifier is used for exact solvers).
  const double bar = result.value.to_double() - epsilon;
  const NodeId n = g.num_nodes();
  std::vector<double> dist(static_cast<std::size_t>(n), 0.0);
  bool relaxed = false;
  for (NodeId pass = 0; pass <= n; ++pass) {
    relaxed = false;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const double t = kind == ProblemKind::kCycleMean
                           ? 1.0
                           : static_cast<double>(g.transit(a));
      const double c = static_cast<double>(g.weight(a)) - bar * t;
      const double cand = dist[static_cast<std::size_t>(g.src(a))] + c;
      if (cand < dist[static_cast<std::size_t>(g.dst(a))] - 1e-12) {
        dist[static_cast<std::size_t>(g.dst(a))] = cand;
        relaxed = true;
      }
    }
    if (!relaxed) break;
  }
  if (relaxed) {
    return fail("a cycle more than epsilon better than " + result.value.to_string() +
                " exists");
  }
  return VerifyOutcome{true, {}};
}

}  // namespace mcr
