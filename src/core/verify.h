// Exact certificate checking for solver results.
//
// A CycleResult claiming optimum `value` with witness `cycle` is correct
// iff (a) the cycle is well-formed and achieves `value` exactly, and
// (b) G_value has no negative cycle (so no cycle does better). Both are
// checked in integer arithmetic — no floating point, no tolerance. The
// test suite runs this on every solver x instance combination.
#ifndef MCR_CORE_VERIFY_H
#define MCR_CORE_VERIFY_H

#include <string>

#include "core/problem.h"
#include "core/result.h"
#include "graph/graph.h"

namespace mcr {

struct VerifyOutcome {
  bool ok = false;
  /// Human-readable reason on failure, empty on success.
  std::string message;
};

/// Verifies that `result` is a correct *optimal* answer for g.
[[nodiscard]] VerifyOutcome verify_result(const Graph& g, const CycleResult& result,
                                          ProblemKind kind);

/// Weaker check for approximate solvers: the witness cycle is valid and
/// achieves `result.value`, and no cycle beats it by more than
/// `epsilon` (checked as: G_{value - epsilon} has no negative cycle).
[[nodiscard]] VerifyOutcome verify_result_approx(const Graph& g, const CycleResult& result,
                                                 ProblemKind kind, double epsilon);

}  // namespace mcr

#endif  // MCR_CORE_VERIFY_H
