// Addressable binary min-heap over dense integer item ids.
//
// All three heaps in src/ds (binary, pairing, Fibonacci) share one
// concept so the parametric shortest-path solvers (KO, YTO) can be
// instantiated with any of them:
//
//   Heap(capacity)            items are ids in [0, capacity)
//   insert(item, key)
//   decrease_key(item, key)   key must not increase
//   update_key(item, key)     any direction (erase+insert semantics)
//   extract_min() -> item
//   erase(item)
//   min_item(), key(item), contains(item), empty(), size()
//
// The paper used LEDA's Fibonacci heaps for both KO and YTO; the heap
// ablation bench (bench_ablation_heaps) measures what that choice cost.
#ifndef MCR_DS_BINARY_HEAP_H
#define MCR_DS_BINARY_HEAP_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace mcr {

template <typename Key, typename Compare = std::less<Key>>
class BinaryHeap {
 public:
  using Item = std::int32_t;

  explicit BinaryHeap(Item capacity, Compare cmp = Compare())
      : cmp_(cmp), pos_(static_cast<std::size_t>(capacity), kAbsent),
        key_(static_cast<std::size_t>(capacity)) {
    if (capacity < 0) throw std::invalid_argument("BinaryHeap: negative capacity");
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool contains(Item i) const { return pos_[idx(i)] != kAbsent; }
  [[nodiscard]] const Key& key(Item i) const {
    assert(contains(i));
    return key_[idx(i)];
  }

  void insert(Item i, Key k) {
    assert(!contains(i));
    key_[idx(i)] = std::move(k);
    pos_[idx(i)] = static_cast<std::int32_t>(heap_.size());
    heap_.push_back(i);
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] Item min_item() const {
    assert(!empty());
    return heap_.front();
  }

  Item extract_min() {
    assert(!empty());
    const Item top = heap_.front();
    remove_at(0);
    return top;
  }

  void decrease_key(Item i, Key k) {
    assert(contains(i));
    assert(!cmp_(key_[idx(i)], k));  // new key must not be greater
    key_[idx(i)] = std::move(k);
    sift_up(static_cast<std::size_t>(pos_[idx(i)]));
  }

  void update_key(Item i, Key k) {
    assert(contains(i));
    const bool down = cmp_(key_[idx(i)], k);
    key_[idx(i)] = std::move(k);
    const auto p = static_cast<std::size_t>(pos_[idx(i)]);
    if (down) {
      sift_down(p);
    } else {
      sift_up(p);
    }
  }

  void erase(Item i) {
    assert(contains(i));
    remove_at(static_cast<std::size_t>(pos_[idx(i)]));
  }

 private:
  static constexpr std::int32_t kAbsent = -1;

  static std::size_t idx(Item i) { return static_cast<std::size_t>(i); }

  [[nodiscard]] bool less(Item a, Item b) const { return cmp_(key_[idx(a)], key_[idx(b)]); }

  void place(std::size_t slot, Item i) {
    heap_[slot] = i;
    pos_[idx(i)] = static_cast<std::int32_t>(slot);
  }

  void sift_up(std::size_t slot) {
    const Item moving = heap_[slot];
    while (slot > 0) {
      const std::size_t parent = (slot - 1) / 2;
      if (!cmp_(key_[idx(moving)], key_[idx(heap_[parent])])) break;
      place(slot, heap_[parent]);
      slot = parent;
    }
    place(slot, moving);
  }

  void sift_down(std::size_t slot) {
    const Item moving = heap_[slot];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * slot + 1;
      if (child >= n) break;
      if (child + 1 < n && less(heap_[child + 1], heap_[child])) ++child;
      if (!cmp_(key_[idx(heap_[child])], key_[idx(moving)])) break;
      place(slot, heap_[child]);
      slot = child;
    }
    place(slot, moving);
  }

  void remove_at(std::size_t slot) {
    const Item victim = heap_[slot];
    const Item last = heap_.back();
    heap_.pop_back();
    pos_[idx(victim)] = kAbsent;
    if (victim == last) return;
    place(slot, last);
    // The displaced element may need to move either way.
    sift_up(static_cast<std::size_t>(pos_[idx(last)]));
    sift_down(static_cast<std::size_t>(pos_[idx(last)]));
  }

  Compare cmp_;
  std::vector<Item> heap_;
  std::vector<std::int32_t> pos_;
  std::vector<Key> key_;
};

}  // namespace mcr

#endif  // MCR_DS_BINARY_HEAP_H
