// Addressable Fibonacci min-heap (Fredman & Tarjan) over dense integer
// item ids. Same concept as BinaryHeap (see binary_heap.h).
//
// This is the heap the paper's KO/YTO implementations used (LEDA's
// default, §4.2): O(1) amortized insert/decrease_key, O(lg n) amortized
// extract_min. Nodes live in one contiguous pool indexed by item id, so
// no allocation happens after construction.
#ifndef MCR_DS_FIBONACCI_HEAP_H
#define MCR_DS_FIBONACCI_HEAP_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace mcr {

template <typename Key, typename Compare = std::less<Key>>
class FibonacciHeap {
 public:
  using Item = std::int32_t;

  explicit FibonacciHeap(Item capacity, Compare cmp = Compare())
      : cmp_(cmp), node_(static_cast<std::size_t>(capacity)) {
    if (capacity < 0) throw std::invalid_argument("FibonacciHeap: negative capacity");
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool contains(Item i) const { return node_[idx(i)].in_heap; }
  [[nodiscard]] const Key& key(Item i) const {
    assert(contains(i));
    return node_[idx(i)].key;
  }

  void insert(Item i, Key k) {
    assert(!contains(i));
    Node& nd = node_[idx(i)];
    nd = Node{};
    nd.key = std::move(k);
    nd.in_heap = true;
    splice_into_roots(i);
    if (min_ == kNil || cmp_(nd.key, node_[idx(min_)].key)) min_ = i;
    ++size_;
  }

  [[nodiscard]] Item min_item() const {
    assert(!empty());
    return min_;
  }

  Item extract_min() {
    assert(!empty());
    const Item z = min_;
    Node& zn = node_[idx(z)];
    // Promote children to roots.
    Item child = zn.child;
    if (child != kNil) {
      Item c = child;
      do {
        const Item next = node_[idx(c)].right;
        node_[idx(c)].parent = kNil;
        node_[idx(c)].marked = false;
        splice_into_roots(c);
        c = next;
      } while (c != child);
    }
    remove_from_list(z);
    zn.in_heap = false;
    --size_;
    if (size_ == 0) {
      min_ = kNil;
      roots_ = kNil;
    } else {
      min_ = roots_;
      consolidate();
    }
    return z;
  }

  void decrease_key(Item i, Key k) {
    assert(contains(i));
    Node& nd = node_[idx(i)];
    assert(!cmp_(nd.key, k));
    nd.key = std::move(k);
    const Item p = nd.parent;
    if (p != kNil && cmp_(nd.key, node_[idx(p)].key)) {
      cut(i, p);
      cascading_cut(p);
    }
    if (cmp_(nd.key, node_[idx(min_)].key)) min_ = i;
  }

  void update_key(Item i, Key k) {
    assert(contains(i));
    if (!cmp_(node_[idx(i)].key, k)) {
      decrease_key(i, std::move(k));
    } else {
      erase(i);
      insert(i, std::move(k));
    }
  }

  void erase(Item i) {
    assert(contains(i));
    // Standard trick: cut to root unconditionally, make it the minimum,
    // then extract.
    const Item p = node_[idx(i)].parent;
    if (p != kNil) {
      cut(i, p);
      cascading_cut(p);
    }
    force_min_ = i;
    min_ = i;
    extract_min();
    force_min_ = kNil;
  }

 private:
  static constexpr Item kNil = -1;

  struct Node {
    Key key{};
    Item parent = kNil;
    Item child = kNil;
    Item left = kNil;
    Item right = kNil;
    std::int32_t degree = 0;
    bool marked = false;
    bool in_heap = false;
  };

  static std::size_t idx(Item i) { return static_cast<std::size_t>(i); }

  /// Inserts i into the root list (circular doubly linked via left/right).
  void splice_into_roots(Item i) {
    Node& nd = node_[idx(i)];
    nd.parent = kNil;
    if (roots_ == kNil) {
      roots_ = i;
      nd.left = nd.right = i;
    } else {
      Node& head = node_[idx(roots_)];
      nd.right = roots_;
      nd.left = head.left;
      node_[idx(head.left)].right = i;
      head.left = i;
    }
  }

  /// Unlinks i from whatever circular list it is in, updating the list
  /// head (roots_ or parent's child pointer).
  void remove_from_list(Item i) {
    Node& nd = node_[idx(i)];
    const Item p = nd.parent;
    if (nd.right == i) {
      // singleton list
      if (p != kNil) {
        node_[idx(p)].child = kNil;
      } else if (roots_ == i) {
        roots_ = kNil;
      }
    } else {
      node_[idx(nd.left)].right = nd.right;
      node_[idx(nd.right)].left = nd.left;
      if (p != kNil) {
        if (node_[idx(p)].child == i) node_[idx(p)].child = nd.right;
      } else if (roots_ == i) {
        roots_ = nd.right;
      }
    }
    nd.left = nd.right = i;
  }

  /// Makes y a child of x (both roots, degree(x) accounting).
  void link(Item y, Item x) {
    remove_from_list(y);
    Node& xn = node_[idx(x)];
    Node& yn = node_[idx(y)];
    yn.parent = x;
    yn.marked = false;
    if (xn.child == kNil) {
      xn.child = y;
      yn.left = yn.right = y;
    } else {
      Node& head = node_[idx(xn.child)];
      yn.right = xn.child;
      yn.left = head.left;
      node_[idx(head.left)].right = y;
      head.left = y;
    }
    ++xn.degree;
  }

  void consolidate() {
    // Collect roots first (the list is rewritten during linking).
    scratch_roots_.clear();
    if (roots_ != kNil) {
      Item r = roots_;
      do {
        scratch_roots_.push_back(r);
        r = node_[idx(r)].right;
      } while (r != roots_);
    }
    degree_table_.assign(64, kNil);
    for (Item w : scratch_roots_) {
      Item x = w;
      std::int32_t d = node_[idx(x)].degree;
      while (degree_table_[static_cast<std::size_t>(d)] != kNil) {
        Item y = degree_table_[static_cast<std::size_t>(d)];
        if (is_less(y, x)) std::swap(x, y);
        link(y, x);
        degree_table_[static_cast<std::size_t>(d)] = kNil;
        d = node_[idx(x)].degree;
      }
      degree_table_[static_cast<std::size_t>(d)] = x;
    }
    // Find the new minimum among roots.
    min_ = kNil;
    for (const Item r : degree_table_) {
      if (r == kNil) continue;
      if (min_ == kNil || is_less(r, min_)) min_ = r;
    }
  }

  [[nodiscard]] bool is_less(Item a, Item b) const {
    if (a == force_min_) return true;
    if (b == force_min_) return false;
    return cmp_(node_[idx(a)].key, node_[idx(b)].key);
  }

  void cut(Item i, Item p) {
    remove_from_list(i);
    --node_[idx(p)].degree;
    splice_into_roots(i);
    node_[idx(i)].marked = false;
  }

  void cascading_cut(Item i) {
    Item p = node_[idx(i)].parent;
    while (p != kNil) {
      if (!node_[idx(i)].marked) {
        node_[idx(i)].marked = true;
        return;
      }
      cut(i, p);
      i = p;
      p = node_[idx(i)].parent;
    }
  }

  Compare cmp_;
  std::vector<Node> node_;
  std::vector<Item> degree_table_;
  std::vector<Item> scratch_roots_;
  Item min_ = kNil;
  Item roots_ = kNil;
  Item force_min_ = kNil;  // sentinel treated as -infinity during erase()
  std::size_t size_ = 0;
};

}  // namespace mcr

#endif  // MCR_DS_FIBONACCI_HEAP_H
