// Addressable pairing min-heap over dense integer item ids. Same
// concept as BinaryHeap (see binary_heap.h).
//
// Pairing heaps are the usual practical winner among mergeable heaps;
// they are included so the heap ablation can test whether the paper's
// Fibonacci-heap choice mattered for KO/YTO.
#ifndef MCR_DS_PAIRING_HEAP_H
#define MCR_DS_PAIRING_HEAP_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace mcr {

template <typename Key, typename Compare = std::less<Key>>
class PairingHeap {
 public:
  using Item = std::int32_t;

  explicit PairingHeap(Item capacity, Compare cmp = Compare())
      : cmp_(cmp), node_(static_cast<std::size_t>(capacity)) {
    if (capacity < 0) throw std::invalid_argument("PairingHeap: negative capacity");
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool contains(Item i) const { return node_[idx(i)].in_heap; }
  [[nodiscard]] const Key& key(Item i) const {
    assert(contains(i));
    return node_[idx(i)].key;
  }

  void insert(Item i, Key k) {
    assert(!contains(i));
    Node& nd = node_[idx(i)];
    nd = Node{};
    nd.key = std::move(k);
    nd.in_heap = true;
    root_ = (root_ == kNil) ? i : meld(root_, i);
    ++size_;
  }

  [[nodiscard]] Item min_item() const {
    assert(!empty());
    return root_;
  }

  Item extract_min() {
    assert(!empty());
    const Item z = root_;
    root_ = merge_pairs(node_[idx(z)].child);
    if (root_ != kNil) {
      node_[idx(root_)].parent = kNil;
      node_[idx(root_)].sibling = kNil;
    }
    node_[idx(z)].in_heap = false;
    --size_;
    return z;
  }

  void decrease_key(Item i, Key k) {
    assert(contains(i));
    Node& nd = node_[idx(i)];
    assert(!cmp_(nd.key, k));
    nd.key = std::move(k);
    if (i == root_) return;
    detach(i);
    root_ = meld(root_, i);
  }

  void update_key(Item i, Key k) {
    assert(contains(i));
    if (!cmp_(node_[idx(i)].key, k)) {
      decrease_key(i, std::move(k));
    } else {
      erase(i);
      insert(i, std::move(k));
    }
  }

  void erase(Item i) {
    assert(contains(i));
    if (i == root_) {
      extract_min();
      return;
    }
    detach(i);
    const Item sub = merge_pairs(node_[idx(i)].child);
    if (sub != kNil) {
      node_[idx(sub)].parent = kNil;
      node_[idx(sub)].sibling = kNil;
      root_ = meld(root_, sub);
    }
    node_[idx(i)].in_heap = false;
    --size_;
  }

 private:
  static constexpr Item kNil = -1;

  struct Node {
    Key key{};
    Item child = kNil;
    Item sibling = kNil;
    Item parent = kNil;  // actual parent or left sibling (for detach)
    bool is_left_child = false;
    bool in_heap = false;
  };

  static std::size_t idx(Item i) { return static_cast<std::size_t>(i); }

  /// Melds two heap roots; returns the new root.
  Item meld(Item a, Item b) {
    if (a == kNil) return b;
    if (b == kNil) return a;
    if (cmp_(node_[idx(b)].key, node_[idx(a)].key)) std::swap(a, b);
    // b becomes the leftmost child of a.
    Node& an = node_[idx(a)];
    Node& bn = node_[idx(b)];
    bn.sibling = an.child;
    if (an.child != kNil) {
      node_[idx(an.child)].parent = b;
      node_[idx(an.child)].is_left_child = false;
    }
    bn.parent = a;
    bn.is_left_child = true;
    an.child = b;
    return a;
  }

  /// Unlinks i from its parent/sibling chain (i must not be the root).
  void detach(Item i) {
    Node& nd = node_[idx(i)];
    if (nd.is_left_child) {
      node_[idx(nd.parent)].child = nd.sibling;
    } else {
      node_[idx(nd.parent)].sibling = nd.sibling;
    }
    if (nd.sibling != kNil) {
      node_[idx(nd.sibling)].parent = nd.parent;
      node_[idx(nd.sibling)].is_left_child = nd.is_left_child;
    }
    nd.parent = kNil;
    nd.sibling = kNil;
  }

  /// Two-pass pairing of a child list; returns the resulting root.
  Item merge_pairs(Item first) {
    if (first == kNil) return kNil;
    // Pass 1: meld pairs left to right.
    scratch_.clear();
    Item cur = first;
    while (cur != kNil) {
      const Item a = cur;
      const Item b = node_[idx(a)].sibling;
      Item next = kNil;
      if (b != kNil) next = node_[idx(b)].sibling;
      node_[idx(a)].sibling = kNil;
      node_[idx(a)].parent = kNil;
      if (b != kNil) {
        node_[idx(b)].sibling = kNil;
        node_[idx(b)].parent = kNil;
        scratch_.push_back(meld(a, b));
      } else {
        scratch_.push_back(a);
      }
      cur = next;
    }
    // Pass 2: meld right to left.
    Item result = scratch_.back();
    for (std::size_t i = scratch_.size() - 1; i-- > 0;) {
      result = meld(scratch_[i], result);
    }
    return result;
  }

  Compare cmp_;
  std::vector<Node> node_;
  std::vector<Item> scratch_;
  Item root_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace mcr

#endif  // MCR_DS_PAIRING_HEAP_H
