#include "fault/fault.h"

#include <array>
#include <atomic>
#include <algorithm>
#include <charconv>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace mcr::fault {

const char* to_string(Site site) {
  switch (site) {
    case Site::kAlloc: return "alloc";
    case Site::kSockRead: return "sock_read";
    case Site::kSockWrite: return "sock_write";
    case Site::kWorkerStall: return "worker_stall";
    case Site::kWorkerDeath: return "worker_death";
    case Site::kClockSkip: return "clock_skip";
    case Site::kPhase: return "phase";
  }
  return "?";
}

const char* to_string(Action action) {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kFail: return "fail";
    case Action::kShort: return "short";
    case Action::kEintr: return "eintr";
    case Action::kReset: return "reset";
    case Action::kStall: return "stall";
    case Action::kDeath: return "death";
    case Action::kSkip: return "skip";
  }
  return "?";
}

namespace {

double parse_prob(std::string_view key, std::string_view text) {
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size() || v < 0.0 || v > 1.0) {
    throw std::invalid_argument("FaultPlan: bad probability for '" + std::string(key) +
                                "': '" + std::string(text) + "' (want [0,1])");
  }
  return v;
}

std::uint64_t parse_u64(std::string_view key, std::string_view text) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("FaultPlan: bad integer for '" + std::string(key) +
                                "': '" + std::string(text) + "'");
  }
  return v;
}

}  // namespace

Plan Plan::parse(std::string_view spec) {
  Plan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    while (pos < spec.size() && (spec[pos] == ',' || spec[pos] == ' ')) ++pos;
    if (pos >= spec.size()) break;
    std::size_t end = spec.find_first_of(", ", pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view token = spec.substr(pos, end - pos);
    pos = end;
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("FaultPlan: token '" + std::string(token) +
                                  "' is not key=value");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (key == "seed") plan.seed = parse_u64(key, value);
    else if (key == "alloc") plan.alloc = parse_prob(key, value);
    else if (key == "read_short") plan.read_short = parse_prob(key, value);
    else if (key == "read_eintr") plan.read_eintr = parse_prob(key, value);
    else if (key == "read_reset") plan.read_reset = parse_prob(key, value);
    else if (key == "write_short") plan.write_short = parse_prob(key, value);
    else if (key == "write_eintr") plan.write_eintr = parse_prob(key, value);
    else if (key == "write_reset") plan.write_reset = parse_prob(key, value);
    else if (key == "worker_stall") plan.worker_stall = parse_prob(key, value);
    else if (key == "worker_death") plan.worker_death = parse_prob(key, value);
    else if (key == "clock_skip") plan.clock_skip = parse_prob(key, value);
    else if (key == "phase") plan.phase_error = parse_prob(key, value);
    else if (key == "stall_ms")
      plan.stall_ms = static_cast<std::int64_t>(parse_u64(key, value));
    else if (key == "clock_skip_ms")
      plan.clock_skip_ms = static_cast<std::int64_t>(parse_u64(key, value));
    else if (key == "max_per_site") plan.max_per_site = parse_u64(key, value);
    else if (key == "max_deaths") plan.max_deaths = parse_u64(key, value);
    else {
      throw std::invalid_argument("FaultPlan: unknown key '" + std::string(key) + "'");
    }
  }
  return plan;
}

std::string Plan::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed;
  const auto prob = [&](const char* key, double v) {
    if (v > 0.0) os << ',' << key << '=' << v;
  };
  prob("alloc", alloc);
  prob("read_short", read_short);
  prob("read_eintr", read_eintr);
  prob("read_reset", read_reset);
  prob("write_short", write_short);
  prob("write_eintr", write_eintr);
  prob("write_reset", write_reset);
  prob("worker_stall", worker_stall);
  prob("worker_death", worker_death);
  prob("clock_skip", clock_skip);
  prob("phase", phase_error);
  const Plan defaults;
  if (stall_ms != defaults.stall_ms) os << ",stall_ms=" << stall_ms;
  if (clock_skip_ms != defaults.clock_skip_ms) os << ",clock_skip_ms=" << clock_skip_ms;
  if (max_per_site != defaults.max_per_site) os << ",max_per_site=" << max_per_site;
  if (max_deaths != defaults.max_deaths) os << ",max_deaths=" << max_deaths;
  return os.str();
}

#if defined(MCR_FAULT_INJECTION) && MCR_FAULT_INJECTION

namespace {

std::atomic<Injector*> g_injector{nullptr};

thread_local int g_suppress_depth = 0;

/// splitmix64: the per-decision uniform draw. Pure in its input, so the
/// k-th decision at a site depends only on (seed, site, k).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, Site site, std::uint64_t seq) {
  const std::uint64_t h = splitmix64(
      splitmix64(seed ^ (0xa076'1d64'78bd'642fULL * (static_cast<std::uint64_t>(site) + 1))) ^
      seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

struct Injector::State {
  mutable std::mutex mutex;
  std::array<std::uint64_t, kNumSites> evaluations{};
  std::array<std::uint64_t, kNumSites> fired{};
  std::vector<Injection> trace;
};

Injector::Injector(Plan plan) : plan_(plan), state_(std::make_unique<State>()) {
  Injector* expected = nullptr;
  g_injector.compare_exchange_strong(expected, this);
}

Injector::~Injector() {
  Injector* expected = this;
  g_injector.compare_exchange_strong(expected, nullptr);
}

void Injector::install(Injector* injector) { g_injector.store(injector); }

Injector* Injector::current() { return g_injector.load(std::memory_order_acquire); }

Decision Injector::decide(Site site) {
  const auto s = static_cast<std::size_t>(site);
  std::lock_guard lock(state_->mutex);
  const std::uint64_t seq = state_->evaluations[s]++;
  const double u = uniform01(plan_.seed, site, seq);

  Action action = Action::kNone;
  std::int64_t param = 0;
  switch (site) {
    case Site::kAlloc:
      if (u < plan_.alloc) action = Action::kFail;
      break;
    case Site::kSockRead:
      if (u < plan_.read_eintr) action = Action::kEintr;
      else if (u < plan_.read_eintr + plan_.read_short) action = Action::kShort;
      else if (u < plan_.read_eintr + plan_.read_short + plan_.read_reset)
        action = Action::kReset;
      break;
    case Site::kSockWrite:
      if (u < plan_.write_eintr) action = Action::kEintr;
      else if (u < plan_.write_eintr + plan_.write_short) action = Action::kShort;
      else if (u < plan_.write_eintr + plan_.write_short + plan_.write_reset)
        action = Action::kReset;
      break;
    case Site::kWorkerStall:
      if (u < plan_.worker_stall) {
        action = Action::kStall;
        param = plan_.stall_ms;
      }
      break;
    case Site::kWorkerDeath:
      if (u < plan_.worker_death) action = Action::kDeath;
      break;
    case Site::kClockSkip:
      if (u < plan_.clock_skip) {
        action = Action::kSkip;
        param = plan_.clock_skip_ms;
      }
      break;
    case Site::kPhase:
      if (u < plan_.phase_error) action = Action::kFail;
      break;
  }

  if (action != Action::kNone) {
    std::uint64_t cap = plan_.max_per_site;
    if (site == Site::kWorkerDeath) cap = std::min(cap, plan_.max_deaths);
    if (state_->fired[s] >= cap) {
      return Decision{};  // capped: deterministic, since fired[s] is per-site
    }
    ++state_->fired[s];
    state_->trace.push_back(Injection{site, seq, action});
  }
  return Decision{action, param};
}

std::vector<Injection> Injector::trace() const {
  std::vector<Injection> out;
  {
    std::lock_guard lock(state_->mutex);
    out = state_->trace;
  }
  std::sort(out.begin(), out.end(), [](const Injection& a, const Injection& b) {
    if (a.site != b.site) return a.site < b.site;
    return a.seq < b.seq;
  });
  return out;
}

std::string Injector::trace_string() const {
  std::ostringstream os;
  bool first = true;
  for (const Injection& i : trace()) {
    if (!first) os << ';';
    first = false;
    os << to_string(i.site) << '#' << i.seq << ':' << to_string(i.action);
  }
  return os.str();
}

std::uint64_t Injector::fired_count() const {
  std::lock_guard lock(state_->mutex);
  return state_->trace.size();
}

std::uint64_t Injector::fired_count(Site site) const {
  std::lock_guard lock(state_->mutex);
  return state_->fired[static_cast<std::size_t>(site)];
}

std::uint64_t Injector::evaluation_count(Site site) const {
  std::lock_guard lock(state_->mutex);
  return state_->evaluations[static_cast<std::size_t>(site)];
}

SuppressScope::SuppressScope() { ++g_suppress_depth; }

SuppressScope::~SuppressScope() { --g_suppress_depth; }

namespace detail {

Decision decide_hook(Site site) {
  if (g_suppress_depth > 0) return Decision{};
  Injector* injector = Injector::current();
  return injector == nullptr ? Decision{} : injector->decide(site);
}

}  // namespace detail

#endif  // MCR_FAULT_INJECTION

}  // namespace mcr::fault
