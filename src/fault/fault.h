// mcr::fault — deterministic, seeded fault injection for the solve
// stack.
//
// A FaultPlan is a PRNG-driven schedule of injection sites: allocation
// failure, socket read/write short-count / EINTR / ECONNRESET, thread
// pool worker stall / death, clock skips for deadline logic, and solver
// phase-boundary errors. Hooks are threaded through svc::Server,
// svc::Client, support::ThreadPool, and the solve driver's phase
// boundaries via the MCR_FAULT_POINT macro below.
//
// Determinism contract: the decision for evaluation #k at site S is a
// pure function of (plan.seed, S, k) — it does not depend on wall-clock
// time, thread identity, or scheduling. As long as the workload drives
// the same number of evaluations through each site (a sequential client
// against a fresh server does), the same seed reproduces the same
// injection trace bit-identically; trace() orders records by (site,
// per-site sequence) so cross-site thread interleaving cannot perturb
// the rendering. test_fault asserts this, and `mcr_chaos --repeat-check`
// verifies it end-to-end against a live server.
//
// Cost contract: when the library is built without MCR_FAULT_INJECTION
// (the Release default), MCR_FAULT_POINT expands to a constant and the
// Injector/decide_hook symbols are not compiled at all — tools/ci.sh
// asserts their absence from the Release archive with nm. The Plan
// parser stays available in every build so tools can explain that the
// hooks are compiled out instead of silently ignoring --plan.
#ifndef MCR_FAULT_FAULT_H
#define MCR_FAULT_FAULT_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mcr::fault {

/// Where a fault can be injected.
enum class Site : std::uint8_t {
  kAlloc = 0,    // allocation boundary (request handling, job setup)
  kSockRead,     // one read() attempt inside a full-read helper
  kSockWrite,    // one send()/write() attempt inside a full-write helper
  kWorkerStall,  // thread-pool worker, drawn once per executed task
  kWorkerDeath,  // thread-pool worker, drawn once per executed task
  kClockSkip,    // deadline arming (simulated clock jump)
  kPhase,        // driver phase boundary (per component solve)
};
inline constexpr std::size_t kNumSites = 7;
[[nodiscard]] const char* to_string(Site site);

/// What the hook should do. kNone is the universal "no fault" answer.
enum class Action : std::uint8_t {
  kNone = 0,
  kFail,   // alloc: throw std::bad_alloc; phase: throw std::runtime_error
  kShort,  // socket op: transfer at most 1 byte this attempt
  kEintr,  // socket op: fail with errno = EINTR, no syscall issued
  kReset,  // socket op: fail with errno = ECONNRESET, no syscall issued
  kStall,  // worker: sleep param milliseconds before the task
  kDeath,  // worker: exit the thread after the task (pool respawns)
  kSkip,   // clock: move the deadline param milliseconds into the past
};
[[nodiscard]] const char* to_string(Action action);

/// One hook evaluation's outcome. `param` carries the action's
/// magnitude (stall / skip milliseconds); 0 otherwise.
struct Decision {
  Action action = Action::kNone;
  std::int64_t param = 0;
};

/// A seeded schedule of injection probabilities, one per site (socket
/// sites split by flavour). Parsed from the spec format documented in
/// docs/ROBUSTNESS.md: comma- or space-separated key=value pairs, e.g.
/// "seed=7,read_eintr=0.5,worker_death=0.02,max_per_site=100".
struct Plan {
  std::uint64_t seed = 1;
  // Per-evaluation firing probabilities in [0, 1].
  double alloc = 0.0;
  double read_short = 0.0;
  double read_eintr = 0.0;
  double read_reset = 0.0;
  double write_short = 0.0;
  double write_eintr = 0.0;
  double write_reset = 0.0;
  double worker_stall = 0.0;
  double worker_death = 0.0;
  double clock_skip = 0.0;
  double phase_error = 0.0;
  // Action magnitudes.
  std::int64_t stall_ms = 2;
  std::int64_t clock_skip_ms = 3'600'000;  // one hour: deterministic expiry
  // Caps on *fired* injections. max_per_site bounds every site (so a
  // probability-1.0 EINTR plan cannot livelock a retry loop forever);
  // max_deaths additionally bounds worker deaths.
  std::uint64_t max_per_site = std::uint64_t(-1);
  std::uint64_t max_deaths = 2;

  /// Parses the spec format above; throws std::invalid_argument naming
  /// the offending token on unknown keys or unparseable values.
  [[nodiscard]] static Plan parse(std::string_view spec);
  /// Canonical spec string (nonzero / non-default fields only);
  /// parse(to_string()) round-trips.
  [[nodiscard]] std::string to_string() const;
};

/// One fired injection. seq is the per-site evaluation index (0-based),
/// so a trace is reproducible from the seed alone.
struct Injection {
  Site site;
  std::uint64_t seq;
  Action action;
};

#if defined(MCR_FAULT_INJECTION) && MCR_FAULT_INJECTION

/// Evaluates a Plan and records the trace. Thread-safe; decisions are
/// serialized per-process (this is a test facility — determinism beats
/// throughput here).
class Injector {
 public:
  explicit Injector(Plan plan);
  ~Injector();

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Draws the next decision for `site`. Pure in (seed, site, per-site
  /// sequence number); appends to the trace when it fires.
  [[nodiscard]] Decision decide(Site site);

  [[nodiscard]] const Plan& plan() const { return plan_; }

  /// All fired injections, ordered by (site, seq) — deterministic for a
  /// deterministic workload regardless of thread interleaving.
  [[nodiscard]] std::vector<Injection> trace() const;
  /// Compact rendering: "sock_read#3:eintr;sock_read#9:short;...".
  [[nodiscard]] std::string trace_string() const;
  /// Total fired injections so far.
  [[nodiscard]] std::uint64_t fired_count() const;
  /// Fired injections at one site.
  [[nodiscard]] std::uint64_t fired_count(Site site) const;
  /// Hook evaluations (fired or not) at one site.
  [[nodiscard]] std::uint64_t evaluation_count(Site site) const;

  /// Installs `injector` as the process-global hook target (nullptr
  /// uninstalls). The constructor installs `this` if no injector is
  /// installed; the destructor uninstalls `this` if still current.
  static void install(Injector* injector);
  [[nodiscard]] static Injector* current();

 private:
  struct State;
  Plan plan_;
  std::unique_ptr<State> state_;
};

/// RAII: while alive, MCR_FAULT_POINT on *this thread* answers kNone
/// without consuming a sequence number. This lets a driver thread (the
/// mcr_chaos client) share a process with an injected server while
/// keeping the server threads' per-site numbering — and therefore the
/// trace — deterministic. Direct Injector::decide() calls are not
/// suppressed. Nestable.
class SuppressScope {
 public:
  SuppressScope();
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;
};

namespace detail {
/// The single symbol behind MCR_FAULT_POINT. Absent from builds without
/// MCR_FAULT_INJECTION (the ci.sh symbol-absence check keys on it).
[[nodiscard]] Decision decide_hook(Site site);
}  // namespace detail

#define MCR_FAULT_POINT(site) (::mcr::fault::detail::decide_hook(site))

#else  // !MCR_FAULT_INJECTION

/// No-op stand-in so callers compile unchanged without the hooks.
class SuppressScope {
 public:
  SuppressScope() {}
  ~SuppressScope() {}
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;
};

#define MCR_FAULT_POINT(site) (::mcr::fault::Decision{})

#endif  // MCR_FAULT_INJECTION

}  // namespace mcr::fault

#endif  // MCR_FAULT_FAULT_H
