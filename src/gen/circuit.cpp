#include "gen/circuit.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "support/prng.h"

namespace mcr::gen {

Graph circuit(const CircuitConfig& config) {
  if (config.registers < 1) throw std::invalid_argument("circuit: need >= 1 register");
  if (config.module_size < 1) throw std::invalid_argument("circuit: module_size >= 1");
  if (config.avg_fanout < 1.0) throw std::invalid_argument("circuit: avg_fanout >= 1");
  if (config.min_delay > config.max_delay) {
    throw std::invalid_argument("circuit: empty delay interval");
  }
  Prng rng(config.seed);
  const NodeId n = config.registers;
  const NodeId msize = std::min(config.module_size, n);
  const NodeId num_modules = (n + msize - 1) / msize;
  const auto module_of = [&](NodeId v) { return v / msize; };
  const auto module_begin = [&](NodeId mod) { return mod * msize; };
  const auto module_end = [&](NodeId mod) { return std::min<NodeId>(n, (mod + 1) * msize); };
  const auto delay = [&] { return rng.uniform_int(config.min_delay, config.max_delay); };

  std::vector<ArcSpec> arcs;

  // Classify modules: pure shift-rings (counters, shift registers,
  // LFSRs) versus datapath modules that will also receive forwarding
  // skip arcs below.
  std::vector<bool> is_ring(static_cast<std::size_t>(num_modules));
  for (NodeId mod = 0; mod < num_modules; ++mod) {
    is_ring[static_cast<std::size_t>(mod)] = rng.bernoulli(config.ring_module_prob);
  }

  // Local shift-register chain inside each module: gives every module a
  // backbone and keeps the in/out degree distribution circuit-like.
  for (NodeId v = 0; v < n; ++v) {
    const NodeId mod = module_of(v);
    if (v + 1 < module_end(mod)) {
      arcs.push_back(ArcSpec{v, v + 1, delay(), 1});
    }
  }
  // Local feedback: close each module into a loop with some probability
  // (an FSM/datapath loop), which creates per-module SCCs.
  for (NodeId mod = 0; mod < num_modules; ++mod) {
    const NodeId b = module_begin(mod);
    const NodeId e = module_end(mod);
    if (e - b >= 2 && (is_ring[static_cast<std::size_t>(mod)] || rng.bernoulli(0.8))) {
      arcs.push_back(ArcSpec{e - 1, b, delay(), 1});
    }
  }
  // Forward pipeline arcs between consecutive modules.
  for (NodeId mod = 0; mod + 1 < num_modules; ++mod) {
    const NodeId u =
        static_cast<NodeId>(rng.uniform_int(module_begin(mod), module_end(mod) - 1));
    const NodeId v = static_cast<NodeId>(
        rng.uniform_int(module_begin(mod + 1), module_end(mod + 1) - 1));
    arcs.push_back(ArcSpec{u, v, delay(), 1});
  }
  // Self-loops (enabled-update registers, accumulators) — placed on
  // datapath modules; a shift-ring's registers move every cycle.
  for (NodeId v = 0; v < n; ++v) {
    if (!is_ring[static_cast<std::size_t>(module_of(v))] &&
        rng.bernoulli(config.self_loop_prob)) {
      arcs.push_back(ArcSpec{v, v, delay(), 1});
    }
  }
  // Extra fanout up to the requested average degree. Intra-module
  // extras are *forward skip arcs* (data-forwarding paths along the
  // pipeline direction): they add chords without destroying the
  // near-commensurate cycle lengths that make real circuit unfoldings
  // thin — the structural property behind DG's large circuit wins in
  // the paper (§4.4). Inter-module extras are forward pipeline arcs,
  // with feedback_prob of them jumping backwards (control loops).
  const auto target_arcs =
      static_cast<std::size_t>(config.avg_fanout * static_cast<double>(n));
  while (arcs.size() < target_arcs) {
    const NodeId u = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const NodeId umod = module_of(u);
    NodeId v = 0;
    if (!is_ring[static_cast<std::size_t>(umod)] && rng.bernoulli(0.7)) {
      // Forwarding path within a datapath module: skip 2..5 stages ahead.
      const NodeId limit = module_end(umod) - 1;
      if (u >= limit) continue;
      v = static_cast<NodeId>(
          std::min<std::int64_t>(limit, u + rng.uniform_int(2, 5)));
    } else if (rng.bernoulli(config.feedback_prob) && umod > 0) {
      // Global feedback to an earlier module.
      const NodeId tmod = static_cast<NodeId>(rng.uniform_int(0, umod - 1));
      v = static_cast<NodeId>(rng.uniform_int(module_begin(tmod), module_end(tmod) - 1));
    } else {
      // Forward connection to a later (or same) module.
      const NodeId tmod = static_cast<NodeId>(rng.uniform_int(umod, num_modules - 1));
      v = static_cast<NodeId>(rng.uniform_int(module_begin(tmod), module_end(tmod) - 1));
    }
    if (u == v) continue;  // self-loops handled above
    arcs.push_back(ArcSpec{u, v, delay(), 1});
  }

  return Graph(n, arcs);
}

}  // namespace mcr::gen
