// Synthetic sequential-circuit graph generator.
//
// The paper's second test family is "cyclic sequential multi-level logic
// benchmark circuits" from the 1991 MCNC/LGSynth suite (§3). Those
// tapes are not available here, so this generator synthesizes
// register-to-register latency graphs with the structural properties
// that matter to MCM/MCR algorithms on circuits (DESIGN.md §1):
//
//   * near-unit density (m/n around 1.1 - 2.5, circuits are sparse),
//   * locality: registers mostly talk to registers in the same module,
//   * hierarchical structure: a forward pipeline of modules with local
//     feedback inside modules and a few long global feedback arcs,
//   * self-loops (counters/accumulators hold their own state),
//   * small integer weights (combinational path delays in gate units),
//   * typically several SCCs of very different sizes (unlike SPRAND,
//     which is strongly connected by construction).
//
// Nodes are registers; an arc u -> v with weight w means a combinational
// path of delay w from register u to register v; transit is 1 register
// stage (so cycle ratio = delay per stage around a loop, the quantity
// clock scheduling bounds).
#ifndef MCR_GEN_CIRCUIT_H
#define MCR_GEN_CIRCUIT_H

#include <cstdint>

#include "graph/graph.h"

namespace mcr::gen {

struct CircuitConfig {
  /// Number of registers (graph nodes).
  NodeId registers = 64;
  /// Registers per module (locality window).
  NodeId module_size = 16;
  /// Average out-degree of a register (controls density; >= 1).
  double avg_fanout = 1.6;
  /// Probability that a register carries a self-loop (state-holding).
  double self_loop_prob = 0.05;
  /// Probability that a module is a pure shift-ring (counter / shift
  /// register / LFSR-style: backbone + closing arc only). The remainder
  /// are datapath modules that also get forwarding skip arcs. Rings are
  /// what keeps real circuit unfoldings thin (see gen/circuit.cpp).
  double ring_module_prob = 0.5;
  /// Probability that an inter-module arc is a long feedback arc to an
  /// earlier module (rather than a forward pipeline arc).
  double feedback_prob = 0.25;
  /// Combinational delay range (arc weights), in gate-delay units.
  std::int64_t min_delay = 1;
  std::int64_t max_delay = 40;
  std::uint64_t seed = 1;
};

/// Generates a synthetic circuit latency graph. All transit times are 1.
[[nodiscard]] Graph circuit(const CircuitConfig& config);

}  // namespace mcr::gen

#endif  // MCR_GEN_CIRCUIT_H
