#include "gen/sprand.h"

#include <stdexcept>
#include <vector>

#include "support/prng.h"

namespace mcr::gen {

Graph sprand(const SprandConfig& config) {
  if (config.n < 1) throw std::invalid_argument("sprand: need at least one node");
  if (config.m < config.n) throw std::invalid_argument("sprand: need m >= n");
  if (config.min_weight > config.max_weight || config.min_transit > config.max_transit) {
    throw std::invalid_argument("sprand: empty weight or transit interval");
  }
  Prng rng(config.seed);
  const auto weight = [&] { return rng.uniform_int(config.min_weight, config.max_weight); };
  const auto transit = [&] {
    return rng.uniform_int(config.min_transit, config.max_transit);
  };

  std::vector<ArcSpec> arcs;
  arcs.reserve(static_cast<std::size_t>(config.m));
  // Hamiltonian cycle 0 -> 1 -> ... -> n-1 -> 0.
  for (NodeId v = 0; v < config.n; ++v) {
    const NodeId next = (v + 1 == config.n) ? 0 : v + 1;
    arcs.push_back(ArcSpec{v, next, weight(), transit()});
  }
  // m - n uniformly random arcs (no self-loops; parallels allowed).
  for (ArcId a = config.n; a < config.m; ++a) {
    NodeId u = 0;
    NodeId v = 0;
    do {
      u = static_cast<NodeId>(rng.uniform_int(0, config.n - 1));
      v = static_cast<NodeId>(rng.uniform_int(0, config.n - 1));
    } while (u == v && config.n > 1);
    arcs.push_back(ArcSpec{u, v, weight(), transit()});
  }
  return Graph(config.n, arcs);
}

}  // namespace mcr::gen
