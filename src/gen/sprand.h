// SPRAND random-graph generator (Cherkassky, Goldberg & Radzik).
//
// This is the generator the paper's random test suite comes from (§3):
// a Hamiltonian cycle over the n nodes — which makes the graph strongly
// connected — plus m - n arcs chosen uniformly at random. Default arc
// weights are uniform in [1, 10000], SPRAND's default weight interval
// and the one the paper used.
#ifndef MCR_GEN_SPRAND_H
#define MCR_GEN_SPRAND_H

#include <cstdint>

#include "graph/graph.h"

namespace mcr::gen {

struct SprandConfig {
  NodeId n = 0;
  ArcId m = 0;  // total arcs; must be >= n
  std::int64_t min_weight = 1;
  std::int64_t max_weight = 10000;
  /// Transit times for ratio experiments; default 1 reproduces the
  /// paper's mean instances.
  std::int64_t min_transit = 1;
  std::int64_t max_transit = 1;
  std::uint64_t seed = 1;
};

/// Generates a SPRAND graph. The random arcs avoid self-loops; parallel
/// arcs may occur (as in the original generator). Throws
/// std::invalid_argument on m < n or n < 1.
[[nodiscard]] Graph sprand(const SprandConfig& config);

}  // namespace mcr::gen

#endif  // MCR_GEN_SPRAND_H
