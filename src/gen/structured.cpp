#include "gen/structured.h"

#include <stdexcept>

#include "support/prng.h"

namespace mcr::gen {

Graph ring(const std::vector<std::int64_t>& weights) {
  const NodeId n = static_cast<NodeId>(weights.size());
  if (n < 1) throw std::invalid_argument("ring: need >= 1 node");
  std::vector<ArcSpec> arcs;
  arcs.reserve(weights.size());
  for (NodeId v = 0; v < n; ++v) {
    arcs.push_back(ArcSpec{v, (v + 1 == n) ? 0 : v + 1, weights[static_cast<std::size_t>(v)], 1});
  }
  return Graph(n, arcs);
}

Graph random_ring(NodeId n, std::int64_t lo, std::int64_t hi, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<std::int64_t> weights(static_cast<std::size_t>(n));
  for (auto& w : weights) w = rng.uniform_int(lo, hi);
  return ring(weights);
}

Graph complete(NodeId n, std::int64_t lo, std::int64_t hi, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("complete: need >= 2 nodes");
  Prng rng(seed);
  std::vector<ArcSpec> arcs;
  arcs.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      arcs.push_back(ArcSpec{u, v, rng.uniform_int(lo, hi), 1});
    }
  }
  return Graph(n, arcs);
}

Graph layered_feedback(NodeId layers, NodeId width, std::int64_t lo, std::int64_t hi,
                       std::uint64_t seed) {
  if (layers < 1 || width < 1) {
    throw std::invalid_argument("layered_feedback: layers, width >= 1");
  }
  Prng rng(seed);
  const NodeId n = layers * width;
  std::vector<ArcSpec> arcs;
  for (NodeId l = 0; l + 1 < layers; ++l) {
    for (NodeId i = 0; i < width; ++i) {
      for (NodeId j = 0; j < width; ++j) {
        arcs.push_back(
            ArcSpec{l * width + i, (l + 1) * width + j, rng.uniform_int(lo, hi), 1});
      }
    }
  }
  // One feedback arc closing the structure into a single SCC-spanning loop.
  arcs.push_back(ArcSpec{(layers - 1) * width, 0, rng.uniform_int(lo, hi), 1});
  return Graph(n, arcs);
}

Graph scc_chain(NodeId k, NodeId ring_size, std::int64_t lo, std::int64_t hi,
                std::uint64_t seed) {
  if (k < 1 || ring_size < 1) throw std::invalid_argument("scc_chain: k, ring_size >= 1");
  Prng rng(seed);
  const NodeId n = k * ring_size;
  std::vector<ArcSpec> arcs;
  for (NodeId c = 0; c < k; ++c) {
    const NodeId base = c * ring_size;
    for (NodeId v = 0; v < ring_size; ++v) {
      const NodeId next = (v + 1 == ring_size) ? base : base + v + 1;
      arcs.push_back(ArcSpec{base + v, next, rng.uniform_int(lo, hi), 1});
    }
    if (c + 1 < k) {
      arcs.push_back(ArcSpec{base, base + ring_size, rng.uniform_int(lo, hi), 1});
    }
  }
  return Graph(n, arcs);
}

Graph torus(NodeId h, NodeId w, std::int64_t lo, std::int64_t hi, std::uint64_t seed) {
  if (h < 1 || w < 1) throw std::invalid_argument("torus: h, w >= 1");
  Prng rng(seed);
  const auto id = [&](NodeId r, NodeId c) { return r * w + c; };
  std::vector<ArcSpec> arcs;
  for (NodeId r = 0; r < h; ++r) {
    for (NodeId c = 0; c < w; ++c) {
      arcs.push_back(ArcSpec{id(r, c), id(r, (c + 1) % w), rng.uniform_int(lo, hi), 1});
      arcs.push_back(ArcSpec{id(r, c), id((r + 1) % h, c), rng.uniform_int(lo, hi), 1});
    }
  }
  return Graph(h * w, arcs);
}

Graph path(NodeId n, std::int64_t weight) {
  if (n < 1) throw std::invalid_argument("path: need >= 1 node");
  std::vector<ArcSpec> arcs;
  for (NodeId v = 0; v + 1 < n; ++v) arcs.push_back(ArcSpec{v, v + 1, weight, 1});
  return Graph(n, arcs);
}

}  // namespace mcr::gen
