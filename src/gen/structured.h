// Structured graph families for tests and stress cases.
//
// These exercise solver edge cases the random families miss: a single
// cycle (unique answer), complete graphs (maximum density), layered
// graphs with a deep feedback arc (long critical cycles — adversarial
// for Howard-style policy iteration), and multi-SCC chains (driver
// decomposition).
#ifndef MCR_GEN_STRUCTURED_H
#define MCR_GEN_STRUCTURED_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mcr::gen {

/// Single directed cycle 0 -> 1 -> ... -> n-1 -> 0 with the given
/// weights (size n) and unit transit.
[[nodiscard]] Graph ring(const std::vector<std::int64_t>& weights);

/// Ring with uniform random weights in [lo, hi].
[[nodiscard]] Graph random_ring(NodeId n, std::int64_t lo, std::int64_t hi,
                                std::uint64_t seed);

/// Complete digraph on n nodes (no self-loops), random weights in [lo, hi].
[[nodiscard]] Graph complete(NodeId n, std::int64_t lo, std::int64_t hi,
                             std::uint64_t seed);

/// `layers` layers of `width` nodes; consecutive layers fully connected
/// forward, plus one feedback arc from the last layer to the first. The
/// unique-ish critical cycle has length layers+... ~ layers, so policy
/// iteration needs long-range information.
[[nodiscard]] Graph layered_feedback(NodeId layers, NodeId width, std::int64_t lo,
                                     std::int64_t hi, std::uint64_t seed);

/// `k` disjoint rings of size `ring_size` connected in a chain by
/// one-way bridge arcs (k SCCs; answer is the min over rings).
[[nodiscard]] Graph scc_chain(NodeId k, NodeId ring_size, std::int64_t lo, std::int64_t hi,
                              std::uint64_t seed);

/// Two-dimensional torus (wrap-around grid) h x w, arcs right and down,
/// random weights in [lo, hi]. Strongly connected, density exactly 2.
[[nodiscard]] Graph torus(NodeId h, NodeId w, std::int64_t lo, std::int64_t hi,
                          std::uint64_t seed);

/// Simple path 0 -> 1 -> ... -> n-1 (acyclic; solvers must report
/// has_cycle == false through the driver).
[[nodiscard]] Graph path(NodeId n, std::int64_t weight = 1);

}  // namespace mcr::gen

#endif  // MCR_GEN_STRUCTURED_H
