#include "graph/arc_tiles.h"

#include <exception>
#include <stdexcept>

#include "support/thread_pool.h"

namespace mcr {

ArcTilePartition::ArcTilePartition(std::span<const std::int32_t> first,
                                   std::int32_t target_arcs) {
  if (first.empty()) {
    throw std::invalid_argument("ArcTilePartition: empty CSR offset array");
  }
  const NodeId n = static_cast<NodeId>(first.size()) - 1;
  positions_ = first[static_cast<std::size_t>(n)];
  if (n == 0) return;  // no nodes, no tiles
  if (target_arcs <= 0 || positions_ <= target_arcs) {
    tiles_.push_back(ArcTile{0, n - 1, 0, positions_, false, false});
    return;
  }

  tiles_.reserve(static_cast<std::size_t>(positions_ / target_arcs) + 1);
  NodeId v = 0;
  std::int32_t pos = 0;
  while (true) {
    ArcTile t;
    t.node_begin = v;
    t.pos_begin = pos;
    t.shares_first = pos > first[static_cast<std::size_t>(v)];
    const std::int32_t pos_end = std::min(pos + target_arcs, positions_);
    if (pos_end == positions_) {
      // Final tile absorbs the remaining positions and any trailing
      // zero-degree nodes, so node coverage stays exhaustive.
      t.node_end = n - 1;
      t.pos_end = positions_;
      tiles_.push_back(t);
      break;
    }
    // node_end = the node owning position pos_end - 1. The cursor walk
    // is amortized O(n) across all tiles.
    NodeId w = v;
    while (first[static_cast<std::size_t>(w) + 1] < pos_end) ++w;
    t.node_end = w;
    t.pos_end = pos_end;
    t.shares_last = first[static_cast<std::size_t>(w) + 1] > pos_end;
    tiles_.push_back(t);
    v = t.shares_last ? w : w + 1;
    pos = pos_end;
  }
}

void run_tiles(ThreadPool* pool, std::size_t count,
               const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One exception slot per tile; rethrow the lowest index so failure
  // behaviour does not depend on thread scheduling.
  std::vector<std::exception_ptr> errors(count);
  for (std::size_t i = 0; i < count; ++i) {
    pool->submit([&fn, &errors, i] {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  pool->wait_idle();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace mcr
