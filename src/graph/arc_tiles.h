// Arc tiling: cache-sized work items over a CSR position range.
//
// The PR 1 driver parallelizes across SCCs only, so a single giant SCC
// (the common SPRAND shape) serializes the whole solve. The relaxation
// loops at the heart of Bellman-Ford, Karp, Karp2 and Howard's improve
// step are all the same shape — "for every node v, fold a min over v's
// (in- or out-) CSR positions, then conditionally update v" — and that
// shape tiles: ArcTilePartition splits a CSR position range [0, m) into
// tiles of at most `target_arcs` positions each. A tile may start or
// end in the middle of a high-degree node's position range (katana's
// deltaTile idea), so one hub node never serializes a wave.
//
// Determinism contract (matches the PR 1 driver contract): a tiled
// sweep produces bit-identical results for ANY tile size and ANY thread
// count, including the serial single-tile case. TiledSweep achieves
// this by construction:
//   * candidates are folded per node with a strict `<` (first position
//     wins ties), so an interior node's fold equals the serial fold;
//   * a node split across tiles is never updated by workers — each tile
//     stashes its partial fold, and a serial merge walks the partials
//     in tile order (= ascending position order) before applying once.
// The serial path runs the identical engine with one tile, so
// tile_arcs == 0 is not a separate code path, just a trivial partition.
#ifndef MCR_GRAPH_ARC_TILES_H
#define MCR_GRAPH_ARC_TILES_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace mcr {

class ThreadPool;

/// Tile-engine work counters, owned by the driver and exported as the
/// mcr_ops_tiles_* metrics. Kept out of OpCounters deliberately: the
/// OpCounters determinism contract makes solver work equal for every
/// (num_threads, tile_arcs) pair, while tile counts depend on tile_arcs
/// by definition (they are still independent of the thread count).
struct TileStats {
  std::atomic<std::uint64_t> partitions{0};  // ArcTilePartition builds
  std::atomic<std::uint64_t> tiles{0};       // tiles executed, all waves
  std::atomic<std::uint64_t> waves{0};       // sweeps run
};

/// How a solver should run its relaxation sweeps. Passed by the driver
/// into Solver::solve_scc. `tile_arcs <= 0` keeps every sweep a single
/// tile; `pool` may be null even when tiling is enabled (the partition
/// is still built so results and TileStats stay thread-independent, the
/// tiles just run inline).
struct TileExec {
  ThreadPool* pool = nullptr;
  std::int32_t tile_arcs = 0;
  TileStats* stats = nullptr;

  [[nodiscard]] bool enabled() const { return tile_arcs > 0; }
};

/// One tile: CSR positions [pos_begin, pos_end) covering nodes
/// [node_begin, node_end] (inclusive — a node split across tiles
/// appears in more than one).
struct ArcTile {
  NodeId node_begin = 0;
  NodeId node_end = 0;
  std::int32_t pos_begin = 0;
  std::int32_t pos_end = 0;
  /// node_begin's positions continue before pos_begin (previous tile).
  bool shares_first = false;
  /// node_end's positions continue at/after pos_end (next tile).
  bool shares_last = false;
};

/// Splits the position range of a CSR offset array `first` (size n+1,
/// non-decreasing, first[0] == 0) into tiles of at most `target_arcs`
/// positions. Every node in [0, n) is covered by at least one tile
/// (zero-degree nodes included), every position by exactly one.
/// `target_arcs <= 0` produces a single tile covering everything.
class ArcTilePartition {
 public:
  ArcTilePartition(std::span<const std::int32_t> first, std::int32_t target_arcs);

  [[nodiscard]] const std::vector<ArcTile>& tiles() const { return tiles_; }
  [[nodiscard]] std::size_t size() const { return tiles_.size(); }
  /// Total CSR positions covered (= first.back()).
  [[nodiscard]] std::int32_t positions() const { return positions_; }

 private:
  std::vector<ArcTile> tiles_;
  std::int32_t positions_ = 0;
};

/// Runs fn(0..count) either inline (null pool or a single item) or as
/// pool tasks. Exceptions are captured per slot and the lowest-index
/// one is rethrown, so failure behaviour is schedule-independent.
void run_tiles(ThreadPool* pool, std::size_t count,
               const std::function<void(std::size_t)>& fn);

/// Lock-free max-fold for the "last improved node" style reductions:
/// deterministic (the max does not depend on update order) and cheap.
inline void atomic_store_max(std::atomic<NodeId>& target, NodeId v) {
  NodeId cur = target.load(std::memory_order_relaxed);
  while (cur < v &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// The shared relaxation engine. Constructed once per solve over a CSR
/// offset array (in_first() for predecessor recurrences, out_first()
/// for Howard's improve step), then run() once per sweep/wave.
///
/// run(none, candidate, apply):
///   * `candidate(pos) -> D` evaluates CSR position `pos`; called
///     concurrently from workers, must only read shared state that is
///     constant for the duration of the wave. May throw (the first
///     tile's exception, in tile order, is rethrown after the wave).
///   * per node the candidates fold with a strict `D::operator<`
///     starting from `none`; ties keep the earliest position, so make
///     `<` a strict weak order that breaks value ties by position if
///     position identity matters to the caller.
///   * `apply(v, best) -> void` commits the folded result; called
///     exactly once per covered node (including zero-degree nodes,
///     which get `none`). Interior nodes are applied from worker
///     threads — apply may touch per-node slots freely but must use
///     atomics for any cross-node shared state. Nodes split across
///     tiles are applied on the calling thread after the wave.
class TiledSweep {
 public:
  TiledSweep(std::span<const std::int32_t> first, const TileExec& exec)
      : first_(first),
        partition_(first, exec.enabled() ? exec.tile_arcs : 0),
        pool_(exec.pool),
        stats_(exec.stats) {
    if (stats_ != nullptr) {
      stats_->partitions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Total positions one wave scans (= arc_scans per sweep).
  [[nodiscard]] std::int64_t positions() const { return partition_.positions(); }
  [[nodiscard]] std::size_t num_tiles() const { return partition_.size(); }

  template <typename D, typename Candidate, typename Apply>
  void run(const D& none, const Candidate& candidate, const Apply& apply) {
    const std::vector<ArcTile>& tiles = partition_.tiles();
    if (tiles.empty()) return;
    // Wave accounting counts the partition's tiles whether or not a
    // pool executes them — that keeps mcr_ops_tiles_* a function of
    // (graph, tile_arcs) alone, independent of the thread count.
    if (stats_ != nullptr) {
      stats_->waves.fetch_add(1, std::memory_order_relaxed);
      stats_->tiles.fetch_add(tiles.size(), std::memory_order_relaxed);
    }

    // No pool: fold every node over its full position range in one
    // pass. By the determinism contract this produces exactly what the
    // tile-merge path produces, without the split-node bookkeeping.
    const bool multi = tiles.size() > 1 && pool_ != nullptr;
    if (!multi) {
      const std::size_t n = first_.size() - 1;
      for (std::size_t v = 0; v < n; ++v) {
        D best = none;
        for (std::int32_t p = first_[v]; p < first_[v + 1]; ++p) {
          const D cand = candidate(p);
          if (cand < best) best = cand;
        }
        apply(static_cast<NodeId>(v), best);
      }
      return;
    }
    // Per-tile partial folds for nodes split across tiles: at most two
    // per tile (its first and last node). Slot order == position order.
    struct Partial {
      NodeId node = kInvalidNode;
      D best;
    };
    std::vector<Partial> partials(tiles.size() * 2, Partial{kInvalidNode, none});

    run_tiles(pool_, tiles.size(), [&](std::size_t t) {
      const ArcTile& tile = tiles[t];
      std::size_t slot = t * 2;
      for (NodeId v = tile.node_begin; v <= tile.node_end; ++v) {
        const std::int32_t b =
            std::max(first_[static_cast<std::size_t>(v)], tile.pos_begin);
        const std::int32_t e =
            std::min(first_[static_cast<std::size_t>(v) + 1], tile.pos_end);
        D best = none;
        for (std::int32_t p = b; p < e; ++p) {
          const D cand = candidate(p);
          if (cand < best) best = cand;
        }
        const bool shared = (v == tile.node_begin && tile.shares_first) ||
                            (v == tile.node_end && tile.shares_last);
        if (shared) {
          partials[slot].best = best;
          partials[slot].node = v;  // publish after best (same thread)
          ++slot;
        } else {
          apply(v, best);
        }
      }
    });

    // Serial merge of the split-node partials, in tile (= position)
    // order: the fold over ordered sub-folds equals the serial fold,
    // and each split node is applied exactly once.
    NodeId pending_node = kInvalidNode;
    D pending = none;
    for (const Partial& p : partials) {
      if (p.node == kInvalidNode) continue;
      if (p.node != pending_node) {
        if (pending_node != kInvalidNode) apply(pending_node, pending);
        pending_node = p.node;
        pending = p.best;
      } else if (p.best < pending) {
        pending = p.best;
      }
    }
    if (pending_node != kInvalidNode) apply(pending_node, pending);
  }

 private:
  std::span<const std::int32_t> first_;
  ArcTilePartition partition_;
  ThreadPool* pool_ = nullptr;
  TileStats* stats_ = nullptr;
};

}  // namespace mcr

#endif  // MCR_GRAPH_ARC_TILES_H
