#include "graph/bellman_ford.h"

#include <algorithm>
#include <stdexcept>

#include "support/checked.h"

namespace mcr {

namespace {

/// Follows parent arcs from `start` to locate and return one cycle in
/// the parent forest. `parent[v]` is the arc that last relaxed v.
std::vector<ArcId> extract_cycle(const Graph& g, const std::vector<ArcId>& parent,
                                 NodeId start) {
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  // Walk n steps to guarantee we are standing on the cycle itself.
  NodeId v = start;
  for (std::size_t i = 0; i < n; ++i) {
    const ArcId pa = parent[static_cast<std::size_t>(v)];
    v = g.src(pa);
  }
  // Collect arcs around the cycle.
  std::vector<ArcId> rev;
  NodeId u = v;
  do {
    const ArcId pa = parent[static_cast<std::size_t>(u)];
    rev.push_back(pa);
    u = g.src(pa);
  } while (u != v);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

template <typename Cost>
struct BfCore {
  bool has_negative_cycle = false;
  std::vector<ArcId> cycle;
  std::vector<Cost> dist;
};

/// Shared Bellman-Ford core over any arithmetic cost type. `Cost` may be
/// wider than the input cost type (the int128 promotion path) or
/// overflow-checked (CheckedI64, which throws NumericOverflow instead
/// of wrapping).
template <typename Cost, typename CostIn>
BfCore<Cost> run_bellman_ford(const Graph& g, std::span<const CostIn> cost,
                              OpCounters* counters) {
  if (cost.size() != static_cast<std::size_t>(g.num_arcs())) {
    throw std::invalid_argument("bellman_ford: cost array size mismatch");
  }
  const NodeId n = g.num_nodes();
  BfCore<Cost> out;
  out.dist.assign(static_cast<std::size_t>(n), Cost{0});
  std::vector<ArcId> parent(static_cast<std::size_t>(n), kInvalidArc);

  NodeId relaxed_node = kInvalidNode;
  for (NodeId pass = 0; pass <= n; ++pass) {
    relaxed_node = kInvalidNode;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      if (counters) ++counters->arc_scans;
      const NodeId u = g.src(a);
      const NodeId v = g.dst(a);
      const Cost cand = out.dist[static_cast<std::size_t>(u)] +
                        Cost(cost[static_cast<std::size_t>(a)]);
      if (cand < out.dist[static_cast<std::size_t>(v)]) {
        out.dist[static_cast<std::size_t>(v)] = cand;
        parent[static_cast<std::size_t>(v)] = a;
        relaxed_node = v;
        if (counters) ++counters->relaxations;
      }
    }
    if (relaxed_node == kInvalidNode) break;  // converged early
  }

  if (relaxed_node != kInvalidNode) {
    out.has_negative_cycle = true;
    out.cycle = extract_cycle(g, parent, relaxed_node);
    out.dist.clear();
  }
  return out;
}

}  // namespace

BellmanFordResult bellman_ford_all(const Graph& g, std::span<const std::int64_t> cost,
                                   OpCounters* counters) {
  BellmanFordResult out;
  try {
    BfCore<CheckedI64> core = run_bellman_ford<CheckedI64>(g, cost, counters);
    out.has_negative_cycle = core.has_negative_cycle;
    out.cycle = std::move(core.cycle);
    out.dist.reserve(core.dist.size());
    for (const CheckedI64 d : core.dist) out.dist.push_back(d.value());
    return out;
  } catch (const NumericOverflow&) {
    // A distance sum wrapped int64: re-run the whole recurrence in
    // int128 rather than continuing on a wrapped value. Cycle detection
    // and the witness stay exact; the potentials are narrowed back only
    // when they fit (when they do not, no int64 caller could have used
    // them anyway, and the wide result still carries the verdict).
    if (counters) ++counters->numeric_promotions;
  }
  BfCore<int128> core = run_bellman_ford<int128>(g, cost, counters);
  out.has_negative_cycle = core.has_negative_cycle;
  out.cycle = std::move(core.cycle);
  out.dist.reserve(core.dist.size());
  for (const int128 d : core.dist) {
    if (d > INT64_MAX || d < INT64_MIN) {
      throw NumericOverflow("bellman_ford potentials (not representable in int64)");
    }
    out.dist.push_back(static_cast<std::int64_t>(d));
  }
  return out;
}

BellmanFordWideResult bellman_ford_all_wide(const Graph& g, std::span<const int128> cost,
                                            OpCounters* counters) {
  BfCore<int128> core = run_bellman_ford<int128>(g, cost, counters);
  BellmanFordWideResult out;
  out.has_negative_cycle = core.has_negative_cycle;
  out.cycle = std::move(core.cycle);
  return out;
}

BellmanFordRealResult bellman_ford_all_real(const Graph& g, std::span<const double> cost,
                                            OpCounters* counters) {
  BfCore<double> core = run_bellman_ford<double>(g, cost, counters);
  BellmanFordRealResult out;
  out.has_negative_cycle = core.has_negative_cycle;
  out.cycle = std::move(core.cycle);
  out.dist = std::move(core.dist);
  return out;
}

bool has_negative_cycle(const Graph& g, std::span<const std::int64_t> cost,
                        OpCounters* counters) {
  return bellman_ford_all(g, cost, counters).has_negative_cycle;
}

}  // namespace mcr
