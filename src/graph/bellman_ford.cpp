#include "graph/bellman_ford.h"

#include <algorithm>
#include <stdexcept>

namespace mcr {

namespace {

/// Follows parent arcs from `start` to locate and return one cycle in
/// the parent forest. `parent[v]` is the arc that last relaxed v.
std::vector<ArcId> extract_cycle(const Graph& g, const std::vector<ArcId>& parent,
                                 NodeId start) {
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  // Walk n steps to guarantee we are standing on the cycle itself.
  NodeId v = start;
  for (std::size_t i = 0; i < n; ++i) {
    const ArcId pa = parent[static_cast<std::size_t>(v)];
    v = g.src(pa);
  }
  // Collect arcs around the cycle.
  std::vector<ArcId> rev;
  NodeId u = v;
  do {
    const ArcId pa = parent[static_cast<std::size_t>(u)];
    rev.push_back(pa);
    u = g.src(pa);
  } while (u != v);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

/// Shared Bellman-Ford core over any arithmetic cost type.
template <typename Cost, typename Result>
Result run_bellman_ford(const Graph& g, std::span<const Cost> cost, OpCounters* counters) {
  if (cost.size() != static_cast<std::size_t>(g.num_arcs())) {
    throw std::invalid_argument("bellman_ford: cost array size mismatch");
  }
  const NodeId n = g.num_nodes();
  Result out;
  out.dist.assign(static_cast<std::size_t>(n), Cost{0});
  std::vector<ArcId> parent(static_cast<std::size_t>(n), kInvalidArc);

  NodeId relaxed_node = kInvalidNode;
  for (NodeId pass = 0; pass <= n; ++pass) {
    relaxed_node = kInvalidNode;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      if (counters) ++counters->arc_scans;
      const NodeId u = g.src(a);
      const NodeId v = g.dst(a);
      const Cost cand =
          out.dist[static_cast<std::size_t>(u)] + cost[static_cast<std::size_t>(a)];
      if (cand < out.dist[static_cast<std::size_t>(v)]) {
        out.dist[static_cast<std::size_t>(v)] = cand;
        parent[static_cast<std::size_t>(v)] = a;
        relaxed_node = v;
        if (counters) ++counters->relaxations;
      }
    }
    if (relaxed_node == kInvalidNode) break;  // converged early
  }

  if (relaxed_node != kInvalidNode) {
    out.has_negative_cycle = true;
    out.cycle = extract_cycle(g, parent, relaxed_node);
    out.dist.clear();
  }
  return out;
}

}  // namespace

BellmanFordResult bellman_ford_all(const Graph& g, std::span<const std::int64_t> cost,
                                   OpCounters* counters) {
  return run_bellman_ford<std::int64_t, BellmanFordResult>(g, cost, counters);
}

BellmanFordRealResult bellman_ford_all_real(const Graph& g, std::span<const double> cost,
                                            OpCounters* counters) {
  return run_bellman_ford<double, BellmanFordRealResult>(g, cost, counters);
}

bool has_negative_cycle(const Graph& g, std::span<const std::int64_t> cost,
                        OpCounters* counters) {
  return bellman_ford_all(g, cost, counters).has_negative_cycle;
}

}  // namespace mcr
