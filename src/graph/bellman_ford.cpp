#include "graph/bellman_ford.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>
#include <type_traits>

#include "support/checked.h"

namespace mcr {

namespace {

/// Follows parent arcs from `start` to locate and return one cycle in
/// the parent forest. `parent[v]` is the arc that last relaxed v.
std::vector<ArcId> extract_cycle(const Graph& g, const std::vector<ArcId>& parent,
                                 NodeId start) {
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  // Walk n steps to guarantee we are standing on the cycle itself.
  NodeId v = start;
  for (std::size_t i = 0; i < n; ++i) {
    const ArcId pa = parent[static_cast<std::size_t>(v)];
    v = g.src(pa);
  }
  // Collect arcs around the cycle.
  std::vector<ArcId> rev;
  NodeId u = v;
  do {
    const ArcId pa = parent[static_cast<std::size_t>(u)];
    rev.push_back(pa);
    u = g.src(pa);
  } while (u != v);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

template <typename Cost>
struct BfCore {
  bool has_negative_cycle = false;
  std::vector<ArcId> cycle;
  std::vector<Cost> dist;
};

/// A value no real relaxation candidate reaches: the fold identity for
/// the per-node min. The paired position tie-break makes the sentinel
/// lose even a value tie, so exact headroom does not matter.
template <typename Cost>
Cost fold_identity() {
  if constexpr (std::is_same_v<Cost, double>) {
    return std::numeric_limits<double>::infinity();
  } else if constexpr (std::is_same_v<Cost, CheckedI64>) {
    return CheckedI64(std::numeric_limits<std::int64_t>::max());
  } else {
    return static_cast<Cost>(static_cast<int128>(1) << 126);
  }
}

/// Shared Bellman-Ford core over any arithmetic cost type. `Cost` may be
/// wider than the input cost type (the int128 promotion path) or
/// overflow-checked (CheckedI64, which throws NumericOverflow instead
/// of wrapping).
///
/// Every pass is a snapshot sweep over the in-arc CSR, run through the
/// tiled engine (graph/arc_tiles.h): node v's new distance is the min
/// over its predecessors of snapshot[u] + cost, ties broken by CSR
/// position (= ascending arc id). The untiled case is the same engine
/// with a single tile, so results are bit-identical for every tile
/// size and thread count.
template <typename Cost, typename CostIn>
BfCore<Cost> run_bellman_ford(const Graph& g, std::span<const CostIn> cost,
                              OpCounters* counters, const TileExec& tiles) {
  if (cost.size() != static_cast<std::size_t>(g.num_arcs())) {
    throw std::invalid_argument("bellman_ford: cost array size mismatch");
  }
  const NodeId n = g.num_nodes();
  const std::size_t un = static_cast<std::size_t>(n);
  BfCore<Cost> out;
  out.dist.assign(un, Cost{0});
  std::vector<Cost> snapshot(un, Cost{0});
  std::vector<ArcId> parent(un, kInvalidArc);

  const std::span<const ArcId> in_ids = g.in_arc_ids();
  TiledSweep sweep(g.in_first(), tiles);

  struct Cand {
    Cost val;
    std::int32_t pos;
    bool operator<(const Cand& o) const {
      if (val < o.val) return true;
      if (o.val < val) return false;
      return pos < o.pos;
    }
  };
  const Cand none{fold_identity<Cost>(), std::numeric_limits<std::int32_t>::max()};

  // Improvement bookkeeping shared across tiles: both folds are
  // order-free (sum; max), so the totals are schedule-independent.
  std::atomic<std::uint64_t> relaxations{0};
  std::atomic<NodeId> improved_node{kInvalidNode};

  NodeId relaxed_node = kInvalidNode;
  for (NodeId pass = 0; pass <= n; ++pass) {
    snapshot = out.dist;
    improved_node.store(kInvalidNode, std::memory_order_relaxed);
    sweep.run(
        none,
        [&](std::int32_t p) {
          const ArcId a = in_ids[static_cast<std::size_t>(p)];
          return Cand{snapshot[static_cast<std::size_t>(g.src(a))] +
                          Cost(cost[static_cast<std::size_t>(a)]),
                      p};
        },
        [&](NodeId v, const Cand& best) {
          if (best.pos == std::numeric_limits<std::int32_t>::max()) return;
          if (best.val < snapshot[static_cast<std::size_t>(v)]) {
            out.dist[static_cast<std::size_t>(v)] = best.val;
            parent[static_cast<std::size_t>(v)] =
                in_ids[static_cast<std::size_t>(best.pos)];
            relaxations.fetch_add(1, std::memory_order_relaxed);
            atomic_store_max(improved_node, v);
          }
        });
    if (counters != nullptr) {
      counters->arc_scans += static_cast<std::uint64_t>(sweep.positions());
    }
    relaxed_node = improved_node.load(std::memory_order_relaxed);
    if (relaxed_node == kInvalidNode) break;  // converged early
  }
  if (counters != nullptr) {
    counters->relaxations += relaxations.load(std::memory_order_relaxed);
  }

  if (relaxed_node != kInvalidNode) {
    out.has_negative_cycle = true;
    out.cycle = extract_cycle(g, parent, relaxed_node);
    out.dist.clear();
  }
  return out;
}

}  // namespace

BellmanFordResult bellman_ford_all(const Graph& g, std::span<const std::int64_t> cost,
                                   OpCounters* counters, const TileExec& tiles) {
  BellmanFordResult out;
  try {
    BfCore<CheckedI64> core = run_bellman_ford<CheckedI64>(g, cost, counters, tiles);
    out.has_negative_cycle = core.has_negative_cycle;
    out.cycle = std::move(core.cycle);
    out.dist.reserve(core.dist.size());
    for (const CheckedI64 d : core.dist) out.dist.push_back(d.value());
    return out;
  } catch (const NumericOverflow&) {
    // A distance sum wrapped int64: re-run the whole recurrence in
    // int128 rather than continuing on a wrapped value. Cycle detection
    // and the witness stay exact; the potentials are narrowed back only
    // when they fit (when they do not, no int64 caller could have used
    // them anyway, and the wide result still carries the verdict).
    if (counters) ++counters->numeric_promotions;
  }
  BfCore<int128> core = run_bellman_ford<int128>(g, cost, counters, tiles);
  out.has_negative_cycle = core.has_negative_cycle;
  out.cycle = std::move(core.cycle);
  out.dist.reserve(core.dist.size());
  for (const int128 d : core.dist) {
    if (d > INT64_MAX || d < INT64_MIN) {
      throw NumericOverflow("bellman_ford potentials (not representable in int64)");
    }
    out.dist.push_back(static_cast<std::int64_t>(d));
  }
  return out;
}

BellmanFordWideResult bellman_ford_all_wide(const Graph& g, std::span<const int128> cost,
                                            OpCounters* counters, const TileExec& tiles) {
  BfCore<int128> core = run_bellman_ford<int128>(g, cost, counters, tiles);
  BellmanFordWideResult out;
  out.has_negative_cycle = core.has_negative_cycle;
  out.cycle = std::move(core.cycle);
  return out;
}

BellmanFordRealResult bellman_ford_all_real(const Graph& g, std::span<const double> cost,
                                            OpCounters* counters, const TileExec& tiles) {
  BfCore<double> core = run_bellman_ford<double>(g, cost, counters, tiles);
  BellmanFordRealResult out;
  out.has_negative_cycle = core.has_negative_cycle;
  out.cycle = std::move(core.cycle);
  out.dist = std::move(core.dist);
  return out;
}

bool has_negative_cycle(const Graph& g, std::span<const std::int64_t> cost,
                        OpCounters* counters, const TileExec& tiles) {
  return bellman_ford_all(g, cost, counters, tiles).has_negative_cycle;
}

}  // namespace mcr
