// Bellman-Ford shortest paths with negative-cycle detection and
// extraction.
//
// Lawler's algorithm probes "does G_lambda contain a negative cycle?"
// once per binary-search step; callers pass the lambda-transformed arc
// costs explicitly (cost'(e) = w(e)*den - num*t(e)), keeping this module
// a pure integer-cost routine. Costs and path sums must fit in int64;
// with the paper's weights (<= 10^4), n <= 10^6 and den <= T this holds
// with orders of magnitude to spare.
#ifndef MCR_GRAPH_BELLMAN_FORD_H
#define MCR_GRAPH_BELLMAN_FORD_H

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "support/op_counters.h"

namespace mcr {

struct BellmanFordResult {
  bool has_negative_cycle = false;
  /// When a negative cycle exists: its arcs in traversal order
  /// (dst of cycle[i] == src of cycle[i+1], cyclically).
  std::vector<ArcId> cycle;
  /// When no negative cycle: dist[v] = shortest distance from the
  /// virtual super-source (all nodes start at 0), i.e. a feasible
  /// potential: dist[dst] <= dist[src] + cost for every arc.
  std::vector<std::int64_t> dist;
};

/// Runs Bellman-Ford over g with per-arc costs `cost` (size == num_arcs),
/// from a virtual super-source connected to every node with cost 0.
/// Detects any negative cycle anywhere in the graph. O(nm) worst case
/// with early exit when a pass makes no improvement.
[[nodiscard]] BellmanFordResult bellman_ford_all(const Graph& g,
                                                 std::span<const std::int64_t> cost,
                                                 OpCounters* counters = nullptr);

struct BellmanFordRealResult {
  bool has_negative_cycle = false;
  std::vector<ArcId> cycle;
  std::vector<double> dist;
};

/// Floating-point variant for the binary-search solvers (Lawler, OA1),
/// whose probes use real-valued lambda-transformed costs. Cycles found
/// are exact witnesses (their true integer mean is computed by the
/// caller); only the probe threshold is approximate.
[[nodiscard]] BellmanFordRealResult bellman_ford_all_real(const Graph& g,
                                                          std::span<const double> cost,
                                                          OpCounters* counters = nullptr);

/// Convenience: true iff g with costs `cost` has a negative cycle.
[[nodiscard]] bool has_negative_cycle(const Graph& g, std::span<const std::int64_t> cost,
                                      OpCounters* counters = nullptr);

}  // namespace mcr

#endif  // MCR_GRAPH_BELLMAN_FORD_H
