// Bellman-Ford shortest paths with negative-cycle detection and
// extraction.
//
// Lawler's algorithm probes "does G_lambda contain a negative cycle?"
// once per binary-search step; callers pass the lambda-transformed arc
// costs explicitly (cost'(e) = w(e)*den - num*t(e)), keeping this module
// a pure integer-cost routine. Distance sums are accumulated through
// support/checked.h: if a path sum would wrap int64 (adversarial
// weights, not the paper's <= 10^4 regime) the recurrence is re-run in
// 128-bit arithmetic instead of returning a wrapped potential, counted
// in OpCounters::numeric_promotions.
#ifndef MCR_GRAPH_BELLMAN_FORD_H
#define MCR_GRAPH_BELLMAN_FORD_H

#include <cstdint>
#include <span>
#include <vector>

#include "graph/arc_tiles.h"
#include "graph/graph.h"
#include "support/int128.h"
#include "support/op_counters.h"

namespace mcr {

struct BellmanFordResult {
  bool has_negative_cycle = false;
  /// When a negative cycle exists: its arcs in traversal order
  /// (dst of cycle[i] == src of cycle[i+1], cyclically).
  std::vector<ArcId> cycle;
  /// When no negative cycle: dist[v] = shortest distance from the
  /// virtual super-source (all nodes start at 0), i.e. a feasible
  /// potential: dist[dst] <= dist[src] + cost for every arc.
  std::vector<std::int64_t> dist;
};

/// Runs Bellman-Ford over g with per-arc costs `cost` (size == num_arcs),
/// from a virtual super-source connected to every node with cost 0.
/// Detects any negative cycle anywhere in the graph. O(nm) worst case
/// with early exit when a pass makes no improvement.
///
/// Each pass is a snapshot ("Jacobi") sweep over the in-arc CSR: every
/// node folds the minimum over its predecessors' previous-pass
/// distances, ties broken by CSR position. That makes the result — the
/// verdict, the witness cycle, the potentials, and the op counts —
/// bit-identical for every `tiles` configuration (any tile size, any
/// thread count, including the default untiled single-tile sweep).
[[nodiscard]] BellmanFordResult bellman_ford_all(const Graph& g,
                                                 std::span<const std::int64_t> cost,
                                                 OpCounters* counters = nullptr,
                                                 const TileExec& tiles = {});

struct BellmanFordWideResult {
  bool has_negative_cycle = false;
  std::vector<ArcId> cycle;
};

/// 128-bit-cost variant for the numeric promotion path: when the checked
/// int64 recurrence overflows (e.g. lambda-transformed costs w*den-num*t
/// with large weights), callers rebuild the costs in int128 and re-probe
/// here. Only the negative-cycle verdict and witness are returned; wide
/// potentials have no int64 consumer.
[[nodiscard]] BellmanFordWideResult bellman_ford_all_wide(const Graph& g,
                                                          std::span<const int128> cost,
                                                          OpCounters* counters = nullptr,
                                                          const TileExec& tiles = {});

struct BellmanFordRealResult {
  bool has_negative_cycle = false;
  std::vector<ArcId> cycle;
  std::vector<double> dist;
};

/// Floating-point variant for the binary-search solvers (Lawler, OA1),
/// whose probes use real-valued lambda-transformed costs. Cycles found
/// are exact witnesses (their true integer mean is computed by the
/// caller); only the probe threshold is approximate.
[[nodiscard]] BellmanFordRealResult bellman_ford_all_real(const Graph& g,
                                                          std::span<const double> cost,
                                                          OpCounters* counters = nullptr,
                                                          const TileExec& tiles = {});

/// Convenience: true iff g with costs `cost` has a negative cycle.
[[nodiscard]] bool has_negative_cycle(const Graph& g, std::span<const std::int64_t> cost,
                                      OpCounters* counters = nullptr,
                                      const TileExec& tiles = {});

}  // namespace mcr

#endif  // MCR_GRAPH_BELLMAN_FORD_H
