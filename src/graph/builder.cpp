#include "graph/builder.h"

#include <stdexcept>

namespace mcr {

NodeId GraphBuilder::add_node() { return num_nodes_++; }

void GraphBuilder::ensure_node(NodeId v) {
  if (v < 0) throw std::out_of_range("GraphBuilder: negative node id");
  if (v >= num_nodes_) num_nodes_ = v + 1;
}

ArcId GraphBuilder::add_arc(NodeId u, NodeId v, std::int64_t weight, std::int64_t transit) {
  if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_) {
    throw std::out_of_range("GraphBuilder: arc endpoint out of range");
  }
  arcs_.push_back(ArcSpec{u, v, weight, transit});
  return static_cast<ArcId>(arcs_.size() - 1);
}

Graph GraphBuilder::build() const { return Graph(num_nodes_, arcs_); }

}  // namespace mcr
