// Incremental construction of immutable Graphs.
#ifndef MCR_GRAPH_BUILDER_H
#define MCR_GRAPH_BUILDER_H

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace mcr {

/// Accumulates nodes and arcs, then produces an immutable Graph.
/// Node ids are dense and assigned in add_node() order; arcs may also
/// reference nodes created implicitly via ensure_node().
class GraphBuilder {
 public:
  GraphBuilder() = default;
  /// Pre-creates `n` nodes 0..n-1.
  explicit GraphBuilder(NodeId n) : num_nodes_(n) {}

  /// Creates a new node and returns its id.
  NodeId add_node();

  /// Grows the node count so that `v` is a valid id.
  void ensure_node(NodeId v);

  /// Adds u -> v with the given weight and transit time (default 1).
  /// Returns the arc id the arc will have in the built graph.
  ArcId add_arc(NodeId u, NodeId v, std::int64_t weight, std::int64_t transit = 1);

  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }
  [[nodiscard]] ArcId num_arcs() const { return static_cast<ArcId>(arcs_.size()); }

  /// Builds the graph. The builder remains usable (e.g. to keep adding
  /// arcs and build a larger graph later).
  [[nodiscard]] Graph build() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<ArcSpec> arcs_;
};

}  // namespace mcr

#endif  // MCR_GRAPH_BUILDER_H
