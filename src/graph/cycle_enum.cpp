#include "graph/cycle_enum.h"

#include <stdexcept>
#include <vector>

namespace mcr {

namespace {

/// State for one Johnson enumeration pass rooted at start node s.
class JohnsonSearch {
 public:
  JohnsonSearch(const Graph& g, const std::function<bool(std::span<const ArcId>)>& visit,
                std::uint64_t max_cycles)
      : g_(g),
        visit_(visit),
        max_cycles_(max_cycles),
        blocked_(static_cast<std::size_t>(g.num_nodes()), false),
        block_map_(static_cast<std::size_t>(g.num_nodes())) {}

  /// Enumerates all simple cycles whose smallest node is `s`.
  /// Returns false if the visitor requested a stop.
  bool run(NodeId s) {
    start_ = s;
    for (auto& list : block_map_) list.clear();
    std::fill(blocked_.begin(), blocked_.end(), false);
    return circuit(s);
  }

  [[nodiscard]] std::uint64_t cycles_found() const { return found_; }
  [[nodiscard]] bool stopped() const { return stop_; }

 private:
  bool circuit(NodeId v) {
    bool found_here = false;
    blocked_[static_cast<std::size_t>(v)] = true;
    for (const ArcId a : g_.out_arcs(v)) {
      const NodeId w = g_.dst(a);
      if (w < start_) continue;  // only cycles whose minimum node is start_
      if (w == start_) {
        path_.push_back(a);
        if (++found_ > max_cycles_) {
          throw std::runtime_error("enumerate_simple_cycles: max_cycles exceeded");
        }
        if (!visit_(path_)) {
          path_.pop_back();
          stop_ = true;
          return found_here;
        }
        path_.pop_back();
        found_here = true;
      } else if (!blocked_[static_cast<std::size_t>(w)]) {
        path_.push_back(a);
        if (circuit(w)) found_here = true;
        path_.pop_back();
        if (stop_) return found_here;
      }
    }
    if (found_here) {
      unblock(v);
    } else {
      for (const ArcId a : g_.out_arcs(v)) {
        const NodeId w = g_.dst(a);
        if (w < start_) continue;
        auto& list = block_map_[static_cast<std::size_t>(w)];
        bool present = false;
        for (const NodeId x : list) {
          if (x == v) {
            present = true;
            break;
          }
        }
        if (!present) list.push_back(v);
      }
    }
    return found_here && !stop_;
  }

  void unblock(NodeId v) {
    blocked_[static_cast<std::size_t>(v)] = false;
    auto& list = block_map_[static_cast<std::size_t>(v)];
    std::vector<NodeId> pending;
    pending.swap(list);
    for (const NodeId u : pending) {
      if (blocked_[static_cast<std::size_t>(u)]) unblock(u);
    }
  }

  const Graph& g_;
  const std::function<bool(std::span<const ArcId>)>& visit_;
  std::uint64_t max_cycles_;
  std::uint64_t found_ = 0;
  bool stop_ = false;
  NodeId start_ = 0;
  std::vector<ArcId> path_;
  std::vector<bool> blocked_;
  std::vector<std::vector<NodeId>> block_map_;
};

}  // namespace

std::uint64_t enumerate_simple_cycles(
    const Graph& g, const std::function<bool(std::span<const ArcId>)>& visit,
    std::uint64_t max_cycles) {
  JohnsonSearch search(g, visit, max_cycles);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    search.run(s);
    if (search.stopped()) break;
  }
  return search.cycles_found();
}

std::uint64_t count_simple_cycles(const Graph& g, std::uint64_t max_cycles) {
  return enumerate_simple_cycles(
      g, [](std::span<const ArcId>) { return true; }, max_cycles);
}

}  // namespace mcr
