// Simple-cycle enumeration (Johnson's algorithm, generalized to
// multigraphs: parallel arcs yield distinct cycles, self-loops are
// length-1 cycles).
//
// This exists for the brute-force oracle that validates every solver in
// the test suite, and for the paper's bound on Howard's iteration count
// (O(nm * alpha) where alpha is the number of simple cycles). It is
// exponential in the worst case; callers cap the number of cycles.
#ifndef MCR_GRAPH_CYCLE_ENUM_H
#define MCR_GRAPH_CYCLE_ENUM_H

#include <cstdint>
#include <functional>
#include <span>

#include "graph/graph.h"

namespace mcr {

/// Calls `visit` once per simple cycle with the cycle's arcs in order.
/// Enumeration stops early if `visit` returns false. Returns the number
/// of cycles visited. `max_cycles` bounds the enumeration (throws
/// std::runtime_error if exceeded, so tests never silently truncate).
std::uint64_t enumerate_simple_cycles(
    const Graph& g, const std::function<bool(std::span<const ArcId>)>& visit,
    std::uint64_t max_cycles = UINT64_MAX);

/// Counts simple cycles (capped).
[[nodiscard]] std::uint64_t count_simple_cycles(const Graph& g,
                                                std::uint64_t max_cycles = UINT64_MAX);

}  // namespace mcr

#endif  // MCR_GRAPH_CYCLE_ENUM_H
