#include "graph/fingerprint.h"

#include <array>

namespace mcr {

namespace {

// splitmix64 finalizer: full-avalanche mixing of one 64-bit word.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

// Two independently seeded accumulator lanes; each absorbed word is
// mixed with a lane-distinct golden-ratio increment so the lanes stay
// decorrelated over identical inputs.
struct Hash128 {
  std::uint64_t a = 0x6d63722d66702d61ull;  // "mcr-fp-a"
  std::uint64_t b = 0x6d63722d66702d62ull;  // "mcr-fp-b"

  void absorb(std::uint64_t x) {
    a = mix64(a ^ (x + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
    b = mix64(b ^ (x + 0xc2b2ae3d27d4eb4full + (b << 5) + (b >> 3)));
  }
};

}  // namespace

std::string Fingerprint::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  const std::array<std::uint64_t, 2> words{hi, lo};
  for (std::size_t w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      out[w * 16 + static_cast<std::size_t>(i)] =
          kDigits[(words[w] >> (60 - 4 * i)) & 0xf];
    }
  }
  return out;
}

Fingerprint fingerprint(const Graph& g) {
  Hash128 h;
  h.absorb(static_cast<std::uint64_t>(g.num_nodes()));
  h.absorb(static_cast<std::uint64_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    h.absorb(static_cast<std::uint64_t>(g.src(a)));
    h.absorb(static_cast<std::uint64_t>(g.dst(a)));
    h.absorb(static_cast<std::uint64_t>(g.weight(a)));
    h.absorb(static_cast<std::uint64_t>(g.transit(a)));
  }
  return Fingerprint{h.a, h.b};
}

std::string fingerprint_hex(const Graph& g) { return fingerprint(g).hex(); }

}  // namespace mcr
