// Canonical content fingerprint of a graph.
//
// The solve service addresses graphs by content, not by file path: the
// same DIMACS file loaded twice — or the same instance regenerated from
// a generator spec — must land on the same registry entry and the same
// cache rows. The fingerprint is a 128-bit hash over the canonical
// representation (node count, then every arc's (src, dst, weight,
// transit) in arc-id order). Graph construction preserves insertion
// order of arcs, so two graphs built from the same arc sequence hash
// identically regardless of how they were produced.
//
// This is a content address for caching, not a cryptographic commitment:
// an adversary could construct collisions, but 128 bits make accidental
// collisions negligible for any realistic registry size.
#ifndef MCR_GRAPH_FINGERPRINT_H
#define MCR_GRAPH_FINGERPRINT_H

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace mcr {

/// 128-bit content hash; compares and hashes by value.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex characters (hi then lo, zero-padded).
  [[nodiscard]] std::string hex() const;
};

/// Hashes g's canonical representation (see header comment).
[[nodiscard]] Fingerprint fingerprint(const Graph& g);

/// Convenience: fingerprint(g).hex().
[[nodiscard]] std::string fingerprint_hex(const Graph& g);

}  // namespace mcr

#endif  // MCR_GRAPH_FINGERPRINT_H
