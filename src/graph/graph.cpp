#include "graph/graph.h"

#include <limits>
#include <stdexcept>

namespace mcr {

Graph::Graph(NodeId num_nodes, const std::vector<ArcSpec>& arcs) : num_nodes_(num_nodes) {
  const std::size_t m = arcs.size();
  src_.reserve(m);
  dst_.reserve(m);
  weight_.reserve(m);
  transit_.reserve(m);
  for (const ArcSpec& a : arcs) {
    src_.push_back(a.src);
    dst_.push_back(a.dst);
    weight_.push_back(a.weight);
    transit_.push_back(a.transit);
  }
  finish_build();
}

Graph::Graph(NodeId num_nodes, std::span<const NodeId> src, std::span<const NodeId> dst,
             std::span<const std::int64_t> weight, std::span<const std::int64_t> transit)
    : num_nodes_(num_nodes),
      src_(src.begin(), src.end()),
      dst_(dst.begin(), dst.end()),
      weight_(weight.begin(), weight.end()),
      transit_(transit.begin(), transit.end()) {
  if (dst.size() != src.size() || weight.size() != src.size() ||
      transit.size() != src.size()) {
    throw std::invalid_argument("Graph: arc array size mismatch");
  }
  finish_build();
}

void Graph::finish_build() {
  if (num_nodes_ < 0) throw std::invalid_argument("Graph: negative node count");
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  const std::size_t m = src_.size();
  if (m > static_cast<std::size_t>(std::numeric_limits<ArcId>::max())) {
    throw std::invalid_argument("Graph: too many arcs for 32-bit arc ids");
  }

  min_weight_ = m ? std::numeric_limits<std::int64_t>::max() : 0;
  max_weight_ = m ? std::numeric_limits<std::int64_t>::min() : 0;
  total_transit_ = 0;
  for (std::size_t a = 0; a < m; ++a) {
    if (src_[a] < 0 || src_[a] >= num_nodes_ || dst_[a] < 0 || dst_[a] >= num_nodes_) {
      throw std::out_of_range("Graph: arc endpoint out of range");
    }
    if (weight_[a] < min_weight_) min_weight_ = weight_[a];
    if (weight_[a] > max_weight_) max_weight_ = weight_[a];
    total_transit_ += transit_[a];
  }

  // Counting sort of arc ids into the two CSR structures.
  out_first_.assign(n + 1, 0);
  in_first_.assign(n + 1, 0);
  for (std::size_t a = 0; a < m; ++a) {
    ++out_first_[static_cast<std::size_t>(src_[a]) + 1];
    ++in_first_[static_cast<std::size_t>(dst_[a]) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    out_first_[v + 1] += out_first_[v];
    in_first_[v + 1] += in_first_[v];
  }
  out_arcs_.resize(m);
  in_arcs_.resize(m);
  std::vector<std::int32_t> out_pos(out_first_.begin(), out_first_.end() - 1);
  std::vector<std::int32_t> in_pos(in_first_.begin(), in_first_.end() - 1);
  for (std::size_t a = 0; a < m; ++a) {
    out_arcs_[static_cast<std::size_t>(out_pos[static_cast<std::size_t>(src_[a])]++)] =
        static_cast<ArcId>(a);
    in_arcs_[static_cast<std::size_t>(in_pos[static_cast<std::size_t>(dst_[a])]++)] =
        static_cast<ArcId>(a);
  }
}

}  // namespace mcr
