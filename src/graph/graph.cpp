#include "graph/graph.h"

#include <limits>
#include <stdexcept>
#include <utility>

namespace mcr {

Graph::Graph(NodeId num_nodes, const std::vector<ArcSpec>& arcs) : num_nodes_(num_nodes) {
  const std::size_t m = arcs.size();
  own_src_.reserve(m);
  own_dst_.reserve(m);
  own_weight_.reserve(m);
  own_transit_.reserve(m);
  for (const ArcSpec& a : arcs) {
    own_src_.push_back(a.src);
    own_dst_.push_back(a.dst);
    own_weight_.push_back(a.weight);
    own_transit_.push_back(a.transit);
  }
  finish_build();
}

Graph::Graph(NodeId num_nodes, std::span<const NodeId> src, std::span<const NodeId> dst,
             std::span<const std::int64_t> weight, std::span<const std::int64_t> transit)
    : num_nodes_(num_nodes),
      own_src_(src.begin(), src.end()),
      own_dst_(dst.begin(), dst.end()),
      own_weight_(weight.begin(), weight.end()),
      own_transit_(transit.begin(), transit.end()) {
  if (dst.size() != src.size() || weight.size() != src.size() ||
      transit.size() != src.size()) {
    throw std::invalid_argument("Graph: arc array size mismatch");
  }
  finish_build();
}

Graph Graph::adopt_external(const ExternalParts& parts,
                            std::shared_ptr<const void> keepalive) {
  if (parts.num_nodes < 0) throw std::invalid_argument("Graph: negative node count");
  const std::size_t n = static_cast<std::size_t>(parts.num_nodes);
  const std::size_t m = parts.src.size();
  if (m > static_cast<std::size_t>(std::numeric_limits<ArcId>::max())) {
    throw std::invalid_argument("Graph: too many arcs for 32-bit arc ids");
  }
  if (parts.dst.size() != m || parts.weight.size() != m || parts.transit.size() != m ||
      parts.out_arcs.size() != m || parts.in_arcs.size() != m) {
    throw std::invalid_argument("Graph: arc array size mismatch");
  }
  if (parts.out_first.size() != n + 1 || parts.in_first.size() != n + 1) {
    throw std::invalid_argument("Graph: CSR offset array size mismatch");
  }
  Graph g;
  g.num_nodes_ = parts.num_nodes;
  g.src_ = parts.src;
  g.dst_ = parts.dst;
  g.weight_ = parts.weight;
  g.transit_ = parts.transit;
  g.out_first_ = parts.out_first;
  g.out_arcs_ = parts.out_arcs;
  g.in_first_ = parts.in_first;
  g.in_arcs_ = parts.in_arcs;
  g.min_weight_ = parts.min_weight;
  g.max_weight_ = parts.max_weight;
  g.total_transit_ = parts.total_transit;
  g.keepalive_ = std::move(keepalive);
  return g;
}

void Graph::finish_build() {
  if (num_nodes_ < 0) throw std::invalid_argument("Graph: negative node count");
  const std::size_t n = static_cast<std::size_t>(num_nodes_);
  const std::size_t m = own_src_.size();
  if (m > static_cast<std::size_t>(std::numeric_limits<ArcId>::max())) {
    throw std::invalid_argument("Graph: too many arcs for 32-bit arc ids");
  }

  min_weight_ = m ? std::numeric_limits<std::int64_t>::max() : 0;
  max_weight_ = m ? std::numeric_limits<std::int64_t>::min() : 0;
  total_transit_ = 0;
  for (std::size_t a = 0; a < m; ++a) {
    if (own_src_[a] < 0 || own_src_[a] >= num_nodes_ || own_dst_[a] < 0 ||
        own_dst_[a] >= num_nodes_) {
      throw std::out_of_range("Graph: arc endpoint out of range");
    }
    if (own_weight_[a] < min_weight_) min_weight_ = own_weight_[a];
    if (own_weight_[a] > max_weight_) max_weight_ = own_weight_[a];
    total_transit_ += own_transit_[a];
  }

  // Counting sort of arc ids into the two CSR structures.
  own_out_first_.assign(n + 1, 0);
  own_in_first_.assign(n + 1, 0);
  for (std::size_t a = 0; a < m; ++a) {
    ++own_out_first_[static_cast<std::size_t>(own_src_[a]) + 1];
    ++own_in_first_[static_cast<std::size_t>(own_dst_[a]) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) {
    own_out_first_[v + 1] += own_out_first_[v];
    own_in_first_[v + 1] += own_in_first_[v];
  }
  own_out_arcs_.resize(m);
  own_in_arcs_.resize(m);
  std::vector<std::int32_t> out_pos(own_out_first_.begin(), own_out_first_.end() - 1);
  std::vector<std::int32_t> in_pos(own_in_first_.begin(), own_in_first_.end() - 1);
  for (std::size_t a = 0; a < m; ++a) {
    own_out_arcs_[static_cast<std::size_t>(
        out_pos[static_cast<std::size_t>(own_src_[a])]++)] = static_cast<ArcId>(a);
    own_in_arcs_[static_cast<std::size_t>(in_pos[static_cast<std::size_t>(own_dst_[a])]++)] =
        static_cast<ArcId>(a);
  }

  src_ = own_src_;
  dst_ = own_dst_;
  weight_ = own_weight_;
  transit_ = own_transit_;
  out_first_ = own_out_first_;
  out_arcs_ = own_out_arcs_;
  in_first_ = own_in_first_;
  in_arcs_ = own_in_arcs_;
}

}  // namespace mcr
