// Immutable directed multigraph in compressed-sparse-row form.
//
// This is the substrate every algorithm in the study runs on. Design
// points:
//   * Arcs carry an integer weight w(e) and an integer transit time
//     t(e) (§1 of the paper). Mean problems simply ignore transit.
//   * Both forward (out-arc) and reverse (in-arc) adjacency are built
//     once at construction: Karp's recurrence iterates over
//     predecessors, Howard's reverse BFS needs in-arcs, DG iterates
//     over successors.
//   * The graph is immutable after construction; solvers keep their own
//     scratch arrays. This makes concurrent solves of the same graph
//     safe and keeps solver state explicit.
#ifndef MCR_GRAPH_GRAPH_H
#define MCR_GRAPH_GRAPH_H

#include <cstdint>
#include <span>
#include <vector>

namespace mcr {

using NodeId = std::int32_t;
using ArcId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr ArcId kInvalidArc = -1;

/// One arc as supplied to GraphBuilder: u -> v with weight w and transit
/// time t. Transit defaults to 1, which makes every ratio problem a mean
/// problem unless the caller says otherwise.
struct ArcSpec {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int64_t weight = 0;
  std::int64_t transit = 1;
};

class Graph {
 public:
  /// Builds a graph with `num_nodes` nodes and the given arcs. Parallel
  /// arcs and self-loops are allowed (circuits have both). Endpoints
  /// must be in range. Prefer GraphBuilder for incremental construction.
  Graph(NodeId num_nodes, const std::vector<ArcSpec>& arcs);

  /// Structure-of-arrays constructor: arc i is src[i] -> dst[i] with
  /// weight[i] and transit[i]. All four spans must have equal size.
  /// This is the allocation-lean path for callers that already hold
  /// flat arc arrays (the SCC driver's per-component grouping).
  Graph(NodeId num_nodes, std::span<const NodeId> src, std::span<const NodeId> dst,
        std::span<const std::int64_t> weight, std::span<const std::int64_t> transit);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }
  [[nodiscard]] ArcId num_arcs() const { return static_cast<ArcId>(src_.size()); }

  [[nodiscard]] NodeId src(ArcId a) const { return src_[static_cast<std::size_t>(a)]; }
  [[nodiscard]] NodeId dst(ArcId a) const { return dst_[static_cast<std::size_t>(a)]; }
  [[nodiscard]] std::int64_t weight(ArcId a) const {
    return weight_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] std::int64_t transit(ArcId a) const {
    return transit_[static_cast<std::size_t>(a)];
  }

  /// Arc ids leaving u, in insertion order.
  [[nodiscard]] std::span<const ArcId> out_arcs(NodeId u) const {
    const auto b = out_first_[static_cast<std::size_t>(u)];
    const auto e = out_first_[static_cast<std::size_t>(u) + 1];
    return {out_arcs_.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Arc ids entering v.
  [[nodiscard]] std::span<const ArcId> in_arcs(NodeId v) const {
    const auto b = in_first_[static_cast<std::size_t>(v)];
    const auto e = in_first_[static_cast<std::size_t>(v) + 1];
    return {in_arcs_.data() + b, static_cast<std::size_t>(e - b)};
  }

  [[nodiscard]] std::size_t out_degree(NodeId u) const { return out_arcs(u).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId v) const { return in_arcs(v).size(); }

  /// Raw CSR views for position-range kernels (graph/arc_tiles.h): the
  /// offset arrays (size num_nodes + 1) and the arc-id arrays they
  /// index. out_arc_ids()[out_first()[u] .. out_first()[u+1]) are the
  /// arcs leaving u, ascending by arc id; the in_* pair mirrors that
  /// for arcs entering v.
  [[nodiscard]] std::span<const std::int32_t> out_first() const { return out_first_; }
  [[nodiscard]] std::span<const ArcId> out_arc_ids() const { return out_arcs_; }
  [[nodiscard]] std::span<const std::int32_t> in_first() const { return in_first_; }
  [[nodiscard]] std::span<const ArcId> in_arc_ids() const { return in_arcs_; }

  /// Extremes over all arcs; 0 for an arc-free graph.
  [[nodiscard]] std::int64_t min_weight() const { return min_weight_; }
  [[nodiscard]] std::int64_t max_weight() const { return max_weight_; }
  /// Sum of all transit times (the paper's T).
  [[nodiscard]] std::int64_t total_transit() const { return total_transit_; }

 private:
  /// Validates endpoints, computes the weight/transit summaries, and
  /// builds both CSR indices from the already-filled arc arrays.
  void finish_build();

  NodeId num_nodes_ = 0;
  // Struct-of-arrays arc storage: contiguous scans are the hot path.
  std::vector<NodeId> src_;
  std::vector<NodeId> dst_;
  std::vector<std::int64_t> weight_;
  std::vector<std::int64_t> transit_;
  // CSR indices.
  std::vector<std::int32_t> out_first_;
  std::vector<ArcId> out_arcs_;
  std::vector<std::int32_t> in_first_;
  std::vector<ArcId> in_arcs_;
  std::int64_t min_weight_ = 0;
  std::int64_t max_weight_ = 0;
  std::int64_t total_transit_ = 0;
};

}  // namespace mcr

#endif  // MCR_GRAPH_GRAPH_H
