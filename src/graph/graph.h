// Immutable directed multigraph in compressed-sparse-row form.
//
// This is the substrate every algorithm in the study runs on. Design
// points:
//   * Arcs carry an integer weight w(e) and an integer transit time
//     t(e) (§1 of the paper). Mean problems simply ignore transit.
//   * Both forward (out-arc) and reverse (in-arc) adjacency are built
//     once at construction: Karp's recurrence iterates over
//     predecessors, Howard's reverse BFS needs in-arcs, DG iterates
//     over successors.
//   * The graph is immutable after construction; solvers keep their own
//     scratch arrays. This makes concurrent solves of the same graph
//     safe and keeps solver state explicit.
//   * Storage is either owned (the builder constructors below) or
//     external (adopt_external): every accessor reads through spans, so
//     a graph can view a read-only mmap'd pack (src/store) with zero
//     per-process copy. External views carry a keepalive handle that
//     pins the backing memory for the graph's lifetime.
#ifndef MCR_GRAPH_GRAPH_H
#define MCR_GRAPH_GRAPH_H

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

namespace mcr {

using NodeId = std::int32_t;
using ArcId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr ArcId kInvalidArc = -1;

/// One arc as supplied to GraphBuilder: u -> v with weight w and transit
/// time t. Transit defaults to 1, which makes every ratio problem a mean
/// problem unless the caller says otherwise.
struct ArcSpec {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::int64_t weight = 0;
  std::int64_t transit = 1;
};

class Graph {
 public:
  /// Builds a graph with `num_nodes` nodes and the given arcs. Parallel
  /// arcs and self-loops are allowed (circuits have both). Endpoints
  /// must be in range. Prefer GraphBuilder for incremental construction.
  Graph(NodeId num_nodes, const std::vector<ArcSpec>& arcs);

  /// Structure-of-arrays constructor: arc i is src[i] -> dst[i] with
  /// weight[i] and transit[i]. All four spans must have equal size.
  /// This is the allocation-lean path for callers that already hold
  /// flat arc arrays (the SCC driver's per-component grouping).
  Graph(NodeId num_nodes, std::span<const NodeId> src, std::span<const NodeId> dst,
        std::span<const std::int64_t> weight, std::span<const std::int64_t> transit);

  /// Everything a zero-copy external view needs: the arc arrays, both
  /// prebuilt CSR indices, and the weight/transit summaries that
  /// finish_build would otherwise recompute. The referenced memory must
  /// stay valid and immutable for the graph's lifetime (see
  /// adopt_external's keepalive).
  struct ExternalParts {
    NodeId num_nodes = 0;
    std::span<const NodeId> src;
    std::span<const NodeId> dst;
    std::span<const std::int64_t> weight;
    std::span<const std::int64_t> transit;
    std::span<const std::int32_t> out_first;  // size num_nodes + 1
    std::span<const ArcId> out_arcs;          // size num_arcs
    std::span<const std::int32_t> in_first;   // size num_nodes + 1
    std::span<const ArcId> in_arcs;           // size num_arcs
    std::int64_t min_weight = 0;
    std::int64_t max_weight = 0;
    std::int64_t total_transit = 0;
  };

  /// Adopts externally owned storage without copying: accessors read
  /// the given spans directly, and `keepalive` (an mmap'd pack mapping,
  /// typically) is held until the graph — and every graph moved from it
  /// — is destroyed. Only array-size consistency is validated here; the
  /// caller (store::PackReader) is responsible for deep validation of
  /// the content, which checksummed packs get at attach time.
  [[nodiscard]] static Graph adopt_external(const ExternalParts& parts,
                                            std::shared_ptr<const void> keepalive);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  [[nodiscard]] NodeId num_nodes() const { return num_nodes_; }
  [[nodiscard]] ArcId num_arcs() const { return static_cast<ArcId>(src_.size()); }

  [[nodiscard]] NodeId src(ArcId a) const { return src_[static_cast<std::size_t>(a)]; }
  [[nodiscard]] NodeId dst(ArcId a) const { return dst_[static_cast<std::size_t>(a)]; }
  [[nodiscard]] std::int64_t weight(ArcId a) const {
    return weight_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] std::int64_t transit(ArcId a) const {
    return transit_[static_cast<std::size_t>(a)];
  }

  /// Arc ids leaving u, in insertion order.
  [[nodiscard]] std::span<const ArcId> out_arcs(NodeId u) const {
    const auto b = out_first_[static_cast<std::size_t>(u)];
    const auto e = out_first_[static_cast<std::size_t>(u) + 1];
    return {out_arcs_.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Arc ids entering v.
  [[nodiscard]] std::span<const ArcId> in_arcs(NodeId v) const {
    const auto b = in_first_[static_cast<std::size_t>(v)];
    const auto e = in_first_[static_cast<std::size_t>(v) + 1];
    return {in_arcs_.data() + b, static_cast<std::size_t>(e - b)};
  }

  [[nodiscard]] std::size_t out_degree(NodeId u) const { return out_arcs(u).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId v) const { return in_arcs(v).size(); }

  /// Raw CSR views for position-range kernels (graph/arc_tiles.h): the
  /// offset arrays (size num_nodes + 1) and the arc-id arrays they
  /// index. out_arc_ids()[out_first()[u] .. out_first()[u+1]) are the
  /// arcs leaving u, ascending by arc id; the in_* pair mirrors that
  /// for arcs entering v.
  [[nodiscard]] std::span<const std::int32_t> out_first() const { return out_first_; }
  [[nodiscard]] std::span<const ArcId> out_arc_ids() const { return out_arcs_; }
  [[nodiscard]] std::span<const std::int32_t> in_first() const { return in_first_; }
  [[nodiscard]] std::span<const ArcId> in_arc_ids() const { return in_arcs_; }

  /// Flat arc arrays in arc-id order (the pack serializer's input).
  [[nodiscard]] std::span<const NodeId> srcs() const { return src_; }
  [[nodiscard]] std::span<const NodeId> dsts() const { return dst_; }
  [[nodiscard]] std::span<const std::int64_t> weights() const { return weight_; }
  [[nodiscard]] std::span<const std::int64_t> transits() const { return transit_; }

  /// Extremes over all arcs; 0 for an arc-free graph.
  [[nodiscard]] std::int64_t min_weight() const { return min_weight_; }
  [[nodiscard]] std::int64_t max_weight() const { return max_weight_; }
  /// Sum of all transit times (the paper's T).
  [[nodiscard]] std::int64_t total_transit() const { return total_transit_; }

  /// True when this graph views externally owned memory (an mmap'd pack)
  /// rather than heap vectors it owns.
  [[nodiscard]] bool is_external() const { return keepalive_ != nullptr; }

  /// Bytes of graph data this instance makes resident: heap bytes for
  /// owned graphs, mapped bytes viewed for external ones. Deterministic
  /// (size-based, not capacity-based) so registry accounting is stable.
  [[nodiscard]] std::size_t resident_bytes() const {
    return (src_.size() + dst_.size() + out_arcs_.size() + in_arcs_.size()) *
               sizeof(NodeId) +
           (weight_.size() + transit_.size()) * sizeof(std::int64_t) +
           (out_first_.size() + in_first_.size()) * sizeof(std::int32_t);
  }

  /// Precomputed SCC decomposition attached to this graph (a pack's
  /// front-loaded condensation). The driver consumes it instead of
  /// re-running Tarjan per solve; the referenced memory must match the
  /// graph's lifetime (external views share the pack keepalive). The
  /// contract is exact: `component` and the ascending cyclic worklist
  /// must equal strongly_connected_components(*this) output, so solves
  /// stay bit-identical with and without the hint.
  struct SccHint {
    std::span<const NodeId> component;           // size num_nodes
    NodeId num_components = 0;
    std::span<const NodeId> cyclic_components;   // ascending component ids
  };
  void set_scc_hint(const SccHint& hint) { scc_hint_ = hint; }
  [[nodiscard]] const SccHint* scc_hint() const {
    return scc_hint_.has_value() ? &*scc_hint_ : nullptr;
  }

 private:
  Graph() = default;

  /// Validates endpoints, computes the weight/transit summaries, builds
  /// both CSR indices from the already-filled own_* arc arrays, and
  /// points the accessor spans at the owned storage.
  void finish_build();

  NodeId num_nodes_ = 0;
  // Accessor views: into the own_* vectors (builder path) or external
  // memory (adopt_external). std::vector's heap buffer is stable across
  // moves, so the default move keeps these spans valid either way.
  std::span<const NodeId> src_;
  std::span<const NodeId> dst_;
  std::span<const std::int64_t> weight_;
  std::span<const std::int64_t> transit_;
  std::span<const std::int32_t> out_first_;
  std::span<const ArcId> out_arcs_;
  std::span<const std::int32_t> in_first_;
  std::span<const ArcId> in_arcs_;
  // Owned backing storage; empty in external-view mode.
  std::vector<NodeId> own_src_;
  std::vector<NodeId> own_dst_;
  std::vector<std::int64_t> own_weight_;
  std::vector<std::int64_t> own_transit_;
  std::vector<std::int32_t> own_out_first_;
  std::vector<ArcId> own_out_arcs_;
  std::vector<std::int32_t> own_in_first_;
  std::vector<ArcId> own_in_arcs_;
  std::int64_t min_weight_ = 0;
  std::int64_t max_weight_ = 0;
  std::int64_t total_transit_ = 0;
  std::shared_ptr<const void> keepalive_;  // pins external memory
  std::optional<SccHint> scc_hint_;
};

}  // namespace mcr

#endif  // MCR_GRAPH_GRAPH_H
