#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace mcr {

void write_dimacs(std::ostream& os, const Graph& g, const std::string& comment) {
  if (!comment.empty()) os << "c " << comment << '\n';
  os << "p mcr " << g.num_nodes() << ' ' << g.num_arcs() << '\n';
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.transit(a) <= 0) {
      // The file format requires t >= 1; refuse to emit a file that
      // read_dimacs would reject rather than fail at the next load.
      throw std::invalid_argument("write_dimacs: arc " + std::to_string(a) +
                                  " has non-positive transit " +
                                  std::to_string(g.transit(a)));
    }
    os << "a " << (g.src(a) + 1) << ' ' << (g.dst(a) + 1) << ' ' << g.weight(a);
    if (g.transit(a) != 1) os << ' ' << g.transit(a);
    os << '\n';
  }
}

namespace {

/// Whitespace as istream token extraction sees it within one line
/// (getline consumed the '\n').
bool dimacs_ws(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

}  // namespace

Graph read_dimacs(std::istream& is) {
  std::size_t lineno = 0;
  NodeId n = -1;
  ArcId declared_m = 0;
  std::vector<ArcSpec> arcs;
  const auto fail = [&](const std::string& msg) {
    throw std::runtime_error("read_dimacs: line " + std::to_string(lineno) + ": " + msg);
  };

  // Fast path for canonical arc lines — 'a' in column 0 followed by 3
  // or 4 plain decimal tokens. Returns false on anything unusual
  // (extra tokens, malformed or overflowing numbers, 'a' with no
  // fields), deferring to the token-extraction path below so accept /
  // reject behavior and error text stay byte-identical with the
  // original istream-based reader. Multi-million-arc packs hit this
  // branch for every arc line; the istringstream-per-line cost was the
  // parse bottleneck.
  const auto fast_arc_line = [&](std::string_view line) -> bool {
    if (n < 0) return false;  // "arc line before problem line" path
    long long vals[4] = {0, 0, 0, 0};
    int count = 0;
    std::size_t i = 1;  // past the 'a'
    for (;;) {
      while (i < line.size() && dimacs_ws(line[i])) ++i;
      if (i == line.size()) break;
      if (count == 4) return false;  // legacy path reports the extra token
      bool neg = false;
      if (line[i] == '+' || line[i] == '-') {
        neg = line[i] == '-';
        ++i;
      }
      if (i == line.size() || line[i] < '0' || line[i] > '9') return false;
      const unsigned long long bound =
          neg ? 9223372036854775808ULL : 9223372036854775807ULL;
      unsigned long long acc = 0;
      for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
        const unsigned long long digit = static_cast<unsigned long long>(line[i] - '0');
        if (acc > (bound - digit) / 10) return false;  // would overflow int64
        acc = acc * 10 + digit;
      }
      if (i < line.size() && !dimacs_ws(line[i])) return false;  // "12x"
      vals[count++] = neg ? static_cast<long long>(-acc) : static_cast<long long>(acc);
    }
    if (count < 3) return false;
    const long long u = vals[0], v = vals[1], w = vals[2];
    const long long t = count == 4 ? vals[3] : 1;
    if (u < 1 || u > n || v < 1 || v > n) fail("arc endpoint out of range");
    if (t <= 0) {
      fail("non-positive transit time " + std::to_string(t) +
           " (the format requires t >= 1)");
    }
    arcs.push_back(ArcSpec{static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1), w, t});
    return true;
  };

  // Everything the fast path declines, handled exactly as the original
  // per-line istringstream reader did (bug-for-bug: an unreadable 4th
  // token still falls back to t = 1, a whitespace-only line reports
  // kind '\0', ...).
  const auto slow_line = [&](std::string_view sv) {
    const std::string line(sv);
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string tag;
      long long nn = 0, mm = 0;
      if (!(ls >> tag >> nn >> mm) || tag != "mcr" || nn < 0 || mm < 0) {
        fail("malformed problem line (expected 'p mcr <n> <m>')");
      }
      n = static_cast<NodeId>(nn);
      declared_m = static_cast<ArcId>(mm);
      arcs.reserve(static_cast<std::size_t>(mm));
    } else if (kind == 'a') {
      if (n < 0) fail("arc line before problem line");
      long long u = 0, v = 0, w = 0, t = 1;
      if (!(ls >> u >> v >> w)) fail("malformed arc line");
      if (!(ls >> t)) t = 1;
      std::string extra;
      if (ls >> extra) fail("trailing tokens after arc line ('" + extra + "')");
      if (u < 1 || u > n || v < 1 || v > n) fail("arc endpoint out of range");
      if (t <= 0) {
        fail("non-positive transit time " + std::to_string(t) +
             " (the format requires t >= 1)");
      }
      arcs.push_back(ArcSpec{static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1), w, t});
    } else {
      fail(std::string("unknown line kind '") + kind + "'");
    }
  };

  const auto handle_line = [&](std::string_view line) {
    ++lineno;
    if (line.empty() || line[0] == 'c') return;
    if (line[0] == 'a' && fast_arc_line(line)) return;
    slow_line(line);
  };

  // Buffered line scan: read in large chunks and split on '\n'
  // manually instead of getline + istringstream per line. `carry`
  // holds at most one partial line between chunks.
  std::vector<char> chunk(1 << 20);
  std::string carry;
  for (;;) {
    is.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::size_t got = static_cast<std::size_t>(is.gcount());
    if (got == 0) break;
    carry.append(chunk.data(), got);
    std::size_t begin = 0;
    for (;;) {
      const std::size_t nl = carry.find('\n', begin);
      if (nl == std::string::npos) break;
      handle_line(std::string_view(carry).substr(begin, nl - begin));
      begin = nl + 1;
    }
    carry.erase(0, begin);
  }
  // Final line without a trailing newline (getline would yield it too).
  if (!carry.empty()) handle_line(carry);

  if (n < 0) throw std::runtime_error("read_dimacs: missing problem line");
  if (static_cast<ArcId>(arcs.size()) != declared_m) {
    throw std::runtime_error("read_dimacs: arc count mismatch (declared " +
                             std::to_string(declared_m) + ", found " +
                             std::to_string(arcs.size()) + ")");
  }
  return Graph(n, arcs);
}

void save_dimacs(const std::string& path, const Graph& g, const std::string& comment) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_dimacs: cannot open " + path);
  write_dimacs(os, g, comment);
}

Graph load_dimacs(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_dimacs: cannot open " + path);
  return read_dimacs(is);
}

}  // namespace mcr
