#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mcr {

void write_dimacs(std::ostream& os, const Graph& g, const std::string& comment) {
  if (!comment.empty()) os << "c " << comment << '\n';
  os << "p mcr " << g.num_nodes() << ' ' << g.num_arcs() << '\n';
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.transit(a) <= 0) {
      // The file format requires t >= 1; refuse to emit a file that
      // read_dimacs would reject rather than fail at the next load.
      throw std::invalid_argument("write_dimacs: arc " + std::to_string(a) +
                                  " has non-positive transit " +
                                  std::to_string(g.transit(a)));
    }
    os << "a " << (g.src(a) + 1) << ' ' << (g.dst(a) + 1) << ' ' << g.weight(a);
    if (g.transit(a) != 1) os << ' ' << g.transit(a);
    os << '\n';
  }
}

Graph read_dimacs(std::istream& is) {
  std::string line;
  std::size_t lineno = 0;
  NodeId n = -1;
  ArcId declared_m = 0;
  std::vector<ArcSpec> arcs;
  const auto fail = [&](const std::string& msg) {
    throw std::runtime_error("read_dimacs: line " + std::to_string(lineno) + ": " + msg);
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string tag;
      long long nn = 0, mm = 0;
      if (!(ls >> tag >> nn >> mm) || tag != "mcr" || nn < 0 || mm < 0) {
        fail("malformed problem line (expected 'p mcr <n> <m>')");
      }
      n = static_cast<NodeId>(nn);
      declared_m = static_cast<ArcId>(mm);
      arcs.reserve(static_cast<std::size_t>(mm));
    } else if (kind == 'a') {
      if (n < 0) fail("arc line before problem line");
      long long u = 0, v = 0, w = 0, t = 1;
      if (!(ls >> u >> v >> w)) fail("malformed arc line");
      if (!(ls >> t)) t = 1;
      std::string extra;
      if (ls >> extra) fail("trailing tokens after arc line ('" + extra + "')");
      if (u < 1 || u > n || v < 1 || v > n) fail("arc endpoint out of range");
      if (t <= 0) {
        fail("non-positive transit time " + std::to_string(t) +
             " (the format requires t >= 1)");
      }
      arcs.push_back(ArcSpec{static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1), w, t});
    } else {
      fail(std::string("unknown line kind '") + kind + "'");
    }
  }
  if (n < 0) throw std::runtime_error("read_dimacs: missing problem line");
  if (static_cast<ArcId>(arcs.size()) != declared_m) {
    throw std::runtime_error("read_dimacs: arc count mismatch (declared " +
                             std::to_string(declared_m) + ", found " +
                             std::to_string(arcs.size()) + ")");
  }
  return Graph(n, arcs);
}

void save_dimacs(const std::string& path, const Graph& g, const std::string& comment) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_dimacs: cannot open " + path);
  write_dimacs(os, g, comment);
}

Graph load_dimacs(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_dimacs: cannot open " + path);
  return read_dimacs(is);
}

}  // namespace mcr
