// Text serialization of graphs.
//
// The format is the DIMACS shortest-path format extended with a transit
// time:
//   c <comment>
//   p mcr <num_nodes> <num_arcs>
//   a <src> <dst> <weight> [<transit>]
// Node ids in files are 1-based (DIMACS convention); in memory they are
// 0-based. Omitted transit defaults to 1; an explicit transit must be
// >= 1 (read_dimacs rejects non-positive transit with a line number).
// Weights may be any 64-bit integer, negative included.
#ifndef MCR_GRAPH_IO_H
#define MCR_GRAPH_IO_H

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace mcr {

/// Writes g in the extended DIMACS format.
void write_dimacs(std::ostream& os, const Graph& g, const std::string& comment = "");

/// Parses a graph; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Graph read_dimacs(std::istream& is);

/// File-path conveniences.
void save_dimacs(const std::string& path, const Graph& g, const std::string& comment = "");
[[nodiscard]] Graph load_dimacs(const std::string& path);

}  // namespace mcr

#endif  // MCR_GRAPH_IO_H
