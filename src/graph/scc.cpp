#include "graph/scc.h"

#include <algorithm>

namespace mcr {

SccDecomposition strongly_connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  SccDecomposition out;
  out.component.assign(static_cast<std::size_t>(n), kInvalidNode);

  // Iterative Tarjan. index/lowlink per node; explicit DFS stack holding
  // (node, position in its out-arc list).
  constexpr NodeId kUnvisited = -1;
  std::vector<NodeId> index(static_cast<std::size_t>(n), kUnvisited);
  std::vector<NodeId> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<NodeId> scc_stack;
  scc_stack.reserve(static_cast<std::size_t>(n));

  struct Frame {
    NodeId v;
    std::size_t next_arc;
  };
  std::vector<Frame> dfs;
  NodeId next_index = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[static_cast<std::size_t>(root)] = lowlink[static_cast<std::size_t>(root)] =
        next_index++;
    scc_stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto arcs = g.out_arcs(f.v);
      bool descended = false;
      while (f.next_arc < arcs.size()) {
        const NodeId w = g.dst(arcs[f.next_arc]);
        ++f.next_arc;
        if (index[static_cast<std::size_t>(w)] == kUnvisited) {
          index[static_cast<std::size_t>(w)] = lowlink[static_cast<std::size_t>(w)] =
              next_index++;
          scc_stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(f.v)] = std::min(
              lowlink[static_cast<std::size_t>(f.v)], index[static_cast<std::size_t>(w)]);
        }
      }
      if (descended) continue;

      // f.v is fully expanded.
      const NodeId v = f.v;
      dfs.pop_back();
      if (!dfs.empty()) {
        const NodeId parent = dfs.back().v;
        lowlink[static_cast<std::size_t>(parent)] = std::min(
            lowlink[static_cast<std::size_t>(parent)], lowlink[static_cast<std::size_t>(v)]);
      }
      if (lowlink[static_cast<std::size_t>(v)] == index[static_cast<std::size_t>(v)]) {
        // v is the root of an SCC; pop it.
        const NodeId c = out.num_components++;
        for (;;) {
          const NodeId w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          out.component[static_cast<std::size_t>(w)] = c;
          if (w == v) break;
        }
      }
    }
  }

  // Cyclicity: a component with an internal arc between two nodes is
  // cyclic iff it has >=2 nodes or the arc is a self-loop.
  std::vector<NodeId> size(static_cast<std::size_t>(out.num_components), 0);
  for (NodeId v = 0; v < n; ++v) ++size[static_cast<std::size_t>(out.component[static_cast<std::size_t>(v)])];
  out.component_is_cyclic.assign(static_cast<std::size_t>(out.num_components), false);
  for (NodeId c = 0; c < out.num_components; ++c) {
    if (size[static_cast<std::size_t>(c)] >= 2) out.component_is_cyclic[static_cast<std::size_t>(c)] = true;
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    if (g.src(a) == g.dst(a)) {
      out.component_is_cyclic[static_cast<std::size_t>(
          out.component[static_cast<std::size_t>(g.src(a))])] = true;
    }
  }
  return out;
}

bool is_strongly_connected(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  return strongly_connected_components(g).num_components == 1;
}

InducedSubgraph induced_subgraph(const Graph& g, const SccDecomposition& scc, NodeId c) {
  InducedSubgraph out{Graph(0, {}), {}, {}};
  std::vector<NodeId> to_local(static_cast<std::size_t>(g.num_nodes()), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (scc.component[static_cast<std::size_t>(v)] == c) {
      to_local[static_cast<std::size_t>(v)] = static_cast<NodeId>(out.to_parent_node.size());
      out.to_parent_node.push_back(v);
    }
  }
  std::vector<ArcSpec> arcs;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId lu = to_local[static_cast<std::size_t>(g.src(a))];
    const NodeId lv = to_local[static_cast<std::size_t>(g.dst(a))];
    if (lu != kInvalidNode && lv != kInvalidNode) {
      arcs.push_back(ArcSpec{lu, lv, g.weight(a), g.transit(a)});
      out.to_parent_arc.push_back(a);
    }
  }
  out.graph = Graph(static_cast<NodeId>(out.to_parent_node.size()), arcs);
  return out;
}

Condensation condensation(const Graph& g, const SccDecomposition& scc) {
  Condensation out{Graph(0, {}), {}};
  std::vector<ArcSpec> arcs;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId cu = scc.component[static_cast<std::size_t>(g.src(a))];
    const NodeId cv = scc.component[static_cast<std::size_t>(g.dst(a))];
    if (cu == cv) continue;
    arcs.push_back(ArcSpec{cu, cv, g.weight(a), g.transit(a)});
    out.to_parent_arc.push_back(a);
  }
  out.graph = Graph(scc.num_components, arcs);
  return out;
}

}  // namespace mcr
