// Strongly connected components (Tarjan, iterative).
//
// The paper (§2) runs every MCM/MCR algorithm per strongly connected
// component and takes the minimum over components; this module provides
// that decomposition plus the per-component subgraph extraction the
// driver needs.
#ifndef MCR_GRAPH_SCC_H
#define MCR_GRAPH_SCC_H

#include <vector>

#include "graph/graph.h"

namespace mcr {

/// Result of an SCC decomposition.
struct SccDecomposition {
  /// component[v] in [0, num_components); components are numbered in
  /// reverse topological order of the condensation (Tarjan's order).
  std::vector<NodeId> component;
  NodeId num_components = 0;

  /// True iff component c contains a cycle: it has >= 2 nodes, or its
  /// single node has a self-loop.
  std::vector<bool> component_is_cyclic;
};

/// Computes the SCCs of g. Runs in O(n + m), iteratively (no recursion,
/// so deep circuits cannot overflow the stack).
[[nodiscard]] SccDecomposition strongly_connected_components(const Graph& g);

/// True iff g is strongly connected (and nonempty).
[[nodiscard]] bool is_strongly_connected(const Graph& g);

/// A subgraph induced by one SCC, with node ids renumbered densely.
struct InducedSubgraph {
  Graph graph;
  /// to_parent[local node id] = node id in the parent graph.
  std::vector<NodeId> to_parent_node;
  /// to_parent_arc[local arc id] = arc id in the parent graph.
  std::vector<ArcId> to_parent_arc;
};

/// Extracts component `c` of `scc` from g, including only arcs whose
/// endpoints both lie in the component.
[[nodiscard]] InducedSubgraph induced_subgraph(const Graph& g, const SccDecomposition& scc,
                                               NodeId c);

/// The condensation: one node per component, one arc per cross-
/// component arc of g (weights/transits preserved; parallel condensed
/// arcs are kept). Acyclic by construction, and — because Tarjan
/// numbers components in reverse topological order — an arc always goes
/// from a higher component id to a lower one.
struct Condensation {
  Graph graph;
  /// to_parent_arc[condensation arc] = the originating arc in g.
  std::vector<ArcId> to_parent_arc;
};
[[nodiscard]] Condensation condensation(const Graph& g, const SccDecomposition& scc);

}  // namespace mcr

#endif  // MCR_GRAPH_SCC_H
