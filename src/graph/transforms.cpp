#include "graph/transforms.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace mcr {

namespace {

Graph rebuild(const Graph& g, bool negate, bool unit_transit, std::int64_t factor,
              bool reversed) {
  std::vector<ArcSpec> arcs;
  arcs.reserve(static_cast<std::size_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    ArcSpec s;
    s.src = reversed ? g.dst(a) : g.src(a);
    s.dst = reversed ? g.src(a) : g.dst(a);
    s.weight = g.weight(a) * factor * (negate ? -1 : 1);
    s.transit = unit_transit ? 1 : g.transit(a);
    arcs.push_back(s);
  }
  return Graph(g.num_nodes(), arcs);
}

}  // namespace

Graph negate_weights(const Graph& g) { return rebuild(g, true, false, 1, false); }

Graph with_unit_transit(const Graph& g) { return rebuild(g, false, true, 1, false); }

Graph scale_weights(const Graph& g, std::int64_t factor) {
  return rebuild(g, false, false, factor, false);
}

Graph reverse(const Graph& g) { return rebuild(g, false, false, 1, true); }

SimplifiedGraph simplify_parallel_arcs(const Graph& g, bool ratio) {
  // Bucket parallel arcs per (src, dst) by scanning each node's out-arcs
  // grouped by destination.
  std::vector<ArcId> keep;
  keep.reserve(static_cast<std::size_t>(g.num_arcs()));
  std::vector<std::vector<ArcId>> by_dst(static_cast<std::size_t>(g.num_nodes()));
  std::vector<NodeId> touched;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    touched.clear();
    for (const ArcId a : g.out_arcs(u)) {
      auto& bucket = by_dst[static_cast<std::size_t>(g.dst(a))];
      if (bucket.empty()) touched.push_back(g.dst(a));
      bucket.push_back(a);
    }
    for (const NodeId v : touched) {
      auto& bucket = by_dst[static_cast<std::size_t>(v)];
      if (bucket.size() == 1) {
        keep.push_back(bucket[0]);
      } else if (!ratio) {
        ArcId best = bucket[0];
        for (const ArcId a : bucket) {
          if (g.weight(a) < g.weight(best)) best = a;
        }
        keep.push_back(best);
      } else {
        // Pareto frontier for (minimize weight, maximize transit): sort
        // by weight ascending (transit descending on ties) and keep
        // arcs whose transit strictly exceeds all previous.
        std::sort(bucket.begin(), bucket.end(), [&](ArcId a, ArcId b) {
          if (g.weight(a) != g.weight(b)) return g.weight(a) < g.weight(b);
          return g.transit(a) > g.transit(b);
        });
        std::int64_t best_transit = std::numeric_limits<std::int64_t>::min();
        for (const ArcId a : bucket) {
          if (g.transit(a) > best_transit) {
            keep.push_back(a);
            best_transit = g.transit(a);
          }
        }
      }
      bucket.clear();
    }
  }
  std::sort(keep.begin(), keep.end());  // deterministic arc order
  SimplifiedGraph out{Graph(0, {}), std::move(keep)};
  std::vector<ArcSpec> specs;
  specs.reserve(out.to_parent_arc.size());
  for (const ArcId a : out.to_parent_arc) {
    specs.push_back(ArcSpec{g.src(a), g.dst(a), g.weight(a), g.transit(a)});
  }
  out.graph = Graph(g.num_nodes(), specs);
  return out;
}

}  // namespace mcr
