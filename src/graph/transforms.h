// Whole-graph transforms.
//
// Maximum cycle mean/ratio problems reduce to minimum ones by negating
// weights (max_C w/t = -min_C (-w)/t); clock-period and iteration-bound
// applications in examples/ use that reduction.
#ifndef MCR_GRAPH_TRANSFORMS_H
#define MCR_GRAPH_TRANSFORMS_H

#include <vector>

#include "graph/graph.h"

namespace mcr {

/// A copy of g with every weight negated.
[[nodiscard]] Graph negate_weights(const Graph& g);

/// A copy of g with every transit time set to 1 (turns a ratio instance
/// into the corresponding mean instance).
[[nodiscard]] Graph with_unit_transit(const Graph& g);

/// A copy of g with every weight multiplied by `factor`.
[[nodiscard]] Graph scale_weights(const Graph& g, std::int64_t factor);

/// A copy of g with all arcs reversed (weights/transits preserved).
[[nodiscard]] Graph reverse(const Graph& g);

/// A simplified copy with a parent-arc mapping.
struct SimplifiedGraph {
  Graph graph;
  /// to_parent_arc[new arc id] = arc id in the input graph.
  std::vector<ArcId> to_parent_arc;
};

/// Removes parallel arcs that can never appear on an optimum cycle:
/// for the mean problem only the minimum-weight arc of each (u, v)
/// bundle survives; for the ratio problem the Pareto frontier survives
/// (an arc is dominated when another parallel arc has weight <= and
/// transit >=, since a minimum-ratio cycle prefers lower weight and
/// higher transit). A standard preprocessing step: SPRAND and circuit
/// netlists both produce parallel arcs, and every solver's work scales
/// with m. Pass ratio = false for mean problems (transit ignored).
[[nodiscard]] SimplifiedGraph simplify_parallel_arcs(const Graph& g, bool ratio = false);

}  // namespace mcr

#endif  // MCR_GRAPH_TRANSFORMS_H
