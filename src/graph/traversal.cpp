#include "graph/traversal.h"

#include <stdexcept>

namespace mcr {

namespace {

void check_node(const Graph& g, NodeId v) {
  if (v < 0 || v >= g.num_nodes()) throw std::out_of_range("traversal: node out of range");
}

}  // namespace

std::vector<NodeId> bfs_order(const Graph& g, NodeId source) {
  check_node(g, source);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(g.num_nodes()));
  order.push_back(source);
  seen[static_cast<std::size_t>(source)] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId u = order[head];
    for (const ArcId a : g.out_arcs(u)) {
      const NodeId v = g.dst(a);
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        order.push_back(v);
      }
    }
  }
  return order;
}

std::vector<NodeId> reverse_bfs_order(const Graph& g, NodeId sink) {
  check_node(g, sink);
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(g.num_nodes()));
  order.push_back(sink);
  seen[static_cast<std::size_t>(sink)] = true;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const NodeId u = order[head];
    for (const ArcId a : g.in_arcs(u)) {
      const NodeId v = g.src(a);
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        order.push_back(v);
      }
    }
  }
  return order;
}

std::vector<bool> reachable_from(const Graph& g, NodeId source) {
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  for (const NodeId v : bfs_order(g, source)) seen[static_cast<std::size_t>(v)] = true;
  return seen;
}

std::vector<NodeId> topological_order(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<std::int32_t> indeg(static_cast<std::size_t>(n), 0);
  for (ArcId a = 0; a < g.num_arcs(); ++a) ++indeg[static_cast<std::size_t>(g.dst(a))];
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) order.push_back(v);
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const ArcId a : g.out_arcs(order[head])) {
      if (--indeg[static_cast<std::size_t>(g.dst(a))] == 0) order.push_back(g.dst(a));
    }
  }
  if (order.size() != static_cast<std::size_t>(n)) return {};
  return order;
}

bool has_cycle(const Graph& g) {
  if (g.num_nodes() == 0) return false;
  return topological_order(g).empty();
}

std::vector<ArcId> find_any_cycle(const Graph& g, std::span<const ArcId> arc_subset) {
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::vector<ArcId>> out(n);
  for (const ArcId a : arc_subset) out[static_cast<std::size_t>(g.src(a))].push_back(a);

  enum class Color : unsigned char { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  std::vector<ArcId> via(n, kInvalidArc);
  struct Frame {
    NodeId v;
    std::size_t next;
  };
  std::vector<Frame> stack;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (color[static_cast<std::size_t>(root)] != Color::kWhite) continue;
    color[static_cast<std::size_t>(root)] = Color::kGray;
    stack.clear();
    stack.push_back(Frame{root, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& arcs = out[static_cast<std::size_t>(f.v)];
      if (f.next < arcs.size()) {
        const ArcId a = arcs[f.next++];
        const NodeId w = g.dst(a);
        if (color[static_cast<std::size_t>(w)] == Color::kGray) {
          // Cycle w -> ... -> f.v -> w; frames stack[i..top] with
          // stack[i].v == w hold it (via[stack[j].v] enters stack[j].v).
          std::size_t i = stack.size() - 1;
          while (stack[i].v != w) --i;
          std::vector<ArcId> cycle;
          for (std::size_t j = i + 1; j < stack.size(); ++j) {
            cycle.push_back(via[static_cast<std::size_t>(stack[j].v)]);
          }
          cycle.push_back(a);
          return cycle;
        }
        if (color[static_cast<std::size_t>(w)] == Color::kWhite) {
          color[static_cast<std::size_t>(w)] = Color::kGray;
          via[static_cast<std::size_t>(w)] = a;
          stack.push_back(Frame{w, 0});
        }
      } else {
        color[static_cast<std::size_t>(f.v)] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace mcr
