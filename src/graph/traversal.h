// Breadth-first and depth-first traversals over Graph.
#ifndef MCR_GRAPH_TRAVERSAL_H
#define MCR_GRAPH_TRAVERSAL_H

#include <span>
#include <vector>

#include "graph/graph.h"

namespace mcr {

/// Nodes reachable from `source` following out-arcs (BFS order).
[[nodiscard]] std::vector<NodeId> bfs_order(const Graph& g, NodeId source);

/// Nodes that can reach `sink` following arcs forward (i.e. BFS on the
/// reverse graph). Howard's algorithm computes distances in this order.
[[nodiscard]] std::vector<NodeId> reverse_bfs_order(const Graph& g, NodeId sink);

/// reachable[v] = true iff v is reachable from source.
[[nodiscard]] std::vector<bool> reachable_from(const Graph& g, NodeId source);

/// True iff g has at least one directed cycle (including self-loops).
[[nodiscard]] bool has_cycle(const Graph& g);

/// Topological order of an acyclic graph; empty vector if g is cyclic.
[[nodiscard]] std::vector<NodeId> topological_order(const Graph& g);

/// Finds one directed cycle using only the arcs in `arc_subset`
/// (iterative colored DFS). Returns the cycle's arcs in traversal
/// order, or an empty vector if the arc subset is acyclic.
[[nodiscard]] std::vector<ArcId> find_any_cycle(const Graph& g,
                                                std::span<const ArcId> arc_subset);

}  // namespace mcr

#endif  // MCR_GRAPH_TRAVERSAL_H
