#include "obs/build_info.h"

#include <fstream>
#include <string_view>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace_recorder.h"  // json_escape

#if __has_include("mcr_build_info_gen.h")
#include "mcr_build_info_gen.h"
#else  // built without CMake (e.g. a direct compiler invocation)
#define MCR_BUILD_GIT_SHA "unknown"
#define MCR_BUILD_COMPILER "unknown"
#define MCR_BUILD_FLAGS ""
#define MCR_BUILD_TYPE "unknown"
#endif

namespace mcr::obs {

namespace {

std::string first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return "";
  return line;
}

std::string detect_cpu_model() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (in && std::getline(in, line)) {
    const std::string_view sv(line);
    if (sv.rfind("model name", 0) == 0) {
      const auto colon = sv.find(':');
      if (colon != std::string_view::npos) {
        auto value = sv.substr(colon + 1);
        while (!value.empty() && value.front() == ' ') value.remove_prefix(1);
        return std::string(value);
      }
    }
  }
  return "unknown";
}

BuildInfo compute() {
  BuildInfo info;
  info.git_sha = MCR_BUILD_GIT_SHA;
  info.compiler = MCR_BUILD_COMPILER;
  info.flags = MCR_BUILD_FLAGS;
  info.build_type = MCR_BUILD_TYPE;
  info.cpu_model = detect_cpu_model();
  const std::string governor =
      first_line("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  info.governor = governor.empty() ? "unknown" : governor;
  info.hardware_threads = static_cast<int>(std::thread::hardware_concurrency());
  return info;
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = compute();
  return info;
}

void export_build_info(MetricsRegistry& metrics) {
  const BuildInfo& b = build_info();
  metrics
      .gauge(labeled_name("mcr_build_info",
                          {{"git_sha", b.git_sha},
                           {"compiler", b.compiler},
                           {"flags", b.flags},
                           {"build_type", b.build_type},
                           {"cpu_model", b.cpu_model},
                           {"governor", b.governor}}))
      .set(1);
}

std::string version_string(const std::string& tool) {
  const BuildInfo& b = build_info();
  std::string out = tool + " (mcr toolkit)\n";
  out += "  git sha:    " + b.git_sha + "\n";
  out += "  compiler:   " + b.compiler + "\n";
  out += "  build type: " + b.build_type + "\n";
  out += "  flags:      " + b.flags + "\n";
  return out;
}

std::string build_info_json() {
  const BuildInfo& b = build_info();
  std::string out = "{";
  const auto field = [&](const char* key, const std::string& value) {
    if (out.size() > 1) out += ',';
    out += '"';
    out += key;
    out += "\":\"";
    json_escape(out, value);
    out += '"';
  };
  field("git_sha", b.git_sha);
  field("compiler", b.compiler);
  field("flags", b.flags);
  field("build_type", b.build_type);
  field("cpu_model", b.cpu_model);
  field("governor", b.governor);
  out += ",\"hardware_threads\":" + std::to_string(b.hardware_threads) + "}";
  return out;
}

}  // namespace mcr::obs
