// BuildInfo — who produced this measurement.
//
// BENCH artifacts and exported metrics are only comparable across PRs
// if every number is attributable to a binary (git sha, compiler,
// flags) and a machine (CPU model, frequency governor). The build half
// is captured at CMake configure time into a generated header; the
// machine half is read at runtime from /proc and /sys. The sha is as
// fresh as the last configure — CMake reconfigures on CMakeLists
// changes, but a plain rebuild after a commit keeps the old sha
// (documented in docs/BENCHMARKING.md).
#ifndef MCR_OBS_BUILD_INFO_H
#define MCR_OBS_BUILD_INFO_H

#include <string>

namespace mcr::obs {

class MetricsRegistry;

struct BuildInfo {
  std::string git_sha;     // short sha, "+dirty" suffix; "unknown" outside git
  std::string compiler;    // e.g. "GNU 12.2.0"
  std::string flags;       // effective CXX flags incl. build type
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string cpu_model;   // /proc/cpuinfo "model name"; "unknown" elsewhere
  std::string governor;    // cpufreq scaling governor; "unknown" when absent
  int hardware_threads = 0;
};

/// The process-wide build info (computed once, cached).
[[nodiscard]] const BuildInfo& build_info();

/// Registers the Prometheus-conventional info gauge: value 1, the
/// fields as (escaped) labels —
///   mcr_build_info{git_sha="...",compiler="...",...} 1
void export_build_info(MetricsRegistry& metrics);

/// The `--version` banner every mcr tool prints: tool name plus the
/// build half of BuildInfo (git sha, compiler, build type, flags), one
/// field per line. Ends with a newline.
[[nodiscard]] std::string version_string(const std::string& tool);

/// BuildInfo as one JSON object (every field escaped) — embedded in the
/// STATS response and in mcr_load report artifacts so any recorded
/// number is attributable to the binary that produced it.
[[nodiscard]] std::string build_info_json();

}  // namespace mcr::obs

#endif  // MCR_OBS_BUILD_INFO_H
