// Configure-time build facts, instantiated by CMake into
// <build>/generated/mcr_build_info_gen.h. Only obs/build_info.cpp
// includes the generated header; everything else goes through
// obs::build_info().
#ifndef MCR_OBS_BUILD_INFO_GEN_H
#define MCR_OBS_BUILD_INFO_GEN_H

#define MCR_BUILD_GIT_SHA "@MCR_GIT_SHA@"
#define MCR_BUILD_COMPILER "@MCR_COMPILER@"
#define MCR_BUILD_FLAGS "@MCR_EFFECTIVE_FLAGS@"
#define MCR_BUILD_TYPE "@MCR_BUILD_TYPE@"

#endif  // MCR_OBS_BUILD_INFO_GEN_H
