#include "obs/flight_recorder.h"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <ostream>
#include <sstream>
#include <utility>

namespace mcr::obs {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e37'79b9'7f4a'7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf2'9ce4'8422'2325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x0000'0100'0000'01b3ULL;
  }
  return h;
}

std::string fmt_us(double us) {
  std::ostringstream os;
  os << us;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// RequestTrace

std::uint32_t RequestTrace::thread_index_locked() {
  const auto id = std::this_thread::get_id();
  const auto it = thread_ids_.find(id);
  if (it != thread_ids_.end()) return it->second;
  const auto tid = static_cast<std::uint32_t>(thread_ids_.size());
  thread_ids_.emplace(id, tid);
  return tid;
}

void RequestTrace::push(TraceRecorder::Event&& e) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  e.tid = thread_index_locked();
  events_.push_back(std::move(e));
}

void RequestTrace::begin_span(EventKind kind, std::string_view name) {
  push({kind, TraceRecorder::Phase::kBegin, std::string(name), 0, 0,
        micros_now()});
}

void RequestTrace::end_span(EventKind kind) {
  push({kind, TraceRecorder::Phase::kEnd, std::string(), 0, 0, micros_now()});
}

void RequestTrace::instant(EventKind kind, std::string_view name,
                           std::int64_t value) {
  push({kind, TraceRecorder::Phase::kInstant, std::string(name), value, 0,
        micros_now()});
}

void RequestTrace::record_span(EventKind kind, std::string_view name,
                               double begin_us, double end_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() + 2 > kMaxEvents) {
    dropped_ += 2;
    return;
  }
  const std::uint32_t tid = thread_index_locked();
  events_.push_back({kind, TraceRecorder::Phase::kBegin, std::string(name), 0,
                     tid, begin_us});
  events_.push_back(
      {kind, TraceRecorder::Phase::kEnd, std::string(), 0, tid, end_us});
}

void RequestTrace::note(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  notes_.emplace_back(std::string(key), std::string(value));
}

std::vector<TraceRecorder::Event> RequestTrace::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::uint64_t RequestTrace::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<std::pair<std::string, std::string>> RequestTrace::notes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return notes_;
}

// ---------------------------------------------------------------------------
// FlightRecorder

FlightRecorder::FlightRecorder(Options options) : options_(options) {}

double FlightRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool FlightRecorder::would_sample(std::string_view trace_id) const {
  if (options_.sample_rate >= 1.0) return true;
  if (options_.sample_rate <= 0.0) return false;
  const std::uint64_t h = splitmix64(fnv1a(trace_id) ^ options_.sample_salt);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < options_.sample_rate;
}

std::shared_ptr<RequestTrace> FlightRecorder::begin(std::string trace_id,
                                                    std::string verb,
                                                    std::string parent_span) {
  const bool sampled = would_sample(trace_id);
  // Private constructor: make_shared cannot reach it, and the trace is
  // small, so plain new is fine here.
  return std::shared_ptr<RequestTrace>(
      new RequestTrace(std::move(trace_id), std::move(verb),
                       std::move(parent_span), sampled, now_us(), epoch_));
}

void FlightRecorder::finish(const std::shared_ptr<RequestTrace>& trace,
                            std::string_view error_code, double duration_ms) {
  if (trace == nullptr) return;
  // Outcome fields are written before the trace becomes visible in the
  // ring; the publishing mutex below orders them for readers.
  trace->duration_ms_ = duration_ms;
  trace->error_code_ = std::string(error_code);
  trace->pinned_ = !trace->error_code_.empty() ||
                   (options_.slow_ms >= 0.0 && duration_ms >= options_.slow_ms);

  std::lock_guard<std::mutex> lock(mutex_);
  ++finished_;
  recent_.push_back(trace);
  while (recent_.size() > options_.capacity) {
    recent_.pop_front();
    ++evicted_;
  }
  if (trace->pinned_) {
    pinned_.push_back(trace);
    while (pinned_.size() > options_.pinned_capacity) pinned_.pop_front();
  }
}

std::vector<std::shared_ptr<const RequestTrace>> FlightRecorder::select(
    const Filter& filter) const {
  std::vector<std::shared_ptr<const RequestTrace>> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Pinned traces are strictly older-or-equal members of the stream;
    // concatenating (pinned, recent) and deduplicating by pointer keeps
    // finish order.
    out.reserve(pinned_.size() + recent_.size());
    for (const auto& t : pinned_) out.push_back(t);
    for (const auto& t : recent_) out.push_back(t);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a->start_us() < b->start_us();
                   });
  out.erase(std::unique(out.begin(), out.end()), out.end());

  std::vector<std::shared_ptr<const RequestTrace>> matched;
  for (const auto& t : out) {
    if (!filter.trace_id.empty() && t->trace_id() != filter.trace_id) continue;
    if (!filter.verb.empty() && t->verb() != filter.verb) continue;
    if (filter.min_ms >= 0.0 && t->duration_ms() < filter.min_ms) continue;
    matched.push_back(t);
  }
  if (filter.limit > 0 && matched.size() > filter.limit) {
    matched.erase(matched.begin(),
                  matched.end() - static_cast<std::ptrdiff_t>(filter.limit));
  }
  return matched;
}

void FlightRecorder::write_chrome_trace(std::ostream& os,
                                        const Filter& filter) const {
  const auto traces = select(filter);
  std::string out;
  out.reserve(traces.size() * 1024 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](std::string_view fragment) {
    if (!first) out += ',';
    first = false;
    out += fragment;
  };
  int pid = 0;
  for (const auto& t : traces) {
    ++pid;
    const std::string pid_tid_prefix = ",\"pid\":" + std::to_string(pid);
    {
      // Process-name metadata: one Perfetto track group per request.
      std::string m = "{\"name\":\"process_name\",\"ph\":\"M\"";
      m += pid_tid_prefix;
      m += ",\"tid\":0,\"args\":{\"name\":\"";
      json_escape(m, t->verb());
      m += ' ';
      json_escape(m, t->trace_id());
      m += "\"}}";
      emit(m);
    }
    {
      // request_info instant: identity, outcome, notes.
      std::string m = "{\"name\":\"request_info\",\"cat\":\"request\","
                      "\"ph\":\"i\",\"s\":\"p\",\"ts\":";
      m += fmt_us(t->start_us());
      m += pid_tid_prefix;
      m += ",\"tid\":0,\"args\":{\"trace_id\":\"";
      json_escape(m, t->trace_id());
      m += "\",\"verb\":\"";
      json_escape(m, t->verb());
      if (!t->parent_span().empty()) {
        m += "\",\"parent_span\":\"";
        json_escape(m, t->parent_span());
      }
      m += "\",\"status\":\"";
      json_escape(m, t->error_code().empty() ? "ok" : t->error_code());
      m += "\",\"duration_ms\":";
      m += fmt_us(t->duration_ms());
      m += ",\"sampled\":";
      m += t->sampled() ? "true" : "false";
      m += ",\"pinned\":";
      m += t->pinned() ? "true" : "false";
      if (const std::uint64_t dropped = t->dropped_events(); dropped > 0) {
        m += ",\"dropped_events\":" + std::to_string(dropped);
      }
      for (const auto& [key, value] : t->notes()) {
        m += ",\"";
        json_escape(m, key);
        m += "\":\"";
        json_escape(m, value);
        m += '"';
      }
      m += "}}";
      emit(m);
    }
    // Per-thread stacks of open span names so "E" events repeat the
    // name (Perfetto matches on it when present) — same convention as
    // TraceRecorder::write_chrome_trace.
    std::map<std::uint32_t, std::vector<std::string>> open;
    for (const TraceRecorder::Event& e : t->events()) {
      std::string m;
      const auto common = [&](const char* ph, std::string_view name) {
        m += "{\"name\":\"";
        json_escape(m, name);
        m += "\",\"cat\":\"";
        m += to_string(e.kind);
        m += "\",\"ph\":\"";
        m += ph;
        m += "\",\"ts\":";
        m += fmt_us(e.micros);
        m += pid_tid_prefix;
        m += ",\"tid\":" + std::to_string(e.tid);
      };
      switch (e.phase) {
        case TraceRecorder::Phase::kBegin:
          common("B", e.name);
          m += '}';
          open[e.tid].push_back(e.name);
          break;
        case TraceRecorder::Phase::kEnd: {
          auto& stack = open[e.tid];
          const std::string name =
              stack.empty() ? std::string(to_string(e.kind)) : stack.back();
          if (!stack.empty()) stack.pop_back();
          common("E", name);
          m += '}';
          break;
        }
        case TraceRecorder::Phase::kInstant:
          common("i", e.name);
          m += ",\"s\":\"t\",\"args\":{\"value\":";
          m += std::to_string(e.value);
          m += "}}";
          break;
      }
      emit(m);
    }
  }
  out += "]}";
  os << out;
}

std::string FlightRecorder::chrome_trace_json(const Filter& filter) const {
  std::ostringstream os;
  write_chrome_trace(os, filter);
  return os.str();
}

std::string FlightRecorder::dump_json() const {
  Filter everything;
  everything.limit = 0;
  everything.min_ms = -1.0;
  return chrome_trace_json(everything);
}

std::size_t FlightRecorder::ring_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recent_.size();
}

std::size_t FlightRecorder::pinned_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pinned_.size();
}

std::uint64_t FlightRecorder::finished_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finished_;
}

std::uint64_t FlightRecorder::evicted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

// ---------------------------------------------------------------------------
// Fatal-signal post-mortem dump

namespace {

std::atomic<FlightRecorder*> g_dump_recorder{nullptr};
// Fixed-size path buffer: the handler must not touch std::string.
char g_dump_path[512] = {0};
constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

void fatal_dump_handler(int signo) {
  FlightRecorder* recorder = g_dump_recorder.exchange(nullptr);
  if (recorder != nullptr && g_dump_path[0] != '\0') {
    // Best effort while dying: dump_json allocates, which is not
    // async-signal-safe; a second fault here just skips the artifact
    // (the default disposition below still runs).
    const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      const std::string payload = recorder->dump_json();
      std::size_t off = 0;
      while (off < payload.size()) {
        const ::ssize_t n =
            ::write(fd, payload.data() + off, payload.size() - off);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
      }
      ::close(fd);
    }
  }
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

void install_fatal_dump(FlightRecorder* recorder, const std::string& path) {
  if (recorder == nullptr || path.empty()) {
    g_dump_recorder.store(nullptr);
    g_dump_path[0] = '\0';
    for (const int signo : kFatalSignals) ::signal(signo, SIG_DFL);
    return;
  }
  const std::size_t n = std::min(path.size(), sizeof g_dump_path - 1);
  path.copy(g_dump_path, n);
  g_dump_path[n] = '\0';
  g_dump_recorder.store(recorder);
  for (const int signo : kFatalSignals) ::signal(signo, fatal_dump_handler);
}

}  // namespace mcr::obs
