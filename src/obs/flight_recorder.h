// FlightRecorder — an always-on, bounded, per-request trace retainer.
//
// Where TraceRecorder keeps one process-wide, grow-forever event log
// (fine for a single traced solve, wrong for a daemon), the flight
// recorder keeps one small trace *per request*, retains the N most
// recent of them in a ring, and additionally *pins* traces for slow and
// errored requests so the interesting ones survive a flood of fast
// successes. Memory is bounded three ways: the recent ring and the
// pinned set have fixed capacities (oldest-first eviction), and each
// trace caps its own event count (overflow is counted, not stored).
//
// Request-level spans (request / queue / dispatch / solve) are recorded
// for every request; full solver detail (per-component spans, iteration
// instants) is gated by probabilistic head sampling — the sampling
// decision is a pure function of the trace id, so one request's fate is
// reproducible and joiners of the same flight agree.
//
// Retained traces export as Chrome trace_event JSON (one pid per
// request trace), loadable in Perfetto — served live by the TRACE verb
// and dumped post-mortem on a fatal signal (see install_fatal_dump).
#ifndef MCR_OBS_FLIGHT_RECORDER_H
#define MCR_OBS_FLIGHT_RECORDER_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "obs/trace_recorder.h"

namespace mcr::obs {

class FlightRecorder;

/// One request's trace: identity, outcome metadata, key/value notes,
/// and a bounded event log in TraceRecorder::Event form. Implements
/// TraceSink so it can be installed (SinkScope / SolveOptions::trace)
/// on any thread doing work for the request; pool workers get dense
/// per-trace thread ids exactly like TraceRecorder assigns them.
class RequestTrace final : public TraceSink {
 public:
  /// Hard cap on events retained per trace; emissions beyond it bump
  /// dropped_events() instead of allocating.
  static constexpr std::size_t kMaxEvents = 4096;

  void begin_span(EventKind kind, std::string_view name) override;
  void end_span(EventKind kind) override;
  void instant(EventKind kind, std::string_view name,
               std::int64_t value) override;

  /// Retro-dated span with explicit recorder-epoch timestamps (µs).
  /// Used for intervals whose start predates the recording thread
  /// reaching the emission site — e.g. the queue-wait span is recorded
  /// by the dispatcher when it picks the job up, dated back to
  /// admission time.
  void record_span(EventKind kind, std::string_view name, double begin_us,
                   double end_us);

  /// Attaches a key/value annotation (fingerprint, algo, cache status,
  /// ...); exported under the trace's request_info args.
  void note(std::string_view key, std::string_view value);

  [[nodiscard]] const std::string& trace_id() const { return trace_id_; }
  [[nodiscard]] const std::string& verb() const { return verb_; }
  [[nodiscard]] const std::string& parent_span() const { return parent_span_; }
  /// True when this request drew full-detail solver spans.
  [[nodiscard]] bool sampled() const { return sampled_; }
  /// Valid after finish(): wall duration, error code ("" = ok), pin.
  [[nodiscard]] double duration_ms() const { return duration_ms_; }
  [[nodiscard]] const std::string& error_code() const { return error_code_; }
  [[nodiscard]] bool pinned() const { return pinned_; }
  /// Start time in recorder-epoch microseconds.
  [[nodiscard]] double start_us() const { return start_us_; }

  [[nodiscard]] std::vector<TraceRecorder::Event> events() const;
  [[nodiscard]] std::uint64_t dropped_events() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> notes() const;

 private:
  friend class FlightRecorder;
  RequestTrace(std::string trace_id, std::string verb, std::string parent_span,
               bool sampled, double start_us,
               std::chrono::steady_clock::time_point epoch)
      : trace_id_(std::move(trace_id)),
        verb_(std::move(verb)),
        parent_span_(std::move(parent_span)),
        sampled_(sampled),
        start_us_(start_us),
        epoch_(epoch) {}

  void push(TraceRecorder::Event&& e);
  [[nodiscard]] double micros_now() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  std::uint32_t thread_index_locked();

  const std::string trace_id_;
  const std::string verb_;
  const std::string parent_span_;
  const bool sampled_;
  const double start_us_;
  const std::chrono::steady_clock::time_point epoch_;

  // Set once by FlightRecorder::finish (before publication to the ring).
  double duration_ms_ = 0.0;
  std::string error_code_;
  bool pinned_ = false;

  mutable std::mutex mutex_;
  std::vector<TraceRecorder::Event> events_;
  std::map<std::thread::id, std::uint32_t> thread_ids_;
  std::uint64_t dropped_ = 0;
  std::vector<std::pair<std::string, std::string>> notes_;
};

class FlightRecorder {
 public:
  struct Options {
    /// Recent ring: the N most recently finished request traces.
    std::size_t capacity = 256;
    /// Pinned set: slow / errored traces retained past ring eviction.
    std::size_t pinned_capacity = 64;
    /// Requests taking at least this long are pinned (0 pins every
    /// request; < 0 disables slow-pinning). Errors always pin.
    double slow_ms = 250.0;
    /// Head-sampling probability for full-detail solver spans, in
    /// [0, 1]. The decision is a pure function of (trace_id, salt).
    double sample_rate = 0.0;
    std::uint64_t sample_salt = 0x9e3779b97f4a7c15ULL;
  };

  explicit FlightRecorder(Options options);
  FlightRecorder() : FlightRecorder(Options()) {}

  /// Opens a trace for one request. The returned handle is live
  /// immediately (events may be emitted from any thread); it enters the
  /// ring only at finish(). `sampled()` on the handle tells the caller
  /// whether to wire full solver detail into it.
  [[nodiscard]] std::shared_ptr<RequestTrace> begin(std::string trace_id,
                                                    std::string verb,
                                                    std::string parent_span);

  /// Completes a trace: stamps outcome, decides pinning, inserts it
  /// into the recent ring (evicting the oldest beyond capacity) and —
  /// when pinned — into the pinned set (same policy). Call exactly once
  /// per begin().
  void finish(const std::shared_ptr<RequestTrace>& trace,
              std::string_view error_code, double duration_ms);

  /// Microseconds since recorder construction — the epoch every
  /// retained event timestamp shares.
  [[nodiscard]] double now_us() const;

  /// Pure head-sampling predicate (exposed for tests).
  [[nodiscard]] bool would_sample(std::string_view trace_id) const;

  struct Filter {
    std::string trace_id;  // exact match; empty = any
    std::string verb;      // exact match; empty = any
    double min_ms = -1.0;  // minimum duration; < 0 = any
    std::size_t limit = 32;  // newest-first cap; 0 = unlimited
  };

  /// Matching traces, deduplicated across ring and pinned set, oldest
  /// first (trimmed to the newest `limit` when set).
  [[nodiscard]] std::vector<std::shared_ptr<const RequestTrace>> select(
      const Filter& filter) const;

  /// Chrome trace_event JSON of the selected traces: one pid per trace
  /// with a process_name metadata record, plus a request_info instant
  /// carrying identity/outcome/notes. Loadable in Perfetto.
  void write_chrome_trace(std::ostream& os, const Filter& filter) const;
  [[nodiscard]] std::string chrome_trace_json(const Filter& filter) const;

  /// Everything currently retained (ring + pinned, no limit) as Chrome
  /// JSON — the post-mortem dump payload.
  [[nodiscard]] std::string dump_json() const;

  [[nodiscard]] std::size_t ring_size() const;
  [[nodiscard]] std::size_t pinned_size() const;
  /// Total traces finished / evicted from the recent ring since birth.
  [[nodiscard]] std::uint64_t finished_total() const;
  [[nodiscard]] std::uint64_t evicted_total() const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Options options_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  mutable std::mutex mutex_;
  std::deque<std::shared_ptr<const RequestTrace>> recent_;
  std::deque<std::shared_ptr<const RequestTrace>> pinned_;
  std::uint64_t finished_ = 0;
  std::uint64_t evicted_ = 0;
};

/// Installs a best-effort fatal-signal handler (SIGSEGV, SIGBUS,
/// SIGFPE, SIGILL, SIGABRT) that writes `recorder->dump_json()` to
/// `path` and re-raises with the default disposition, so the crash
/// still produces its normal exit status / core. One recorder per
/// process; passing nullptr uninstalls. The handler allocates while
/// dying (not strictly async-signal-safe) — acceptable for a crash
/// artifact, never used on healthy paths.
void install_fatal_dump(FlightRecorder* recorder, const std::string& path);

}  // namespace mcr::obs

#endif  // MCR_OBS_FLIGHT_RECORDER_H
