#include "obs/metrics.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/trace_recorder.h"  // json_escape

namespace mcr::obs {

namespace {

/// Base metric name for the # TYPE line: everything before the label set.
std::string_view base_name(std::string_view name) {
  const auto brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string labeled_name(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>> labels) {
  std::string out(base);
  if (labels.size() == 0) return out;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  out += '}';
  return out;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      exemplar_slots_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
}

std::size_t Histogram::bucket_index(double x) const noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void Histogram::observe(double x) noexcept {
  buckets_[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> via CAS: portable across libstdc++ versions.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
  }
}

void Histogram::observe(double x, std::string_view exemplar) {
  observe(x);
  if (exemplar.empty()) return;
  constexpr auto kStale = std::chrono::seconds(60);
  ExemplarSlot& slot = exemplar_slots_[bucket_index(x)];
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  const auto now =
      exemplar_clock_ ? exemplar_clock_() : std::chrono::steady_clock::now();
  if (slot.label.empty() || x >= slot.value || now - slot.when > kStale) {
    slot.value = x;
    slot.label.assign(exemplar);
    slot.when = now;
  }
}

void Histogram::set_exemplar_clock(ExemplarClock clock) {
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  exemplar_clock_ = std::move(clock);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    s.counts.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    s.exemplars.reserve(exemplar_slots_.size());
    for (const ExemplarSlot& slot : exemplar_slots_) {
      s.exemplars.push_back({slot.value, slot.label});
    }
  }
  return s;
}

std::vector<double> MetricsRegistry::default_bounds() {
  std::vector<double> b;
  for (double v = 1e-6; v < 100.0; v *= 4.0) b.push_back(v);  // 1us .. ~65s
  return b;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0 ||
      windowed_.count(name) != 0) {
    throw std::invalid_argument("metric '" + name + "' already registered with another type");
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0 ||
      windowed_.count(name) != 0) {
    throw std::invalid_argument("metric '" + name + "' already registered with another type");
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    throw std::invalid_argument("metric '" + name + "' already registered with another type");
  }
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

SlidingWindowHistogram& MetricsRegistry::windowed_histogram(
    const std::string& name, std::vector<double> bounds,
    SlidingWindowHistogram::Options options) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A windowed instrument may share its name with a cumulative
  // histogram (the windowed view of the same family) but not with a
  // scalar instrument.
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    throw std::invalid_argument("metric '" + name + "' already registered with another type");
  }
  auto& slot = windowed_[name];
  if (!slot) {
    slot = std::make_unique<SlidingWindowHistogram>(std::move(bounds),
                                                    std::move(options));
  }
  return *slot;
}

std::map<std::string, SlidingWindowHistogram::Snapshot>
MetricsRegistry::windowed_snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, SlidingWindowHistogram::Snapshot> out;
  for (const auto& [name, h] : windowed_) out.emplace(name, h->snapshot());
  return out;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, std::int64_t> MetricsRegistry::gauge_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
  return out;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string_view last_typed;
  const auto type_line = [&](std::string_view name, const char* type) {
    const std::string_view base = base_name(name);
    if (base == last_typed) return;  // label variants share one TYPE line
    last_typed = base;
    os << "# TYPE " << base << ' ' << type << '\n';
  };
  for (const auto& [name, c] : counters_) {
    type_line(name, "counter");
    os << name << ' ' << c->value() << '\n';
  }
  last_typed = {};
  for (const auto& [name, g] : gauges_) {
    type_line(name, "gauge");
    os << name << ' ' << g->value() << '\n';
  }
  last_typed = {};
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    const std::string_view base = base_name(name);
    type_line(name, "histogram");
    // Instrument labels ("verb=\"SOLVE\"" for a name registered via
    // labeled_name) are merged before `le` on every _bucket series and
    // appended to _sum/_count; a label-free name emits the exact series
    // it always has.
    const std::string_view labels =
        base.size() == name.size()
            ? std::string_view{}
            : std::string_view(name).substr(base.size() + 1,
                                            name.size() - base.size() - 2);
    const auto bucket_line = [&](std::string_view le, std::uint64_t count) {
      os << base << "_bucket{";
      if (!labels.empty()) os << labels << ',';
      os << "le=\"" << le << "\"} " << count << '\n';
    };
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      cumulative += s.counts[i];
      bucket_line(fmt_double(s.bounds[i]), cumulative);
    }
    bucket_line("+Inf", s.count);
    const std::string label_suffix =
        labels.empty() ? std::string() : '{' + std::string(labels) + '}';
    os << base << "_sum" << label_suffix << ' ' << fmt_double(s.sum) << '\n';
    os << base << "_count" << label_suffix << ' ' << s.count << '\n';
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  const auto key = [&](const std::string& name) {
    out += '"';
    json_escape(out, name);
    out += "\":";
  };
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    key(name);
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    key(name);
    out += std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    const Histogram::Snapshot s = h->snapshot();
    key(name);
    out += "{\"count\":" + std::to_string(s.count);
    out += ",\"sum\":" + fmt_double(s.sum);
    out += ",\"buckets\":[";
    const auto exemplar = [&](std::size_t i) {
      if (i >= s.exemplars.size() || s.exemplars[i].label.empty()) return;
      out += ",\"exemplar\":{\"value\":" + fmt_double(s.exemplars[i].value) +
             ",\"label\":\"";
      json_escape(out, s.exemplars[i].label);
      out += "\"}";
    };
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      cumulative += s.counts[i];
      if (i != 0) out += ',';
      out += "{\"le\":" + fmt_double(s.bounds[i]) +
             ",\"count\":" + std::to_string(cumulative);
      exemplar(i);
      out += '}';
    }
    if (!s.bounds.empty()) out += ',';
    out += "{\"le\":\"+Inf\",\"count\":" + std::to_string(s.count);
    exemplar(s.bounds.size());
    out += "}]}";
  }
  out += "},\"windowed\":{";
  first = true;
  for (const auto& [name, h] : windowed_) {
    if (!first) out += ',';
    first = false;
    const SlidingWindowHistogram::Snapshot s = h->snapshot();
    key(name);
    out += "{\"count\":" + std::to_string(s.count);
    out += ",\"sum\":" + fmt_double(s.sum);
    out += ",\"window_seconds\":" + fmt_double(s.window_seconds);
    out += ",\"covered_seconds\":" + fmt_double(s.covered_seconds);
    out += ",\"buckets\":[";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.bounds.size(); ++i) {
      cumulative += s.counts[i];
      if (i != 0) out += ',';
      out += "{\"le\":" + fmt_double(s.bounds[i]) +
             ",\"count\":" + std::to_string(cumulative);
      out += '}';
    }
    if (!s.bounds.empty()) out += ',';
    out += "{\"le\":\"+Inf\",\"count\":" + std::to_string(s.count) + "}]}";
  }
  out += "}}";
  os << out;
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace mcr::obs
