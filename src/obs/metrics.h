// MetricsRegistry — named counters, gauges, and histograms for the
// solver stack, with Prometheus-style text and JSON exporters.
//
// Counters and gauges are single atomics; histograms use atomic bucket
// counts — all instruments are safe to update from any number of pool
// workers concurrently, and additive instruments (counters, histogram
// counts/sums over integer observations) end up with thread-count
// independent totals, mirroring the parallel driver's deterministic
// merge contract.
//
// Naming follows Prometheus conventions: snake_case, `_total` suffix
// for counters, optional labels inline in the name
// (`mcr_pool_tasks_total{worker="0"}`). The text exporter groups label
// variants under one `# TYPE` line; for labeled histograms
// (`mcr_request_seconds{verb="SOLVE"}`) the instrument labels are
// merged before `le` in every `_bucket` series and appended to the
// `_sum`/`_count` series, so each variant stays one valid Prometheus
// histogram.
//
// Histogram buckets optionally carry an *exemplar* — the label (in
// practice: a trace_id) of the worst recent observation that landed in
// the bucket, so a tail-latency bucket links straight to a fetchable
// trace. Exemplars are exported in the JSON view only; the classic text
// exposition format has no exemplar syntax.
#ifndef MCR_OBS_METRICS_H
#define MCR_OBS_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/windowed.h"

namespace mcr::obs {

/// Escapes a raw Prometheus label value per the text exposition format:
/// backslash, double quote, and newline become \\, \", and \n.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Builds `base{k="v",...}` with every value escaped. This is the one
/// supported way to register labeled instruments — callers pass raw
/// values and the exposition stays parseable whatever they contain.
[[nodiscard]] std::string labeled_name(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>> labels);

/// Monotonically increasing count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (set wins; no merge semantics).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram (Prometheus semantics: `bounds` are inclusive
/// upper bounds; an implicit +Inf bucket catches the rest).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;

  /// Observation carrying an exemplar label (a trace_id). The label is
  /// retained for the bucket `x` lands in when the slot is empty, the
  /// observation is at least as bad as the current holder, or the
  /// holder is stale (older than ~60s) — "worst recent" semantics. The
  /// exemplar path takes a mutex; plain observe() stays lock-free.
  void observe(double x, std::string_view exemplar);

  struct Exemplar {
    double value = 0.0;
    std::string label;  // empty = no exemplar recorded for this bucket
  };

  struct Snapshot {
    std::vector<double> bounds;          // upper bounds, ascending
    std::vector<std::uint64_t> counts;   // per-bucket (bounds.size() + 1)
    std::vector<Exemplar> exemplars;     // per-bucket (bounds.size() + 1)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Time source for the exemplar staleness takeover, injectable so the
  /// 60s policy is testable without sleeping. Empty restores the
  /// default (std::chrono::steady_clock::now).
  using ExemplarClock = std::function<std::chrono::steady_clock::time_point()>;
  void set_exemplar_clock(ExemplarClock clock);

 private:
  struct ExemplarSlot {
    double value = 0.0;
    std::string label;
    std::chrono::steady_clock::time_point when;
  };

  [[nodiscard]] std::size_t bucket_index(double x) const noexcept;

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};

  mutable std::mutex exemplar_mutex_;
  std::vector<ExemplarSlot> exemplar_slots_;
  ExemplarClock exemplar_clock_;  // empty = steady_clock
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. References stay valid for
  /// the registry's lifetime, so hot paths should look up once and
  /// update through the reference. A name registered as one instrument
  /// type must not be reused as another (throws std::invalid_argument).
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> bounds = default_bounds());

  /// Time-windowed companion to histogram(): a SlidingWindowHistogram
  /// registered under `name`. Windowed instruments live in their own
  /// namespace and may deliberately share a name with a cumulative
  /// histogram — the windowed view of the same family (exported under
  /// the JSON "windowed" key; absent from the Prometheus text, which
  /// has no windowed semantics). Sharing a name with a counter or gauge
  /// still throws.
  [[nodiscard]] SlidingWindowHistogram& windowed_histogram(
      const std::string& name, std::vector<double> bounds = default_bounds(),
      SlidingWindowHistogram::Options options = {});

  /// Merged snapshots of every windowed instrument, keyed by name.
  [[nodiscard]] std::map<std::string, SlidingWindowHistogram::Snapshot>
  windowed_snapshots() const;

  /// Every counter's current value, keyed by name — the input for
  /// delta-based snapshot telemetry (the stats pump diffs two of these).
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_values() const;

  /// Every gauge's current value, keyed by name (the pump reports these
  /// as point-in-time readings, no delta).
  [[nodiscard]] std::map<std::string, std::int64_t> gauge_values() const;

  /// Exponential seconds buckets, 1us .. ~65s.
  [[nodiscard]] static std::vector<double> default_bounds();

  /// Prometheus text exposition format.
  void write_prometheus(std::ostream& os) const;
  [[nodiscard]] std::string prometheus_text() const;

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<SlidingWindowHistogram>> windowed_;
};

}  // namespace mcr::obs

#endif  // MCR_OBS_METRICS_H
