#include "obs/obs.h"

namespace mcr::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kSolve:
      return "solve";
    case EventKind::kSccDecompose:
      return "scc_decompose";
    case EventKind::kComponent:
      return "component";
    case EventKind::kMerge:
      return "merge";
    case EventKind::kWitnessExtract:
      return "witness_extract";
    case EventKind::kBatch:
      return "batch";
    case EventKind::kRequest:
      return "request";
    case EventKind::kQueue:
      return "queue";
    case EventKind::kDispatch:
      return "dispatch";
    case EventKind::kIteration:
      return "iteration";
    case EventKind::kPolicyImprove:
      return "policy_improve";
    case EventKind::kFeasibilityProbe:
      return "feasibility_probe";
    case EventKind::kSafetyValve:
      return "safety_valve";
    case EventKind::kPerfCounter:
      return "perf_counter";
  }
  return "unknown";
}

}  // namespace mcr::obs
