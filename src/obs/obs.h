// mcr::obs — structured tracing hooks for the solver stack.
//
// The paper's methodology is measurement (§3 compares solvers by
// representative operation counts and wall-clock time); OpCounters
// answers "how many operations", this layer answers "where did the time
// go": SCC decomposition vs. per-component solves vs. witness
// extraction, and what each solver's main loop did along the way.
//
// Design: a TraceSink is installed per *thread* (SinkScope). Solver and
// driver code emits through free helpers that reduce to a thread-local
// pointer load plus a branch when no sink is installed — production
// solves with tracing disabled pay nothing measurable (< 2% on
// bench_micro; see docs/OBSERVABILITY.md for numbers). The driver
// installs the sink from SolveOptions on every worker thread it uses,
// so spans emitted inside a pool task carry that worker's thread id.
//
// Event taxonomy (see docs/OBSERVABILITY.md):
//   spans    — solve, scc_decompose, component, merge, witness_extract,
//              batch; bracketed via RAII Span.
//   instants — iteration, policy_improve, feasibility_probe,
//              safety_valve, perf_counter; point events with an
//              integer payload.
#ifndef MCR_OBS_OBS_H
#define MCR_OBS_OBS_H

#include <cstdint>
#include <string_view>

namespace mcr::obs {

enum class EventKind : std::uint8_t {
  // Span kinds (begin/end pairs).
  kSolve,           // one driver entry (solve_decomposed)
  kSccDecompose,    // SCC decomposition + component partitioning
  kComponent,       // one cyclic component's solve_scc call
  kMerge,           // deterministic merge over component results
  kWitnessExtract,  // witness recovery for value-only solvers
  kBatch,           // one solve_many batch
  kRequest,         // one service request (mcr::svc), verb as the name
  kQueue,           // time a service request spent in the admission queue
  kDispatch,        // dispatcher ownership of a request (pickup..complete)
  // Instant kinds (point events with an integer payload).
  kIteration,         // one outer iteration of a solver's main loop
  kPolicyImprove,     // policy arcs adopted this round (Howard)
  kFeasibilityProbe,  // negative-cycle / feasibility oracle call
  kSafetyValve,       // pseudo-polynomial safety valve engaged
  kPerfCounter,       // hardware counter reading for a measured phase
};

/// Stable lowercase identifier ("component", "iteration", ...); used as
/// the Chrome trace category and as the per-phase aggregation key.
[[nodiscard]] const char* to_string(EventKind kind);

/// Receiver for trace events. Implementations must be safe to call from
/// multiple threads concurrently (the driver installs one sink on every
/// worker). begin/end pairs are always properly nested per thread —
/// emission sites use the RAII Span below.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void begin_span(EventKind kind, std::string_view name) = 0;
  virtual void end_span(EventKind kind) = 0;
  virtual void instant(EventKind kind, std::string_view name,
                       std::int64_t value) = 0;
};

namespace internal {
inline thread_local TraceSink* tls_sink = nullptr;
}  // namespace internal

/// The calling thread's installed sink; nullptr when tracing is off.
[[nodiscard]] inline TraceSink* current_sink() noexcept {
  return internal::tls_sink;
}

/// RAII installer: sets the calling thread's sink for the enclosing
/// scope and restores the previous one on exit. Installing nullptr (the
/// common disabled path) is valid and free.
class SinkScope {
 public:
  explicit SinkScope(TraceSink* sink) noexcept : prev_(internal::tls_sink) {
    internal::tls_sink = sink;
  }
  ~SinkScope() { internal::tls_sink = prev_; }

  SinkScope(const SinkScope&) = delete;
  SinkScope& operator=(const SinkScope&) = delete;

 private:
  TraceSink* prev_;
};

/// RAII phase span against the calling thread's current sink. The sink
/// is captured at construction, so the span closes correctly even if
/// the thread-local changes in between (it does not in practice).
class Span {
 public:
  Span(EventKind kind, std::string_view name) noexcept
      : sink_(current_sink()), kind_(kind) {
    if (sink_ != nullptr) sink_->begin_span(kind_, name);
  }
  ~Span() {
    if (sink_ != nullptr) sink_->end_span(kind_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSink* sink_;
  EventKind kind_;
};

/// Fan-out sink: forwards every event to up to two downstream sinks,
/// skipping null ones. The service uses this to feed both its legacy
/// process-wide TraceRecorder (--trace FILE) and the per-request flight
/// recorder from one emission site. Thread safety is inherited from the
/// downstream sinks; the tee itself holds no state.
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink* a, TraceSink* b) noexcept : a_(a), b_(b) {}

  void begin_span(EventKind kind, std::string_view name) override {
    if (a_ != nullptr) a_->begin_span(kind, name);
    if (b_ != nullptr) b_->begin_span(kind, name);
  }
  void end_span(EventKind kind) override {
    if (a_ != nullptr) a_->end_span(kind);
    if (b_ != nullptr) b_->end_span(kind);
  }
  void instant(EventKind kind, std::string_view name,
               std::int64_t value) override {
    if (a_ != nullptr) a_->instant(kind, name, value);
    if (b_ != nullptr) b_->instant(kind, name, value);
  }

  /// The cheapest equivalent sink: nullptr when both branches are null,
  /// the single non-null branch when only one is set, else the tee
  /// itself. Installing the result avoids virtual fan-out dispatch on
  /// every event when one branch would do.
  [[nodiscard]] TraceSink* effective() noexcept {
    if (a_ == nullptr) return b_;
    if (b_ == nullptr) return a_;
    return this;
  }

 private:
  TraceSink* a_;
  TraceSink* b_;
};

/// Emits an instant event if (and only if) a sink is installed. The
/// disabled path is one thread-local load and a predictable branch —
/// cheap enough to sit next to OpCounters increments in solver loops.
inline void emit(EventKind kind, std::string_view name,
                 std::int64_t value = 0) noexcept {
  if (TraceSink* sink = current_sink(); sink != nullptr) {
    sink->instant(kind, name, value);
  }
}

}  // namespace mcr::obs

#endif  // MCR_OBS_OBS_H
