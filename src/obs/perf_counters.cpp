#include "obs/perf_counters.h"

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/obs.h"

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace mcr::obs {

namespace {

/// type/config pair for each PerfCounter, index order of the enum.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

#ifdef __linux__

constexpr std::array<EventSpec, kNumPerfCounters> kEvents{{
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
}};

int default_open(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  // Children (pool workers spawned inside the measured region) count
  // too, and excluding the kernel keeps the open legal at
  // perf_event_paranoid <= 2 — the common container setting.
  attr.inherit = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // Enabled/running times let us scale counts when the kernel
  // multiplexed the PMU across more events than it has slots.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0UL);
  if (fd < 0) return -errno;
  return static_cast<int>(fd);
}

#else  // !__linux__

constexpr std::array<EventSpec, kNumPerfCounters> kEvents{{
    {0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 5},
}};

int default_open(std::uint32_t, std::uint64_t) { return -ENOSYS; }

#endif

std::string errno_name(int err) {
  switch (err) {
    case EACCES: return "EACCES";
    case EPERM: return "EPERM";
    case ENOSYS: return "ENOSYS";
    case ENOENT: return "ENOENT";
    case ENODEV: return "ENODEV";
    case EINVAL: return "EINVAL";
    default: return "errno " + std::to_string(err);
  }
}

}  // namespace

const char* to_string(PerfCounter counter) {
  switch (counter) {
    case PerfCounter::kCycles: return "cycles";
    case PerfCounter::kInstructions: return "instructions";
    case PerfCounter::kBranchMisses: return "branch_misses";
    case PerfCounter::kCacheReferences: return "cache_references";
    case PerfCounter::kCacheMisses: return "cache_misses";
    case PerfCounter::kTaskClock: return "task_clock_ns";
  }
  return "unknown";
}

bool PerfSample::any_available() const {
  for (const bool a : available) {
    if (a) return true;
  }
  return false;
}

PerfCounterGroup::PerfCounterGroup() : PerfCounterGroup(&default_open) {}

PerfCounterGroup::PerfCounterGroup(OpenFn opener) {
  int first_error = 0;
  for (std::size_t i = 0; i < kNumPerfCounters; ++i) {
    const int fd = opener(kEvents[i].type, kEvents[i].config);
    if (fd >= 0) {
      fds_[i] = Fd{fd, true};
      ++num_open_;
    } else if (first_error == 0) {
      first_error = -fd;
    }
  }
  if (num_open_ == 0) {
    fallback_reason_ =
        first_error != 0 ? errno_name(first_error) : "no counters";
  }
}

PerfCounterGroup::~PerfCounterGroup() {
#ifdef __linux__
  for (Fd& f : fds_) {
    if (f.open) ::close(f.fd);
  }
#endif
}

void PerfCounterGroup::start() {
#ifdef __linux__
  for (const Fd& f : fds_) {
    if (!f.open) continue;
    ::ioctl(f.fd, PERF_EVENT_IOC_RESET, 0);
    ::ioctl(f.fd, PERF_EVENT_IOC_ENABLE, 0);
  }
#endif
  timer_.reset();
}

PerfSample PerfCounterGroup::stop() {
  PerfSample sample;
  sample.wall_seconds = timer_.seconds();
#ifdef __linux__
  for (std::size_t i = 0; i < kNumPerfCounters; ++i) {
    const Fd& f = fds_[i];
    if (!f.open) continue;
    ::ioctl(f.fd, PERF_EVENT_IOC_DISABLE, 0);
    // value, time_enabled, time_running (PERF_FORMAT_TOTAL_TIME_*).
    std::uint64_t buf[3] = {0, 0, 0};
    if (::read(f.fd, buf, sizeof(buf)) != static_cast<ssize_t>(sizeof(buf))) {
      continue;  // e.g. a stubbed fd in tests: counter stays unavailable
    }
    std::uint64_t value = buf[0];
    if (buf[2] != 0 && buf[2] < buf[1]) {
      // Multiplexed: scale by enabled/running like perf(1) does.
      value = static_cast<std::uint64_t>(
          static_cast<double>(value) *
          (static_cast<double>(buf[1]) / static_cast<double>(buf[2])));
    }
    sample.value[i] = value;
    sample.available[i] = true;
  }
#endif
  return sample;
}

PerfScope::PerfScope(PerfCounterGroup& group, std::string phase,
                     MetricsRegistry* metrics)
    : group_(group), phase_(std::move(phase)), metrics_(metrics) {
  group_.start();
}

PerfScope::~PerfScope() {
  const PerfSample sample = group_.stop();
  if (out_ != nullptr) *out_ = sample;
  for (std::size_t i = 0; i < kNumPerfCounters; ++i) {
    if (!sample.available[i]) continue;
    const char* counter = to_string(static_cast<PerfCounter>(i));
    if (metrics_ != nullptr) {
      metrics_
          ->counter(labeled_name(std::string("mcr_perf_") + counter + "_total",
                                 {{"phase", phase_}}))
          .add(sample.value[i]);
    }
    emit(EventKind::kPerfCounter, phase_ + "." + counter,
         static_cast<std::int64_t>(sample.value[i]));
  }
}

}  // namespace mcr::obs
