// mcr::obs — hardware performance counters via perf_event_open.
//
// The paper ranks algorithms by wall clock and representative operation
// counts; both are blind to *why* a hot path is fast on one machine and
// slow on another (Karp's contiguous scans vs DG's stamp bookkeeping,
// EXPERIMENTS.md T2). PerfCounterGroup measures cycles, instructions,
// branch misses, cache references/misses, and task-clock around a
// region of code, so BENCH artifacts can record cycle- and cache-level
// behaviour next to the timings.
//
// Availability is never assumed: perf_event_open is commonly denied in
// containers (EACCES/EPERM under seccomp or perf_event_paranoid, ENOSYS
// on stripped kernels). Every failure degrades gracefully to a
// timer-only backend — wall time keeps flowing, counters report
// unavailable, and nothing in the solve path changes. Counters are
// opened with inherit=1 and exclude_kernel, so pool workers spawned
// *after* the group is constructed are included and the group works at
// perf_event_paranoid <= 2 (see docs/BENCHMARKING.md).
#ifndef MCR_OBS_PERF_COUNTERS_H
#define MCR_OBS_PERF_COUNTERS_H

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/stats.h"

namespace mcr::obs {

class MetricsRegistry;

/// The fixed counter set, index order matching PerfSample::value.
enum class PerfCounter : std::uint8_t {
  kCycles = 0,
  kInstructions,
  kBranchMisses,
  kCacheReferences,
  kCacheMisses,
  kTaskClock,  // software event, nanoseconds
};
inline constexpr std::size_t kNumPerfCounters = 6;

/// Stable snake_case identifier ("cycles", "cache_misses", ...); used
/// as the metrics suffix and the BENCH artifact key.
[[nodiscard]] const char* to_string(PerfCounter counter);

/// One measured region: per-counter values (multiplex-scaled when the
/// kernel time-shared the PMU) plus wall time from the steady clock.
struct PerfSample {
  std::array<std::uint64_t, kNumPerfCounters> value{};
  std::array<bool, kNumPerfCounters> available{};
  double wall_seconds = 0.0;

  /// True when at least one perf-backed counter was measured.
  [[nodiscard]] bool any_available() const;
};

/// A group of perf_event fds measuring the calling process (children
/// inherited). Construction probes the syscall; on any denial the group
/// silently becomes a timer-only backend. Not thread-safe: one group
/// per measuring thread (the bench runner owns one).
class PerfCounterGroup {
 public:
  /// Opener hook for tests: receives the perf_event type/config pair,
  /// returns an fd or -errno. The default opener performs the real
  /// syscall (and always fails off Linux).
  using OpenFn = int (*)(std::uint32_t type, std::uint64_t config);

  PerfCounterGroup();
  explicit PerfCounterGroup(OpenFn opener);
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when at least one counter fd is open ("perf_event" backend).
  [[nodiscard]] bool hardware() const { return num_open_ > 0; }
  /// "perf_event" or "timer" — the BENCH artifact's counters backend.
  [[nodiscard]] const char* backend() const {
    return hardware() ? "perf_event" : "timer";
  }
  /// Why the group fell back ("EACCES", "ENOSYS", ...); empty when
  /// hardware() is true.
  [[nodiscard]] const std::string& fallback_reason() const {
    return fallback_reason_;
  }

  /// Resets and enables every open counter and the wall timer.
  void start();
  /// Disables the counters and returns the deltas since start().
  PerfSample stop();

 private:
  struct Fd {
    int fd = -1;
    bool open = false;
  };
  std::array<Fd, kNumPerfCounters> fds_{};
  std::size_t num_open_ = 0;
  std::string fallback_reason_;
  Timer timer_;
};

/// RAII measurement around one named phase: starts the group on entry;
/// on exit reads it, feeds per-phase counter totals into `metrics`
/// (mcr_perf_<counter>_total{phase="<phase>"}) and emits one
/// perf_counter trace instant per available counter ("<phase>.cycles",
/// payload = the value) into the calling thread's TraceSink. With a
/// timer-only group the scope is a no-op apart from the wall clock.
class PerfScope {
 public:
  PerfScope(PerfCounterGroup& group, std::string phase,
            MetricsRegistry* metrics = nullptr);
  ~PerfScope();

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  /// When set before destruction, receives the sample read at exit.
  void capture_into(PerfSample* out) { out_ = out; }

 private:
  PerfCounterGroup& group_;
  std::string phase_;
  MetricsRegistry* metrics_;
  PerfSample* out_ = nullptr;
};

}  // namespace mcr::obs

#endif  // MCR_OBS_PERF_COUNTERS_H
