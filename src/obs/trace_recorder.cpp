#include "obs/trace_recorder.h"

#include <ostream>
#include <sstream>
#include <utility>

namespace mcr::obs {

void json_escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

std::uint32_t TraceRecorder::thread_index_locked() {
  const auto id = std::this_thread::get_id();
  const auto it = thread_ids_.find(id);
  if (it != thread_ids_.end()) return it->second;
  const auto tid = static_cast<std::uint32_t>(thread_ids_.size());
  thread_ids_.emplace(id, tid);
  return tid;
}

void TraceRecorder::begin_span(EventKind kind, std::string_view name) {
  const double us = micros_now();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(
      {kind, Phase::kBegin, std::string(name), 0, thread_index_locked(), us});
}

void TraceRecorder::end_span(EventKind kind) {
  const double us = micros_now();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back({kind, Phase::kEnd, std::string(), 0, thread_index_locked(), us});
}

void TraceRecorder::instant(EventKind kind, std::string_view name,
                            std::int64_t value) {
  const double us = micros_now();
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(
      {kind, Phase::kInstant, std::string(name), value, thread_index_locked(), us});
}

std::vector<TraceRecorder::Event> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceRecorder::num_threads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return thread_ids_.size();
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  const std::vector<Event> log = events();
  std::string out;
  out.reserve(log.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Per-thread stacks of open span names so "E" events can repeat the
  // name (Perfetto matches on it when present).
  std::map<std::uint32_t, std::vector<std::string>> open;
  std::ostringstream num;
  const auto common = [&](const Event& e, const char* ph,
                          std::string_view name) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    json_escape(out, name);
    out += "\",\"cat\":\"";
    out += to_string(e.kind);
    out += "\",\"ph\":\"";
    out += ph;
    out += "\",\"ts\":";
    num.str(std::string());
    num << e.micros;
    out += num.str();
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
  };
  for (const Event& e : log) {
    switch (e.phase) {
      case Phase::kBegin:
        common(e, "B", e.name);
        out += '}';
        open[e.tid].push_back(e.name);
        break;
      case Phase::kEnd: {
        auto& stack = open[e.tid];
        const std::string name =
            stack.empty() ? std::string(to_string(e.kind)) : stack.back();
        if (!stack.empty()) stack.pop_back();
        common(e, "E", name);
        out += '}';
        break;
      }
      case Phase::kInstant:
        common(e, "i", e.name);
        out += ",\"s\":\"t\",\"args\":{\"value\":";
        out += std::to_string(e.value);
        out += "}}";
        break;
    }
  }
  out += "]}";
  os << out;
}

std::string TraceRecorder::chrome_trace_json() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

std::map<std::string, double> TraceRecorder::span_totals() const {
  const std::vector<Event> log = events();
  // Per-thread stack of begin timestamps; durations accumulate under
  // the span *kind* name, so the hundreds of per-component spans fold
  // into one "component" total.
  std::map<std::uint32_t, std::vector<double>> open;
  std::map<std::string, double> totals;
  for (const Event& e : log) {
    if (e.phase == Phase::kBegin) {
      open[e.tid].push_back(e.micros);
    } else if (e.phase == Phase::kEnd) {
      auto& stack = open[e.tid];
      if (stack.empty()) continue;  // unmatched end: ignore
      totals[to_string(e.kind)] += (e.micros - stack.back()) * 1e-6;
      stack.pop_back();
    }
  }
  return totals;
}

}  // namespace mcr::obs
