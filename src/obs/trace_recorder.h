// TraceRecorder — the standard in-memory TraceSink, plus the Chrome /
// Perfetto `trace_event` JSON exporter.
//
// Events are appended to one timestamped log under a mutex; tracing is
// opt-in and events are emitted at phase / outer-iteration granularity,
// so lock traffic is negligible against the work being traced. Each
// emitting thread is assigned a small dense id (0, 1, ...) in order of
// first emission — that id becomes the `tid` of the exported trace, so
// per-component spans from different pool workers land on different
// tracks in the Perfetto UI.
#ifndef MCR_OBS_TRACE_RECORDER_H
#define MCR_OBS_TRACE_RECORDER_H

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace mcr::obs {

class TraceRecorder final : public TraceSink {
 public:
  enum class Phase : std::uint8_t { kBegin, kEnd, kInstant };

  struct Event {
    EventKind kind;
    Phase phase;
    std::string name;     // empty for kEnd (the matching kBegin names it)
    std::int64_t value;   // instants only
    std::uint32_t tid;    // dense per-recorder thread index
    double micros;        // since recorder construction (steady clock)
  };

  void begin_span(EventKind kind, std::string_view name) override;
  void end_span(EventKind kind) override;
  void instant(EventKind kind, std::string_view name,
               std::int64_t value) override;

  /// Snapshot of the event log, in emission order.
  [[nodiscard]] std::vector<Event> events() const;

  /// Number of distinct threads that have emitted so far.
  [[nodiscard]] std::size_t num_threads() const;

  /// Writes the log as Chrome trace_event JSON ({"traceEvents": [...]})
  /// — loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
  /// Spans become "B"/"E" pairs, instants become "i" events with the
  /// payload under args.value.
  void write_chrome_trace(std::ostream& os) const;
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Total seconds spent inside spans, keyed by span kind name
  /// ("component", "merge", ...), summed over all threads (concurrent
  /// component spans add up, like CPU time). Unclosed spans are ignored.
  [[nodiscard]] std::map<std::string, double> span_totals() const;

 private:
  std::uint32_t thread_index_locked();
  [[nodiscard]] double micros_now() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::map<std::thread::id, std::uint32_t> thread_ids_;
  std::chrono::steady_clock::time_point t0_ = std::chrono::steady_clock::now();
};

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes). Exposed for the metrics JSON exporter and tests.
void json_escape(std::string& out, std::string_view s);

}  // namespace mcr::obs

#endif  // MCR_OBS_TRACE_RECORDER_H
