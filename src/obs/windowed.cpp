#include "obs/windowed.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace mcr::obs {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::optional<double> histogram_quantile(
    const std::vector<double>& bounds,
    const std::vector<std::uint64_t>& cumulative, std::uint64_t total,
    double q) {
  if (total == 0 || bounds.empty() || cumulative.empty()) return std::nullopt;
  const double rank = q * static_cast<double>(total);
  for (std::size_t i = 0; i < cumulative.size(); ++i) {
    if (static_cast<double>(cumulative[i]) < rank) continue;
    if (i >= bounds.size()) return bounds.back();  // +Inf bucket: floor
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double below = i == 0 ? 0.0 : static_cast<double>(cumulative[i - 1]);
    const double in_bucket = static_cast<double>(cumulative[i]) - below;
    if (in_bucket <= 0.0) return hi;
    return lo + (hi - lo) * ((rank - below) / in_bucket);
  }
  return bounds.back();
}

SlidingWindowHistogram::SlidingWindowHistogram(std::vector<double> bounds)
    : SlidingWindowHistogram(std::move(bounds), Options{}) {}

SlidingWindowHistogram::SlidingWindowHistogram(std::vector<double> bounds,
                                               Options options)
    : bounds_(std::move(bounds)), options_(std::move(options)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument(
        "SlidingWindowHistogram: bucket bounds must be ascending");
  }
  if (options_.slots < 2) {
    throw std::invalid_argument("SlidingWindowHistogram: need >= 2 slots");
  }
  if (!(options_.window_seconds > 0.0)) {
    throw std::invalid_argument(
        "SlidingWindowHistogram: window_seconds must be positive");
  }
  slot_ns_ = static_cast<std::int64_t>(options_.window_seconds * 1e9 /
                                       static_cast<double>(options_.slots));
  if (slot_ns_ <= 0) slot_ns_ = 1;
  born_ns_ = now_ns();
  slots_ = std::vector<Slot>(options_.slots);
  for (Slot& slot : slots_) {
    slot.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) slot.buckets[i] = 0;
  }
}

std::int64_t SlidingWindowHistogram::now_ns() const {
  return options_.clock ? options_.clock() : steady_now_ns();
}

std::size_t SlidingWindowHistogram::bucket_index(double x) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  return static_cast<std::size_t>(it - bounds_.begin());
}

void SlidingWindowHistogram::rotate(Slot& slot, std::int64_t tick) {
  std::lock_guard<std::mutex> lock(rotate_mutex_);
  if (slot.tick.load(std::memory_order_relaxed) >= tick) return;  // lost the race
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    slot.buckets[i].store(0, std::memory_order_relaxed);
  }
  slot.count.store(0, std::memory_order_relaxed);
  slot.sum.store(0.0, std::memory_order_relaxed);
  slot.tick.store(tick, std::memory_order_release);
}

void SlidingWindowHistogram::observe(double x) {
  const std::int64_t tick = now_ns() / slot_ns_;
  Slot& slot = slots_[static_cast<std::size_t>(tick) % slots_.size()];
  if (slot.tick.load(std::memory_order_acquire) != tick) rotate(slot, tick);
  slot.buckets[bucket_index(x)].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  double cur = slot.sum.load(std::memory_order_relaxed);
  while (!slot.sum.compare_exchange_weak(cur, cur + x,
                                         std::memory_order_relaxed)) {
  }
}

SlidingWindowHistogram::Snapshot SlidingWindowHistogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.assign(bounds_.size() + 1, 0);
  s.window_seconds = options_.window_seconds;
  const std::int64_t now = now_ns();
  const std::int64_t tick = now / slot_ns_;
  // Live sub-windows: the current tick and the slots-1 before it.
  const std::int64_t oldest_live = tick - static_cast<std::int64_t>(slots_.size()) + 1;
  for (const Slot& slot : slots_) {
    const std::int64_t slot_tick = slot.tick.load(std::memory_order_acquire);
    if (slot_tick < oldest_live || slot_tick > tick) continue;
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      s.counts[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
    s.count += slot.count.load(std::memory_order_relaxed);
    s.sum += slot.sum.load(std::memory_order_relaxed);
  }
  // The merged view spans from the start of the oldest live sub-window
  // to now, clamped to the histogram's own lifetime.
  const std::int64_t window_begin_ns =
      std::max(born_ns_, oldest_live * slot_ns_);
  s.covered_seconds =
      std::max(0.0, static_cast<double>(now - window_begin_ns) / 1e9);
  return s;
}

std::vector<std::uint64_t> SlidingWindowHistogram::cumulative_counts(
    const Snapshot& s) {
  std::vector<std::uint64_t> cumulative;
  cumulative.reserve(s.counts.size());
  std::uint64_t running = 0;
  for (const std::uint64_t c : s.counts) {
    running += c;
    cumulative.push_back(running);
  }
  return cumulative;
}

}  // namespace mcr::obs
