// Time-windowed telemetry: SlidingWindowHistogram and the shared,
// guarded histogram-quantile interpolation.
//
// The cumulative instruments in obs/metrics.h answer "what happened
// since boot"; a long-lived daemon also needs "what is happening *right
// now*" — the p99 of the last minute, not the lifetime average. A
// SlidingWindowHistogram keeps a ring of B sub-window histograms and
// rotates through them on a monotonic clock: recording lands in the
// sub-window the clock currently points at, reading merges every
// sub-window that is still inside the window. Old observations age out
// in sub-window granularity, so the merged view always covers between
// (B-1)/B and B/B of the nominal window.
//
// Concurrency contract, matching the atomic MetricsRegistry: the record
// path is lock-free whenever the target sub-window is current (the hot
// case — every record in the same sub-window period after the first).
// Only the first recorder to enter a new sub-window takes the rotation
// mutex to reset it. Readers never block writers. Observations racing a
// rotation boundary may land in the adjacent sub-window or (rarely) be
// dropped with the reset — an error of at most one observation per
// writer per rotation, acceptable for telemetry and bounded by
// construction (the merged count never exceeds the number recorded).
//
// The clock is injectable so rotation is deterministic under test; the
// default reads std::chrono::steady_clock.
#ifndef MCR_OBS_WINDOWED_H
#define MCR_OBS_WINDOWED_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace mcr::obs {

/// Monotonic time source in nanoseconds since an arbitrary epoch.
/// Injectable everywhere windowed telemetry tells time.
using MonotonicClock = std::function<std::int64_t()>;

/// The default clock: std::chrono::steady_clock, in nanoseconds.
[[nodiscard]] std::int64_t steady_now_ns();

/// Prometheus-style histogram_quantile over cumulative bucket counts:
/// locate the bucket holding the q-th observation and interpolate
/// linearly inside it. `cumulative` has one entry per finite bound plus
/// the +Inf bucket; `total` is the all-bucket count.
///
/// Guarded against every degenerate family: returns std::nullopt when
/// there are no observations or no finite bounds (nothing to
/// interpolate — callers print "-" instead of a NaN or a fake 0).
/// Observations in the +Inf bucket report the largest finite bound, a
/// floor rather than an estimate.
[[nodiscard]] std::optional<double> histogram_quantile(
    const std::vector<double>& bounds,
    const std::vector<std::uint64_t>& cumulative, std::uint64_t total,
    double q);

class SlidingWindowHistogram {
 public:
  struct Options {
    /// Nominal window the merged view covers.
    double window_seconds = 60.0;
    /// Sub-windows in the ring; more slots = smoother aging, more
    /// memory. Must be >= 2 (one current, one aging out).
    std::size_t slots = 6;
    /// Time source; empty uses steady_now_ns.
    MonotonicClock clock;
  };

  /// `bounds` are inclusive upper bounds, ascending, with an implicit
  /// +Inf bucket — Prometheus semantics, same as obs::Histogram.
  /// (Two overloads rather than `Options options = {}`: a nested class
  /// with default member initializers cannot appear as a brace-default
  /// argument inside its enclosing class on GCC.)
  explicit SlidingWindowHistogram(std::vector<double> bounds);
  SlidingWindowHistogram(std::vector<double> bounds, Options options);

  void observe(double x);

  struct Snapshot {
    std::vector<double> bounds;         // finite upper bounds, ascending
    std::vector<std::uint64_t> counts;  // per-bucket (bounds.size() + 1)
    std::uint64_t count = 0;
    double sum = 0.0;
    /// Nominal window and the span the merge actually covers (shorter
    /// than the window right after construction).
    double window_seconds = 0.0;
    double covered_seconds = 0.0;
  };
  /// Merge-on-read over the live sub-windows.
  [[nodiscard]] Snapshot snapshot() const;

  /// Cumulative per-bucket counts of `s` (the histogram_quantile input).
  [[nodiscard]] static std::vector<std::uint64_t> cumulative_counts(
      const Snapshot& s);

  [[nodiscard]] double window_seconds() const {
    return options_.window_seconds;
  }

 private:
  struct Slot {
    /// Which rotation tick this slot currently holds; -1 = never used.
    std::atomic<std::int64_t> tick{-1};
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  [[nodiscard]] std::int64_t now_ns() const;
  [[nodiscard]] std::size_t bucket_index(double x) const;
  /// Ensures `slot` holds `tick`, resetting it under the rotation mutex
  /// when it still holds an older one.
  void rotate(Slot& slot, std::int64_t tick);

  std::vector<double> bounds_;
  Options options_;
  std::int64_t slot_ns_ = 0;
  std::int64_t born_ns_ = 0;
  std::vector<Slot> slots_;
  mutable std::mutex rotate_mutex_;
};

}  // namespace mcr::obs

#endif  // MCR_OBS_WINDOWED_H
