#include "store/dataset_watcher.h"

#include <utility>

#include "store/pack_reader.h"

namespace mcr::store {

std::shared_ptr<const Dataset> DatasetWatcher::attach(const std::string& path) {
  // Open and validate outside the lock: attach of a large pack is
  // checksum-bound, and a failure here must not perturb the published
  // generation (PackReader::open throws before anything is swapped).
  PackReader reader = PackReader::open(path);

  auto ds = std::make_shared<Dataset>();
  ds->graph = reader.graph();
  ds->fingerprint = reader.fingerprint_hex();
  ds->path = path;
  ds->bytes = reader.file_bytes();

  std::lock_guard<std::mutex> lock(mutex_);
  ds->generation = next_generation_++;
  current_ = ds;
  return ds;
}

std::shared_ptr<const Dataset> DatasetWatcher::current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

}  // namespace mcr::store
