// Versioned dataset attachment with atomic hot-swap.
//
// A Dataset is one attached pack generation: the zero-copy graph view,
// its fingerprint, and a monotonically increasing generation number.
// DatasetWatcher publishes the current generation behind a shared_ptr:
// attach() validates the new pack fully before swapping, so a corrupt
// replacement leaves the old generation serving; readers that grabbed
// the old snapshot (in-flight solves, cache entries) keep the old
// mapping alive until their last reference drops. Result caches key on
// fingerprint, so entries computed against an old generation stay
// valid and new-generation requests miss cleanly.
#ifndef MCR_STORE_DATASET_WATCHER_H
#define MCR_STORE_DATASET_WATCHER_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "graph/graph.h"

namespace mcr::store {

/// An immutable snapshot of one attached pack generation.
struct Dataset {
  std::shared_ptr<const Graph> graph;  // pins the mapping
  std::string fingerprint;             // 32 lowercase hex chars
  std::string path;                    // pack file this generation came from
  std::uint64_t generation = 0;        // 1 for the first attach, then ++
  std::uint64_t bytes = 0;             // pack file size
};

class DatasetWatcher {
 public:
  DatasetWatcher() = default;
  DatasetWatcher(const DatasetWatcher&) = delete;
  DatasetWatcher& operator=(const DatasetWatcher&) = delete;

  /// Opens and validates the pack at `path`, then atomically publishes
  /// it as the next generation. Throws PackError on any validation
  /// failure, in which case the previously published generation (if
  /// any) remains current. Safe to call concurrently; generations are
  /// assigned in publish order.
  std::shared_ptr<const Dataset> attach(const std::string& path);

  /// The currently published generation, or nullptr before the first
  /// successful attach.
  [[nodiscard]] std::shared_ptr<const Dataset> current() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const Dataset> current_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace mcr::store

#endif  // MCR_STORE_DATASET_WATCHER_H
