#include "store/format.h"

#include <cstring>

namespace mcr::store {
namespace {

/// splitmix64 finalizer — the same avalanche the content fingerprint
/// uses, kept separate so pack integrity and graph identity can evolve
/// independently.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t pack_checksum(const unsigned char* data, std::size_t size,
                            std::size_t checksum_field_offset) {
  std::uint64_t h = 0x6d6372706163746bULL;  // "mcrpactk" seed
  const std::size_t field_end = checksum_field_offset + sizeof(std::uint64_t);
  for (std::size_t pos = 0; pos < size; pos += 8) {
    unsigned char chunk[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    const std::size_t take = size - pos < 8 ? size - pos : 8;
    std::memcpy(chunk, data + pos, take);
    // Read the stored checksum field as zeros so the hash can be
    // computed before the field is patched in. The field is 8-aligned
    // within the header, so it overlaps exactly one chunk.
    if (pos < field_end && pos + 8 > checksum_field_offset) {
      for (std::size_t i = 0; i < 8; ++i) {
        const std::size_t byte = pos + i;
        if (byte >= checksum_field_offset && byte < field_end) chunk[i] = 0;
      }
    }
    std::uint64_t word = 0;
    std::memcpy(&word, chunk, 8);
    h = mix64(h ^ word);
  }
  return mix64(h ^ static_cast<std::uint64_t>(size));
}

const char* pack_error_kind_name(PackErrorKind kind) {
  switch (kind) {
    case PackErrorKind::kIo:
      return "pack io error";
    case PackErrorKind::kTruncated:
      return "pack truncated";
    case PackErrorKind::kBadMagic:
      return "pack bad magic";
    case PackErrorKind::kBadEndianness:
      return "pack bad endianness";
    case PackErrorKind::kBadVersion:
      return "pack bad version";
    case PackErrorKind::kBadHeader:
      return "pack bad header";
    case PackErrorKind::kBadSection:
      return "pack bad section";
    case PackErrorKind::kChecksumMismatch:
      return "pack checksum mismatch";
  }
  return "pack error";
}

}  // namespace mcr::store
