// On-disk layout of the .mcrpack zero-copy graph container.
//
// A pack is one contiguous file servers mmap read-only and attach with
// zero per-process copy (the osrm contiguous-block idiom):
//
//   +--------------------------------------------------------------+
//   | PackHeader (fixed size, offset 0)                            |
//   |   magic "MCRPACK1" · format version · endianness tag         |
//   |   file size · whole-file checksum · content fingerprint      |
//   |   graph summaries (n, m, min/max weight, total transit)      |
//   |   SCC summaries (component count, cyclic count)              |
//   |   section table: (id, offset, bytes) per section             |
//   +--------------------------------------------------------------+
//   | sections, each 64-byte aligned, in SectionId order:          |
//   |   arc arrays      src dst weight transit      (arc-id order) |
//   |   CSR indices     out_first out_arcs in_first in_arcs        |
//   |   condensation    scc_component scc_cyclic                   |
//   |   per-component   ComponentMeta records                      |
//   +--------------------------------------------------------------+
//
// Every multi-byte field is little-endian; the endianness tag rejects
// foreign-endian packs instead of byte-swapping them. The checksum is a
// 64-bit splitmix chain over the whole file with the checksum field
// itself read as zero, so corruption anywhere — header, table, or
// section bytes — is detected at attach time.
//
// Versioning: readers accept exactly kFormatVersion. Any layout change
// (new section, field width, reordering) bumps the version; packs are
// cheap to regenerate from their source inputs, so there is no
// migration path by design. See docs/STORAGE.md.
#ifndef MCR_STORE_FORMAT_H
#define MCR_STORE_FORMAT_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace mcr::store {

inline constexpr char kPackMagic[8] = {'M', 'C', 'R', 'P', 'A', 'C', 'K', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Written as the native value of this constant; a reader on a
/// foreign-endian host sees the bytes reversed and rejects the pack.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
/// Section payloads start on 64-byte boundaries so the mmap'd arrays are
/// aligned for any element type (and for cache-line-friendly sweeps).
inline constexpr std::size_t kSectionAlignment = 64;

/// Section order is also file order; kCount doubles as the table size.
enum class SectionId : std::uint32_t {
  kArcSrc = 0,      // NodeId[m]   arc source, arc-id order
  kArcDst,          // NodeId[m]   arc destination
  kArcWeight,       // int64[m]    arc weight w(e)
  kArcTransit,      // int64[m]    arc transit time t(e)
  kOutFirst,        // int32[n+1]  CSR offsets, out-adjacency
  kOutArcs,         // ArcId[m]    CSR arc ids, out-adjacency
  kInFirst,         // int32[n+1]  CSR offsets, in-adjacency
  kInArcs,          // ArcId[m]    CSR arc ids, in-adjacency
  kSccComponent,    // NodeId[n]   Tarjan component id per node
  kSccCyclic,       // NodeId[k]   cyclic component ids, driver order
  kComponentMeta,   // ComponentMeta[num_components]
  kCount,
};

inline constexpr std::size_t kSectionCount = static_cast<std::size_t>(SectionId::kCount);

struct SectionEntry {
  std::uint32_t id = 0;        // SectionId value, table is in id order
  std::uint32_t reserved = 0;  // zero
  std::uint64_t offset = 0;    // from file start, kSectionAlignment-aligned
  std::uint64_t bytes = 0;     // payload length (no padding)
};
static_assert(sizeof(SectionEntry) == 24);

/// Per-component metadata: sizes for admission/scheduling decisions and
/// a tile-granularity hint for graph/arc_tiles.h. The hint is advisory —
/// runtime tiling stays opt-in via SolveOptions.tile_arcs so solve
/// metrics remain comparable across storage backends.
struct ComponentMeta {
  std::int32_t nodes = 0;      // nodes in this component
  std::int32_t arcs = 0;       // intra-component arcs
  std::int32_t tile_hint = 0;  // suggested tile_arcs; 0 = tiling not useful
  std::int32_t cyclic = 0;     // 1 if the component contains a cycle
};
static_assert(sizeof(ComponentMeta) == 16);

struct PackHeader {
  char magic[8] = {};                 // kPackMagic
  std::uint32_t format_version = 0;   // kFormatVersion
  std::uint32_t endian_tag = 0;       // kEndianTag
  std::uint64_t file_bytes = 0;       // total file size, must match stat
  std::uint64_t checksum = 0;         // pack_checksum(file, this field = 0)
  std::uint64_t fingerprint_hi = 0;   // graph content fingerprint
  std::uint64_t fingerprint_lo = 0;   //   (graph/fingerprint.h)
  std::int32_t num_nodes = 0;
  std::int32_t num_arcs = 0;
  std::int32_t num_components = 0;
  std::int32_t num_cyclic = 0;        // cyclic components (worklist length)
  std::int64_t min_weight = 0;
  std::int64_t max_weight = 0;
  std::int64_t total_transit = 0;
  std::uint32_t section_count = 0;    // kSectionCount
  std::uint32_t reserved = 0;         // zero
  SectionEntry sections[kSectionCount];
};
static_assert(std::is_trivially_copyable_v<PackHeader>);
static_assert(sizeof(PackHeader) == 96 + kSectionCount * sizeof(SectionEntry));

/// Rounds a file offset up to the next section boundary.
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~static_cast<std::uint64_t>(kSectionAlignment - 1);
}

/// Whole-file checksum: a splitmix64 chain absorbed 8 bytes at a time
/// (zero-padded tail), with the header's checksum field read as zeros so
/// the stored value can cover itself. `checksum_field_offset` is the
/// byte offset of that field within `data`; pass the real offset when
/// hashing a finished file and data-size when hashing a buffer that
/// already has the field zeroed.
[[nodiscard]] std::uint64_t pack_checksum(const unsigned char* data, std::size_t size,
                                          std::size_t checksum_field_offset);

/// Byte offset of PackHeader::checksum within the header (and the file).
[[nodiscard]] constexpr std::size_t checksum_field_offset() {
  return offsetof(PackHeader, checksum);
}

/// What a pack failed validation on. kIo covers open/stat/mmap/write
/// failures; everything else is a content rejection.
enum class PackErrorKind {
  kIo,
  kTruncated,
  kBadMagic,
  kBadEndianness,
  kBadVersion,
  kBadHeader,
  kBadSection,
  kChecksumMismatch,
};

[[nodiscard]] const char* pack_error_kind_name(PackErrorKind kind);

/// Typed pack rejection: callers branch on kind(), logs get what().
class PackError : public std::runtime_error {
 public:
  PackError(PackErrorKind kind, const std::string& message)
      : std::runtime_error(std::string(pack_error_kind_name(kind)) + ": " + message),
        kind_(kind) {}

  [[nodiscard]] PackErrorKind kind() const { return kind_; }

 private:
  PackErrorKind kind_;
};

}  // namespace mcr::store

#endif  // MCR_STORE_FORMAT_H
