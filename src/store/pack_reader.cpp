#include "store/pack_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "graph/fingerprint.h"

namespace mcr::store {
namespace {

/// Owns the mmap'd file range. Shared by the PackReader and (as the
/// graph's keepalive) every outstanding graph reference; the region is
/// unmapped when the last owner drops.
struct Mapping {
  const unsigned char* base = nullptr;
  std::size_t bytes = 0;

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (base != nullptr) {
      ::munmap(const_cast<unsigned char*>(base), bytes);
    }
  }
};

[[noreturn]] void fail(PackErrorKind kind, const std::string& path, const std::string& msg) {
  throw PackError(kind, "'" + path + "': " + msg);
}

std::shared_ptr<Mapping> map_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail(PackErrorKind::kIo, path, std::strerror(errno));
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    fail(PackErrorKind::kIo, path, std::strerror(err));
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  if (bytes < sizeof(PackHeader)) {
    ::close(fd);
    fail(PackErrorKind::kTruncated, path,
         "file is " + std::to_string(bytes) + " bytes, smaller than the pack header");
  }
  // MAP_SHARED so every attached process shares one page-cache copy of
  // the (read-only) data.
  void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  const int map_err = errno;
  ::close(fd);
  if (base == MAP_FAILED) fail(PackErrorKind::kIo, path, std::strerror(map_err));
  auto mapping = std::make_shared<Mapping>();
  mapping->base = static_cast<const unsigned char*>(base);
  mapping->bytes = bytes;
  return mapping;
}

/// Checked typed view of one section's payload.
template <typename T>
std::span<const T> section_span(const Mapping& mapping, const PackHeader& header,
                                SectionId id, const std::string& path) {
  const SectionEntry& entry = header.sections[static_cast<std::size_t>(id)];
  const std::string name = "section " + std::to_string(entry.id);
  if (entry.id != static_cast<std::uint32_t>(id)) {
    fail(PackErrorKind::kBadSection, path, name + ": id out of order");
  }
  if (entry.bytes == 0) return {};
  if (entry.offset % kSectionAlignment != 0 || entry.offset % alignof(T) != 0) {
    fail(PackErrorKind::kBadSection, path, name + ": misaligned offset");
  }
  if (entry.offset < sizeof(PackHeader) || entry.offset > mapping.bytes ||
      entry.bytes > mapping.bytes - entry.offset) {
    fail(PackErrorKind::kBadSection, path, name + ": extends past end of file");
  }
  if (entry.bytes % sizeof(T) != 0) {
    fail(PackErrorKind::kBadSection, path, name + ": size not a multiple of element size");
  }
  return {reinterpret_cast<const T*>(mapping.base + entry.offset),
          static_cast<std::size_t>(entry.bytes / sizeof(T))};
}

/// One CSR side: offsets monotone over [0, m] and the arc-id array
/// grouped so that key(arc_ids[pos]) == v exactly on [first[v], first[v+1]).
void check_csr(std::span<const std::int32_t> first, std::span<const ArcId> arc_ids,
               std::span<const NodeId> key, std::int32_t num_arcs, const char* what,
               const std::string& path) {
  if (first.front() != 0 || first.back() != num_arcs) {
    fail(PackErrorKind::kBadSection, path, std::string(what) + ": offset array endpoints");
  }
  for (std::size_t v = 0; v + 1 < first.size(); ++v) {
    if (first[v] > first[v + 1]) {
      fail(PackErrorKind::kBadSection, path, std::string(what) + ": offsets not monotone");
    }
    for (std::int32_t pos = first[v]; pos < first[v + 1]; ++pos) {
      const ArcId a = arc_ids[static_cast<std::size_t>(pos)];
      if (a < 0 || a >= num_arcs ||
          key[static_cast<std::size_t>(a)] != static_cast<NodeId>(v)) {
        fail(PackErrorKind::kBadSection, path,
             std::string(what) + ": arc ids inconsistent with arc endpoints");
      }
    }
  }
}

}  // namespace

PackReader PackReader::open(const std::string& path) {
  std::shared_ptr<Mapping> mapping = map_file(path);

  PackHeader header;
  std::memcpy(&header, mapping->base, sizeof(header));
  if (std::memcmp(header.magic, kPackMagic, sizeof(kPackMagic)) != 0) {
    fail(PackErrorKind::kBadMagic, path, "not a .mcrpack file");
  }
  if (header.endian_tag != kEndianTag) {
    fail(PackErrorKind::kBadEndianness, path,
         "pack was written on a host with different byte order");
  }
  if (header.format_version != kFormatVersion) {
    fail(PackErrorKind::kBadVersion, path,
         "format version " + std::to_string(header.format_version) + ", reader supports " +
             std::to_string(kFormatVersion));
  }
  if (header.file_bytes != mapping->bytes) {
    fail(PackErrorKind::kTruncated, path,
         "header declares " + std::to_string(header.file_bytes) + " bytes, file has " +
             std::to_string(mapping->bytes));
  }
  if (header.section_count != kSectionCount) {
    fail(PackErrorKind::kBadHeader, path,
         "section count " + std::to_string(header.section_count) + ", expected " +
             std::to_string(kSectionCount));
  }
  if (header.num_nodes < 0 || header.num_arcs < 0 || header.num_components < 0 ||
      header.num_cyclic < 0 || header.num_components > header.num_nodes ||
      header.num_cyclic > header.num_components) {
    fail(PackErrorKind::kBadHeader, path, "negative or inconsistent counts");
  }

  // Whole-file checksum before trusting any section content.
  const std::uint64_t expect =
      pack_checksum(mapping->base, mapping->bytes, checksum_field_offset());
  if (expect != header.checksum) {
    fail(PackErrorKind::kChecksumMismatch, path, "file contents do not match checksum");
  }

  const std::size_t n = static_cast<std::size_t>(header.num_nodes);
  const std::size_t m = static_cast<std::size_t>(header.num_arcs);
  const std::size_t comps = static_cast<std::size_t>(header.num_components);

  const auto src = section_span<NodeId>(*mapping, header, SectionId::kArcSrc, path);
  const auto dst = section_span<NodeId>(*mapping, header, SectionId::kArcDst, path);
  const auto weight = section_span<std::int64_t>(*mapping, header, SectionId::kArcWeight, path);
  const auto transit =
      section_span<std::int64_t>(*mapping, header, SectionId::kArcTransit, path);
  const auto out_first =
      section_span<std::int32_t>(*mapping, header, SectionId::kOutFirst, path);
  const auto out_arcs = section_span<ArcId>(*mapping, header, SectionId::kOutArcs, path);
  const auto in_first =
      section_span<std::int32_t>(*mapping, header, SectionId::kInFirst, path);
  const auto in_arcs = section_span<ArcId>(*mapping, header, SectionId::kInArcs, path);
  const auto component =
      section_span<NodeId>(*mapping, header, SectionId::kSccComponent, path);
  const auto cyclic = section_span<NodeId>(*mapping, header, SectionId::kSccCyclic, path);
  const auto meta =
      section_span<ComponentMeta>(*mapping, header, SectionId::kComponentMeta, path);

  if (src.size() != m || dst.size() != m || weight.size() != m || transit.size() != m ||
      out_arcs.size() != m || in_arcs.size() != m || out_first.size() != n + 1 ||
      in_first.size() != n + 1 || component.size() != n ||
      cyclic.size() != static_cast<std::size_t>(header.num_cyclic) || meta.size() != comps) {
    fail(PackErrorKind::kBadSection, path, "section sizes inconsistent with header counts");
  }

  for (std::size_t a = 0; a < m; ++a) {
    if (src[a] < 0 || src[a] >= header.num_nodes || dst[a] < 0 ||
        dst[a] >= header.num_nodes) {
      fail(PackErrorKind::kBadSection, path, "arc endpoint out of range");
    }
  }
  check_csr(out_first, out_arcs, src, header.num_arcs, "out CSR", path);
  check_csr(in_first, in_arcs, dst, header.num_arcs, "in CSR", path);
  for (std::size_t v = 0; v < n; ++v) {
    if (component[v] < 0 || component[v] >= header.num_components) {
      fail(PackErrorKind::kBadSection, path, "component id out of range");
    }
  }
  for (std::size_t i = 0; i < cyclic.size(); ++i) {
    if (cyclic[i] < 0 || cyclic[i] >= header.num_components ||
        (i > 0 && cyclic[i] <= cyclic[i - 1])) {
      fail(PackErrorKind::kBadSection, path, "cyclic worklist not ascending in range");
    }
  }

  Graph::ExternalParts parts;
  parts.num_nodes = header.num_nodes;
  parts.src = src;
  parts.dst = dst;
  parts.weight = weight;
  parts.transit = transit;
  parts.out_first = out_first;
  parts.out_arcs = out_arcs;
  parts.in_first = in_first;
  parts.in_arcs = in_arcs;
  parts.min_weight = header.min_weight;
  parts.max_weight = header.max_weight;
  parts.total_transit = header.total_transit;

  Graph g = Graph::adopt_external(parts, mapping);
  g.set_scc_hint(Graph::SccHint{component, header.num_components, cyclic});

  PackReader reader;
  reader.path_ = path;
  reader.header_ = header;
  reader.fingerprint_hex_ =
      Fingerprint{header.fingerprint_hi, header.fingerprint_lo}.hex();
  reader.graph_ = std::make_shared<const Graph>(std::move(g));
  reader.meta_ = meta;
  return reader;
}

}  // namespace mcr::store
