// Zero-copy attach side of the .mcrpack container.
//
// PackReader::open mmaps the file read-only (MAP_SHARED, so N attached
// processes share one page-cache copy), validates the header, section
// table, whole-file checksum, and the structural invariants of every
// section, then exposes the mapping as a `Graph` the driver and all
// solvers consume unchanged — the graph facade is a real Graph whose
// accessor spans point straight into the mapping, with the pack's
// precomputed SCC decomposition attached as a solve hint.
//
// Lifetime: graph() returns a shared_ptr whose Graph pins the mapping
// via its keepalive, so the PackReader itself may be destroyed — and a
// newer dataset generation published — while in-flight solves still
// hold the old graph. The mapping is unmapped when the last such
// reference drops.
#ifndef MCR_STORE_PACK_READER_H
#define MCR_STORE_PACK_READER_H

#include <memory>
#include <span>
#include <string>

#include "graph/graph.h"
#include "store/format.h"

namespace mcr::store {

class PackReader {
 public:
  /// Maps and validates the pack at `path`. Throws PackError with a
  /// typed kind on any failure; on success every section has been
  /// structurally validated (offsets in bounds and aligned, CSR indices
  /// consistent, component ids in range), so downstream code can trust
  /// the view without further checks.
  [[nodiscard]] static PackReader open(const std::string& path);

  /// The validated header (summaries, fingerprint, section table).
  [[nodiscard]] const PackHeader& header() const { return header_; }

  /// Content fingerprint as 32 lowercase hex chars — identical to
  /// fingerprint_hex() of the equivalent builder-built graph, so
  /// registry and result-cache keys line up across storage backends.
  [[nodiscard]] const std::string& fingerprint_hex() const { return fingerprint_hex_; }

  [[nodiscard]] std::size_t file_bytes() const { return header_.file_bytes; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// The zero-copy graph view (with the pack's SCC hint attached). The
  /// returned pointer — and any copy of it — keeps the mapping alive.
  [[nodiscard]] const std::shared_ptr<const Graph>& graph() const { return graph_; }

  /// Per-component metadata records, component-id order.
  [[nodiscard]] std::span<const ComponentMeta> component_meta() const { return meta_; }

 private:
  PackReader() = default;

  std::string path_;
  PackHeader header_;
  std::string fingerprint_hex_;
  std::shared_ptr<const Graph> graph_;
  std::span<const ComponentMeta> meta_;
};

}  // namespace mcr::store

#endif  // MCR_STORE_PACK_READER_H
