#include "store/pack_writer.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "graph/fingerprint.h"
#include "graph/scc.h"
#include "store/format.h"

namespace mcr::store {
namespace {

/// Tiling pays off only when a component has enough arcs to spread over
/// several tiles; below that the per-tile bookkeeping dominates. 4096
/// arcs per tile matches the bench sweet spot for the tiled kernels.
constexpr std::int32_t kTileHintArcs = 4096;

std::int32_t tile_hint_for(std::int32_t intra_arcs) {
  return intra_arcs >= 2 * kTileHintArcs ? kTileHintArcs : 0;
}

void append_bytes(std::string& buf, const void* data, std::size_t bytes) {
  buf.append(static_cast<const char*>(data), bytes);
}

template <typename T>
void append_section(std::string& buf, PackHeader& header, SectionId id,
                    std::span<const T> payload) {
  const std::uint64_t offset = align_up(buf.size());
  buf.resize(offset, '\0');  // deterministic zero padding
  SectionEntry& entry = header.sections[static_cast<std::size_t>(id)];
  entry.id = static_cast<std::uint32_t>(id);
  entry.offset = offset;
  entry.bytes = payload.size() * sizeof(T);
  if (!payload.empty()) append_bytes(buf, payload.data(), payload.size() * sizeof(T));
}

}  // namespace

PackWriteInfo write_pack(const std::string& path, const Graph& g) {
  const Fingerprint fp = fingerprint(g);
  const SccDecomposition scc = strongly_connected_components(g);

  // Cyclic worklist in ascending component id — the order the driver
  // builds its own list in, so hinted solves group work identically.
  std::vector<NodeId> cyclic;
  for (NodeId c = 0; c < scc.num_components; ++c) {
    if (scc.component_is_cyclic[static_cast<std::size_t>(c)]) cyclic.push_back(c);
  }

  std::vector<ComponentMeta> meta(static_cast<std::size_t>(scc.num_components));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ++meta[static_cast<std::size_t>(scc.component[static_cast<std::size_t>(v)])].nodes;
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const NodeId cs = scc.component[static_cast<std::size_t>(g.src(a))];
    if (cs == scc.component[static_cast<std::size_t>(g.dst(a))]) {
      ++meta[static_cast<std::size_t>(cs)].arcs;
    }
  }
  for (NodeId c = 0; c < scc.num_components; ++c) {
    ComponentMeta& cm = meta[static_cast<std::size_t>(c)];
    cm.cyclic = scc.component_is_cyclic[static_cast<std::size_t>(c)] ? 1 : 0;
    cm.tile_hint = cm.cyclic ? tile_hint_for(cm.arcs) : 0;
  }

  PackHeader header;
  std::memcpy(header.magic, kPackMagic, sizeof(kPackMagic));
  header.format_version = kFormatVersion;
  header.endian_tag = kEndianTag;
  header.fingerprint_hi = fp.hi;
  header.fingerprint_lo = fp.lo;
  header.num_nodes = g.num_nodes();
  header.num_arcs = g.num_arcs();
  header.num_components = scc.num_components;
  header.num_cyclic = static_cast<std::int32_t>(cyclic.size());
  header.min_weight = g.min_weight();
  header.max_weight = g.max_weight();
  header.total_transit = g.total_transit();
  header.section_count = static_cast<std::uint32_t>(kSectionCount);

  std::string buf(sizeof(PackHeader), '\0');  // header patched in below
  append_section<NodeId>(buf, header, SectionId::kArcSrc, g.srcs());
  append_section<NodeId>(buf, header, SectionId::kArcDst, g.dsts());
  append_section<std::int64_t>(buf, header, SectionId::kArcWeight, g.weights());
  append_section<std::int64_t>(buf, header, SectionId::kArcTransit, g.transits());
  append_section<std::int32_t>(buf, header, SectionId::kOutFirst, g.out_first());
  append_section<ArcId>(buf, header, SectionId::kOutArcs, g.out_arc_ids());
  append_section<std::int32_t>(buf, header, SectionId::kInFirst, g.in_first());
  append_section<ArcId>(buf, header, SectionId::kInArcs, g.in_arc_ids());
  append_section<NodeId>(buf, header, SectionId::kSccComponent,
                         std::span<const NodeId>(scc.component));
  append_section<NodeId>(buf, header, SectionId::kSccCyclic,
                         std::span<const NodeId>(cyclic));
  append_section<ComponentMeta>(buf, header, SectionId::kComponentMeta,
                                std::span<const ComponentMeta>(meta));

  header.file_bytes = buf.size();
  std::memcpy(buf.data(), &header, sizeof(header));
  header.checksum = pack_checksum(reinterpret_cast<const unsigned char*>(buf.data()),
                                  buf.size(), checksum_field_offset());
  std::memcpy(buf.data(), &header, sizeof(header));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw PackError(PackErrorKind::kIo, "cannot open '" + path + "' for writing");
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  out.flush();
  if (!out) {
    std::remove(path.c_str());
    throw PackError(PackErrorKind::kIo, "short write to '" + path + "'");
  }

  PackWriteInfo info;
  info.file_bytes = buf.size();
  info.fingerprint = fp.hex();
  info.num_components = scc.num_components;
  info.num_cyclic = static_cast<std::int32_t>(cyclic.size());
  return info;
}

}  // namespace mcr::store
