// Offline serializer for .mcrpack graph containers (see format.h).
//
// Packing is deterministic: the arc arrays are written in arc-id order,
// the CSR indices are the graph's own counting-sort output, and the SCC
// sections store exactly what Tarjan produces — so packing the same
// graph twice (or repacking a pack's own view) yields byte-identical
// files, which the golden-bytes tests pin.
#ifndef MCR_STORE_PACK_WRITER_H
#define MCR_STORE_PACK_WRITER_H

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace mcr::store {

/// What write_pack produced, for tool output and logs.
struct PackWriteInfo {
  std::uint64_t file_bytes = 0;
  std::string fingerprint;        // 32 lowercase hex chars
  std::int32_t num_components = 0;
  std::int32_t num_cyclic = 0;
};

/// Serializes g into a pack file at `path` (overwriting any existing
/// file), computing the content fingerprint, the SCC condensation, and
/// per-component metadata along the way. Throws PackError(kIo) if the
/// file cannot be written.
PackWriteInfo write_pack(const std::string& path, const Graph& g);

}  // namespace mcr::store

#endif  // MCR_STORE_PACK_WRITER_H
