// Overflow-checked 64-bit arithmetic for the distance recurrences.
//
// Karp/Lawler/Bellman-Ford-style distance tables accumulate n·|w|-sized
// sums; with adversarial weights those silently wrap in plain int64 and
// the solver returns a *wrong* optimum, not a crash (the value-range
// concern Bringmann–Hansen–Krinninger and Chatterjee et al. both flag
// as the binding constraint for cycle-ratio computation). Every integer
// recurrence in this library therefore runs on checked_add / CheckedI64
// first; on the first overflow the caller catches NumericOverflow and
// transparently re-solves in int128 (see karp.cpp, bellman_ford.cpp,
// detail.cpp), counting the promotion in
// OpCounters::numeric_promotions → mcr_numeric_promotions_total.
//
// The checks compile to a flags test via __builtin_*_overflow — no
// measurable cost next to the memory traffic of the recurrences.
#ifndef MCR_SUPPORT_CHECKED_H
#define MCR_SUPPORT_CHECKED_H

#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mcr {

/// Thrown when a checked 64-bit operation would wrap. Callers either
/// promote to int128/rational arithmetic or surface the message — never
/// continue on the wrapped value.
class NumericOverflow : public std::overflow_error {
 public:
  explicit NumericOverflow(const char* context)
      : std::overflow_error(std::string("int64 overflow in ") + context +
                            " (re-solve promotes to 128-bit arithmetic)") {}
};

[[nodiscard]] inline std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r)) throw NumericOverflow("add");
  return r;
}

[[nodiscard]] inline std::int64_t checked_sub(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_sub_overflow(a, b, &r)) throw NumericOverflow("sub");
  return r;
}

[[nodiscard]] inline std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t r;
  if (__builtin_mul_overflow(a, b, &r)) throw NumericOverflow("mul");
  return r;
}

/// -INT64_MIN is the one negation that does not exist in int64.
[[nodiscard]] inline std::int64_t checked_neg(std::int64_t a) {
  std::int64_t r;
  if (__builtin_sub_overflow(std::int64_t{0}, a, &r)) throw NumericOverflow("neg");
  return r;
}

/// Drop-in accumulator for templated recurrences (Bellman-Ford's Cost
/// parameter, Karp's distance table): int64 semantics, but + and -
/// throw NumericOverflow instead of wrapping. Comparison and copy are
/// exactly int64.
class CheckedI64 {
 public:
  constexpr CheckedI64() = default;
  constexpr CheckedI64(std::int64_t v) : v_(v) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] constexpr std::int64_t value() const { return v_; }

  friend CheckedI64 operator+(CheckedI64 a, CheckedI64 b) {
    return CheckedI64(checked_add(a.v_, b.v_));
  }
  friend CheckedI64 operator-(CheckedI64 a, CheckedI64 b) {
    return CheckedI64(checked_sub(a.v_, b.v_));
  }
  CheckedI64 operator-() const { return CheckedI64(checked_neg(v_)); }
  CheckedI64& operator+=(CheckedI64 o) { return *this = *this + o; }

  friend constexpr bool operator==(CheckedI64, CheckedI64) = default;
  friend constexpr std::strong_ordering operator<=>(CheckedI64 a, CheckedI64 b) {
    return a.v_ <=> b.v_;
  }

 private:
  std::int64_t v_ = 0;
};

}  // namespace mcr

#endif  // MCR_SUPPORT_CHECKED_H
