// 128-bit integer alias. GCC/Clang's __int128 is used for overflow-free
// cross multiplication of 64-bit fractions; the __extension__ marker
// keeps -Wpedantic quiet about the non-ISO type.
#ifndef MCR_SUPPORT_INT128_H
#define MCR_SUPPORT_INT128_H

namespace mcr {

__extension__ typedef __int128 int128;

}  // namespace mcr

#endif  // MCR_SUPPORT_INT128_H
