#include "support/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mcr::json {

namespace {

[[noreturn]] void type_error(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not a ") + wanted);
}

class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing data after JSON value");
    return v;
  }

 private:
  Value parse_value() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't': expect_word("true"); return Value(true);
      case 'f': expect_word("false"); return Value(false);
      case 'n': expect_word("null"); return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    ++pos_;  // '{'
    Value::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    ++pos_;  // '['
    Value::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) fail("truncated escape");
        switch (s_[pos_]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': out += parse_unicode_escape(); continue;
          default: fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    fail("unterminated string");
  }

  /// \uXXXX, decoded to UTF-8 (surrogate pairs supported; our own
  /// writers only ever emit \u00XX for control characters).
  std::string parse_unicode_escape() {
    ++pos_;  // 'u'
    unsigned code = parse_hex4();
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (pos_ + 1 < s_.size() && s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned low = parse_hex4();
        if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      } else {
        fail("unpaired surrogate");
      }
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size()) fail("truncated \\u escape");
      const char c = s_[pos_];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
      ++pos_;
    }
    return value;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(s_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Value(v);
  }

  void expect_word(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) fail("unknown literal");
    pos_ += word.size();
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at offset " +
                             std::to_string(pos_));
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(data_);
}

double Value::as_double() const {
  if (!is_number()) type_error("number");
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(data_);
}

const Value::Array& Value::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(data_);
}

const Value::Object& Value::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(data_);
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return it->second;
}

bool Value::has(const std::string& key) const {
  if (!is_object()) return false;
  return std::get<Object>(data_).count(key) > 0;
}

double Value::number_or(const std::string& key, double fallback) const {
  return has(key) && at(key).is_number() ? at(key).as_double() : fallback;
}

std::string Value::string_or(const std::string& key,
                             const std::string& fallback) const {
  return has(key) && at(key).is_string() ? at(key).as_string() : fallback;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return parse(ss.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace mcr::json
