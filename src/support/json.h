// Minimal JSON document parser for the bench artifact pipeline.
//
// mcr_bench_diff must read BENCH_*.json without external dependencies,
// so this is a small recursive-descent parser producing an immutable
// DOM. Numbers are stored as double — exact for the magnitudes our
// artifacts carry (timings, counter medians < 2^53); this is a reader
// for our own writers, not a general-purpose library. Parse errors
// throw std::runtime_error naming the byte offset.
#ifndef MCR_SUPPORT_JSON_H
#define MCR_SUPPORT_JSON_H

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mcr::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;

  Value() = default;
  explicit Value(bool b) : data_(b) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(Array a) : data_(std::move(a)) {}
  explicit Value(Object o) : data_(std::move(o)) {}

  [[nodiscard]] Type type() const {
    return static_cast<Type>(data_.index());
  }
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type() == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object field lookup; throws when not an object / key missing.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// True when this is an object containing `key`.
  [[nodiscard]] bool has(const std::string& key) const;
  /// at(key) when present, otherwise the given default.
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;

 private:
  std::variant<std::monostate, bool, double, std::string, Array, Object> data_;
};

/// Parses exactly one JSON value spanning the whole input.
[[nodiscard]] Value parse(std::string_view text);

/// Parses the file's entire contents; errors name the path.
[[nodiscard]] Value parse_file(const std::string& path);

}  // namespace mcr::json

#endif  // MCR_SUPPORT_JSON_H
