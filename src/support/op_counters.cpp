#include "support/op_counters.h"

#include <sstream>

namespace mcr {

OpCounters& OpCounters::operator+=(const OpCounters& o) {
  iterations += o.iterations;
  arc_scans += o.arc_scans;
  relaxations += o.relaxations;
  node_visits += o.node_visits;
  heap_inserts += o.heap_inserts;
  heap_decrease_keys += o.heap_decrease_keys;
  heap_delete_mins += o.heap_delete_mins;
  feasibility_checks += o.feasibility_checks;
  cycle_evaluations += o.cycle_evaluations;
  numeric_promotions += o.numeric_promotions;
  return *this;
}

std::string OpCounters::summary() const {
  std::ostringstream os;
  bool first = true;
  const auto emit = [&](const char* name, std::uint64_t v) {
    if (v == 0) return;
    if (!first) os << ", ";
    os << name << "=" << v;
    first = false;
  };
  emit("iters", iterations);
  emit("arc_scans", arc_scans);
  emit("relax", relaxations);
  emit("visits", node_visits);
  emit("heap_ins", heap_inserts);
  emit("heap_dec", heap_decrease_keys);
  emit("heap_del", heap_delete_mins);
  emit("feas", feasibility_checks);
  emit("cyc_eval", cycle_evaluations);
  emit("promotions", numeric_promotions);
  if (first) os << "(none)";
  return os.str();
}

}  // namespace mcr
