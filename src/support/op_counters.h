// Representative operation counts, after Ahuja-Kodialam-Mishra-Orlin
// ("Computational investigation of maximum flow algorithms"), which the
// paper adopts (§3): besides wall-clock time, every solver reports
// counts of its characteristic operations so that algorithms can be
// compared machine-independently.
//
// One flat struct serves all solvers; each solver increments only the
// fields that are meaningful for it (the paper likewise compares "only
// the relevant ones", §3).
#ifndef MCR_SUPPORT_OP_COUNTERS_H
#define MCR_SUPPORT_OP_COUNTERS_H

#include <cstdint>
#include <string>

namespace mcr {

struct OpCounters {
  /// Outer iterations of the solver's main loop (Burns/KO/YTO/Howard
  /// convergence rounds; for HO, the value of k at termination; for
  /// Lawler/OA1, binary-search probes).
  std::uint64_t iterations = 0;
  /// Arc relaxation / scan operations (d-value updates attempted).
  std::uint64_t arc_scans = 0;
  /// Successful distance improvements.
  std::uint64_t relaxations = 0;
  /// Node visits (BFS/DFS/unfolding expansions).
  std::uint64_t node_visits = 0;
  /// Heap operations (KO/YTO and any Dijkstra-like phase).
  std::uint64_t heap_inserts = 0;
  std::uint64_t heap_decrease_keys = 0;
  std::uint64_t heap_delete_mins = 0;
  /// Negative-cycle / feasibility checks (Lawler probes, Burns rebuilds).
  std::uint64_t feasibility_checks = 0;
  /// Policy-cycle evaluations (Howard).
  std::uint64_t cycle_evaluations = 0;
  /// Times a distance recurrence overflowed int64 and was transparently
  /// re-solved in 128-bit arithmetic (support/checked.h). Exported by
  /// the driver as mcr_numeric_promotions_total.
  std::uint64_t numeric_promotions = 0;

  [[nodiscard]] std::uint64_t heap_total() const {
    return heap_inserts + heap_decrease_keys + heap_delete_mins;
  }

  OpCounters& operator+=(const OpCounters& o);

  /// Field-wise equality; the parallel-driver tests assert counters are
  /// identical for every thread count.
  friend bool operator==(const OpCounters&, const OpCounters&) = default;

  /// Compact single-line rendering of the nonzero fields.
  [[nodiscard]] std::string summary() const;
};

}  // namespace mcr

#endif  // MCR_SUPPORT_OP_COUNTERS_H
