#include "support/prng.h"

#include <cassert>

namespace mcr {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Prng::Prng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // All-zero state is the one forbidden state; splitmix64 cannot produce
  // four zero outputs from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Prng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Prng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Prng::uniform_real() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Prng::bernoulli(double p) { return uniform_real() < p; }

std::uint64_t Prng::fork_seed() { return next(); }

}  // namespace mcr
