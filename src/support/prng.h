// Deterministic pseudo-random number generation for workload synthesis.
//
// All generators in src/gen take an explicit seed so that every
// experiment in the paper reproduction is replayable bit-for-bit. We use
// xoshiro256** (Blackman & Vigna) rather than std::mt19937 because its
// state is small, it is fast, and — unlike the standard distributions —
// our uniform_* helpers produce identical streams on every platform and
// standard library.
#ifndef MCR_SUPPORT_PRNG_H
#define MCR_SUPPORT_PRNG_H

#include <cstdint>

namespace mcr {

/// xoshiro256** engine with splitmix64 seeding.
class Prng {
 public:
  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_real();

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of [first, first+n).
  template <typename T>
  void shuffle(T* first, std::size_t n) {
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      T tmp = first[i - 1];
      first[i - 1] = first[j];
      first[j] = tmp;
    }
  }

  /// Derive an independent stream (for per-trial seeds).
  std::uint64_t fork_seed();

 private:
  std::uint64_t s_[4];
};

}  // namespace mcr

#endif  // MCR_SUPPORT_PRNG_H
