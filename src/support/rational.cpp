#include "support/int128.h"
#include "support/rational.h"

#include <cassert>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "support/checked.h"

namespace mcr {

namespace {

using i128 = int128;

std::int64_t checked_narrow(i128 v) {
  if (v > INT64_MAX || v < INT64_MIN) {
    throw std::overflow_error("mcr::Rational: value exceeds 64-bit range");
  }
  return static_cast<std::int64_t>(v);
}

}  // namespace

Rational::Rational(std::int64_t n, std::int64_t d) {
  if (d == 0) throw std::invalid_argument("mcr::Rational: zero denominator");
  if (d < 0) {
    // INT64_MIN would overflow on negation; no sane cycle has that many arcs.
    if (d == INT64_MIN || n == INT64_MIN) {
      throw std::overflow_error("mcr::Rational: denominator overflow");
    }
    n = -n;
    d = -d;
  }
  const std::int64_t g = std::gcd(n, d);
  num_ = g == 0 ? 0 : n / g;
  den_ = g == 0 ? 1 : d / g;
  if (num_ == 0) den_ = 1;
}

Rational Rational::from_int128(int128 n, int128 d) {
  if (d == 0) throw std::invalid_argument("mcr::Rational: zero denominator");
  if (d < 0) {
    n = -n;
    d = -d;
  }
  i128 a = n < 0 ? -n : n;
  i128 b = d;
  while (b != 0) {
    const i128 t = a % b;
    a = b;
    b = t;
  }
  const i128 g = a == 0 ? 1 : a;
  n /= g;
  d /= g;
  if (n > INT64_MAX || n < INT64_MIN || d > INT64_MAX) {
    throw NumericOverflow("Rational::from_int128 (reduced value exceeds int64)");
  }
  Rational r;
  r.num_ = n == 0 ? 0 : static_cast<std::int64_t>(n);
  r.den_ = n == 0 ? 1 : static_cast<std::int64_t>(d);
  return r;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = checked_narrow(-static_cast<i128>(num_));
  r.den_ = den_;
  return r;
}

Rational Rational::operator+(const Rational& o) const {
  const i128 n = static_cast<i128>(num_) * o.den_ + static_cast<i128>(o.num_) * den_;
  const i128 d = static_cast<i128>(den_) * o.den_;
  // Reduce in 128 bits before narrowing.
  i128 a = n < 0 ? -n : n;
  i128 b = d;
  while (b != 0) {
    const i128 t = a % b;
    a = b;
    b = t;
  }
  const i128 g = a == 0 ? 1 : a;
  return Rational(checked_narrow(n / g), checked_narrow(d / g));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce first to keep intermediates small.
  const std::int64_t g1 = std::gcd(num_, o.den_);
  const std::int64_t g2 = std::gcd(o.num_, den_);
  const i128 n = static_cast<i128>(num_ / (g1 ? g1 : 1)) * (o.num_ / (g2 ? g2 : 1));
  const i128 d = static_cast<i128>(den_ / (g2 ? g2 : 1)) * (o.den_ / (g1 ? g1 : 1));
  return Rational(checked_narrow(n), checked_narrow(d));
}

Rational Rational::operator/(const Rational& o) const {
  if (o.num_ == 0) throw std::invalid_argument("mcr::Rational: division by zero");
  Rational inv;
  if (o.num_ < 0) {
    inv = Rational(-o.den_, -o.num_);
  } else {
    inv = Rational(o.den_, o.num_);
  }
  return *this * inv;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  const int128 lhs = static_cast<int128>(a.num_) * b.den_;
  const int128 rhs = static_cast<int128>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

std::strong_ordering compare_fraction(std::int64_t a, std::int64_t b, const Rational& r) {
  assert(b > 0);
  const int128 lhs = static_cast<int128>(a) * r.den();
  const int128 rhs = static_cast<int128>(r.num()) * b;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

}  // namespace mcr
