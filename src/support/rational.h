// Exact rational arithmetic for cycle means and cycle ratios.
//
// A cycle mean is w(C)/|C| and a cycle ratio is w(C)/t(C); with 64-bit
// integer arc weights these are ratios of 64-bit integers. All solver
// results in this library are reported as Rational so that tests can
// compare answers exactly, with no epsilon tuning. Comparisons and
// arithmetic cross-multiply in __int128, so any pair of in-range
// rationals compares without overflow.
#ifndef MCR_SUPPORT_RATIONAL_H
#define MCR_SUPPORT_RATIONAL_H

#include <cstdint>
#include <compare>
#include <iosfwd>
#include <string>

#include "support/int128.h"

namespace mcr {

/// An exact rational number num/den with den > 0, kept in lowest terms.
///
/// The default value is 0/1. A Rational is a regular type: cheap to copy,
/// totally ordered, hashable via (num, den).
class Rational {
 public:
  constexpr Rational() = default;
  /// Implicit from integers: the rational value n/1.
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT(google-explicit-constructor)
  /// The rational n/d. Requires d != 0; the sign is normalized onto the
  /// numerator and the fraction is reduced.
  Rational(std::int64_t n, std::int64_t d);

  /// The rational n/d from 128-bit parts: reduces in 128 bits first and
  /// throws NumericOverflow only when the *reduced* fraction still does
  /// not fit in int64. The promotion paths (Karp's wide re-solve,
  /// exact_cycle_value) build their final values through this.
  [[nodiscard]] static Rational from_int128(int128 n, int128 d);

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  /// Closest double; exact when representable.
  [[nodiscard]] double to_double() const;

  /// "num/den", or just "num" when den == 1.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_integer() const { return den_ == 1; }

  Rational operator-() const;
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Requires o != 0.
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// Compares the rational a/b (b > 0) against r without constructing a
/// Rational; used in solver inner loops.
[[nodiscard]] std::strong_ordering compare_fraction(std::int64_t a, std::int64_t b,
                                                    const Rational& r);

}  // namespace mcr

#endif  // MCR_SUPPORT_RATIONAL_H
