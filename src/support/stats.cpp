#include "support/stats.h"

#include <cmath>

namespace mcr {

void RunStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

double RunStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace mcr
