// Small descriptive-statistics accumulator and wall-clock timing used by
// the benchmark harness. The paper averages every random-graph data
// point over 10 seeds; RunStats is how benches aggregate those runs.
#ifndef MCR_SUPPORT_STATS_H
#define MCR_SUPPORT_STATS_H

#include <chrono>
#include <cstddef>
#include <limits>

namespace mcr {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator); 0 when n < 2.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double total() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Monotonic stopwatch reporting elapsed seconds (double) or milliseconds.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mcr

#endif  // MCR_SUPPORT_STATS_H
