#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mcr {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_ms(double seconds) { return fmt_fixed(seconds * 1e3, 2); }

}  // namespace mcr
