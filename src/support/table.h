// Plain-text and CSV table emission for the benchmark harness. Each
// bench binary prints the same row layout as the paper's tables so the
// output can be compared against the published numbers side by side.
#ifndef MCR_SUPPORT_TABLE_H
#define MCR_SUPPORT_TABLE_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mcr {

/// A simple right-aligned column table. Collect rows of strings, then
/// print to a stream; column widths are computed from the content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with a header underline and two-space gutters.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers used by the benches.
[[nodiscard]] std::string fmt_fixed(double v, int digits);
[[nodiscard]] std::string fmt_ms(double seconds);

}  // namespace mcr

#endif  // MCR_SUPPORT_TABLE_H
