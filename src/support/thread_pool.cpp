#include "support/thread_pool.h"

#include <chrono>
#include <utility>

#include "fault/fault.h"

namespace mcr {

int ThreadPool::hardware_threads() {
  const unsigned h = std::thread::hardware_concurrency();
  return h == 0 ? 1 : static_cast<int>(h);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = hardware_threads();
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  work_available_.notify_all();
  // Collect handles under threads_mutex_: once stop_ is set a dying
  // worker declines its death (retire_and_respawn checks stop_ under
  // the same mutex), so the set of handles is final after this move.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lk(threads_mutex_);
    to_join = std::move(threads_);
    for (std::thread& t : retired_) to_join.push_back(std::move(t));
    retired_.clear();
  }
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t w =
      next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  unfinished_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(workers_[w]->mutex);
    workers_[w]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  {
    // Taking the sleep mutex serializes against a worker that has just
    // found every deque empty and is about to wait — without it the
    // notify could fire in that window and be lost.
    std::lock_guard<std::mutex> lk(sleep_mutex_);
  }
  work_available_.notify_one();
}

bool ThreadPool::run_one(std::size_t self) {
  std::function<void()> task;
  const std::size_t k = workers_.size();
  for (std::size_t i = 0; i < k; ++i) {
    Worker& victim = *workers_[(self + i) % k];
    std::lock_guard<std::mutex> lk(victim.mutex);
    if (victim.tasks.empty()) continue;
    if (i == 0) {  // own deque: front (LIFO locality)
      task = std::move(victim.tasks.front());
      victim.tasks.pop_front();
    } else {  // steal: opposite end
      task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      workers_[self]->steals.fetch_add(1, std::memory_order_relaxed);
    }
    break;
  }
  if (!task) return false;
  queued_.fetch_sub(1, std::memory_order_relaxed);
  // One stall/death draw per task (not per scheduling loop), so a given
  // fault plan injects the same number of worker faults regardless of
  // how the OS interleaves the workers.
  const fault::Decision stall = MCR_FAULT_POINT(fault::Site::kWorkerStall);
  if (stall.action == fault::Action::kStall) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall.param));
  }
  try {
    task();
  } catch (...) {
    // Tasks own their error channel (core/driver.cpp captures a
    // per-slot exception_ptr); anything reaching here would otherwise
    // std::terminate the process, so contain and count it.
    task_exceptions_.fetch_add(1, std::memory_order_relaxed);
  }
  workers_[self]->tasks_executed.fetch_add(1, std::memory_order_relaxed);
  if (MCR_FAULT_POINT(fault::Site::kWorkerDeath).action == fault::Action::kDeath) {
    workers_[self]->die_pending = true;
  }
  if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(sleep_mutex_);
    all_done_.notify_all();
  }
  return true;
}

bool ThreadPool::retire_and_respawn(std::size_t self) {
  std::lock_guard<std::mutex> lk(threads_mutex_);
  if (stop_.load(std::memory_order_relaxed)) return false;  // shutting down
  deaths_.fetch_add(1, std::memory_order_relaxed);
  // Moving our own handle is safe (it does not touch the running
  // thread); the destructor joins it from retired_. The replacement
  // inherits this worker's slot and therefore its deque — no task is
  // stranded by the death.
  retired_.push_back(std::move(threads_[self]));
  threads_[self] = std::thread([this, self] { worker_main(self); });
  return true;
}

void ThreadPool::worker_main(std::size_t self) {
  for (;;) {
    if (run_one(self)) {
      if (workers_[self]->die_pending) {
        workers_[self]->die_pending = false;
        if (retire_and_respawn(self)) return;  // this thread "crashes"
      }
      continue;
    }
    // Idle accounting brackets the park only (two clock reads on a path
    // where the worker found every deque empty — noise next to a solve).
    const auto idle_start = std::chrono::steady_clock::now();
    {
      std::unique_lock<std::mutex> lk(sleep_mutex_);
      work_available_.wait(lk, [this] {
        return stop_.load(std::memory_order_relaxed) ||
               queued_.load(std::memory_order_acquire) > 0;
      });
    }
    workers_[self]->idle_nanos.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - idle_start)
                .count()),
        std::memory_order_relaxed);
    if (stop_.load(std::memory_order_relaxed) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

std::vector<ThreadPool::WorkerStats> ThreadPool::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(workers_.size());
  for (const auto& w : workers_) {
    WorkerStats s;
    s.tasks_executed = w->tasks_executed.load(std::memory_order_relaxed);
    s.steals = w->steals.load(std::memory_order_relaxed);
    s.idle_seconds =
        static_cast<double>(w->idle_nanos.load(std::memory_order_relaxed)) * 1e-9;
    out.push_back(s);
  }
  return out;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(sleep_mutex_);
  all_done_.wait(lk,
                 [this] { return unfinished_.load(std::memory_order_acquire) == 0; });
}

}  // namespace mcr
