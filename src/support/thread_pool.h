// A small work-stealing thread pool for embarrassingly parallel solver
// work (per-SCC solves, batch instance solves).
//
// Design points:
//   * Each worker owns a deque; submit() distributes round-robin. A
//     worker pops from the front of its own deque and steals from the
//     back of a victim's, so contention only appears when a worker runs
//     dry — the classic Chase-Lev discipline, here with plain mutexes
//     because pool tasks (whole SCC solves) are microseconds at minimum
//     and queue traffic is negligible against them.
//   * The pool guarantees nothing about execution order. Callers that
//     need deterministic output (the SCC driver does) must write
//     results into per-task slots and merge in a fixed order afterwards.
//   * Exceptions must not escape a task; wrap the body and capture a
//     std::exception_ptr per slot (see core/driver.cpp for the idiom).
//     As a last line of defense the pool contains (swallows and counts
//     in task_exceptions()) anything that does escape, so a buggy task
//     degrades one result instead of std::terminate-ing the process.
//   * Workers are self-healing: a worker that dies mid-service (today
//     only via fault injection, Site::kWorkerDeath) retires its own
//     thread handle and installs a replacement on the same deque, so
//     pending tasks are never stranded. deaths() counts respawns.
#ifndef MCR_SUPPORT_THREAD_POOL_H
#define MCR_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcr {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware_threads().
  explicit ThreadPool(int num_threads = 0);

  /// Joins all workers after draining every submitted task.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe; tasks may themselves submit.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void wait_idle();

  [[nodiscard]] int size() const { return static_cast<int>(threads_.size()); }

  /// Per-worker utilization counters for the observability layer.
  struct WorkerStats {
    std::uint64_t tasks_executed = 0;  // tasks this worker ran (own + stolen)
    std::uint64_t steals = 0;          // of those, taken from a victim's deque
    double idle_seconds = 0.0;         // wall time spent parked waiting for work
  };

  /// Snapshot of every worker's stats, indexed by worker. Counters are
  /// updated with relaxed atomics by the workers themselves; read after
  /// wait_idle() for totals consistent with the submitted work (a
  /// sleeping worker's idle_seconds grows until it next wakes).
  [[nodiscard]] std::vector<WorkerStats> worker_stats() const;

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static int hardware_threads();

  /// Tasks whose exceptions escaped into the pool (contained, counted).
  [[nodiscard]] std::uint64_t task_exceptions() const {
    return task_exceptions_.load(std::memory_order_relaxed);
  }
  /// Worker deaths survived by respawning (fault injection only).
  [[nodiscard]] std::uint64_t deaths() const {
    return deaths_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
    std::atomic<std::uint64_t> tasks_executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> idle_nanos{0};
    /// Set by run_one (owning thread only) when a kWorkerDeath decision
    /// fired; worker_main acts on it between tasks.
    bool die_pending = false;
  };

  void worker_main(std::size_t self);
  /// Pops own front or steals a victim's back; runs at most one task.
  bool run_one(std::size_t self);
  /// Moves the caller's own thread handle to retired_ and installs a
  /// replacement worker on the same slot/deque. Returns false (death
  /// declined) when the pool is already stopping.
  bool retire_and_respawn(std::size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  /// Guards threads_ and retired_ against the destructor racing a
  /// dying worker's respawn.
  std::mutex threads_mutex_;
  std::vector<std::thread> retired_;
  std::atomic<std::uint64_t> task_exceptions_{0};
  std::atomic<std::uint64_t> deaths_{0};
  std::vector<std::thread> threads_;
  std::mutex sleep_mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::atomic<std::size_t> queued_{0};      // submitted, not yet popped
  std::atomic<std::size_t> unfinished_{0};  // submitted, not yet completed
  std::atomic<std::size_t> next_worker_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace mcr

#endif  // MCR_SUPPORT_THREAD_POOL_H
