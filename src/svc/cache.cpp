#include "svc/cache.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace mcr::svc {

ResultCache::ResultCache(std::size_t capacity, obs::MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics) {}

ResultCache::Outcome ResultCache::acquire(const CacheKey& key) {
  std::unique_lock lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    if (metrics_ != nullptr) metrics_->counter("mcr_cache_hits_total").add(1);
    return Outcome{Role::kHit, it->second->result, it->second->solve_ms, "", ""};
  }
  if (const auto it = flights_.find(key); it != flights_.end()) {
    const std::shared_ptr<Flight> flight = it->second;
    if (metrics_ != nullptr) {
      metrics_->counter("mcr_singleflight_joins_total").add(1);
    }
    flight->cv.wait(lock, [&] { return flight->done; });
    Outcome out;
    out.role = Role::kJoined;
    if (flight->ok) {
      out.result = flight->result;
      out.solve_ms = flight->solve_ms;
    } else {
      out.error_code = flight->error_code;
      out.error_message = flight->error_message;
    }
    return out;
  }
  flights_.emplace(key, std::make_shared<Flight>());
  if (metrics_ != nullptr) metrics_->counter("mcr_cache_misses_total").add(1);
  return Outcome{Role::kLead, {}, 0.0, "", ""};
}

void ResultCache::finish_flight(const CacheKey& key, bool ok,
                                const CycleResult* result, double solve_ms,
                                const std::string& code, const std::string& message) {
  std::shared_ptr<Flight> flight;
  {
    std::lock_guard lock(mutex_);
    const auto it = flights_.find(key);
    if (it == flights_.end()) {
      throw std::logic_error("ResultCache: publish/fail without a flight");
    }
    flight = it->second;
    flights_.erase(it);
    if (ok) {
      lru_.push_front(Entry{key, *result, solve_ms});
      index_[key] = lru_.begin();
      while (lru_.size() > capacity_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        if (metrics_ != nullptr) {
          metrics_->counter("mcr_cache_evictions_total").add(1);
        }
      }
      if (metrics_ != nullptr) {
        metrics_->gauge("mcr_cache_entries").set(static_cast<std::int64_t>(lru_.size()));
      }
    }
    flight->ok = ok;
    if (ok) {
      flight->result = *result;
      flight->solve_ms = solve_ms;
    } else {
      flight->error_code = code;
      flight->error_message = message;
    }
    flight->done = true;
  }
  flight->cv.notify_all();
}

void ResultCache::publish(const CacheKey& key, const CycleResult& result,
                          double solve_ms) {
  finish_flight(key, /*ok=*/true, &result, solve_ms, "", "");
}

void ResultCache::fail(const CacheKey& key, const std::string& code,
                       const std::string& message) {
  finish_flight(key, /*ok=*/false, nullptr, 0.0, code, message);
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

}  // namespace mcr::svc
