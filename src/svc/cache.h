// LRU result cache with single-flight deduplication.
//
// The service's hot case — the CAD motivation from the paper — is the
// same (graph, objective, algorithm) query arriving many times, often
// concurrently, while a timing loop iterates. Two mechanisms cover it:
//
//   * LRU cache: completed results keyed by (fingerprint, objective,
//     algorithm). Results are thread-count independent (the driver's
//     deterministic-merge contract), so the key needs no execution
//     parameters.
//   * Single-flight: when a key misses while an identical request is
//     already solving, the newcomer joins that flight and waits for its
//     result instead of solving again. Exactly one caller per key is
//     ever told to solve (the "leader").
//
// Failures (BUSY rejection, deadline, solver error) complete a flight
// with an error: every joiner receives it, and nothing is cached —
// transient conditions must not poison future requests.
#ifndef MCR_SVC_CACHE_H
#define MCR_SVC_CACHE_H

#include <condition_variable>
#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/result.h"

namespace mcr::obs {
class MetricsRegistry;
}  // namespace mcr::obs

namespace mcr::svc {

/// Cache identity of one solve request.
struct CacheKey {
  std::string fingerprint;  // graph content address (Fingerprint::hex)
  std::string objective;    // min_mean / min_ratio / max_mean / max_ratio
  std::string algorithm;    // registry solver name

  friend auto operator<=>(const CacheKey&, const CacheKey&) = default;
};

class ResultCache {
 public:
  /// `capacity` = max completed entries retained (LRU eviction beyond).
  /// When `metrics` is set the cache maintains mcr_cache_hits_total,
  /// mcr_cache_misses_total, mcr_cache_evictions_total,
  /// mcr_singleflight_joins_total, and the mcr_cache_entries gauge.
  explicit ResultCache(std::size_t capacity,
                       obs::MetricsRegistry* metrics = nullptr);

  enum class Role {
    kHit,     // result served from cache
    kLead,    // caller must solve, then publish() or fail()
    kJoined,  // waited on another caller's flight; result or error below
  };

  struct Outcome {
    Role role = Role::kHit;
    CycleResult result;     // kHit, or kJoined with empty error
    double solve_ms = 0.0;  // wall time of the solve that produced result
    std::string error_code;     // kJoined only; empty = success
    std::string error_message;  // kJoined only
  };

  /// Looks the key up. kHit returns immediately; kLead makes the caller
  /// responsible for exactly one publish()/fail() with the same key;
  /// kJoined blocks until the leader completes and relays its outcome.
  [[nodiscard]] Outcome acquire(const CacheKey& key);

  /// Completes the caller's flight with a result: inserts it into the
  /// LRU (evicting the coldest entry beyond capacity) and wakes joiners.
  void publish(const CacheKey& key, const CycleResult& result, double solve_ms);

  /// Completes the caller's flight with an error: wakes joiners with
  /// (code, message); nothing is cached.
  void fail(const CacheKey& key, const std::string& code, const std::string& message);

  [[nodiscard]] std::size_t size() const;

 private:
  struct Flight {
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    CycleResult result;
    double solve_ms = 0.0;
    std::string error_code;
    std::string error_message;
  };
  struct Entry {
    CacheKey key;
    CycleResult result;
    double solve_ms = 0.0;
  };

  void finish_flight(const CacheKey& key, bool ok, const CycleResult* result,
                     double solve_ms, const std::string& code,
                     const std::string& message);

  std::size_t capacity_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = hottest
  std::map<CacheKey, std::list<Entry>::iterator> index_;
  std::map<CacheKey, std::shared_ptr<Flight>> flights_;
};

}  // namespace mcr::svc

#endif  // MCR_SVC_CACHE_H
