#include "svc/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace mcr::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw std::runtime_error("unix socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + socket_path + ")");
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_bytes(std::string_view bytes) {
  if (!write_all(fd_, bytes)) throw std::runtime_error("Client: write failed");
}

std::string Client::read_payload(std::size_t max_frame_bytes) {
  std::string payload;
  switch (read_frame(fd_, max_frame_bytes, payload)) {
    case ReadStatus::kOk:
      return payload;
    case ReadStatus::kClosed:
      throw std::runtime_error("Client: server closed the connection");
    case ReadStatus::kBadMagic:
      throw std::runtime_error("Client: bad response magic");
    case ReadStatus::kTooLarge:
      throw std::runtime_error("Client: response frame too large");
    case ReadStatus::kTruncated:
      throw std::runtime_error("Client: truncated response");
  }
  throw std::runtime_error("Client: unreachable");
}

std::string Client::request_raw(std::string_view payload) {
  send_bytes(encode_frame(payload));
  return read_payload();
}

json::Value Client::request(std::string_view payload) {
  return json::parse(request_raw(payload));
}

bool Client::ping() {
  const json::Value r = request(R"({"verb":"PING"})");
  return r.string_or("status", "") == "ok";
}

std::string Client::load_dimacs_text(const std::string& dimacs) {
  const json::Value r =
      request(std::string(R"({"verb":"LOAD","dimacs":")") + json_escape(dimacs) +
              "\"}");
  if (r.string_or("status", "") != "ok") {
    throw std::runtime_error("LOAD failed: " + r.string_or("message", "?"));
  }
  return r.at("fingerprint").as_string();
}

json::Value Client::solve(const std::string& fingerprint, const std::string& objective,
                          const std::string& algo, double deadline_ms) {
  std::string payload = R"({"verb":"SOLVE","fingerprint":")" + fingerprint +
                        R"(","objective":")" + objective + "\"";
  if (!algo.empty()) payload += R"(,"algo":")" + json_escape(algo) + "\"";
  if (deadline_ms > 0.0) payload += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  payload += "}";
  return request(payload);
}

json::Value Client::stats() { return request(R"({"verb":"STATS"})"); }

}  // namespace mcr::svc
