#include "svc/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace mcr::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

int open_unix(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    throw TransportError("unix socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + socket_path + ")");
  }
  return fd;
}

int open_tcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &results);
  if (rc != 0) {
    throw TransportError("resolve(" + host + "): " + ::gai_strerror(rc));
  }
  int saved = ECONNREFUSED;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      saved = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(results);
      return fd;
    }
    saved = errno;
    ::close(fd);
  }
  ::freeaddrinfo(results);
  errno = saved;
  throw_errno("connect(" + host + ":" + std::to_string(port) + ")");
}

/// splitmix64 step — enough PRNG for backoff jitter, with no global
/// state so two clients never perturb each other's schedules.
std::uint64_t next_u64(std::uint64_t& s) {
  s += 0x9e37'79b9'7f4a'7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d0'49bb'1331'11ebULL;
  return z ^ (z >> 31);
}

double uniform(std::uint64_t& s, double lo, double hi) {
  const double u = static_cast<double>(next_u64(s) >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

bool has_trace_id(std::string_view payload) {
  return payload.find("\"trace_id\"") != std::string_view::npos;
}

/// Splices trace-context fields before the payload object's closing
/// brace; parent_span may be empty (omitted).
std::string with_trace_context(std::string_view payload,
                               std::string_view trace_id,
                               std::string_view parent_span) {
  const auto brace = payload.rfind('}');
  if (brace == std::string_view::npos || trace_id.empty()) {
    return std::string(payload);
  }
  std::string out(payload.substr(0, brace));
  const auto last = out.find_last_not_of(" \t\r\n");
  if (last != std::string::npos && out[last] != '{') out += ',';
  out += "\"trace_id\":\"";
  out += json_escape(trace_id);
  out += '"';
  if (!parent_span.empty()) {
    out += ",\"parent_span\":\"";
    out += json_escape(parent_span);
    out += '"';
  }
  out.append(payload.substr(brace));
  return out;
}

}  // namespace

Client Client::connect_unix(const std::string& socket_path) {
  Client c(open_unix(socket_path));
  c.endpoint_.kind = Endpoint::Kind::kUnix;
  c.endpoint_.path = socket_path;
  return c;
}

Client Client::connect_tcp(int port) { return connect_tcp("127.0.0.1", port); }

Client Client::connect_tcp(const std::string& host, int port) {
  Client c(open_tcp(host, port));
  c.endpoint_.kind = Endpoint::Kind::kTcp;
  c.endpoint_.host = host;
  c.endpoint_.port = port;
  return c;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::exchange(other.endpoint_, Endpoint{})),
      policy_(other.policy_),
      jitter_state_(other.jitter_state_),
      trace_id_(std::move(other.trace_id_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::exchange(other.endpoint_, Endpoint{});
    policy_ = other.policy_;
    jitter_state_ = other.jitter_state_;
    trace_id_ = std::move(other.trace_id_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::reconnect() {
  switch (endpoint_.kind) {
    case Endpoint::Kind::kUnix: {
      const int fd = open_unix(endpoint_.path);  // throws on failure
      if (fd_ >= 0) ::close(fd_);
      fd_ = fd;
      return;
    }
    case Endpoint::Kind::kTcp: {
      const int fd = open_tcp(endpoint_.host, endpoint_.port);
      if (fd_ >= 0) ::close(fd_);
      fd_ = fd;
      return;
    }
    case Endpoint::Kind::kNone:
      throw TransportError("Client: cannot reconnect (endpoint unknown)");
  }
}

void Client::set_retry_policy(const RetryPolicy& policy) {
  policy_ = policy;
  jitter_state_ = policy.jitter_seed;
}

void Client::send_bytes(std::string_view bytes) {
  if (!write_all(fd_, bytes)) throw_errno("Client: write failed");
}

std::string Client::read_payload(std::size_t max_frame_bytes) {
  std::string payload;
  switch (read_frame(fd_, max_frame_bytes, payload)) {
    case ReadStatus::kOk:
      return payload;
    case ReadStatus::kClosed:
      throw TransportError("Client: server closed the connection");
    case ReadStatus::kBadMagic:
      throw TransportError("Client: bad response magic");
    case ReadStatus::kTooLarge:
      throw TransportError("Client: response frame too large");
    case ReadStatus::kTruncated:
      throw TransportError("Client: truncated response");
  }
  throw TransportError("Client: unreachable");
}

std::string Client::request_raw(std::string_view payload) {
  // The sticky trace id rides on every outgoing object-shaped payload
  // that doesn't already carry one — raw callers (mcr_query's solve
  // path, byte-identity tests) get the same propagation as request().
  // Non-JSON payloads (robustness tests send garbage) pass untouched.
  std::string augmented;
  if (!trace_id_.empty() && !has_trace_id(payload) && !payload.empty() &&
      payload.back() == '}') {
    augmented = with_trace_context(payload, trace_id_, {});
    payload = augmented;
  }
  send_bytes(encode_frame(payload));
  return read_payload();
}

json::Value Client::request(std::string_view payload) {
  try {
    return json::parse(request_raw(payload));
  } catch (const TransportError&) {
    throw;
  } catch (const std::exception& e) {
    // An ok-framed but unparseable response is a transport-class
    // failure: the stream can no longer be trusted.
    throw TransportError(std::string("Client: bad response JSON: ") + e.what());
  }
}

json::Value Client::request_retry(std::string_view payload) {
  if (jitter_state_ == 0) jitter_state_ = policy_.jitter_seed;
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  // One trace id for the whole flight: every attempt carries the same
  // id plus its own "attempt/<k>" parent span, so the server's flight
  // recorder groups retries of one call under one identity.
  const bool caller_traced = has_trace_id(payload);
  const std::string flight_id =
      caller_traced ? std::string()
                    : (trace_id_.empty() ? generate_trace_id() : trace_id_);
  double prev_sleep = policy_.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    bool transport_failed = false;
    try {
      const std::string attempt_payload =
          caller_traced ? std::string(payload)
                        : with_trace_context(payload, flight_id,
                                             "attempt/" + std::to_string(attempt));
      const json::Value r = request(attempt_payload);
      if (r.string_or("status", "") != "error") return r;
      ServiceError err(r.string_or("code", kErrInternal), r.string_or("message", ""));
      if (!err.retryable() || attempt >= policy_.max_attempts) throw err;
    } catch (const TransportError&) {
      if (attempt >= policy_.max_attempts) throw;
      transport_failed = true;
    }
    // Decorrelated jitter: sleep ~ U[base, 3 * previous], capped.
    const double sleep_ms =
        std::min(policy_.max_backoff_ms,
                 uniform(jitter_state_, policy_.initial_backoff_ms,
                         std::max(policy_.initial_backoff_ms, 3.0 * prev_sleep)));
    prev_sleep = sleep_ms;
    if (policy_.budget_ms > 0 && elapsed_ms() + sleep_ms > policy_.budget_ms) {
      throw TransportError("Client: retry budget exhausted after " +
                           std::to_string(attempt) + " attempts");
    }
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(sleep_ms));
    if (transport_failed) {
      // The old connection may hold half a frame; always start clean.
      // A failed reconnect consumes attempts like any other failure.
      try {
        reconnect();
      } catch (const TransportError&) {
        if (attempt + 1 >= policy_.max_attempts) throw;
      }
    }
  }
}

bool Client::ping() {
  const json::Value r = request(R"({"verb":"PING"})");
  return r.string_or("status", "") == "ok";
}

std::string Client::load_dimacs_text(const std::string& dimacs) {
  const json::Value r =
      request(std::string(R"({"verb":"LOAD","dimacs":")") + json_escape(dimacs) +
              "\"}");
  if (r.string_or("status", "") != "ok") {
    // Typed so callers can branch on the code (ServiceError is a
    // runtime_error, so pre-existing catch sites still work).
    throw ServiceError(r.string_or("code", "INTERNAL"),
                       "LOAD failed: " + r.string_or("message", "?"));
  }
  return r.at("fingerprint").as_string();
}

std::string Client::solve_payload(const std::string& fingerprint,
                                  const std::string& objective,
                                  const std::string& algo, double deadline_ms) const {
  std::string payload = R"({"verb":"SOLVE","fingerprint":")" + fingerprint +
                        R"(","objective":")" + objective + "\"";
  if (!algo.empty()) payload += R"(,"algo":")" + json_escape(algo) + "\"";
  if (deadline_ms > 0.0) payload += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  payload += "}";
  return payload;
}

json::Value Client::solve(const std::string& fingerprint, const std::string& objective,
                          const std::string& algo, double deadline_ms) {
  return request(solve_payload(fingerprint, objective, algo, deadline_ms));
}

json::Value Client::solve_retry(const std::string& fingerprint,
                                const std::string& objective, const std::string& algo,
                                double deadline_ms) {
  return request_retry(solve_payload(fingerprint, objective, algo, deadline_ms));
}

json::Value Client::stats(bool window) {
  return request(window ? R"({"verb":"STATS","window":true})"
                        : R"({"verb":"STATS"})");
}

json::Value Client::health() { return request(R"({"verb":"HEALTH"})"); }

json::Value Client::reload(const std::string& path) {
  std::string payload = R"({"verb":"RELOAD")";
  if (!path.empty()) payload += ",\"path\":\"" + json_escape(path) + "\"";
  payload += "}";
  return request(payload);
}

}  // namespace mcr::svc
