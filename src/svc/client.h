// svc::Client — blocking client for the mcr solve service.
//
// One Client owns one connection and issues one request at a time
// (frame out, frame in). It is a thin transport: payloads are JSON
// strings built by the caller or by the convenience helpers below,
// responses come back parsed. Not thread-safe; use one Client per
// thread (connections are cheap, the server handles many).
#ifndef MCR_SVC_CLIENT_H
#define MCR_SVC_CLIENT_H

#include <cstddef>
#include <string>
#include <string_view>

#include "support/json.h"
#include "svc/protocol.h"

namespace mcr::svc {

class Client {
 public:
  [[nodiscard]] static Client connect_unix(const std::string& socket_path);
  /// Loopback TCP (the server binds 127.0.0.1 only).
  [[nodiscard]] static Client connect_tcp(int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One request round trip: frames `payload`, reads one response
  /// frame, parses it. Throws std::runtime_error on transport failure
  /// or unparseable response.
  [[nodiscard]] json::Value request(std::string_view payload);
  /// Same, returning the raw response payload text.
  [[nodiscard]] std::string request_raw(std::string_view payload);

  /// Convenience verbs.
  [[nodiscard]] bool ping();
  /// Returns the fingerprint of the loaded graph.
  [[nodiscard]] std::string load_dimacs_text(const std::string& dimacs);
  /// SOLVE by fingerprint; `deadline_ms <= 0` means no deadline.
  /// Returns the parsed response (status/ok/error fields included).
  [[nodiscard]] json::Value solve(const std::string& fingerprint,
                                  const std::string& objective = "min_mean",
                                  const std::string& algo = "",
                                  double deadline_ms = 0.0);
  /// Parsed STATS response.
  [[nodiscard]] json::Value stats();

  /// Raw transport access for protocol-robustness tests.
  void send_bytes(std::string_view bytes);
  /// Reads one response frame; throws on close/framing error.
  [[nodiscard]] std::string read_payload(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);
  [[nodiscard]] int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace mcr::svc

#endif  // MCR_SVC_CLIENT_H
