// svc::Client — blocking client for the mcr solve service.
//
// One Client owns one connection and issues one request at a time
// (frame out, frame in). It is a thin transport: payloads are JSON
// strings built by the caller or by the convenience helpers below,
// responses come back parsed. Not thread-safe; use one Client per
// thread (connections are cheap, the server handles many).
//
// Resilience: request()/request_raw() are single-shot and throw
// TransportError when the conversation breaks. request_retry() layers a
// RetryPolicy on top — reconnect on transport failure, capped
// exponential backoff with decorrelated jitter on retryable service
// errors (BUSY / DEADLINE_EXCEEDED / SHUTTING_DOWN), all under one
// overall wall-clock budget. Retrying is safe because SOLVE is
// idempotent: results are cached and single-flighted by fingerprint.
#ifndef MCR_SVC_CLIENT_H
#define MCR_SVC_CLIENT_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "support/json.h"
#include "svc/errors.h"
#include "svc/protocol.h"

namespace mcr::svc {

/// Retry schedule for request_retry(). Backoff for attempt k is drawn
/// uniformly from [initial_backoff_ms, 3 * previous_sleep] (decorrelated
/// jitter), clamped to max_backoff_ms — a deterministic sequence for a
/// fixed jitter_seed, so tests and chaos runs reproduce bit-identically.
struct RetryPolicy {
  /// Total tries including the first. <= 1 disables retries.
  int max_attempts = 5;
  double initial_backoff_ms = 10.0;
  double max_backoff_ms = 2000.0;
  /// Overall wall-clock budget across all attempts and sleeps;
  /// <= 0 means unlimited. When the budget cannot cover the next
  /// backoff sleep the last error is rethrown instead.
  double budget_ms = 30'000.0;
  /// Seed for the jitter PRNG (per-client, advanced across calls).
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ULL;
};

class Client {
 public:
  [[nodiscard]] static Client connect_unix(const std::string& socket_path);
  /// Loopback TCP shorthand for connect_tcp("127.0.0.1", port).
  [[nodiscard]] static Client connect_tcp(int port);
  /// TCP to an arbitrary host (numeric address or name, resolved via
  /// getaddrinfo) — used to reach workers bound off-loopback.
  [[nodiscard]] static Client connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// One request round trip: frames `payload`, reads one response
  /// frame, parses it. Throws TransportError (a std::runtime_error) on
  /// transport failure or unparseable response. Server-side errors are
  /// returned as parsed payloads, not thrown.
  [[nodiscard]] json::Value request(std::string_view payload);
  /// Same, returning the raw response payload text.
  [[nodiscard]] std::string request_raw(std::string_view payload);

  void set_retry_policy(const RetryPolicy& policy);
  [[nodiscard]] const RetryPolicy& retry_policy() const { return policy_; }

  /// Sticky trace id: spliced as "trace_id" into every subsequent
  /// request payload that does not already carry one, so the server
  /// echoes it back and retains the request's trace under it. Empty
  /// (the default) lets request_retry mint one per flight and leaves
  /// single-shot requests to the server's own generation.
  void set_trace_id(std::string trace_id) { trace_id_ = std::move(trace_id); }
  [[nodiscard]] const std::string& trace_id() const { return trace_id_; }

  /// request() under the retry policy. Transport failures reconnect to
  /// the original endpoint and retry; "status":"error" responses with a
  /// retryable code back off and retry; non-retryable service errors
  /// throw ServiceError immediately. When attempts or budget run out,
  /// the last typed error is thrown. On success returns the parsed
  /// "status":"ok" response.
  ///
  /// Trace context: unless the payload already carries a "trace_id",
  /// every attempt of one call shares a single trace id (the sticky one
  /// from set_trace_id, or a freshly minted one) and marks itself as
  /// "parent_span":"attempt/<k>" — the server then retains each attempt
  /// as a child trace of the same logical flight.
  [[nodiscard]] json::Value request_retry(std::string_view payload);

  /// Convenience verbs.
  [[nodiscard]] bool ping();
  /// Returns the fingerprint of the loaded graph.
  [[nodiscard]] std::string load_dimacs_text(const std::string& dimacs);
  /// SOLVE by fingerprint; `deadline_ms <= 0` means no deadline.
  /// Returns the parsed response (status/ok/error fields included).
  [[nodiscard]] json::Value solve(const std::string& fingerprint,
                                  const std::string& objective = "min_mean",
                                  const std::string& algo = "",
                                  double deadline_ms = 0.0);
  /// SOLVE under the retry policy (see request_retry). Throws
  /// ServiceError / TransportError instead of returning error payloads.
  [[nodiscard]] json::Value solve_retry(const std::string& fingerprint,
                                        const std::string& objective = "min_mean",
                                        const std::string& algo = "",
                                        double deadline_ms = 0.0);
  /// Parsed STATS response. `window` additionally requests the
  /// time-windowed per-verb latency view ("window" key).
  [[nodiscard]] json::Value stats(bool window = false);
  /// Parsed HEALTH response (liveness, queue depth, last-solve age).
  [[nodiscard]] json::Value health();
  /// RELOAD: hot-swap the server's dataset to the pack at `path`, or
  /// re-attach the currently attached path when `path` is empty.
  /// Returns the parsed response (new fingerprint and generation on
  /// success, an error payload on rejection).
  [[nodiscard]] json::Value reload(const std::string& path = "");

  /// Raw transport access for protocol-robustness tests.
  void send_bytes(std::string_view bytes);
  /// Reads one response frame; throws on close/framing error.
  [[nodiscard]] std::string read_payload(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);
  [[nodiscard]] int fd() const { return fd_; }

  /// Drops and re-establishes the connection to the original endpoint.
  /// Throws TransportError when the endpoint is unknown (moved-from
  /// client) or the connect fails.
  void reconnect();

 private:
  struct Endpoint {
    enum class Kind { kNone, kUnix, kTcp };
    Kind kind = Kind::kNone;
    std::string path;               // unix
    std::string host = "127.0.0.1"; // tcp
    int port = 0;                   // tcp
  };

  explicit Client(int fd) : fd_(fd) {}
  [[nodiscard]] std::string solve_payload(const std::string& fingerprint,
                                          const std::string& objective,
                                          const std::string& algo,
                                          double deadline_ms) const;

  int fd_ = -1;
  Endpoint endpoint_;
  RetryPolicy policy_;
  std::uint64_t jitter_state_ = 0;  // lazily seeded from policy_
  std::string trace_id_;            // sticky; empty = per-call/server minted
};

}  // namespace mcr::svc

#endif  // MCR_SVC_CLIENT_H
