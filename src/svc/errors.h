// Typed client-side errors for the mcr solve service.
//
// Two failure families, deliberately distinct types:
//
//  - TransportError: the conversation itself broke (connect refused,
//    reset, truncated frame, unparseable response). The connection is
//    dead; retrying requires a reconnect.
//  - ServiceError: the server answered, with "status":"error". The
//    connection is fine. Carries the protocol error code; codes BUSY,
//    DEADLINE_EXCEEDED, SHUTTING_DOWN and UPSTREAM_UNAVAILABLE are
//    retryable() — they describe the server's (or, through mcr_router,
//    the fleet's) momentary state, not the request — while BAD_REQUEST,
//    NOT_FOUND etc. are permanent.
//
// Both derive std::runtime_error so existing catch sites keep working.
// Retrying SOLVE is always safe: results are cached and single-flighted
// by fingerprint, so a retry either joins the in-flight solve or hits
// the cache — it never doubles the work (docs/ROBUSTNESS.md).
#ifndef MCR_SVC_ERRORS_H
#define MCR_SVC_ERRORS_H

#include <stdexcept>
#include <string>
#include <string_view>

namespace mcr::svc {

class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

class ServiceError : public std::runtime_error {
 public:
  ServiceError(std::string code, const std::string& message)
      : std::runtime_error(code + ": " + message), code_(std::move(code)) {}

  [[nodiscard]] const std::string& code() const { return code_; }
  /// True for errors that describe transient server state.
  [[nodiscard]] bool retryable() const { return is_retryable_code(code_); }

  [[nodiscard]] static bool is_retryable_code(std::string_view code) {
    return code == "BUSY" || code == "DEADLINE_EXCEEDED" || code == "SHUTTING_DOWN" ||
           code == "UPSTREAM_UNAVAILABLE";
  }

 private:
  std::string code_;
};

}  // namespace mcr::svc

#endif  // MCR_SVC_ERRORS_H
