#include "svc/graph_registry.h"

#include <utility>

#include "graph/fingerprint.h"
#include "obs/metrics.h"

namespace mcr::svc {
namespace {

const std::string kBuilderBytesGauge =
    obs::labeled_name("mcr_graph_bytes", {{"backing", "builder"}});
const std::string kMmapBytesGauge =
    obs::labeled_name("mcr_graph_bytes", {{"backing", "mmap"}});

}  // namespace

GraphRegistry::GraphRegistry(std::size_t capacity, obs::MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics) {}

std::string GraphRegistry::add(Graph&& g) {
  std::string fp = fingerprint_hex(g);
  std::lock_guard lock(mutex_);
  insert_locked(fp, std::make_shared<const Graph>(std::move(g)));
  return fp;
}

void GraphRegistry::add_shared(const std::string& fingerprint_hex,
                               std::shared_ptr<const Graph> g) {
  std::lock_guard lock(mutex_);
  insert_locked(fingerprint_hex, std::move(g));
}

void GraphRegistry::insert_locked(const std::string& fingerprint_hex,
                                  std::shared_ptr<const Graph> g) {
  if (const auto it = index_.find(fingerprint_hex); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Entry entry;
  entry.fingerprint = fingerprint_hex;
  entry.bytes = g->resident_bytes();
  entry.external = g->is_external();
  entry.graph = std::move(g);
  (entry.external ? mmap_bytes_ : builder_bytes_) += entry.bytes;
  lru_.push_front(std::move(entry));
  index_[fingerprint_hex] = lru_.begin();
  if (metrics_ != nullptr) metrics_->counter("mcr_graph_loads_total").add(1);
  while (lru_.size() > capacity_) {
    const Entry& victim = lru_.back();
    (victim.external ? mmap_bytes_ : builder_bytes_) -= victim.bytes;
    index_.erase(victim.fingerprint);
    lru_.pop_back();
    if (metrics_ != nullptr) metrics_->counter("mcr_graph_evictions_total").add(1);
  }
  publish_gauges_locked();
}

void GraphRegistry::publish_gauges_locked() {
  if (metrics_ == nullptr) return;
  metrics_->gauge("mcr_graphs_resident").set(static_cast<std::int64_t>(lru_.size()));
  metrics_->gauge(kBuilderBytesGauge).set(static_cast<std::int64_t>(builder_bytes_));
  metrics_->gauge(kMmapBytesGauge).set(static_cast<std::int64_t>(mmap_bytes_));
}

std::shared_ptr<const Graph> GraphRegistry::find(const std::string& fingerprint_hex) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(fingerprint_hex);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->graph;
}

std::size_t GraphRegistry::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

std::uint64_t GraphRegistry::builder_bytes() const {
  std::lock_guard lock(mutex_);
  return builder_bytes_;
}

std::uint64_t GraphRegistry::mmap_bytes() const {
  std::lock_guard lock(mutex_);
  return mmap_bytes_;
}

}  // namespace mcr::svc
