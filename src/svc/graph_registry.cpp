#include "svc/graph_registry.h"

#include "graph/fingerprint.h"
#include "obs/metrics.h"

namespace mcr::svc {

GraphRegistry::GraphRegistry(std::size_t capacity, obs::MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics) {}

std::string GraphRegistry::add(Graph&& g) {
  std::string fp = fingerprint_hex(g);
  std::lock_guard lock(mutex_);
  if (const auto it = index_.find(fp); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return fp;
  }
  lru_.push_front(Entry{fp, std::make_shared<const Graph>(std::move(g))});
  index_[fp] = lru_.begin();
  if (metrics_ != nullptr) metrics_->counter("mcr_graph_loads_total").add(1);
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().fingerprint);
    lru_.pop_back();
    if (metrics_ != nullptr) metrics_->counter("mcr_graph_evictions_total").add(1);
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("mcr_graphs_resident").set(static_cast<std::int64_t>(lru_.size()));
  }
  return fp;
}

std::shared_ptr<const Graph> GraphRegistry::find(const std::string& fingerprint_hex) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(fingerprint_hex);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->graph;
}

std::size_t GraphRegistry::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

}  // namespace mcr::svc
