// Content-addressed graph registry: load once, solve many times.
//
// The server parses or generates a graph exactly once, fingerprints it
// (graph/fingerprint.h), and serves every later request on the same
// content from the resident copy — the "preloaded data behind a thin
// wire protocol" shape. Entries are shared_ptr<const Graph>: an evicted
// graph stays alive for any solve still holding it, and Graph itself is
// immutable so concurrent solves need no further synchronization.
//
// Capacity is bounded (LRU): a long-lived daemon fed a stream of
// distinct graphs must not grow without limit.
#ifndef MCR_SVC_GRAPH_REGISTRY_H
#define MCR_SVC_GRAPH_REGISTRY_H

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graph/graph.h"

namespace mcr::obs {
class MetricsRegistry;
}  // namespace mcr::obs

namespace mcr::svc {

class GraphRegistry {
 public:
  /// `capacity` = max resident graphs (LRU eviction beyond). With
  /// `metrics` set, maintains the mcr_graphs_resident gauge and the
  /// mcr_graph_loads_total / mcr_graph_evictions_total counters.
  explicit GraphRegistry(std::size_t capacity,
                         obs::MetricsRegistry* metrics = nullptr);

  /// Registers g and returns its fingerprint hex. Idempotent: adding
  /// content that is already resident just touches the LRU entry.
  std::string add(Graph&& g);

  /// Looks a fingerprint up (and touches it). nullptr when absent.
  [[nodiscard]] std::shared_ptr<const Graph> find(const std::string& fingerprint_hex);

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string fingerprint;
    std::shared_ptr<const Graph> graph;
  };

  std::size_t capacity_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = hottest
  std::map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace mcr::svc

#endif  // MCR_SVC_GRAPH_REGISTRY_H
