// Content-addressed graph registry: load once, solve many times.
//
// The server parses or generates a graph exactly once, fingerprints it
// (graph/fingerprint.h), and serves every later request on the same
// content from the resident copy — the "preloaded data behind a thin
// wire protocol" shape. Entries are shared_ptr<const Graph>: an evicted
// graph stays alive for any solve still holding it, and Graph itself is
// immutable so concurrent solves need no further synchronization.
//
// Capacity is bounded (LRU): a long-lived daemon fed a stream of
// distinct graphs must not grow without limit. Resident bytes are
// tracked per backing kind — builder-owned heap copies versus
// mmap-backed pack views — since eviction frees real memory for the
// former but only drops a reference to shared page cache for the
// latter.
#ifndef MCR_SVC_GRAPH_REGISTRY_H
#define MCR_SVC_GRAPH_REGISTRY_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "graph/graph.h"

namespace mcr::obs {
class MetricsRegistry;
}  // namespace mcr::obs

namespace mcr::svc {

class GraphRegistry {
 public:
  /// `capacity` = max resident graphs (LRU eviction beyond). With
  /// `metrics` set, maintains the mcr_graphs_resident and per-backing
  /// mcr_graph_bytes gauges and the mcr_graph_loads_total /
  /// mcr_graph_evictions_total counters.
  explicit GraphRegistry(std::size_t capacity,
                         obs::MetricsRegistry* metrics = nullptr);

  /// Registers g and returns its fingerprint hex. Idempotent: adding
  /// content that is already resident just touches the LRU entry.
  std::string add(Graph&& g);

  /// Registers an externally owned graph (an mmap-backed pack view)
  /// under a fingerprint the caller already knows — the pack header
  /// carries it, so re-hashing the mapped arrays is skipped. Idempotent
  /// like add(); the shared_ptr keeps the backing mapping alive while
  /// the entry is resident.
  void add_shared(const std::string& fingerprint_hex, std::shared_ptr<const Graph> g);

  /// Looks a fingerprint up (and touches it). nullptr when absent.
  [[nodiscard]] std::shared_ptr<const Graph> find(const std::string& fingerprint_hex);

  [[nodiscard]] std::size_t size() const;

  /// Resident graph bytes by backing: heap bytes of builder-owned
  /// graphs and mapped bytes viewed by mmap-backed ones.
  [[nodiscard]] std::uint64_t builder_bytes() const;
  [[nodiscard]] std::uint64_t mmap_bytes() const;

 private:
  struct Entry {
    std::string fingerprint;
    std::shared_ptr<const Graph> graph;
    std::uint64_t bytes = 0;
    bool external = false;
  };

  /// Inserts (or touches) under the lock, evicting beyond capacity.
  void insert_locked(const std::string& fingerprint_hex, std::shared_ptr<const Graph> g);
  void publish_gauges_locked();

  std::size_t capacity_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = hottest
  std::map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t builder_bytes_ = 0;
  std::uint64_t mmap_bytes_ = 0;
};

}  // namespace mcr::svc

#endif  // MCR_SVC_GRAPH_REGISTRY_H
