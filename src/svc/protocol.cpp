#include "svc/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "fault/fault.h"

namespace mcr::svc {

std::ptrdiff_t read_full(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    std::size_t want = n - got;
    // One hook evaluation per read syscall: the plan can turn this
    // round into a no-op EINTR, a 1-byte short read, or a connection
    // reset. Injected EINTR rounds are bounded by the plan's
    // max_per_site cap, so a probability-1 plan cannot livelock.
    const fault::Decision d = MCR_FAULT_POINT(fault::Site::kSockRead);
    if (d.action == fault::Action::kEintr) continue;
    if (d.action == fault::Action::kReset) {
      errno = ECONNRESET;
      return -1;
    }
    if (d.action == fault::Action::kShort && want > 1) want = 1;
    const ::ssize_t rc = ::read(fd, buf + got, want);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc == 0 && got == 0) return 0;
    return -1;
  }
  return static_cast<std::ptrdiff_t>(n);
}

bool write_full(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    std::size_t want = bytes.size() - sent;
    const fault::Decision d = MCR_FAULT_POINT(fault::Site::kSockWrite);
    if (d.action == fault::Action::kEintr) continue;
    if (d.action == fault::Action::kReset) {
      errno = ECONNRESET;
      return false;
    }
    if (d.action == fault::Action::kShort && want > 1) want = 1;
    // MSG_NOSIGNAL: a peer that closed mid-response must surface as a
    // write error, not a process-killing SIGPIPE. Non-socket fds
    // (tests drive the framing over pipes) fall back to write().
    ::ssize_t rc = ::send(fd, bytes.data() + sent, want, MSG_NOSIGNAL);
    if (rc < 0 && errno == ENOTSOCK) {
      rc = ::write(fd, bytes.data() + sent, want);
    }
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string encode_frame(std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  frame.append(kMagic, sizeof kMagic);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  frame.append(payload);
  return frame;
}

ReadStatus read_frame(int fd, std::size_t max_frame_bytes, std::string& payload) {
  char header[kHeaderBytes];
  const std::ptrdiff_t hrc = read_full(fd, header, kHeaderBytes);
  if (hrc == 0) return ReadStatus::kClosed;
  if (hrc < 0) return ReadStatus::kTruncated;
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) return ReadStatus::kBadMagic;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[4 + i]))
           << (8 * i);
  }
  if (len > max_frame_bytes) return ReadStatus::kTooLarge;
  payload.resize(len);
  if (len > 0 && read_full(fd, payload.data(), len) != static_cast<std::ptrdiff_t>(len)) {
    return ReadStatus::kTruncated;
  }
  return ReadStatus::kOk;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string generate_trace_id() {
  // splitmix64 over (seed, counter): ids are unique per process and
  // collide across processes only by 128-bit accident.
  static const std::uint64_t seed = [] {
    const auto now = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return now ^ (static_cast<std::uint64_t>(::getpid()) << 32);
  }();
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const auto mix = [](std::uint64_t x) {
    x += 0x9e37'79b9'7f4a'7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebULL;
    return x ^ (x >> 31);
  };
  const std::uint64_t hi = mix(seed ^ n);
  const std::uint64_t lo = mix(hi ^ ~n);
  std::string id(32, '0');
  static constexpr char kHex[] = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) {
    id[static_cast<std::size_t>(i)] = kHex[(hi >> (60 - 4 * i)) & 0xf];
    id[static_cast<std::size_t>(16 + i)] = kHex[(lo >> (60 - 4 * i)) & 0xf];
  }
  return id;
}

bool is_valid_trace_id(std::string_view id) {
  if (id.empty() || id.size() > kMaxTraceIdBytes) return false;
  for (const char c : id) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string with_trace_id(std::string_view json_object,
                          std::string_view trace_id) {
  const auto brace = json_object.find('{');
  if (brace == std::string_view::npos || trace_id.empty()) {
    return std::string(json_object);
  }
  std::string out;
  out.reserve(json_object.size() + trace_id.size() + 16);
  out.append(json_object.substr(0, brace + 1));
  out += "\"trace_id\":\"";
  out += json_escape(trace_id);
  out += '"';
  // Keep `{}` well-formed: only add the comma when fields follow.
  const auto rest = json_object.substr(brace + 1);
  const auto first_content = rest.find_first_not_of(" \t\r\n");
  if (first_content != std::string_view::npos && rest[first_content] != '}') {
    out += ',';
  }
  out.append(rest);
  return out;
}

std::string error_payload(std::string_view code, std::string_view message) {
  std::string out = "{\"status\":\"error\",\"code\":\"";
  out += json_escape(code);
  out += "\",\"message\":\"";
  out += json_escape(message);
  out += "\"}";
  return out;
}

}  // namespace mcr::svc
