// Wire protocol for the mcr solve service.
//
// Framing: every message (request and response alike) is one frame —
//
//   +-------------------+---------------------+------------------+
//   | magic "MCR1" (4B) | payload length (4B) | payload (JSON)   |
//   +-------------------+---------------------+------------------+
//
// The length is an unsigned 32-bit little-endian byte count of the
// payload only. The payload is one UTF-8 JSON object. The magic lets
// the server detect a desynchronized or non-protocol peer on the first
// read instead of interpreting garbage as a length; frames above the
// configured maximum are rejected before any allocation of the stated
// size.
//
// Requests carry a "verb" field (PING / LOAD / SOLVE / SOLVERS /
// STATS / HEALTH / TRACE / RELOAD); responses carry "status": "ok" or
// "error" (with "code" and "message"). See docs/SERVICE.md for the
// full verb and error-code reference.
#ifndef MCR_SVC_PROTOCOL_H
#define MCR_SVC_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace mcr::svc {

inline constexpr char kMagic[4] = {'M', 'C', 'R', '1'};
inline constexpr std::size_t kHeaderBytes = 8;
/// Default cap on one frame's payload; LOAD of an inline DIMACS graph
/// is the only verb that approaches it.
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u * 1024 * 1024;

/// Error codes the server puts in `"code"`. Stable protocol strings.
inline constexpr const char* kErrBadRequest = "BAD_REQUEST";
inline constexpr const char* kErrNotFound = "NOT_FOUND";
inline constexpr const char* kErrBusy = "BUSY";
inline constexpr const char* kErrDeadline = "DEADLINE_EXCEEDED";
inline constexpr const char* kErrFrameTooLarge = "FRAME_TOO_LARGE";
inline constexpr const char* kErrBadFrame = "BAD_FRAME";
inline constexpr const char* kErrShuttingDown = "SHUTTING_DOWN";
inline constexpr const char* kErrInternal = "INTERNAL";
/// Minted by mcr_router when no healthy replica could serve a request
/// (every candidate's breaker open, all replicas failed, or the only
/// response was cut off mid-frame). Retryable: the fleet's momentary
/// state, not the request.
inline constexpr const char* kErrUpstream = "UPSTREAM_UNAVAILABLE";

/// Header + payload as one byte string ready for write().
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Blocking read of exactly n bytes. Returns n on success, 0 on clean
/// EOF before the first byte, -1 on error or short delivery (errno set
/// by the failing syscall). Retries EINTR and short counts internally —
/// every svc read goes through this helper so interrupted syscalls can
/// never desynchronize the frame stream. Under MCR_FAULT_INJECTION the
/// per-syscall fault hook (Site::kSockRead) can shorten reads, inject
/// EINTR rounds, or simulate ECONNRESET here.
[[nodiscard]] std::ptrdiff_t read_full(int fd, char* buf, std::size_t n);

/// Blocking write of all bytes; retries EINTR and short writes. Returns
/// false on any unrecoverable write error (e.g. EPIPE, ECONNRESET),
/// with errno set. Uses send(MSG_NOSIGNAL) so a peer that closed
/// mid-response surfaces as an error instead of SIGPIPE (non-socket fds
/// fall back to write()). Fault hook: Site::kSockWrite.
[[nodiscard]] bool write_full(int fd, std::string_view bytes);

enum class ReadStatus {
  kOk,        // one whole frame read into `payload`
  kClosed,    // clean EOF before any header byte
  kBadMagic,  // first four bytes are not "MCR1"
  kTooLarge,  // declared length exceeds the caller's max
  kTruncated, // peer closed (or errored) mid-header / mid-payload
};

/// Blocking read of exactly one frame from `fd`. On kOk, `payload`
/// holds the payload bytes; on any other status its contents are
/// unspecified. Retries EINTR; any other read error maps to kTruncated
/// (kClosed when no byte had arrived yet).
[[nodiscard]] ReadStatus read_frame(int fd, std::size_t max_frame_bytes,
                                    std::string& payload);

/// Alias of write_full, kept for existing callers.
[[nodiscard]] inline bool write_all(int fd, std::string_view bytes) {
  return write_full(fd, bytes);
}

/// Escapes a string for embedding inside a JSON string literal
/// (backslash, quote, and control characters; no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// `{"status":"error","code":"<code>","message":"<escaped message>"}`.
[[nodiscard]] std::string error_payload(std::string_view code, std::string_view message);

// --- Trace context -------------------------------------------------------
//
// Requests may carry optional "trace_id" / "parent_span" fields; the
// server generates a trace_id when the client sent none and echoes it
// in every response (success and error alike), so one id follows the
// request across client retries, the flight recorder, the access log,
// and histogram exemplars.

/// Maximum accepted trace-id length on the wire.
inline constexpr std::size_t kMaxTraceIdBytes = 64;

/// Fresh process-unique trace id: 32 lowercase hex characters (128
/// random-looking bits from a seeded counter — uniqueness, not
/// cryptography).
[[nodiscard]] std::string generate_trace_id();

/// Accepts 1..kMaxTraceIdBytes characters from [0-9a-zA-Z_-]. Anything
/// else is rejected (the server then answers BAD_REQUEST rather than
/// echoing attacker-shaped bytes into logs and exports).
[[nodiscard]] bool is_valid_trace_id(std::string_view id);

/// Splices `"trace_id":"<id>",` immediately after the opening '{' of a
/// serialized JSON object, keeping the object's existing field order —
/// and crucially its *last* field — intact. Returns the payload
/// unchanged when it is not an object or the id is empty.
[[nodiscard]] std::string with_trace_id(std::string_view json_object,
                                        std::string_view trace_id);

}  // namespace mcr::svc

#endif  // MCR_SVC_PROTOCOL_H
