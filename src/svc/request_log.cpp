#include "svc/request_log.h"

#include <sstream>

#include "svc/protocol.h"

namespace mcr::svc {

namespace {

std::string fmt_ms(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

RequestLog::RequestLog(const std::string& path)
    : out_(path, std::ios::out | std::ios::app) {}

std::string RequestLog::format(const Entry& entry) {
  std::string out = "{\"ts_ms\":" + fmt_ms(entry.ts_ms);
  const auto str_field = [&](const char* key, const std::string& value) {
    if (value.empty()) return;
    out += ",\"";
    out += key;
    out += "\":\"";
    out += json_escape(value);
    out += '"';
  };
  const auto ms_field = [&](const char* key, double value) {
    if (value < 0.0) return;
    out += ",\"";
    out += key;
    out += "\":";
    out += fmt_ms(value);
  };
  str_field("trace_id", entry.trace_id);
  str_field("verb", entry.verb);
  str_field("fingerprint", entry.fingerprint);
  str_field("algo", entry.algo);
  str_field("objective", entry.objective);
  str_field("cache", entry.cache);
  ms_field("queue_ms", entry.queue_ms);
  ms_field("solve_ms", entry.solve_ms);
  ms_field("deadline_ms", entry.deadline_ms);
  // "code" is always present so success lines are greppable as code:"".
  out += ",\"code\":\"";
  out += json_escape(entry.code);
  out += '"';
  ms_field("total_ms", entry.total_ms);
  out += '}';
  return out;
}

void RequestLog::write(const Entry& entry) {
  if (!out_) return;
  const std::string line = format(entry);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
}

}  // namespace mcr::svc
