// RequestLog — structured per-request access log for the solve service.
//
// One JSON object per line (JSONL), written and flushed as each request
// finishes so a crashed daemon still leaves complete records for every
// request it answered. Off by default; `mcr_serve --log-json PATH`
// turns it on. Schema (fields omitted when empty / not applicable):
//
//   {"ts_ms":..,"trace_id":"..","verb":"SOLVE","fingerprint":"..",
//    "algo":"howard","objective":"mean","cache":"hit|miss|join",
//    "queue_ms":..,"solve_ms":..,"deadline_ms":..,"code":"",
//    "total_ms":..}
//
// "code" is the protocol error code, empty string for success.
// See docs/OBSERVABILITY.md for the full field reference.
#ifndef MCR_SVC_REQUEST_LOG_H
#define MCR_SVC_REQUEST_LOG_H

#include <fstream>
#include <mutex>
#include <string>

namespace mcr::svc {

class RequestLog {
 public:
  /// One finished request. Negative durations / empty strings mean
  /// "not applicable" and are omitted from the line.
  struct Entry {
    double ts_ms = 0.0;  // server-relative completion time
    std::string trace_id;
    std::string verb;
    std::string fingerprint;
    std::string algo;
    std::string objective;
    std::string cache;  // "hit" | "miss" | "join" | ""
    double queue_ms = -1.0;
    double solve_ms = -1.0;
    double deadline_ms = -1.0;  // client-supplied budget
    std::string code;           // protocol error code; "" = ok
    double total_ms = -1.0;
  };

  /// Opens `path` for append. ok() reports whether the stream opened;
  /// a dead stream turns write() into a no-op rather than an error.
  explicit RequestLog(const std::string& path);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// Serializes one line and flushes it. Thread-safe.
  void write(const Entry& entry);

  /// The serialized line for an entry, without the trailing newline.
  /// Exposed for tests.
  [[nodiscard]] static std::string format(const Entry& entry);

 private:
  std::mutex mutex_;
  std::ofstream out_;
};

}  // namespace mcr::svc

#endif  // MCR_SVC_REQUEST_LOG_H
