#include "svc/result_json.h"

#include <iomanip>
#include <sstream>

#include "svc/protocol.h"

namespace mcr::svc {

std::string result_json(const CycleResult& r, const std::string& algorithm,
                        const std::string& objective, double milliseconds) {
  std::ostringstream os;
  os << "{\"algorithm\":\"" << json_escape(algorithm) << "\",\"objective\":\""
     << json_escape(objective) << "\",\"has_cycle\":"
     << (r.has_cycle ? "true" : "false");
  if (r.has_cycle) {
    os << ",\"value_num\":" << r.value.num() << ",\"value_den\":" << r.value.den()
       << ",\"value\":" << std::setprecision(12) << r.value.to_double()
       << ",\"cycle_length\":" << r.cycle.size() << ",\"cycle_arcs\":[";
    for (std::size_t i = 0; i < r.cycle.size(); ++i) {
      os << (i ? "," : "") << r.cycle[i];
    }
    os << "]";
  }
  os << ",\"milliseconds\":" << std::setprecision(6) << milliseconds << "}";
  return os.str();
}

}  // namespace mcr::svc
