// The one machine-readable result schema, shared by `mcr_solve --output
// json` and the solve service's SOLVE responses, so scripts can consume
// either source with the same parser:
//
//   {"algorithm":"howard","objective":"min_mean","has_cycle":true,
//    "value_num":3,"value_den":7,"value":0.428571428571,
//    "cycle_length":4,"cycle_arcs":[0,5,9,2],"milliseconds":1.25}
//
// value_num/value_den is the exact rational optimum (lowest terms,
// den > 0); "value" is its double rendering for convenience. Acyclic
// graphs carry only algorithm/objective/has_cycle/milliseconds.
// Rendering is deterministic: the same result serializes to the same
// bytes, which is what lets the service's cache hand out bit-identical
// responses.
#ifndef MCR_SVC_RESULT_JSON_H
#define MCR_SVC_RESULT_JSON_H

#include <string>

#include "core/result.h"

namespace mcr::svc {

/// Serializes r (without surrounding newline). `objective` is one of
/// min_mean / min_ratio / max_mean / max_ratio; `milliseconds` is the
/// wall time of the solve that produced r.
[[nodiscard]] std::string result_json(const CycleResult& r,
                                      const std::string& algorithm,
                                      const std::string& objective,
                                      double milliseconds);

}  // namespace mcr::svc

#endif  // MCR_SVC_RESULT_JSON_H
