#include "svc/router.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "graph/fingerprint.h"
#include "graph/io.h"
#include "obs/build_info.h"
#include "support/json.h"

namespace mcr::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// splitmix64 — the repo's standard cheap mixer.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e37'79b9'7f4a'7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58'476d'1ce4'e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d0'49bb'1331'11ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_bytes(std::string_view s) {
  // FNV-1a accumulate, splitmix finalize: stable across platforms (the
  // ring layout is part of the fleet's observable behavior).
  std::uint64_t h = 0xcbf2'9ce4'8422'2325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x0000'0100'0000'01b3ULL;
  }
  return splitmix64(h);
}

double uniform(std::uint64_t& state, double lo, double hi) {
  state += 0x9e37'79b9'7f4a'7c15ULL;
  const std::uint64_t z = splitmix64(state);
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

std::string fmt_json_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Canonical text for one scalar JSON value inside a routing key.
/// Logically-equal specs serialize identically (Object is a sorted map,
/// numbers go through one formatter).
void append_canonical(std::string& out, const json::Value& v) {
  if (v.is_string()) {
    out += v.as_string();
  } else if (v.is_number()) {
    const double d = v.as_double();
    const auto ll = static_cast<long long>(d);
    if (static_cast<double>(ll) == d) {
      out += std::to_string(ll);
    } else {
      out += fmt_json_double(d);
    }
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_object()) {
    for (const auto& [k, val] : v.as_object()) {
      out += k;
      out += '=';
      append_canonical(out, val);
      out += ';';
    }
  } else if (v.is_array()) {
    for (const auto& e : v.as_array()) {
      append_canonical(out, e);
      out += ',';
    }
  }
}

/// Splices `"key":"value",` right after the opening '{' — same contract
/// as with_trace_id (keeps the object's last field intact).
std::string splice_field_front(std::string_view payload, std::string_view key,
                               std::string_view value) {
  const auto brace = payload.find('{');
  if (brace == std::string_view::npos) return std::string(payload);
  std::string out;
  out.reserve(payload.size() + key.size() + value.size() + 8);
  out.append(payload.substr(0, brace + 1));
  out += '"';
  out.append(key);
  out += "\":\"";
  out += json_escape(value);
  out += '"';
  // Empty object: no comma needed.
  const auto rest = payload.substr(brace + 1);
  const auto first = rest.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos || rest[first] != '}') out += ',';
  out.append(rest);
  return out;
}

const char* breaker_state_name(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half_open";
  }
  return "?";
}

std::int64_t breaker_state_code(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed: return 0;
    case CircuitBreaker::State::kOpen: return 1;
    case CircuitBreaker::State::kHalfOpen: return 2;
  }
  return -1;
}

std::vector<double> request_seconds_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-5; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.1544346900318837);  // 10^(1/3)
    bounds.push_back(decade * 4.6415888336127790);  // 10^(2/3)
  }
  bounds.push_back(10.0);
  return bounds;
}

/// Quick error probe on a response payload: worker responses put
/// trace_id/status first, so the marker sits in the first few dozen
/// bytes of error payloads; ok payloads never contain it as a field.
bool looks_like_error(std::string_view response) {
  return response.find("\"status\":\"error\"") != std::string_view::npos;
}

}  // namespace

// --- BackendAddress ------------------------------------------------------

BackendAddress parse_backend_address(const std::string& spec, bool allow_port_zero) {
  if (spec.empty()) throw std::invalid_argument("empty worker spec");
  BackendAddress out;
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = BackendAddress::Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      throw std::invalid_argument("worker spec '" + spec + "': empty socket path");
    }
    out.name = "unix:" + out.path;
    return out;
  }
  out.kind = BackendAddress::Kind::kTcp;
  const auto colon = spec.rfind(':');
  std::string port_text;
  if (colon == std::string::npos) {
    out.host = "127.0.0.1";
    port_text = spec;
  } else {
    out.host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
    if (out.host.empty()) {
      throw std::invalid_argument("worker spec '" + spec + "': empty host");
    }
  }
  std::size_t pos = 0;
  int port = 0;
  try {
    port = std::stoi(port_text, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != port_text.size() || port < (allow_port_zero ? 0 : 1) || port > 65535) {
    throw std::invalid_argument("worker spec '" + spec +
                                "': expected unix:PATH, HOST:PORT, or PORT");
  }
  out.port = port;
  out.name = out.host + ":" + std::to_string(port);
  return out;
}

// --- CircuitBreaker ------------------------------------------------------

CircuitBreaker::CircuitBreaker(Options options)
    : options_(options), jitter_state_(options.jitter_seed) {}

bool CircuitBreaker::admit(std::chrono::steady_clock::time_point now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < open_until_) return false;
      state_ = State::kHalfOpen;
      trial_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (trial_in_flight_) return false;
      trial_in_flight_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::on_success() {
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  reopen_count_ = 0;
  trial_in_flight_ = false;
  cooldown_ms_ = 0.0;
}

void CircuitBreaker::on_failure(std::chrono::steady_clock::time_point now) {
  ++consecutive_failures_;
  trial_in_flight_ = false;
  if (state_ == State::kHalfOpen ||
      (state_ == State::kClosed &&
       consecutive_failures_ >= options_.failure_threshold)) {
    open(now);
  } else if (state_ == State::kOpen) {
    // Failures reported while already open (e.g. a probe racing the
    // transition) extend nothing; the cooldown stands.
  }
}

void CircuitBreaker::open(std::chrono::steady_clock::time_point now) {
  state_ = State::kOpen;
  double nominal = options_.cooldown_initial_ms;
  for (int i = 0; i < reopen_count_; ++i) {
    nominal = std::min(nominal * 2.0, options_.cooldown_max_ms);
  }
  ++reopen_count_;
  cooldown_ms_ = nominal;
  const double jittered = uniform(jitter_state_, 0.5 * nominal, nominal);
  open_until_ = now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(jittered));
}

// --- Router: lifecycle ---------------------------------------------------

Router::Router(RouterOptions options) : options_(std::move(options)) {
  // The fleet model — backends, instruments, and the hash ring — is
  // pure computation, built here so ring/snapshot helpers answer on a
  // router that was never started (and so ring property tests need no
  // sockets). start() only binds listeners and spawns threads.
  if (options_.replicas == 0) options_.replicas = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  obs::export_build_info(metrics_);
  // Register the fleet counters eagerly so STATS/prometheus always
  // carry them (a zero is a statement; an absent series is a question).
  (void)metrics_.counter("mcr_router_failovers_total");
  (void)metrics_.counter("mcr_router_breaker_opens_total");
  (void)metrics_.counter("mcr_router_no_replica_total");
  (void)metrics_.counter("mcr_router_partial_responses_total");
  (void)metrics_.counter("mcr_router_probes_total");
  (void)metrics_.counter("mcr_router_probe_failures_total");
  (void)metrics_.counter("mcr_router_backend_recoveries_total");

  // Backends + their instruments (looked up once; hot paths update
  // through the cached references).
  const obs::SlidingWindowHistogram::Options wopt{
      options_.stats_window_s, options_.stats_window_slots, {}};
  for (std::size_t i = 0; i < options_.workers.size(); ++i) {
    auto b = std::make_unique<Backend>();
    b->address = options_.workers[i];
    CircuitBreaker::Options bo = options_.breaker;
    bo.jitter_seed = splitmix64(options_.breaker.jitter_seed + i);
    b->breaker = CircuitBreaker(bo);
    const std::string& w = b->address.name;
    b->requests_total = &metrics_.counter(
        obs::labeled_name("mcr_router_backend_requests_total", {{"worker", w}}));
    b->failures_total = &metrics_.counter(
        obs::labeled_name("mcr_router_backend_failures_total", {{"worker", w}}));
    b->up_gauge =
        &metrics_.gauge(obs::labeled_name("mcr_router_backend_up", {{"worker", w}}));
    b->draining_gauge = &metrics_.gauge(
        obs::labeled_name("mcr_router_backend_draining", {{"worker", w}}));
    b->breaker_gauge = &metrics_.gauge(
        obs::labeled_name("mcr_router_breaker_state", {{"worker", w}}));
    b->latency_window = &metrics_.windowed_histogram(
        obs::labeled_name("mcr_router_backend_seconds", {{"worker", w}}),
        request_seconds_bounds(), wopt);
    b->up_gauge->set(1);
    backends_.push_back(std::move(b));
  }

  // Hash ring with virtual nodes. Points depend only on worker names,
  // so a fixed fleet keeps a fixed layout across router restarts.
  const std::size_t vnodes = std::max<std::size_t>(1, options_.virtual_nodes);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const std::uint64_t base = hash_bytes(backends_[i]->address.name);
    for (std::size_t v = 0; v < vnodes; ++v) {
      ring_.emplace_back(splitmix64(base + 0x9e37'79b9'7f4a'7c15ULL * v), i);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

Router::~Router() { stop_and_drain(); }

void Router::start() {
  if (running_.load()) throw std::runtime_error("Router::start: already running");
  if (backends_.empty()) {
    throw std::runtime_error("Router::start: no workers configured");
  }
  if (options_.unix_socket_path.empty() && options_.tcp_port < 0) {
    throw std::runtime_error("Router::start: no listener configured");
  }

  // Listeners: same shape as svc::Server. Setup is guarded: a failure
  // partway (TCP bind after the unix listener bound, pipe exhaustion)
  // must not leak the fds already opened or leave the socket file
  // behind — running_ is still false, so stop_and_drain() would never
  // reclaim them, and the leaked bound file would shadow a later
  // start() on the same path. The guard disarms once setup completes.
  bool unix_bound = false;
  struct ListenerGuard {
    Router* router;
    const bool* unix_bound;
    bool armed = true;
    ~ListenerGuard() {
      if (!armed) return;
      Router& r = *router;
      if (r.unix_fd_ >= 0) ::close(r.unix_fd_);
      if (r.tcp_fd_ >= 0) ::close(r.tcp_fd_);
      r.unix_fd_ = r.tcp_fd_ = -1;
      r.bound_tcp_port_ = -1;
      for (int& fd : r.wake_pipe_) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
      if (*unix_bound) ::unlink(r.options_.unix_socket_path.c_str());
    }
  } guard{this, &unix_bound};

  if (!options_.unix_socket_path.empty()) {
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("unix socket path too long: " +
                               options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      if (errno == EADDRINUSE) {
        // Stale socket file (no listener behind it) is replaced; a live
        // one is a configuration error.
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        const bool live =
            probe >= 0 &&
            ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
        if (probe >= 0) ::close(probe);
        if (live) {
          throw std::runtime_error("socket path in use by a live server: " +
                                   options_.unix_socket_path);
        }
        ::unlink(options_.unix_socket_path.c_str());
        if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
          throw_errno("bind(" + options_.unix_socket_path + ")");
        }
      } else {
        throw_errno("bind(" + options_.unix_socket_path + ")");
      }
    }
    unix_bound = true;
    if (::listen(unix_fd_, 128) != 0) throw_errno("listen(unix)");
  }
  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    const std::string host =
        options_.tcp_bind_host.empty() ? "127.0.0.1" : options_.tcp_bind_host;
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      addrinfo hints{};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* res = nullptr;
      const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
      if (rc != 0 || res == nullptr) {
        throw std::runtime_error("Router::start: cannot resolve bind host '" + host +
                                 "': " + ::gai_strerror(rc));
      }
      addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
      ::freeaddrinfo(res);
    }
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      throw_errno("bind(" + host + ":" + std::to_string(options_.tcp_port) + ")");
    }
    if (::listen(tcp_fd_, 128) != 0) throw_errno("listen(tcp)");
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");
  guard.armed = false;

  started_at_ = std::chrono::steady_clock::now();
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (options_.probe_interval_ms > 0.0) {
    stopping_prober_ = false;
    prober_thread_ = std::thread([this] { prober_loop(); });
  }
}

void Router::stop_and_drain() {
  if (!running_.exchange(false)) return;
  // 1. Prober first: probes dial workers; none should race teardown.
  if (prober_thread_.joinable()) {
    {
      std::lock_guard lock(prober_mutex_);
      stopping_prober_ = true;
    }
    prober_cv_.notify_all();
    prober_thread_.join();
  }
  // 2. Stop accepting.
  [[maybe_unused]] const ::ssize_t wrc = ::write(wake_pipe_[1], "x", 1);
  accept_thread_.join();
  // 3. Half-close client connections: pending reads return EOF,
  //    in-flight responses still go out.
  {
    std::lock_guard lock(conns_mutex_);
    for (const auto& c : conns_) {
      if (!c->done.load()) ::shutdown(c->fd, SHUT_RD);
    }
  }
  {
    std::lock_guard lock(conns_mutex_);
    for (const auto& c : conns_) {
      if (c->thread.joinable()) c->thread.join();
      if (c->fd >= 0) ::close(c->fd);
    }
    conns_.clear();
  }
  // 4. Drop pooled upstream connections.
  for (const auto& b : backends_) {
    std::lock_guard lock(b->mutex);
    b->idle.clear();
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

// --- Router: accept/connection plumbing ----------------------------------

void Router::accept_loop() {
  std::vector<pollfd> fds;
  if (unix_fd_ >= 0) fds.push_back(pollfd{unix_fd_, POLLIN, 0});
  if (tcp_fd_ >= 0) fds.push_back(pollfd{tcp_fd_, POLLIN, 0});
  fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
  for (;;) {
    const int rc = ::poll(fds.data(), fds.size(), 200);
    if (rc < 0 && errno != EINTR) break;
    if (fds.back().revents != 0) break;  // wake pipe: shutting down
    for (std::size_t i = 0; rc > 0 && i + 1 < fds.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn_fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn_fd < 0) continue;
      std::lock_guard lock(conns_mutex_);
      conns_.push_back(std::make_unique<Connection>());
      Connection* c = conns_.back().get();
      c->fd = conn_fd;
      c->thread = std::thread([this, c] { connection_main(c); });
      metrics_.counter("mcr_connections_total").add(1);
    }
    reap_finished_connections();
  }
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
}

void Router::reap_finished_connections() {
  std::lock_guard lock(conns_mutex_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load() && (*it)->thread.joinable()) {
      (*it)->thread.join();
      if ((*it)->fd >= 0) ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
  metrics_.gauge("mcr_active_connections")
      .set(static_cast<std::int64_t>(conns_.size()));
}

void Router::connection_main(Connection* conn) {
  std::string payload;
  for (;;) {
    const ReadStatus st = read_frame(conn->fd, options_.max_frame_bytes, payload);
    if (st == ReadStatus::kClosed || st == ReadStatus::kTruncated) break;
    if (st == ReadStatus::kBadMagic || st == ReadStatus::kTooLarge) {
      metrics_.counter("mcr_bad_frames_total").add(1);
      const char* code = st == ReadStatus::kTooLarge ? kErrFrameTooLarge : kErrBadFrame;
      const char* msg = st == ReadStatus::kTooLarge
                            ? "frame exceeds the router's size limit"
                            : "bad frame magic (expected MCR1)";
      (void)write_all(conn->fd, encode_frame(error_payload(code, msg)));
      break;
    }
    std::string response;
    try {
      response = handle_request(payload);
    } catch (...) {
      metrics_.counter("mcr_connection_errors_total").add(1);
      response = error_payload(kErrInternal, "internal error routing request");
    }
    if (!write_all(conn->fd, encode_frame(response))) break;
  }
  conn->done.store(true);
}

// --- Router: request handling --------------------------------------------

std::string Router::handle_request(const std::string& payload) {
  const auto arrival = std::chrono::steady_clock::now();
  std::string verb = "?";
  std::string trace_id;
  std::string response;
  try {
    const json::Value request = json::parse(payload);
    if (!request.is_object()) {
      throw std::invalid_argument("request payload must be a JSON object");
    }
    verb = request.string_or("verb", "");
    if (verb.empty()) throw std::invalid_argument("missing \"verb\"");
    trace_id = request.string_or("trace_id", "");
    if (!trace_id.empty() && !is_valid_trace_id(trace_id)) {
      throw std::invalid_argument("invalid trace_id (1-64 chars of [0-9a-zA-Z_-])");
    }
    const bool client_traced = !trace_id.empty();
    if (trace_id.empty()) trace_id = generate_trace_id();
    // Forwarded payload always carries the flight's trace id so the
    // worker span chains under the router span.
    const std::string forward_payload =
        client_traced ? payload : with_trace_id(payload, trace_id);

    if (verb == "HEALTH") {
      response = handle_health(trace_id);
    } else if (verb == "STATS") {
      response = handle_stats(request, trace_id);
    } else if (verb == "RELOAD") {
      response = handle_reload_fanout(forward_payload, trace_id);
    } else if (verb == "LOAD") {
      response = handle_load(request, forward_payload, trace_id);
    } else {
      response = forward_with_failover(request, verb, forward_payload, trace_id,
                                       arrival);
    }
  } catch (const std::exception& e) {
    response = error_payload(kErrBadRequest, e.what());
  }
  if (trace_id.empty()) trace_id = generate_trace_id();
  if (response.find("\"trace_id\"") == std::string::npos) {
    response = with_trace_id(response, trace_id);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - arrival)
          .count();
  metrics_.counter(obs::labeled_name("mcr_requests_total", {{"verb", verb}})).add(1);
  metrics_.histogram("mcr_request_seconds", request_seconds_bounds())
      .observe(seconds, trace_id);
  metrics_
      .histogram(obs::labeled_name("mcr_request_seconds", {{"verb", verb}}),
                 request_seconds_bounds())
      .observe(seconds, trace_id);
  const obs::SlidingWindowHistogram::Options wopt{
      options_.stats_window_s, options_.stats_window_slots, {}};
  metrics_.windowed_histogram("mcr_request_seconds", request_seconds_bounds(), wopt)
      .observe(seconds);
  metrics_
      .windowed_histogram(obs::labeled_name("mcr_request_seconds", {{"verb", verb}}),
                          request_seconds_bounds(), wopt)
      .observe(seconds);
  return response;
}

std::string Router::routing_key_for(const json::Value& request) {
  if (request.has("fingerprint") && request.at("fingerprint").is_string()) {
    return "fp:" + request.at("fingerprint").as_string();
  }
  if (request.has("generator")) {
    std::string key = "gen:";
    append_canonical(key, request.at("generator"));
    return key;
  }
  // DIMACS sources route by the *graph's* content fingerprint — the
  // same identity the worker will mint on LOAD — so a later
  // fingerprint-addressed SOLVE lands on the replica set that holds the
  // graph. Parsing here costs one extra pass; a malformed source falls
  // back to a content-hash key and lets a worker own the BAD_REQUEST.
  if (request.has("dimacs") && request.at("dimacs").is_string()) {
    try {
      std::istringstream is(request.at("dimacs").as_string());
      return "fp:" + fingerprint_hex(read_dimacs(is));
    } catch (const std::exception&) {
      return "dimacs:" + std::to_string(hash_bytes(request.at("dimacs").as_string()));
    }
  }
  if (request.has("path") && request.at("path").is_string()) {
    try {
      return "fp:" + fingerprint_hex(load_dimacs(request.at("path").as_string()));
    } catch (const std::exception&) {
      return "path:" + request.at("path").as_string();
    }
  }
  return "";
}

std::vector<std::size_t> Router::replica_indices(std::string_view key) const {
  std::vector<std::size_t> out;
  if (ring_.empty()) return out;
  const std::size_t want = std::min(options_.replicas, backends_.size());
  const std::uint64_t point = hash_bytes(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, std::size_t{0}));
  for (std::size_t step = 0; step < ring_.size() && out.size() < want; ++step) {
    if (it == ring_.end()) it = ring_.begin();
    const std::size_t idx = it->second;
    if (std::find(out.begin(), out.end(), idx) == out.end()) out.push_back(idx);
    ++it;
  }
  return out;
}

std::vector<std::size_t> Router::candidate_order(const json::Value& request,
                                                 const std::string& verb) {
  const std::string key = routing_key_for(request);
  if (key.empty()) {
    // No affinity: rotate the whole fleet round-robin.
    std::vector<std::size_t> order(backends_.size());
    const std::size_t start = round_robin_.fetch_add(1) % backends_.size();
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      order[i] = (start + i) % backends_.size();
    }
    return order;
  }
  std::vector<std::size_t> replicas = replica_indices(key);
  // Generator-addressed SOLVEs spread across the replica set (the spec
  // regenerates the graph anywhere, and spreading keeps the hot graph
  // resident on all R workers). Fingerprint-addressed SOLVEs go
  // primary-first: only workers that saw the LOAD hold the graph.
  if (verb == "SOLVE" && request.has("generator") && replicas.size() > 1) {
    std::rotate(replicas.begin(),
                replicas.begin() + static_cast<std::ptrdiff_t>(
                                       replica_spread_.fetch_add(1) % replicas.size()),
                replicas.end());
  }
  return replicas;
}

// --- Router: upstream plumbing -------------------------------------------

std::unique_ptr<Client> Router::pop_idle_connection(Backend& b) {
  std::lock_guard lock(b.mutex);
  if (b.idle.empty()) return nullptr;
  std::unique_ptr<Client> c = std::move(b.idle.back());
  b.idle.pop_back();
  return c;
}

std::unique_ptr<Client> Router::dial_connection(Backend& b) {
  try {
    if (b.address.kind == BackendAddress::Kind::kUnix) {
      return std::make_unique<Client>(Client::connect_unix(b.address.path));
    }
    return std::make_unique<Client>(Client::connect_tcp(b.address.host, b.address.port));
  } catch (const TransportError&) {
    return nullptr;
  }
}

void Router::release_connection(Backend& b, std::unique_ptr<Client> client) {
  std::lock_guard lock(b.mutex);
  if (b.idle.size() < options_.pool_capacity) b.idle.push_back(std::move(client));
}

Router::Forward Router::roundtrip(Backend& b, std::unique_ptr<Client> client,
                                  std::string_view payload) {
  Forward out;
  if (!write_full(client->fd(), encode_frame(payload))) {
    out.status = Forward::Status::kNoBytes;  // no response byte arrived
    return out;
  }
  const ReadStatus st = read_frame(client->fd(), options_.max_frame_bytes, out.response);
  switch (st) {
    case ReadStatus::kOk:
      out.status = Forward::Status::kOk;
      release_connection(b, std::move(client));
      return out;
    case ReadStatus::kClosed:
      // Clean EOF before any response byte: the worker died (or closed)
      // without answering — safe to hedge an idempotent verb.
      out.status = Forward::Status::kNoBytes;
      return out;
    case ReadStatus::kBadMagic:
    case ReadStatus::kTooLarge:
    case ReadStatus::kTruncated:
      // Bytes arrived, then the stream broke: the worker may have
      // executed the request. NEVER hedged.
      out.status = Forward::Status::kPartial;
      return out;
  }
  out.status = Forward::Status::kPartial;
  return out;
}

Router::Forward Router::forward_once(Backend& b, std::string_view payload) {
  // A pooled connection may have gone stale while idle (the worker
  // restarted or timed it out) — indistinguishable, from one no-bytes
  // failure, from a dead backend. Staleness indicts the pool entry, not
  // the worker, so a pooled no-bytes failure retries once on a fresh
  // dial and only the fresh attempt's outcome reaches the caller (and
  // through it the breaker). Partial responses are never retried.
  if (std::unique_ptr<Client> pooled = pop_idle_connection(b)) {
    Forward out = roundtrip(b, std::move(pooled), payload);
    if (out.status != Forward::Status::kNoBytes) return out;
  }
  std::unique_ptr<Client> fresh = dial_connection(b);
  if (fresh == nullptr) {
    Forward out;
    out.status = Forward::Status::kNoBytes;  // connect failed: nothing sent
    return out;
  }
  return roundtrip(b, std::move(fresh), payload);
}

bool Router::backend_admit(Backend& b, bool ignore_draining) {
  std::lock_guard lock(b.mutex);
  if (!ignore_draining && b.draining) return false;
  const bool admitted = b.breaker.admit(std::chrono::steady_clock::now());
  b.breaker_gauge->set(breaker_state_code(b.breaker.state()));
  return admitted;
}

void Router::record_success(Backend& b) {
  std::lock_guard lock(b.mutex);
  const bool was_down = !b.up;
  b.breaker.on_success();
  b.up = true;
  b.up_gauge->set(1);
  b.breaker_gauge->set(breaker_state_code(b.breaker.state()));
  if (was_down) metrics_.counter("mcr_router_backend_recoveries_total").add(1);
}

void Router::record_failure(Backend& b) {
  b.failures_total->add(1);
  std::lock_guard lock(b.mutex);
  const auto prev = b.breaker.state();
  b.breaker.on_failure(std::chrono::steady_clock::now());
  if (b.breaker.state() == CircuitBreaker::State::kOpen &&
      prev != CircuitBreaker::State::kOpen) {
    metrics_.counter("mcr_router_breaker_opens_total").add(1);
    b.up = false;
    b.up_gauge->set(0);
  }
  b.breaker_gauge->set(breaker_state_code(b.breaker.state()));
}

void Router::set_draining(Backend& b, bool draining) {
  std::lock_guard lock(b.mutex);
  b.draining = draining;
  b.draining_gauge->set(draining ? 1 : 0);
}

// --- Router: forwarding with failover ------------------------------------

std::string Router::forward_with_failover(
    const json::Value& request, const std::string& verb, const std::string& payload,
    const std::string& trace_id,
    std::chrono::steady_clock::time_point arrival) {
  (void)trace_id;
  const std::vector<std::size_t> order = candidate_order(request, verb);
  const double deadline_ms = request.number_or("deadline_ms", 0.0);
  const auto deadline =
      deadline_ms > 0.0
          ? arrival + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double, std::milli>(deadline_ms))
          : std::chrono::steady_clock::time_point::max();
  const bool client_has_parent = request.has("parent_span");

  int attempts = 0;
  std::string retryable_response;  // last BUSY/SHUTTING_DOWN answer seen
  for (const std::size_t idx : order) {
    if (attempts >= options_.max_attempts) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      // The retry budget is carved from the deadline: when it is spent,
      // answer locally instead of burning a worker's time. Checked
      // BEFORE backend_admit(): admit() may consume a half-open
      // breaker's single trial slot, and an attempt abandoned here
      // would never report back, wedging the breaker half-open and the
      // backend out of rotation for good.
      return error_payload(kErrDeadline, "deadline exceeded in router");
    }
    Backend& b = *backends_[idx];
    if (!backend_admit(b, /*ignore_draining=*/false)) continue;
    ++attempts;
    if (attempts > 1) metrics_.counter("mcr_router_failovers_total").add(1);
    b.requests_total->add(1);
    std::string attempt_payload =
        client_has_parent
            ? payload
            : splice_field_front(payload, "parent_span",
                                 "router/attempt/" + std::to_string(attempts));
    const auto t0 = std::chrono::steady_clock::now();
    const Forward fwd = forward_once(b, attempt_payload);
    if (fwd.status == Forward::Status::kOk) {
      b.latency_window->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
      if (!looks_like_error(fwd.response)) {
        record_success(b);
        return fwd.response;
      }
      // The backend answered, so its transport is healthy; what kind of
      // error decides whether we fail over.
      std::string code;
      try {
        code = json::parse(fwd.response).string_or("code", "");
      } catch (const std::exception&) {
        code.clear();
      }
      if (code == kErrShuttingDown) {
        // Passive drain detection: stop routing new work there; the
        // prober flips it back when the worker returns.
        record_success(b);
        set_draining(b, true);
        retryable_response = fwd.response;
        continue;
      }
      if (code == kErrBusy) {
        record_success(b);
        retryable_response = fwd.response;
        continue;
      }
      // Deterministic errors (BAD_REQUEST, NOT_FOUND, DEADLINE_EXCEEDED,
      // INTERNAL): another replica would answer the same or worse.
      record_success(b);
      return fwd.response;
    }
    if (fwd.status == Forward::Status::kPartial) {
      record_failure(b);
      metrics_.counter("mcr_router_partial_responses_total").add(1);
      return error_payload(kErrUpstream,
                           "worker " + b.address.name +
                               " response cut off mid-frame; not retried "
                               "(the request may have executed)");
    }
    // kNoBytes: the worker never answered — hedge on the next replica.
    record_failure(b);
  }
  if (!retryable_response.empty()) return retryable_response;
  metrics_.counter("mcr_router_no_replica_total").add(1);
  return error_payload(kErrUpstream, "no healthy replica for " + verb +
                                         " (fleet of " +
                                         std::to_string(backends_.size()) +
                                         ", attempts " + std::to_string(attempts) +
                                         ")");
}

std::string Router::handle_load(const json::Value& request, const std::string& payload,
                                const std::string& trace_id) {
  (void)trace_id;
  const std::string key = routing_key_for(request);
  std::vector<std::size_t> targets;
  if (key.empty()) {
    // No loadable source named; one worker's BAD_REQUEST explains it.
    const auto order = candidate_order(request, "LOAD");
    if (!order.empty()) targets.push_back(order.front());
  } else {
    targets = replica_indices(key);
  }
  // LOAD fans out to every replica so a later fingerprint-addressed
  // SOLVE can be served by any of them (and failover has somewhere to
  // go). First ok response wins; per-backend failures are tolerated as
  // long as one replica holds the graph.
  std::string ok_response;
  std::string error_response;
  for (const std::size_t idx : targets) {
    Backend& b = *backends_[idx];
    if (!backend_admit(b, /*ignore_draining=*/false)) continue;
    b.requests_total->add(1);
    const Forward fwd = forward_once(b, payload);
    if (fwd.status == Forward::Status::kOk) {
      record_success(b);
      if (!looks_like_error(fwd.response)) {
        if (ok_response.empty()) ok_response = fwd.response;
      } else if (error_response.empty()) {
        error_response = fwd.response;
      }
    } else {
      record_failure(b);
      if (fwd.status == Forward::Status::kPartial) {
        metrics_.counter("mcr_router_partial_responses_total").add(1);
      }
    }
  }
  if (!ok_response.empty()) return ok_response;
  if (!error_response.empty()) return error_response;
  metrics_.counter("mcr_router_no_replica_total").add(1);
  return error_payload(kErrUpstream, "no healthy replica accepted the LOAD");
}

std::string Router::handle_reload_fanout(const std::string& payload,
                                         const std::string& trace_id) {
  (void)trace_id;
  // RELOAD is NOT idempotent-retried: each eligible backend gets exactly
  // one attempt, and the per-worker outcomes are reported verbatim.
  std::size_t ok_count = 0;
  std::size_t failed = 0;
  std::ostringstream workers;
  workers << '{';
  bool first = true;
  for (const auto& bp : backends_) {
    Backend& b = *bp;
    if (!backend_admit(b, /*ignore_draining=*/false)) continue;
    b.requests_total->add(1);
    const Forward fwd = forward_once(b, payload);
    if (!first) workers << ',';
    first = false;
    workers << '"' << json_escape(b.address.name) << "\":";
    if (fwd.status == Forward::Status::kOk) {
      record_success(b);
      if (looks_like_error(fwd.response)) {
        ++failed;
      } else {
        ++ok_count;
      }
      workers << fwd.response;
    } else {
      record_failure(b);
      ++failed;
      workers << error_payload(kErrUpstream, "transport error during RELOAD");
    }
  }
  workers << '}';
  std::ostringstream os;
  if (failed == 0 && ok_count > 0) {
    os << "{\"status\":\"ok\",\"reloaded\":" << ok_count
       << ",\"workers\":" << workers.str() << "}";
  } else {
    os << "{\"status\":\"error\",\"code\":\"" << (ok_count == 0 ? kErrUpstream : kErrInternal)
       << "\",\"message\":\"RELOAD failed on " << failed << " of " << (ok_count + failed)
       << " workers\",\"reloaded\":" << ok_count << ",\"workers\":" << workers.str()
       << "}";
  }
  return os.str();
}

std::string Router::handle_stats(const json::Value& request,
                                 const std::string& trace_id) {
  (void)trace_id;
  const double uptime_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started_at_)
                              .count();
  std::ostringstream os;
  os << "{\"status\":\"ok\",\"service\":\"mcr_router\",\"uptime_seconds\":"
     << fmt_json_double(uptime_s) << ",\"replicas\":"
     << std::min(options_.replicas, backends_.size())
     << ",\"window_seconds\":" << fmt_json_double(options_.stats_window_s)
     << ",\"backends\":[";
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    Backend& b = *backends_[i];
    if (i > 0) os << ',';
    bool up = false;
    bool draining = false;
    CircuitBreaker::State state = CircuitBreaker::State::kClosed;
    {
      std::lock_guard lock(b.mutex);
      up = b.up;
      draining = b.draining;
      state = b.breaker.state();
    }
    const auto snap = b.latency_window->snapshot();
    const auto cumulative = obs::SlidingWindowHistogram::cumulative_counts(snap);
    os << "{\"name\":\"" << json_escape(b.address.name) << "\",\"up\":"
       << (up ? "true" : "false") << ",\"draining\":" << (draining ? "true" : "false")
       << ",\"breaker\":\"" << breaker_state_name(state) << "\",\"requests\":"
       << b.requests_total->value() << ",\"failures\":" << b.failures_total->value();
    for (const auto& [label, q] :
         {std::pair<const char*, double>{"p50_ms", 0.50},
          std::pair<const char*, double>{"p95_ms", 0.95},
          std::pair<const char*, double>{"p99_ms", 0.99}}) {
      const auto v = obs::histogram_quantile(snap.bounds, cumulative, snap.count, q);
      os << ",\"" << label << "\":";
      if (v.has_value()) {
        os << fmt_json_double(*v * 1000.0);
      } else {
        os << "null";
      }
    }
    os << '}';
  }
  os << ']';
  // {"fanout":true} additionally embeds each reachable worker's own
  // STATS response verbatim — the fleet-wide view in one frame.
  const bool fanout = request.has("fanout") && request.at("fanout").is_bool() &&
                      request.at("fanout").as_bool();
  if (fanout) {
    os << ",\"workers\":{";
    bool first = true;
    const std::string stats_payload = "{\"verb\":\"STATS\"}";
    for (const auto& bp : backends_) {
      Backend& b = *bp;
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(b.address.name) << "\":";
      if (!backend_admit(b, /*ignore_draining=*/true)) {
        os << error_payload(kErrUpstream, "breaker open");
        continue;
      }
      const Forward fwd = forward_once(b, stats_payload);
      if (fwd.status == Forward::Status::kOk) {
        record_success(b);
        os << fwd.response;
      } else {
        record_failure(b);
        os << error_payload(kErrUpstream, "transport error during STATS fan-out");
      }
    }
    os << '}';
  }
  // "prometheus" stays the last field: clients cut it out by suffix,
  // exactly as with the worker's own STATS.
  os << ",\"metrics\":" << metrics_.json() << ",\"prometheus\":\""
     << json_escape(metrics_.prometheus_text()) << "\"}";
  return os.str();
}

std::string Router::handle_health(const std::string& trace_id) {
  (void)trace_id;
  std::size_t up = 0;
  std::size_t draining = 0;
  for (const auto& bp : backends_) {
    std::lock_guard lock(bp->mutex);
    if (bp->up) ++up;
    if (bp->draining) ++draining;
  }
  const double uptime_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - started_at_)
                              .count();
  const bool healthy = up > 0 && running_.load();
  std::ostringstream os;
  os << "{\"status\":\"ok\",\"service\":\"mcr_router\",\"healthy\":"
     << (healthy ? "true" : "false") << ",\"draining\":"
     << (running_.load() ? "false" : "true") << ",\"backends_total\":"
     << backends_.size() << ",\"backends_up\":" << up
     << ",\"backends_draining\":" << draining
     << ",\"uptime_seconds\":" << fmt_json_double(uptime_s) << "}";
  return os.str();
}

// --- Router: health probing ----------------------------------------------

void Router::probe_backend(Backend& b) {
  metrics_.counter("mcr_router_probes_total").add(1);
  {
    // Respect the breaker cooldown: a freshly-opened breaker silences
    // probes too, so a flapping worker is not hammered. admit() flips
    // open -> half-open once the (jittered) cooldown expires; the probe
    // is then the trial request.
    std::lock_guard lock(b.mutex);
    if (!b.breaker.admit(std::chrono::steady_clock::now())) return;
    b.breaker_gauge->set(breaker_state_code(b.breaker.state()));
  }
  const Forward fwd = forward_once(b, "{\"verb\":\"HEALTH\"}");
  if (fwd.status != Forward::Status::kOk) {
    metrics_.counter("mcr_router_probe_failures_total").add(1);
    record_failure(b);
    return;
  }
  bool draining = false;
  try {
    const json::Value health = json::parse(fwd.response);
    draining = health.has("draining") && health.at("draining").is_bool() &&
               health.at("draining").as_bool();
  } catch (const std::exception&) {
    // Unparseable HEALTH is a failing probe.
    metrics_.counter("mcr_router_probe_failures_total").add(1);
    record_failure(b);
    return;
  }
  record_success(b);
  set_draining(b, draining);
}

void Router::probe_now() {
  for (const auto& b : backends_) probe_backend(*b);
}

void Router::prober_loop() {
  for (;;) {
    // prober_jitter_state_ is touched only by this thread after start().
    const double sleep_ms =
        uniform(prober_jitter_state_, 0.75 * options_.probe_interval_ms,
                1.25 * options_.probe_interval_ms);
    {
      std::unique_lock lock(prober_mutex_);
      prober_cv_.wait_for(lock,
                          std::chrono::duration<double, std::milli>(sleep_ms),
                          [this] { return stopping_prober_; });
      if (stopping_prober_) return;
    }
    probe_now();
  }
}

std::vector<Router::BackendSnapshot> Router::backend_snapshots() {
  std::vector<BackendSnapshot> out;
  out.reserve(backends_.size());
  for (const auto& bp : backends_) {
    Backend& b = *bp;
    BackendSnapshot s;
    s.name = b.address.name;
    {
      std::lock_guard lock(b.mutex);
      s.up = b.up;
      s.draining = b.draining;
      s.breaker = b.breaker.state();
    }
    s.requests = b.requests_total->value();
    s.failures = b.failures_total->value();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mcr::svc
