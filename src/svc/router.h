// svc::Router — fault-tolerant front-end for a fleet of mcr_serve
// workers, speaking the MCR1 frame protocol on both sides.
//
// Topology: clients connect to the router exactly as they would to a
// single mcr_serve; the router consistent-hash-shards each request by
// its graph fingerprint across a static worker list, with replication
// factor R so hot graphs are resident on R workers. Requests that
// carry no fingerprint (PING, SOLVERS, TRACE) rotate round-robin;
// STATS and HEALTH are answered by the router itself (STATS can fan
// out, see below).
//
// Routing key:
//  - SOLVE {"fingerprint": ...}   -> the declared fingerprint
//  - SOLVE/LOAD {"generator":...} -> canonical form of the spec (same
//    spec => same key => same replica set, so the worker-side result
//    cache and single-flight machinery keep working across the tier)
//  - LOAD {"dimacs"/"path": ...}  -> the graph's content fingerprint
//    (the router parses the source, so LOAD and the SOLVEs that follow
//    it agree on the replica set)
// The key picks R consecutive distinct workers clockwise on a hashed
// ring with virtual nodes; LOAD fans out to all R replicas so a later
// fingerprint-addressed SOLVE can be served by any of them.
//
// Robustness model (docs/FLEET.md):
//  - per-backend circuit breaker (closed / open / half-open) fed by
//    passive failure detection — transport errors and SHUTTING_DOWN
//    responses — with jittered exponential cooldown;
//  - an active prober that HEALTH-checks backends on a jittered
//    interval, closing breakers when a worker comes back and marking
//    draining workers (they finish in-flight requests, get no new
//    ones);
//  - failover: idempotent verbs retry on the next replica on BUSY /
//    SHUTTING_DOWN / clean transport errors, within a retry budget
//    carved from the request deadline. A response cut off after
//    partial bytes is NEVER hedged (the worker may have acted); the
//    client gets UPSTREAM_UNAVAILABLE (retryable) and decides.
//
// Trace context: the router mints a trace_id when the client sent
// none and splices "parent_span":"router/attempt/<k>" so the worker's
// span is parented by the router's — one id follows the request
// through both tiers.
#ifndef MCR_SVC_ROUTER_H
#define MCR_SVC_ROUTER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "svc/client.h"
#include "svc/protocol.h"

namespace mcr::json {
class Value;
}  // namespace mcr::json

namespace mcr::svc {

/// One worker endpoint. Specs are "unix:/path/to.sock", "host:port",
/// or a bare port (loopback). `name` is the canonical label used in
/// metrics and STATS ("unix:/path" or "host:port").
struct BackendAddress {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // unix
  std::string host;  // tcp
  int port = 0;      // tcp
  std::string name;
};

/// Parses a --worker/--target/--listen spec; throws
/// std::invalid_argument on malformed input (empty, bad port, ...).
/// `allow_port_zero` admits port 0 for listener specs (ephemeral).
[[nodiscard]] BackendAddress parse_backend_address(const std::string& spec,
                                                   bool allow_port_zero = false);

/// Per-backend circuit breaker: pure, clock-passed state machine so
/// tests drive it deterministically. Not thread-safe — the Router
/// guards each instance with its backend's mutex.
///
///   closed    -- failures < threshold --> closed (count them)
///   closed    -- failures = threshold --> open   (cooldown starts)
///   open      -- admit() before cooldown expiry --> refused
///   open      -- admit() after  cooldown expiry --> half-open (one trial)
///   half-open -- trial succeeds --> closed (counters reset)
///   half-open -- trial fails    --> open (cooldown doubles, jittered)
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    /// Consecutive failures that trip a closed breaker.
    int failure_threshold = 3;
    /// Cooldown after the first trip; doubles per reopen, jittered
    /// uniformly in [0.5, 1.0) of the nominal value, capped below.
    double cooldown_initial_ms = 250.0;
    double cooldown_max_ms = 5000.0;
    std::uint64_t jitter_seed = 0x6d63'725f'7274'7231ULL;
  };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options options);

  /// May this backend take a request now? An expired-cooldown open
  /// breaker transitions to half-open and admits exactly one trial;
  /// further admits are refused until that trial reports.
  [[nodiscard]] bool admit(std::chrono::steady_clock::time_point now);
  void on_success();
  void on_failure(std::chrono::steady_clock::time_point now);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] int consecutive_failures() const { return consecutive_failures_; }
  /// Nominal (pre-jitter) cooldown of the current open period, ms.
  [[nodiscard]] double current_cooldown_ms() const { return cooldown_ms_; }
  [[nodiscard]] std::chrono::steady_clock::time_point open_until() const {
    return open_until_;
  }

 private:
  void open(std::chrono::steady_clock::time_point now);

  Options options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int reopen_count_ = 0;
  bool trial_in_flight_ = false;
  double cooldown_ms_ = 0.0;
  std::chrono::steady_clock::time_point open_until_{};
  std::uint64_t jitter_state_ = 0;
};

struct RouterOptions {
  /// Listeners, same semantics as ServerOptions.
  std::string unix_socket_path;
  int tcp_port = -1;
  std::string tcp_bind_host = "127.0.0.1";
  /// The static fleet. At least one required.
  std::vector<BackendAddress> workers;
  /// Replication factor: each routing key maps to min(replicas,
  /// workers) distinct backends.
  std::size_t replicas = 2;
  /// Virtual nodes per worker on the hash ring.
  std::size_t virtual_nodes = 64;
  /// Failover budget: max forward attempts per request across
  /// replicas (>= 1). The deadline, when present, caps it further.
  int max_attempts = 3;
  /// Active HEALTH probe period (jittered +/-25%); <= 0 disables the
  /// prober thread (tests drive probe_now() by hand).
  double probe_interval_ms = 500.0;
  /// Idle upstream connections kept per backend.
  std::size_t pool_capacity = 8;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  CircuitBreaker::Options breaker{};
  /// Windowed per-backend latency view shape.
  double stats_window_s = 60.0;
  std::size_t stats_window_slots = 6;
};

class Router {
 public:
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds listeners, starts the accept loop and (when enabled) the
  /// prober. Throws std::runtime_error on bind failure / no workers.
  void start();
  /// Stop accepting, finish in-flight client requests, join threads.
  /// Idempotent.
  void stop_and_drain();
  [[nodiscard]] bool running() const { return running_.load(); }
  /// Actual TCP port after start() (with tcp_port = 0).
  [[nodiscard]] int tcp_port() const { return bound_tcp_port_; }

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }

  /// Point-in-time view of one backend's health machinery.
  struct BackendSnapshot {
    std::string name;
    bool up = false;
    bool draining = false;
    CircuitBreaker::State breaker = CircuitBreaker::State::kClosed;
    std::uint64_t requests = 0;
    std::uint64_t failures = 0;
  };
  [[nodiscard]] std::vector<BackendSnapshot> backend_snapshots();

  /// One synchronous probe round over all backends (the prober thread
  /// calls this on its jittered interval; tests call it directly).
  void probe_now();

  /// Replica set (backend indices, primary first) for a routing key —
  /// exposed for ring property tests.
  [[nodiscard]] std::vector<std::size_t> replica_indices(std::string_view key) const;
  /// Routing key for a parsed request payload; "" = no affinity.
  [[nodiscard]] static std::string routing_key_for(const json::Value& request);

 private:
  struct Backend {
    BackendAddress address;
    std::mutex mutex;
    CircuitBreaker breaker;
    bool up = true;        // optimistic until proven otherwise
    bool draining = false;
    std::vector<std::unique_ptr<Client>> idle;  // connection pool
    obs::Counter* requests_total = nullptr;
    obs::Counter* failures_total = nullptr;
    obs::Gauge* up_gauge = nullptr;
    obs::Gauge* draining_gauge = nullptr;
    obs::Gauge* breaker_gauge = nullptr;
    obs::SlidingWindowHistogram* latency_window = nullptr;
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Outcome of one upstream round trip.
  struct Forward {
    enum class Status {
      kOk,         // one whole response frame in `response`
      kNoBytes,    // transport failed before any response byte (hedgeable)
      kPartial,    // response cut off mid-frame (NEVER hedged)
    };
    Status status = Status::kNoBytes;
    std::string response;
  };

  void accept_loop();
  void reap_finished_connections();
  void connection_main(Connection* conn);
  [[nodiscard]] std::string handle_request(const std::string& payload);
  [[nodiscard]] std::string forward_with_failover(
      const json::Value& request, const std::string& verb,
      const std::string& payload, const std::string& trace_id,
      std::chrono::steady_clock::time_point arrival);
  [[nodiscard]] std::string handle_load(const json::Value& request,
                                        const std::string& payload,
                                        const std::string& trace_id);
  [[nodiscard]] std::string handle_reload_fanout(const std::string& payload,
                                                 const std::string& trace_id);
  [[nodiscard]] std::string handle_stats(const json::Value& request,
                                         const std::string& trace_id);
  [[nodiscard]] std::string handle_health(const std::string& trace_id);

  /// One attempt against a backend. A pooled connection that fails
  /// before any response byte is assumed stale and the request is
  /// retried once on a freshly dialed connection; only a fresh-dial
  /// failure is reported (a worker restart must not trip the breaker
  /// through leftover pool entries).
  [[nodiscard]] Forward forward_once(Backend& b, std::string_view payload);
  /// One request/response exchange on an established connection; the
  /// connection is pooled again on success, dropped otherwise.
  [[nodiscard]] Forward roundtrip(Backend& b, std::unique_ptr<Client> client,
                                  std::string_view payload);
  /// Pops an idle pooled connection; null when the pool is empty.
  [[nodiscard]] std::unique_ptr<Client> pop_idle_connection(Backend& b);
  /// Dials a new connection; null on connect failure.
  [[nodiscard]] std::unique_ptr<Client> dial_connection(Backend& b);
  void release_connection(Backend& b, std::unique_ptr<Client> client);

  /// Breaker/gauge bookkeeping around one attempt.
  [[nodiscard]] bool backend_admit(Backend& b, bool ignore_draining);
  void record_success(Backend& b);
  void record_failure(Backend& b);
  void set_draining(Backend& b, bool draining);
  void probe_backend(Backend& b);

  /// Candidate backends for a request, in attempt order.
  [[nodiscard]] std::vector<std::size_t> candidate_order(const json::Value& request,
                                                         const std::string& verb);
  void prober_loop();

  RouterOptions options_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Backend>> backends_;
  /// Hash ring: (point, backend index), sorted by point.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;

  std::atomic<bool> running_{false};
  std::chrono::steady_clock::time_point started_at_{};
  std::atomic<std::uint64_t> round_robin_{0};  // keyless verbs
  std::atomic<std::uint64_t> replica_spread_{0};  // generator SOLVE spread

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread accept_thread_;

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::thread prober_thread_;
  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool stopping_prober_ = false;
  std::uint64_t prober_jitter_state_ = 0x726f'7574'6572'5f70ULL;
};

}  // namespace mcr::svc

#endif  // MCR_SVC_ROUTER_H
