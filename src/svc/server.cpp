#include "svc/server.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/driver.h"
#include "core/registry.h"
#include "fault/fault.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/io.h"
#include "obs/build_info.h"
#include "store/format.h"
#include "support/json.h"
#include "support/stats.h"
#include "svc/result_json.h"

namespace mcr::svc {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Client-facing request error carrying a protocol error code.
struct RequestError : std::runtime_error {
  RequestError(std::string code_, const std::string& message)
      : std::runtime_error(message), code(std::move(code_)) {}
  std::string code;
};

struct Objective {
  bool maximize = false;
  bool ratio = false;
  std::string name;  // canonical string
};

Objective parse_objective(const std::string& s) {
  if (s == "min_mean") return {false, false, s};
  if (s == "min_ratio") return {false, true, s};
  if (s == "max_mean") return {true, false, s};
  if (s == "max_ratio") return {true, true, s};
  throw RequestError(kErrBadRequest,
                     "unknown objective '" + s +
                         "' (expected min_mean | min_ratio | max_mean | max_ratio)");
}

std::int64_t int_field(const json::Value& obj, const std::string& key,
                       std::int64_t fallback) {
  if (!obj.has(key)) return fallback;
  return static_cast<std::int64_t>(obj.at(key).as_double());
}

Graph generate_from_spec(const json::Value& spec) {
  const std::string family = spec.string_or("family", "");
  const auto seed = static_cast<std::uint64_t>(int_field(spec, "seed", 1));
  if (family == "sprand") {
    gen::SprandConfig cfg;
    cfg.n = static_cast<NodeId>(int_field(spec, "n", 512));
    cfg.m = static_cast<ArcId>(int_field(spec, "m", 2 * int_field(spec, "n", 512)));
    cfg.min_weight = int_field(spec, "wmin", 1);
    cfg.max_weight = int_field(spec, "wmax", 10000);
    cfg.min_transit = int_field(spec, "tmin", 1);
    cfg.max_transit = int_field(spec, "tmax", 1);
    cfg.seed = seed;
    return gen::sprand(cfg);
  }
  if (family == "circuit") {
    gen::CircuitConfig cfg;
    cfg.registers = static_cast<NodeId>(int_field(spec, "n", 512));
    cfg.module_size = static_cast<NodeId>(int_field(spec, "module", 32));
    cfg.seed = seed;
    return gen::circuit(cfg);
  }
  if (family == "ring") {
    return gen::random_ring(static_cast<NodeId>(int_field(spec, "n", 64)),
                            int_field(spec, "wmin", 1), int_field(spec, "wmax", 100),
                            seed);
  }
  throw RequestError(kErrBadRequest, "unknown generator family '" + family +
                                         "' (expected sprand | circuit | ring)");
}

/// Request-latency bucket bounds: log-spaced, three per decade, 10µs
/// to 10s, so sub-millisecond cached replays and multi-second cold
/// solves resolve into distinct buckets instead of collapsing into the
/// coarse default grid.
std::vector<double> request_seconds_bounds() {
  std::vector<double> bounds;
  for (double decade = 1e-5; decade < 10.0; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.1544346900318837);  // 10^(1/3)
    bounds.push_back(decade * 4.6415888336127790);  // 10^(2/3)
  }
  bounds.push_back(10.0);
  return bounds;
}

std::string fmt_json_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// `q`-th percentile of a windowed snapshot in milliseconds, or "null"
/// when the window holds no observations (never NaN on the wire).
std::string window_quantile_ms_json(
    const obs::SlidingWindowHistogram::Snapshot& s, double q) {
  const auto v = obs::histogram_quantile(
      s.bounds, obs::SlidingWindowHistogram::cumulative_counts(s), s.count, q);
  return v.has_value() ? fmt_json_double(*v * 1000.0) : "null";
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      graphs_(options_.graph_entries, &metrics_),
      cache_(options_.cache_entries, &metrics_),
      flight_(options_.flight) {
  if (!options_.request_log_path.empty()) {
    request_log_ = std::make_unique<RequestLog>(options_.request_log_path);
    if (!request_log_->ok()) {
      throw std::runtime_error("Server: cannot open request log " +
                               options_.request_log_path);
    }
  }
}

Server::~Server() { stop_and_drain(); }

void Server::start() {
  if (running_.load()) throw std::runtime_error("Server::start: already running");
  if (options_.unix_socket_path.empty() && options_.tcp_port < 0) {
    throw std::runtime_error("Server::start: no listener configured");
  }
  obs::export_build_info(metrics_);

  // Attach the dataset before any listener exists: a server configured
  // with a bad pack should fail to start, not serve NOT_FOUND.
  if (!options_.dataset_path.empty()) attach_dataset(options_.dataset_path);

  if (!options_.unix_socket_path.empty()) {
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof addr.sun_path) {
      throw std::runtime_error("unix socket path too long: " +
                               options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof addr.sun_path - 1);
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      if (errno == EADDRINUSE) {
        // A stale socket file from a dead server is safe to replace; a
        // live server answers the probe connect and we refuse.
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        const bool live =
            probe >= 0 &&
            ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
        if (probe >= 0) ::close(probe);
        if (live) {
          throw std::runtime_error("socket path in use by a live server: " +
                                   options_.unix_socket_path);
        }
        ::unlink(options_.unix_socket_path.c_str());
        if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
          throw_errno("bind(" + options_.unix_socket_path + ")");
        }
      } else {
        throw_errno("bind(" + options_.unix_socket_path + ")");
      }
    }
    if (::listen(unix_fd_, 128) != 0) throw_errno("listen(unix)");
  }
  if (options_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    const std::string host =
        options_.tcp_bind_host.empty() ? "127.0.0.1" : options_.tcp_bind_host;
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      addrinfo hints{};
      hints.ai_family = AF_INET;
      hints.ai_socktype = SOCK_STREAM;
      addrinfo* res = nullptr;
      const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &res);
      if (rc != 0 || res == nullptr) {
        throw std::runtime_error("Server::start: cannot resolve bind host '" + host +
                                 "': " + ::gai_strerror(rc));
      }
      addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
      ::freeaddrinfo(res);
    }
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      throw_errno("bind(" + host + ":" + std::to_string(options_.tcp_port) + ")");
    }
    if (::listen(tcp_fd_, 128) != 0) throw_errno("listen(tcp)");
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      bound_tcp_port_ = static_cast<int>(ntohs(bound.sin_port));
    }
  }
  if (::pipe(wake_pipe_) != 0) throw_errno("pipe");

  const bool pump_enabled =
      options_.stats_interval_s > 0.0 && !options_.stats_out_path.empty();
  if (pump_enabled) {
    // Opened before any thread spawns so a bad path fails start()
    // cleanly instead of leaving a half-started server.
    stats_out_.open(options_.stats_out_path, std::ios::app);
    if (!stats_out_) {
      throw std::runtime_error("Server: cannot open stats output " +
                               options_.stats_out_path);
    }
  }

  started_at_ = std::chrono::steady_clock::now();
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  if (pump_enabled) stats_thread_ = std::thread([this] { stats_loop(); });
}

void Server::stop_and_drain() {
  // Raise the drain guard before running_ flips: any thread that sees
  // running() == false is guaranteed attach_dataset already refuses.
  draining_.store(true);
  if (!running_.exchange(false)) return;
  {
    std::lock_guard lock(queue_mutex_);
    stopping_ = true;  // new SOLVE admissions now answer SHUTTING_DOWN
  }
  // 1. Stop accepting: wake the poll, join, close listeners.
  [[maybe_unused]] const ::ssize_t wrc = ::write(wake_pipe_[1], "x", 1);
  accept_thread_.join();
  // 2. Half-close every connection: pending reads return EOF, writes
  //    (in-flight responses) still go through.
  {
    std::lock_guard lock(conns_mutex_);
    for (Connection& c : conns_) {
      if (!c.done.load()) ::shutdown(c.fd, SHUT_RD);
    }
  }
  // 3. Join connection threads; each finishes its current request first
  //    (the dispatcher is still alive to complete queued jobs). The fd
  //    is closed here, after the join — handler threads never close
  //    their own fd, so the reaper can never race a kernel fd reuse.
  {
    std::lock_guard lock(conns_mutex_);
    for (Connection& c : conns_) {
      if (c.thread.joinable()) c.thread.join();
      if (c.fd >= 0) ::close(c.fd);
    }
    conns_.clear();
  }
  // 4. Dispatcher exits once the (now producer-free) queue drains.
  {
    std::lock_guard lock(queue_mutex_);
    stopping_dispatch_ = true;
  }
  queue_cv_.notify_all();
  dispatch_thread_.join();
  // 5. Watchdog.
  {
    std::lock_guard lock(deadline_mutex_);
    stopping_watchdog_ = true;
  }
  deadline_cv_.notify_all();
  watchdog_thread_.join();
  // 6. Stats pump, last — its final line then reflects every request
  //    that completed during the drain.
  if (stats_thread_.joinable()) {
    {
      std::lock_guard lock(stats_mutex_);
      stopping_stats_ = true;
    }
    stats_cv_.notify_all();
    stats_thread_.join();
    stats_out_.close();
  }

  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  if (!options_.unix_socket_path.empty()) {
    ::unlink(options_.unix_socket_path.c_str());
  }
}

std::string Server::preload_dimacs_file(const std::string& path) {
  return graphs_.add(load_dimacs(path));
}

std::shared_ptr<const store::Dataset> Server::attach_dataset(const std::string& path) {
  // A SIGHUP (or RELOAD frame) racing stop_and_drain must not publish a
  // generation nothing will serve — and must not touch the watcher while
  // teardown is in flight.
  if (draining_.load()) {
    throw RequestError(kErrShuttingDown,
                       "attach_dataset: server is draining; reload refused");
  }
  // attach() validates the pack fully before publishing; on a throw the
  // previously published generation (if any) is untouched and keeps
  // serving — that is the zero-downtime guarantee of RELOAD.
  std::shared_ptr<const store::Dataset> ds = dataset_.attach(path);
  graphs_.add_shared(ds->fingerprint, ds->graph);
  metrics_.gauge("mcr_dataset_generation")
      .set(static_cast<std::int64_t>(ds->generation));
  metrics_.counter("mcr_dataset_attaches_total").add(1);
  return ds;
}

std::shared_ptr<const store::Dataset> Server::reload_dataset() {
  const std::shared_ptr<const store::Dataset> cur = dataset_.current();
  if (cur == nullptr) {
    throw std::runtime_error("reload_dataset: no dataset attached");
  }
  return attach_dataset(cur->path);
}

void Server::accept_loop() {
  std::vector<pollfd> fds;
  if (unix_fd_ >= 0) fds.push_back(pollfd{unix_fd_, POLLIN, 0});
  if (tcp_fd_ >= 0) fds.push_back(pollfd{tcp_fd_, POLLIN, 0});
  fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
  for (;;) {
    // Finite timeout so finished connection threads get reaped even on
    // an idle listener.
    const int rc = ::poll(fds.data(), fds.size(), 200);
    if (rc < 0 && errno != EINTR) break;
    if (fds.back().revents != 0) break;  // wake pipe: shutting down
    for (std::size_t i = 0; rc > 0 && i + 1 < fds.size(); ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int conn_fd = ::accept(fds[i].fd, nullptr, nullptr);
      if (conn_fd < 0) continue;
      std::lock_guard lock(conns_mutex_);
      conns_.emplace_back();
      Connection& c = conns_.back();
      c.fd = conn_fd;
      c.last_activity_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
      c.thread = std::thread([this, &c] { connection_main(&c); });
      metrics_.counter("mcr_connections_total").add(1);
      metrics_.gauge("mcr_active_connections")
          .set(static_cast<std::int64_t>(conns_.size()));
    }
    reap_idle_connections();
    reap_finished_connections();
  }
  if (unix_fd_ >= 0) ::close(unix_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
  unix_fd_ = tcp_fd_ = -1;
}

void Server::reap_finished_connections() {
  std::lock_guard lock(conns_mutex_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done.load() && it->thread.joinable()) {
      it->thread.join();
      if (it->fd >= 0) ::close(it->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
  metrics_.gauge("mcr_active_connections")
      .set(static_cast<std::int64_t>(conns_.size()));
}

void Server::reap_idle_connections() {
  if (options_.idle_timeout_ms <= 0) return;
  const std::int64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                  std::chrono::steady_clock::now().time_since_epoch())
                                  .count();
  std::lock_guard lock(conns_mutex_);
  for (Connection& c : conns_) {
    if (c.done.load() || c.idle_reaped.load()) continue;
    if (now_ms - c.last_activity_ms.load() < options_.idle_timeout_ms) continue;
    // Shutting down the socket makes the handler's blocked read return
    // EOF; the thread then exits normally and the next reap joins it.
    // The fd itself stays open until that join (see stop_and_drain),
    // so this can never hit a recycled descriptor.
    c.idle_reaped.store(true);
    ::shutdown(c.fd, SHUT_RDWR);
    metrics_.counter("mcr_idle_reaped_total").add(1);
  }
}

void Server::connection_main(Connection* conn) {
  std::string payload;
  for (;;) {
    const ReadStatus st = read_frame(conn->fd, options_.max_frame_bytes, payload);
    if (st == ReadStatus::kClosed || st == ReadStatus::kTruncated) break;
    conn->last_activity_ms.store(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    if (st == ReadStatus::kBadMagic || st == ReadStatus::kTooLarge) {
      // Framing is unrecoverable: report (best effort) and close.
      metrics_.counter("mcr_bad_frames_total").add(1);
      const char* code =
          st == ReadStatus::kTooLarge ? kErrFrameTooLarge : kErrBadFrame;
      const char* msg = st == ReadStatus::kTooLarge
                            ? "frame exceeds the server's size limit"
                            : "bad frame magic (expected MCR1)";
      (void)write_all(conn->fd, encode_frame(error_payload(code, msg)));
      break;
    }
    // Per-connection error isolation: nothing a single request does —
    // allocation failure included — may take down the server or any
    // other connection. handle_request maps everything it can to a
    // typed error payload; this is the last-resort belt for what it
    // cannot (bad_alloc while *building* a response, foreign throw
    // types).
    std::string response;
    try {
      response = handle_request(payload);
    } catch (...) {
      metrics_.counter("mcr_connection_errors_total").add(1);
      response = error_payload(kErrInternal, "internal error handling request");
    }
    if (!write_all(conn->fd, encode_frame(response))) break;
  }
  // The fd is deliberately left open: reap_finished_connections (or
  // stop_and_drain) closes it after joining this thread, so the idle
  // reaper can never shut down a recycled descriptor.
  conn->done.store(true);
}

std::string Server::handle_request(const std::string& payload) {
  Timer timer;
  RequestContext ctx;
  std::string response;
  try {
    // Allocation fault point: an injected kFail here behaves exactly
    // like the first allocation of request handling failing.
    if (MCR_FAULT_POINT(fault::Site::kAlloc).action == fault::Action::kFail) {
      throw std::bad_alloc();
    }
    const json::Value req = json::parse(payload);
    ctx.verb = req.string_or("verb", "");
    const std::string wire_id = req.string_or("trace_id", "");
    ctx.parent_span = req.string_or("parent_span", "");
    if (ctx.parent_span.size() > kMaxTraceIdBytes) {
      ctx.parent_span.resize(kMaxTraceIdBytes);
    }
    if (!wire_id.empty() && !is_valid_trace_id(wire_id)) {
      throw RequestError(kErrBadRequest,
                         "invalid trace_id (expected 1..64 characters from "
                         "[0-9a-zA-Z_-])");
    }
    ctx.trace_id = wire_id.empty() ? generate_trace_id() : wire_id;
    ctx.trace = flight_.begin(ctx.trace_id, ctx.verb, ctx.parent_span);
    // Every span this thread emits goes to both the legacy process-wide
    // sink (--trace FILE) and this request's flight-recorder trace.
    obs::TeeSink tee(options_.trace, ctx.trace.get());
    const obs::SinkScope sink_scope(tee.effective());
    const obs::Span span(obs::EventKind::kRequest, ctx.verb);
    if (ctx.verb == "PING") {
      response = "{\"status\":\"ok\",\"service\":\"mcr\"}";
    } else if (ctx.verb == "LOAD") {
      response = handle_load(req, ctx);
    } else if (ctx.verb == "SOLVE") {
      response = handle_solve(req, ctx);
    } else if (ctx.verb == "SOLVERS") {
      response = handle_solvers();
    } else if (ctx.verb == "STATS") {
      response = handle_stats(req);
    } else if (ctx.verb == "HEALTH") {
      response = handle_health();
    } else if (ctx.verb == "TRACE") {
      response = handle_trace(req);
    } else if (ctx.verb == "RELOAD") {
      response = handle_reload(req, ctx);
    } else {
      throw RequestError(kErrBadRequest,
                         "unknown verb '" + ctx.verb +
                             "' (expected PING | LOAD | SOLVE | "
                             "SOLVERS | STATS | HEALTH | TRACE | RELOAD)");
    }
  } catch (const RequestError& e) {
    ctx.error_code = e.code;
    response = error_payload(e.code, e.what());
  } catch (const std::bad_alloc&) {
    // Out-of-memory is the server's problem, not the request's: report
    // INTERNAL (retryable-by-human), never BAD_REQUEST.
    metrics_.counter("mcr_connection_errors_total").add(1);
    ctx.error_code = kErrInternal;
    response = error_payload(kErrInternal, "out of memory handling request");
  } catch (const std::exception& e) {
    ctx.error_code = kErrBadRequest;
    response = error_payload(kErrBadRequest, e.what());
  }
  // Echo (or mint, when the request never parsed) the trace id on every
  // response, error payloads included. Spliced at the front so the
  // response object's *last* field stays what it was — callers extract
  // "result" by suffix.
  if (ctx.trace_id.empty()) ctx.trace_id = generate_trace_id();
  response = with_trace_id(response, ctx.trace_id);
  finish_request(ctx, timer.millis());
  return response;
}

void Server::finish_request(RequestContext& ctx, double total_ms) {
  if (ctx.trace != nullptr) {
    const auto note = [&](const char* key, const std::string& value) {
      if (!value.empty()) ctx.trace->note(key, value);
    };
    note("fingerprint", ctx.fingerprint);
    note("algo", ctx.algo);
    note("objective", ctx.objective);
    note("cache", ctx.cache);
    flight_.finish(ctx.trace, ctx.error_code, total_ms);
  }
  if (request_log_ != nullptr) {
    RequestLog::Entry entry;
    entry.ts_ms = flight_.now_us() / 1000.0;
    entry.trace_id = ctx.trace_id;
    entry.verb = ctx.verb;
    entry.fingerprint = ctx.fingerprint;
    entry.algo = ctx.algo;
    entry.objective = ctx.objective;
    entry.cache = ctx.cache;
    entry.queue_ms = ctx.queue_ms;
    entry.solve_ms = ctx.solve_ms;
    entry.deadline_ms = ctx.deadline_ms;
    entry.code = ctx.error_code;
    entry.total_ms = total_ms;
    request_log_->write(entry);
  }
  metrics_.counter(obs::labeled_name("mcr_requests_total", {{"verb", ctx.verb}}))
      .add(1);
  const double seconds = total_ms / 1000.0;
  metrics_.histogram("mcr_request_seconds", request_seconds_bounds())
      .observe(seconds, ctx.trace_id);
  metrics_
      .histogram(
          obs::labeled_name("mcr_request_seconds", {{"verb", ctx.verb}}),
          request_seconds_bounds())
      .observe(seconds, ctx.trace_id);
  // Windowed companions of the same family: what STATS {"window":true},
  // the stats pump, and `mcr_query top` read.
  windowed_request_seconds("").observe(seconds);
  windowed_request_seconds(ctx.verb).observe(seconds);
}

std::string Server::handle_trace(const json::Value& req) const {
  obs::FlightRecorder::Filter filter;
  // "id" (not "trace_id") selects the *target* trace — "trace_id" on a
  // TRACE request is, as on every request, this request's own context.
  filter.trace_id = req.string_or("id", "");
  filter.verb = req.string_or("match_verb", "");
  filter.min_ms = req.number_or("min_ms", -1.0);
  const double limit = req.number_or("limit", 32.0);
  filter.limit = limit <= 0.0 ? 0 : static_cast<std::size_t>(limit);
  const std::size_t count = flight_.select(filter).size();
  // chrome_trace is one self-contained Chrome trace_event JSON object;
  // clients cut it out and hand it straight to Perfetto.
  std::string out = "{\"status\":\"ok\",\"count\":" + std::to_string(count);
  out += ",\"ring_size\":" + std::to_string(flight_.ring_size());
  out += ",\"pinned_size\":" + std::to_string(flight_.pinned_size());
  out += ",\"finished_total\":" + std::to_string(flight_.finished_total());
  out += ",\"evicted_total\":" + std::to_string(flight_.evicted_total());
  out += ",\"chrome_trace\":";
  out += flight_.chrome_trace_json(filter);
  out += "}";
  return out;
}

std::string Server::handle_reload(const json::Value& req, RequestContext& ctx) {
  std::string path = req.has("path") ? req.at("path").as_string() : std::string();
  if (path.empty()) {
    const std::shared_ptr<const store::Dataset> cur = dataset_.current();
    if (cur == nullptr) {
      throw RequestError(kErrBadRequest,
                         "no dataset attached (start with --dataset, or pass "
                         "\"path\" to RELOAD)");
    }
    path = cur->path;
  }
  std::shared_ptr<const store::Dataset> ds;
  try {
    ds = attach_dataset(path);
  } catch (const store::PackError& e) {
    // The swap never happened; the old generation keeps serving.
    throw RequestError(kErrBadRequest,
                       std::string("cannot attach dataset: ") + e.what());
  }
  ctx.fingerprint = ds->fingerprint;
  std::string out = "{\"status\":\"ok\",\"path\":\"" + json_escape(ds->path) +
                    "\",\"fingerprint\":\"" + ds->fingerprint +
                    "\",\"generation\":" + std::to_string(ds->generation) +
                    ",\"nodes\":" + std::to_string(ds->graph->num_nodes()) +
                    ",\"arcs\":" + std::to_string(ds->graph->num_arcs()) +
                    ",\"bytes\":" + std::to_string(ds->bytes) + "}";
  return out;
}

std::pair<std::shared_ptr<const Graph>, std::string> Server::resolve_graph(
    const json::Value& req) {
  if (req.has("fingerprint")) {
    const std::string fp = req.at("fingerprint").as_string();
    std::shared_ptr<const Graph> g = graphs_.find(fp);
    if (g == nullptr) {
      // The attached dataset is authoritative even if LRU pressure from
      // LOADed graphs evicted its registry entry: re-register instead
      // of bouncing the request.
      if (const auto ds = dataset_.current();
          ds != nullptr && ds->fingerprint == fp) {
        graphs_.add_shared(ds->fingerprint, ds->graph);
        return {ds->graph, fp};
      }
      throw RequestError(kErrNotFound,
                         "no graph with fingerprint " + fp +
                             " is resident (LOAD it first, or it was evicted)");
    }
    return {std::move(g), fp};
  }
  Graph loaded = [&]() -> Graph {
    if (req.has("dimacs")) {
      std::istringstream is(req.at("dimacs").as_string());
      return read_dimacs(is);
    }
    if (req.has("path")) return load_dimacs(req.at("path").as_string());
    if (req.has("generator")) return generate_from_spec(req.at("generator"));
    throw RequestError(kErrBadRequest,
                       "no graph source (expected one of fingerprint | dimacs | "
                       "path | generator)");
  }();
  std::string fp = graphs_.add(std::move(loaded));
  std::shared_ptr<const Graph> g = graphs_.find(fp);
  if (g == nullptr) {  // capacity so small the new entry was evicted at once
    throw RequestError(kErrInternal, "graph evicted immediately after load");
  }
  return {std::move(g), fp};
}

std::string Server::handle_load(const json::Value& req, RequestContext& ctx) {
  const auto [graph, fp] = resolve_graph(req);
  ctx.fingerprint = fp;
  std::ostringstream os;
  os << "{\"status\":\"ok\",\"fingerprint\":\"" << fp
     << "\",\"nodes\":" << graph->num_nodes() << ",\"arcs\":" << graph->num_arcs()
     << ",\"resident_graphs\":" << graphs_.size() << "}";
  return os.str();
}

std::string Server::handle_solvers() const {
  const SolverRegistry& reg = SolverRegistry::instance();
  std::string out = "{\"status\":\"ok\",\"solvers\":[";
  bool first = true;
  for (const std::string& name : reg.all_names()) {
    const SolverInfo& info = reg.info(name);
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(name) + "\",\"kind\":\"";
    out += info.kind == ProblemKind::kCycleRatio ? "ratio" : "mean";
    out += "\",\"exact\":";
    out += info.exact ? "true" : "false";
    out += ",\"bound\":\"" + json_escape(info.bound) + "\"}";
  }
  out += "]}";
  return out;
}

std::string Server::handle_stats(const json::Value& req) const {
  std::string out = "{\"status\":\"ok\",\"uptime_seconds\":";
  out += fmt_json_double(uptime_seconds());
  out += ",\"build\":";
  out += obs::build_info_json();
  if (const auto ds = dataset_.current(); ds != nullptr) {
    out += ",\"dataset\":{\"path\":\"" + json_escape(ds->path) +
           "\",\"fingerprint\":\"" + ds->fingerprint +
           "\",\"generation\":" + std::to_string(ds->generation) +
           ",\"bytes\":" + std::to_string(ds->bytes) + "}";
  }
  // Opt-in: the windowed view costs a merge over every ring slot of
  // every per-verb instrument, so plain STATS callers don't pay it.
  if (req.has("window") && req.at("window").as_bool()) {
    out += ",\"window\":";
    out += window_json();
  }
  out += ",\"metrics\":";
  out += metrics_.json();
  // "prometheus" must stay the LAST field: clients cut the escaped text
  // out of the response by suffix (see docs/SERVICE.md).
  out += ",\"prometheus\":\"";
  out += json_escape(metrics_.prometheus_text());
  out += "\"}";
  return out;
}

double Server::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_at_)
      .count();
}

obs::SlidingWindowHistogram& Server::windowed_request_seconds(
    const std::string& verb) {
  obs::SlidingWindowHistogram::Options wopt;
  wopt.window_seconds = options_.stats_window_s;
  wopt.slots = options_.stats_window_slots;
  const std::string name =
      verb.empty() ? "mcr_request_seconds"
                   : obs::labeled_name("mcr_request_seconds", {{"verb", verb}});
  return metrics_.windowed_histogram(name, request_seconds_bounds(), wopt);
}

std::string Server::window_json() const {
  const auto snapshots = metrics_.windowed_snapshots();
  std::string out = "{\"window_seconds\":";
  out += fmt_json_double(options_.stats_window_s);
  double covered = 0.0;
  for (const auto& [name, snap] : snapshots) {
    covered = std::max(covered, snap.covered_seconds);
  }
  out += ",\"covered_seconds\":" + fmt_json_double(covered);
  out += ",\"verbs\":{";
  bool first = true;
  for (const auto& [name, snap] : snapshots) {
    // Keys are the windowed mcr_request_seconds family: the bare name is
    // the all-verbs aggregate; labeled variants carry verb="X".
    static constexpr std::string_view kBase = "mcr_request_seconds";
    static constexpr std::string_view kVerbPrefix =
        "mcr_request_seconds{verb=\"";
    std::string verb;
    if (name == kBase) {
      verb = "(all)";
    } else if (name.rfind(kVerbPrefix, 0) == 0 && name.size() > kVerbPrefix.size() + 2) {
      verb = name.substr(kVerbPrefix.size(),
                         name.size() - kVerbPrefix.size() - 2);
    } else {
      continue;  // foreign windowed instrument; not part of this view
    }
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(verb);  // verbs come off the wire; keep the JSON valid
    out += "\":{\"count\":" + std::to_string(snap.count);
    // All verbs share one request timeline, so every rate is computed
    // over the window-wide covered span — a per-instrument span would
    // report absurd rates in the instant after a verb's first request.
    const double rps =
        covered > 0.0 ? static_cast<double>(snap.count) / covered : 0.0;
    out += ",\"rps\":" + fmt_json_double(rps);
    out += ",\"p50_ms\":" + window_quantile_ms_json(snap, 0.50);
    out += ",\"p95_ms\":" + window_quantile_ms_json(snap, 0.95);
    out += ",\"p99_ms\":" + window_quantile_ms_json(snap, 0.99);
    out += ",\"p999_ms\":" + window_quantile_ms_json(snap, 0.999);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string Server::handle_health() {
  std::size_t depth = 0;
  std::size_t in_flight = 0;
  bool stopping = false;
  {
    std::lock_guard lock(queue_mutex_);
    depth = queue_.size();
    in_flight = in_flight_;
    stopping = stopping_;
  }
  std::size_t connections = 0;
  {
    std::lock_guard lock(conns_mutex_);
    connections = conns_.size();
  }
  const auto now = std::chrono::steady_clock::now();
  const double uptime_s =
      std::chrono::duration<double>(now - started_at_).count();
  const std::int64_t last_ns = last_solve_steady_ns_.load();
  const double last_solve_age_s =
      last_ns < 0 ? -1.0
                  : std::chrono::duration<double>(
                        now.time_since_epoch() - std::chrono::nanoseconds(last_ns))
                        .count();
  std::ostringstream os;
  os << "{\"status\":\"ok\",\"healthy\":" << (stopping ? "false" : "true")
     << ",\"draining\":" << (stopping ? "true" : "false")
     << ",\"queue_depth\":" << depth << ",\"in_flight\":" << in_flight
     << ",\"queue_capacity\":" << options_.queue_capacity
     << ",\"connections\":" << connections << ",\"uptime_seconds\":" << uptime_s
     << ",\"last_solve_age_seconds\":" << last_solve_age_s << "}";
  return os.str();
}

std::string Server::telemetry_snapshot_json() {
  const std::int64_t ts_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string out = "{\"ts_ms\":" + std::to_string(ts_ms);
  out += ",\"uptime_seconds\":" + fmt_json_double(uptime_seconds());
  out += ",\"window\":";
  out += window_json();
  out += ",\"gauges\":{";
  bool first = true;
  for (const auto& [name, value] : metrics_.gauge_values()) {
    // mcr_build_info is a constant-1 info gauge with long labels —
    // provenance belongs in the report artifact, not on every line.
    if (name.rfind("mcr_build_info", 0) == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":" + std::to_string(value);
  }
  out += "},\"counters_delta\":{";
  first = true;
  const auto counters = metrics_.counter_values();
  for (const auto& [name, value] : counters) {
    const auto prev = stats_prev_counters_.find(name);
    const std::uint64_t delta =
        prev == stats_prev_counters_.end() ? value : value - prev->second;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":" + std::to_string(delta);
  }
  out += "}}";
  stats_prev_counters_ = counters;
  return out;
}

void Server::stats_loop() {
  const auto interval = std::chrono::duration<double>(options_.stats_interval_s);
  std::unique_lock lock(stats_mutex_);
  for (;;) {
    // wait_for (not wait_until) drifts by a line's write time per tick —
    // fine for a telemetry feed, and immune to interval arithmetic
    // around suspends.
    if (stats_cv_.wait_for(lock, interval, [&] { return stopping_stats_; })) {
      // One final line at drain so even a run shorter than the interval
      // leaves a non-empty, parseable time series behind.
      stats_out_ << telemetry_snapshot_json() << '\n' << std::flush;
      return;
    }
    stats_out_ << telemetry_snapshot_json() << '\n' << std::flush;
  }
}

std::string Server::handle_solve(const json::Value& req, RequestContext& ctx) {
  auto [graph, fp] = resolve_graph(req);
  const Objective objective = parse_objective(req.string_or("objective", "min_mean"));
  const std::string algo =
      req.string_or("algo", objective.ratio ? "howard_ratio" : "howard");
  ctx.fingerprint = fp;
  ctx.algo = algo;
  ctx.objective = objective.name;
  const SolverRegistry& reg = SolverRegistry::instance();
  bool solver_is_ratio = false;
  try {
    solver_is_ratio = reg.info(algo).kind == ProblemKind::kCycleRatio;
  } catch (const std::out_of_range& e) {
    // The registry message lists every registered solver.
    throw RequestError(kErrBadRequest, e.what());
  }
  if (solver_is_ratio != objective.ratio) {
    throw RequestError(kErrBadRequest,
                       "solver '" + algo + "' solves cycle " +
                           (solver_is_ratio ? "ratio" : "mean") +
                           " but the objective is " + objective.name);
  }

  const CacheKey key{fp, objective.name, algo};
  ResultCache::Outcome outcome = cache_.acquire(key);
  const auto respond_ok = [&](const CycleResult& r, double solve_ms, bool cached) {
    std::string out = "{\"status\":\"ok\",\"cached\":";
    out += cached ? "true" : "false";
    out += ",\"fingerprint\":\"" + fp + "\",\"result\":";
    out += result_json(r, algo, objective.name, solve_ms);
    out += "}";
    return out;
  };
  const auto respond_error = [&](const std::string& code,
                                 const std::string& message) {
    ctx.error_code = code;
    return error_payload(code, message);
  };
  if (outcome.role == ResultCache::Role::kHit) {
    ctx.cache = "hit";
    return respond_ok(outcome.result, outcome.solve_ms, true);
  }
  if (outcome.role == ResultCache::Role::kJoined) {
    ctx.cache = "join";
    if (!outcome.error_code.empty()) {
      return respond_error(outcome.error_code, outcome.error_message);
    }
    return respond_ok(outcome.result, outcome.solve_ms, true);
  }
  ctx.cache = "miss";

  // Flight leader: admission against the bounded queue.
  auto job = std::make_shared<SolveJob>();
  job->key = key;
  job->graph = std::move(graph);
  job->maximize = objective.maximize;
  job->ratio = objective.ratio;
  job->trace = ctx.trace;
  const double deadline_ms = req.number_or("deadline_ms", 0.0);
  if (deadline_ms > 0.0) ctx.deadline_ms = deadline_ms;
  if (deadline_ms > 0.0) {
    job->has_deadline = true;
    job->deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(
                        static_cast<std::int64_t>(deadline_ms * 1000.0));
    // Clock-skip fault point: a kSkip decision jumps the deadline into
    // the past by `param` ms, as if the process had been suspended that
    // long between accepting the request and scheduling it.
    const fault::Decision skip = MCR_FAULT_POINT(fault::Site::kClockSkip);
    if (skip.action == fault::Action::kSkip) {
      job->deadline -= std::chrono::milliseconds(skip.param);
    }
    // Arm BEFORE the job becomes visible to the dispatcher: an
    // already-expired deadline then cancels synchronously and the
    // dispatcher expires the job deterministically, instead of racing
    // the watchdog wake-up against the solve.
    arm_deadline(job);
  }
  job->enqueue_us = flight_.now_us();
  {
    std::lock_guard lock(queue_mutex_);
    if (stopping_) {
      cache_.fail(key, kErrShuttingDown, "server is draining");
      return respond_error(kErrShuttingDown, "server is draining");
    }
    if (in_flight_ >= options_.queue_capacity) {
      metrics_.counter("mcr_rejected_total").add(1);
      const std::string msg =
          "solve queue is full (capacity " +
          std::to_string(options_.queue_capacity) + "); retry later";
      cache_.fail(key, kErrBusy, msg);
      return respond_error(kErrBusy, msg);
    }
    ++in_flight_;
    queue_.push_back(job);
    metrics_.gauge("mcr_queue_depth").set(static_cast<std::int64_t>(queue_.size()));
    metrics_.gauge("mcr_in_flight").set(static_cast<std::int64_t>(in_flight_));
    if (queue_.size() > queue_depth_highwater_) {
      queue_depth_highwater_ = queue_.size();
      metrics_.gauge("mcr_queue_depth_highwater")
          .set(static_cast<std::int64_t>(queue_depth_highwater_));
    }
  }
  queue_cv_.notify_one();

  std::unique_lock job_lock(job->mutex);
  job->cv.wait(job_lock, [&] { return job->done; });
  ctx.queue_ms = job->queue_wait_ms;
  if (!job->ok) return respond_error(job->error_code, job->error_message);
  ctx.solve_ms = job->solve_ms;
  return respond_ok(job->result, job->solve_ms, false);
}

void Server::arm_deadline(const std::shared_ptr<SolveJob>& job) {
  // Already expired (tiny budget, or an injected clock skip): cancel
  // synchronously instead of registering a watchdog entry that would
  // fire "immediately" — synchronous cancellation is deterministic,
  // a watchdog wake-up is a race.
  if (job->deadline <= std::chrono::steady_clock::now()) {
    job->cancel->store(true);
    return;
  }
  {
    std::lock_guard lock(deadline_mutex_);
    deadlines_.emplace_back(job->deadline, job->cancel);
  }
  deadline_cv_.notify_all();
}

void Server::watchdog_loop() {
  std::unique_lock lock(deadline_mutex_);
  for (;;) {
    if (stopping_watchdog_) return;
    if (deadlines_.empty()) {
      deadline_cv_.wait(lock);
    } else {
      auto earliest = deadlines_.front().first;
      for (const auto& [when, token] : deadlines_) earliest = std::min(earliest, when);
      deadline_cv_.wait_until(lock, earliest);
    }
    if (stopping_watchdog_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = deadlines_.begin(); it != deadlines_.end();) {
      if (it->first <= now) {
        if (const auto token = it->second.lock()) token->store(true);
        it = deadlines_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Server::fulfill(SolveJob& job) {
  last_solve_steady_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now().time_since_epoch())
                                  .count());
  {
    std::lock_guard lock(job.mutex);
    job.done = true;
  }
  job.cv.notify_all();
  {
    std::lock_guard lock(queue_mutex_);
    --in_flight_;
    metrics_.gauge("mcr_in_flight").set(static_cast<std::int64_t>(in_flight_));
  }
}

void Server::complete_ok(SolveJob& job, const CycleResult& result, double solve_ms) {
  cache_.publish(job.key, result, solve_ms);
  {
    std::lock_guard lock(job.mutex);
    job.ok = true;
    job.result = result;
    job.solve_ms = solve_ms;
  }
  fulfill(job);
}

void Server::complete_error(SolveJob& job, const std::string& code,
                            const std::string& message) {
  cache_.fail(job.key, code, message);
  {
    std::lock_guard lock(job.mutex);
    job.ok = false;
    job.error_code = code;
    job.error_message = message;
  }
  fulfill(job);
}

void Server::solve_single(SolveJob& job) {
  const auto solver = SolverRegistry::instance().create(job.key.algorithm);
  // Full-detail solver spans (component/iteration/...) flow into the
  // request's trace only when head sampling selected it; the
  // request-level outline (queue/dispatch spans) is recorded for every
  // request regardless.
  obs::TeeSink tee(options_.trace,
                   job.trace != nullptr && job.trace->sampled()
                       ? static_cast<obs::TraceSink*>(job.trace.get())
                       : nullptr);
  const SolveOptions so{.num_threads = options_.solve_threads,
                        .tile_arcs = options_.solve_tile_arcs,
                        .trace = tee.effective(),
                        .metrics = &metrics_,
                        .cancel = job.cancel.get()};
  const double dispatch_begin_us = flight_.now_us();
  // Recorded before complete_* so the span is inside the trace by the
  // time the leader thread wakes and finishes it.
  const auto record_dispatch = [&] {
    if (job.trace != nullptr) {
      job.trace->record_span(obs::EventKind::kDispatch, job.key.algorithm,
                             dispatch_begin_us, flight_.now_us());
    }
  };
  Timer timer;
  try {
    const Graph& g = *job.graph;
    const CycleResult r =
        job.maximize ? (job.ratio ? maximum_cycle_ratio(g, *solver, so)
                                  : maximum_cycle_mean(g, *solver, so))
        : job.ratio  ? minimum_cycle_ratio(g, *solver, so)
                     : minimum_cycle_mean(g, *solver, so);
    record_dispatch();
    complete_ok(job, r, timer.millis());
  } catch (const SolveCancelled&) {
    metrics_.counter("mcr_deadline_cancelled_total").add(1);
    record_dispatch();
    complete_error(job, kErrDeadline, "deadline exceeded during solve");
  } catch (const std::invalid_argument& e) {
    record_dispatch();
    complete_error(job, kErrBadRequest, e.what());
  } catch (const std::exception& e) {
    record_dispatch();
    complete_error(job, kErrInternal, e.what());
  }
}

void Server::process_batch(std::vector<std::shared_ptr<SolveJob>>& batch) {
  metrics_.histogram("mcr_batch_size", {1, 2, 4, 8, 16, 32, 64, 128})
      .observe(static_cast<double>(batch.size()));
  // Occupancy of the most recent dispatcher batch relative to batch_max,
  // in percent — a saturation signal (pinned at 100 = dispatcher is the
  // bottleneck, not arrival rate).
  metrics_.gauge("mcr_batch_occupancy")
      .set(options_.batch_max == 0
               ? 0
               : static_cast<std::int64_t>(100 * batch.size() /
                                           options_.batch_max));
  // Dispatcher pickup: retro-date each job's queue-wait span back to
  // its admission time. Recorded here (not at admission) because the
  // wait only has an end once the dispatcher owns the job.
  const double pickup_us = flight_.now_us();
  for (const std::shared_ptr<SolveJob>& job : batch) {
    job->queue_wait_ms = (pickup_us - job->enqueue_us) / 1000.0;
    if (job->trace != nullptr) {
      job->trace->record_span(obs::EventKind::kQueue, "queue",
                              job->enqueue_us, pickup_us);
    }
  }
  // Expire jobs whose deadline passed while queued — no work for them.
  std::vector<std::shared_ptr<SolveJob>> live;
  live.reserve(batch.size());
  for (std::shared_ptr<SolveJob>& job : batch) {
    if (job->cancel->load(std::memory_order_relaxed)) {
      metrics_.counter("mcr_deadline_cancelled_total").add(1);
      complete_error(*job, kErrDeadline, "deadline exceeded while queued");
    } else {
      live.push_back(std::move(job));
    }
  }
  // Group by (algorithm, objective); each group is one solver run.
  std::map<std::pair<std::string, std::string>,
           std::vector<std::shared_ptr<SolveJob>>>
      groups;
  for (std::shared_ptr<SolveJob>& job : live) {
    groups[{job->key.algorithm, job->key.objective}].push_back(std::move(job));
  }
  for (auto& [group_key, jobs] : groups) {
    const bool maximize = jobs.front()->maximize;
    if (jobs.size() == 1 || maximize) {
      // Per-instance path: carries the job's own cancel token, so a
      // deadline interrupts the solve at driver phase boundaries.
      for (const std::shared_ptr<SolveJob>& job : jobs) solve_single(*job);
      continue;
    }
    // Batch path: one solve_many spreads the instances across the
    // work-stealing pool. Ratio instances are validated per job first
    // so one malformed graph cannot poison the group.
    std::vector<std::shared_ptr<SolveJob>> valid;
    valid.reserve(jobs.size());
    for (const std::shared_ptr<SolveJob>& job : jobs) {
      if (!job->ratio) {
        valid.push_back(job);
        continue;
      }
      try {
        validate_ratio_instance(*job->graph);
        valid.push_back(job);
      } catch (const std::exception& e) {
        complete_error(*job, kErrBadRequest, e.what());
      }
    }
    if (valid.empty()) continue;
    const double batch_begin_us = flight_.now_us();
    try {
      const auto solver = SolverRegistry::instance().create(group_key.first);
      std::vector<const Graph*> ptrs;
      ptrs.reserve(valid.size());
      for (const std::shared_ptr<SolveJob>& job : valid) ptrs.push_back(job->graph.get());
      const SolveOptions so{.num_threads = options_.solve_threads,
                            .tile_arcs = options_.solve_tile_arcs,
                            .trace = options_.trace,
                            .metrics = &metrics_};
      Timer timer;
      const std::vector<CycleResult> results =
          solve_many(std::span<const Graph* const>(ptrs), *solver, so);
      const double batch_ms = timer.millis();
      // Batched jobs share one dispatch interval. Full-detail solver
      // spans are not attributable per job on this path — sampling
      // detail applies on the per-instance path only.
      const double batch_end_us = flight_.now_us();
      for (std::size_t i = 0; i < valid.size(); ++i) {
        if (valid[i]->trace != nullptr) {
          valid[i]->trace->record_span(obs::EventKind::kDispatch,
                                       group_key.first, batch_begin_us,
                                       batch_end_us);
        }
        complete_ok(*valid[i], results[i], batch_ms);
      }
    } catch (const std::exception& e) {
      const double batch_end_us = flight_.now_us();
      for (const std::shared_ptr<SolveJob>& job : valid) {
        if (job->trace != nullptr) {
          job->trace->record_span(obs::EventKind::kDispatch, group_key.first,
                                  batch_begin_us, batch_end_us);
        }
        complete_error(*job, kErrInternal, e.what());
      }
    }
  }
}

void Server::dispatch_loop() {
  const obs::SinkScope sink_scope(options_.trace);
  for (;;) {
    std::vector<std::shared_ptr<SolveJob>> batch;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_dispatch_ || !queue_.empty(); });
      if (queue_.empty()) return;  // only when stopping_dispatch_
      while (!queue_.empty() && batch.size() < options_.batch_max) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      metrics_.gauge("mcr_queue_depth").set(static_cast<std::int64_t>(queue_.size()));
    }
    process_batch(batch);
  }
}

}  // namespace mcr::svc
