// The mcr solve service: a resident server over the solver stack.
//
// Architecture (docs/SERVICE.md has the full protocol reference):
//
//   accept thread ──▶ one thread per connection ──▶ bounded job queue
//                      (parse frame, cache/single-     (capacity K,
//                       flight admission)               BUSY beyond)
//                                                          │
//   deadline watchdog ◀── arms cancel tokens        dispatcher thread
//                                                   (drains the queue in
//                                                    batches, groups by
//                                                    (algorithm, objective),
//                                                    solve_many on the
//                                                    work-stealing pool)
//
// Request lifecycle for SOLVE: resolve the graph (content fingerprint
// via the GraphRegistry), consult the ResultCache (hit → answer from
// memory; identical request in flight → join it), otherwise become the
// flight leader and enter the bounded queue. Admission counts every
// admitted-but-unfinished solve: at capacity the request is rejected
// immediately with BUSY (explicit backpressure — the client decides
// whether to retry; nothing hangs, nothing is silently dropped).
//
// Shutdown (stop_and_drain, wired to SIGTERM in mcr_serve): stop
// accepting, half-close existing connections so no new requests enter,
// finish every in-flight request, then retire the dispatcher and
// watchdog. In-flight work is never abandoned.
#ifndef MCR_SVC_SERVER_H
#define MCR_SVC_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <fstream>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "store/dataset_watcher.h"
#include "svc/cache.h"
#include "svc/graph_registry.h"
#include "svc/protocol.h"
#include "svc/request_log.h"

namespace mcr::json {
class Value;
}  // namespace mcr::json

namespace mcr::svc {

struct ServerOptions {
  /// Unix-domain listener path; empty disables. A stale socket file
  /// (path exists but nothing accepts) is replaced; a live one fails.
  std::string unix_socket_path;
  /// TCP listener: port number, 0 = ephemeral, -1 = disabled.
  int tcp_port = -1;
  /// Bind address for the TCP listener. Loopback by default; set
  /// "0.0.0.0" (or a specific interface address) so a worker can sit
  /// behind an mcr_router on another host. Numeric IPv4, or a name
  /// resolved via getaddrinfo.
  std::string tcp_bind_host = "127.0.0.1";
  /// SolveOptions::num_threads for dispatched solves (0 = hardware).
  int solve_threads = 0;
  /// SolveOptions::tile_arcs for dispatched solves: arc-tile granularity
  /// for intra-SCC parallelism (0 = untiled). Results are bit-identical
  /// for any value; only throughput and mcr_ops_tiles_* change.
  std::int32_t solve_tile_arcs = 0;
  /// Admission bound: max solve requests admitted and not yet finished
  /// (queued + executing). Beyond it, SOLVE is rejected with BUSY.
  std::size_t queue_capacity = 64;
  /// Max jobs one dispatcher batch pulls from the queue.
  std::size_t batch_max = 32;
  /// ResultCache entries (LRU).
  std::size_t cache_entries = 1024;
  /// GraphRegistry entries (LRU).
  std::size_t graph_entries = 64;
  /// Per-frame payload cap; larger frames are rejected and the
  /// connection closed.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Idle-connection reaper: connections with no completed request for
  /// this long are shut down (their blocked read returns EOF and the
  /// handler thread exits). 0 disables. Counted in
  /// mcr_idle_reaped_total.
  std::int64_t idle_timeout_ms = 0;
  /// Optional trace sink: per-request kRequest spans plus the usual
  /// driver/solver spans from dispatched solves.
  obs::TraceSink* trace = nullptr;
  /// Flight recorder tuning (ring/pinned capacities, slow-pin
  /// threshold, head-sampling rate). The recorder itself is always on:
  /// every request records its queue/dispatch/solve outline into a
  /// bounded per-request trace, retained per these options.
  obs::FlightRecorder::Options flight{};
  /// Per-request JSONL access log path; empty (the default) disables.
  std::string request_log_path;
  /// Sliding-window telemetry shape for the windowed
  /// mcr_request_seconds family: the nominal window the live view
  /// covers and the number of ring sub-windows it rotates through.
  /// Consumed by STATS {"window":true}, the stats pump, and
  /// `mcr_query top`.
  double stats_window_s = 60.0;
  std::size_t stats_window_slots = 6;
  /// Periodic snapshot pump: every `stats_interval_s` seconds (and once
  /// more at drain) one JSON line — windowed per-verb percentiles,
  /// saturation gauges, counter deltas since the previous line — is
  /// appended to `stats_out_path`. The pump runs only when the interval
  /// is positive AND the path is set.
  double stats_interval_s = 0.0;
  std::string stats_out_path;
  /// .mcrpack dataset to attach at start() (mmap'd zero-copy, see
  /// docs/STORAGE.md). Empty disables. The attached graph is registered
  /// in the GraphRegistry under its content fingerprint; RELOAD (and
  /// SIGHUP in mcr_serve) hot-swaps to a new generation without
  /// interrupting in-flight solves.
  std::string dataset_path;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  /// Drains (as stop_and_drain) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and spawns the service threads.
  /// Throws std::runtime_error when no listener is configured or a
  /// bind/listen fails.
  void start();

  /// Graceful shutdown: stop accepting, complete every in-flight
  /// request, join all threads, remove the unix socket file.
  /// Idempotent; safe to call from any thread except a handler's.
  void stop_and_drain();

  [[nodiscard]] bool running() const { return running_.load(); }

  /// Actual TCP port after start() (useful with tcp_port = 0).
  [[nodiscard]] int tcp_port() const { return bound_tcp_port_; }

  /// Loads a DIMACS file into the registry (the --preload path in
  /// mcr_serve); returns the fingerprint. Call before or after start().
  std::string preload_dimacs_file(const std::string& path);

  /// Attaches (or hot-swaps to) the pack at `path`: validates it,
  /// publishes it as the next dataset generation, and registers its
  /// zero-copy graph in the registry. Throws store::PackError on a bad
  /// pack, in which case the current generation keeps serving. Thread-
  /// safe; this is what the RELOAD verb and SIGHUP call.
  std::shared_ptr<const store::Dataset> attach_dataset(const std::string& path);

  /// Re-attaches the currently attached dataset path (the SIGHUP
  /// no-argument reload). Throws std::runtime_error when no dataset has
  /// ever been attached.
  std::shared_ptr<const store::Dataset> reload_dataset();

  /// The currently published dataset generation; nullptr when the
  /// server runs without --dataset.
  [[nodiscard]] std::shared_ptr<const store::Dataset> dataset() const {
    return dataset_.current();
  }

  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] GraphRegistry& graphs() { return graphs_; }
  [[nodiscard]] ResultCache& cache() { return cache_; }
  /// The always-on per-request trace retainer (TRACE verb source,
  /// post-mortem dump payload).
  [[nodiscard]] obs::FlightRecorder& flight() { return flight_; }

  /// One snapshot line of the stats pump's JSONL time series (ts,
  /// uptime, windowed per-verb percentiles, gauges, counter deltas
  /// since the previous call). Stateful: each call advances the delta
  /// baseline. Exposed so tests can drive the pump synchronously.
  [[nodiscard]] std::string telemetry_snapshot_json();

 private:
  /// Everything one request accumulates for the flight recorder, the
  /// access log, and the per-verb latency metrics. Lives on the
  /// connection thread's stack for the request's duration.
  struct RequestContext {
    std::string trace_id;
    std::string parent_span;
    std::string verb = "INVALID";
    std::shared_ptr<obs::RequestTrace> trace;
    std::string fingerprint;
    std::string algo;
    std::string objective;
    std::string cache;  // "hit" | "miss" | "join" | ""
    double queue_ms = -1.0;
    double solve_ms = -1.0;
    double deadline_ms = -1.0;
    std::string error_code;  // protocol code; "" = ok
  };
  struct SolveJob {
    CacheKey key;
    std::shared_ptr<const Graph> graph;
    bool maximize = false;
    bool ratio = false;
    std::shared_ptr<std::atomic<bool>> cancel =
        std::make_shared<std::atomic<bool>>(false);
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    /// Flight-recorder wiring: the requesting trace (always set by the
    /// leader) plus admission time, so the dispatcher can retro-date
    /// the queue-wait span from its pickup site.
    std::shared_ptr<obs::RequestTrace> trace;
    double enqueue_us = 0.0;
    double queue_wait_ms = -1.0;  // written by the dispatcher at pickup
    // Completion channel (leader connection thread waits here).
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    bool ok = false;
    CycleResult result;
    double solve_ms = 0.0;
    std::string error_code;
    std::string error_message;
  };
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
    /// Steady-clock ms of the last frame activity (idle reaper input).
    std::atomic<std::int64_t> last_activity_ms{0};
    /// Set once by the reaper so a connection is shut down and counted
    /// at most once.
    std::atomic<bool> idle_reaped{false};
  };

  void accept_loop();
  void connection_main(Connection* conn);
  void dispatch_loop();
  void watchdog_loop();
  void stats_loop();

  [[nodiscard]] std::string handle_request(const std::string& payload);
  [[nodiscard]] std::string handle_load(const json::Value& req,
                                        RequestContext& ctx);
  [[nodiscard]] std::string handle_solve(const json::Value& req,
                                         RequestContext& ctx);
  [[nodiscard]] std::string handle_solvers() const;
  [[nodiscard]] std::string handle_stats(const json::Value& req) const;
  [[nodiscard]] std::string handle_health();
  [[nodiscard]] std::string handle_trace(const json::Value& req) const;
  [[nodiscard]] std::string handle_reload(const json::Value& req,
                                          RequestContext& ctx);

  /// `{"window_seconds":..,"verbs":{"(all)":{..},"SOLVE":{..}}}` —
  /// windowed per-verb count/rps/percentiles, shared by STATS
  /// {"window":true} and the stats pump.
  [[nodiscard]] std::string window_json() const;
  [[nodiscard]] double uptime_seconds() const;
  /// The windowed companion of the mcr_request_seconds family
  /// (aggregate when `verb` is empty).
  obs::SlidingWindowHistogram& windowed_request_seconds(
      const std::string& verb);

  /// Tail of handle_request: finishes the flight-recorder trace, writes
  /// the access-log line, and records the request latency (aggregate +
  /// per-verb histograms, exemplared with the trace id).
  void finish_request(RequestContext& ctx, double total_ms);

  /// Parses the request's graph source ("fingerprint" | "dimacs" |
  /// "path" | "generator") and returns (resident graph, fingerprint).
  /// Throws std::runtime_error with a client-facing message.
  std::pair<std::shared_ptr<const Graph>, std::string> resolve_graph(
      const json::Value& req);

  void process_batch(std::vector<std::shared_ptr<SolveJob>>& batch);
  void solve_single(SolveJob& job);
  void complete_ok(SolveJob& job, const CycleResult& result, double solve_ms);
  void complete_error(SolveJob& job, const std::string& code,
                      const std::string& message);
  void fulfill(SolveJob& job);
  void arm_deadline(const std::shared_ptr<SolveJob>& job);
  void reap_finished_connections();
  void reap_idle_connections();

  ServerOptions options_;
  obs::MetricsRegistry metrics_;
  GraphRegistry graphs_;
  store::DatasetWatcher dataset_;
  ResultCache cache_;
  obs::FlightRecorder flight_;
  std::unique_ptr<RequestLog> request_log_;

  std::atomic<bool> running_{false};
  /// Set (and never cleared) once stop_and_drain begins, *before*
  /// running_ flips — so observing running() == false implies the drain
  /// guard is already up. attach_dataset refuses new generations after
  /// this point: a SIGHUP/RELOAD racing the drain must not publish a
  /// dataset that nothing will ever serve (see test_svc
  /// ReloadDuringDrainIsRefused).
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point started_at_{};
  /// Steady-clock ns of the most recent solve completion (ok or error);
  /// -1 until the first one. HEALTH reports its age.
  std::atomic<std::int64_t> last_solve_steady_ns_{-1};
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::thread watchdog_thread_;
  std::thread stats_thread_;

  std::mutex stats_mutex_;
  std::condition_variable stats_cv_;
  bool stopping_stats_ = false;
  std::ofstream stats_out_;
  /// Counter baseline for the pump's per-line deltas; touched only by
  /// telemetry_snapshot_json (pump thread, or a test driving it).
  std::map<std::string, std::uint64_t> stats_prev_counters_;

  std::mutex conns_mutex_;
  std::list<Connection> conns_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<SolveJob>> queue_;
  std::size_t in_flight_ = 0;  // admitted, not yet fulfilled
  std::size_t queue_depth_highwater_ = 0;  // deepest queue since start
  bool stopping_ = false;          // refuse new admissions
  bool stopping_dispatch_ = false; // dispatcher exits once queue empty

  std::mutex deadline_mutex_;
  std::condition_variable deadline_cv_;
  std::vector<std::pair<std::chrono::steady_clock::time_point,
                        std::weak_ptr<std::atomic<bool>>>>
      deadlines_;
  bool stopping_watchdog_ = false;
};

}  // namespace mcr::svc

#endif  // MCR_SVC_SERVER_H
