#include "apps/async_timing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace mcr::apps {
namespace {

// A two-stage asynchronous micropipeline: request/acknowledge
// handshakes between stages. Events: 0 = stage-A done, 1 = stage-B
// done. A's next token needs B's ack (previous occurrence), and B needs
// A's data (same occurrence).
ErSystem micropipeline(std::int64_t da, std::int64_t db) {
  ErSystem sys;
  sys.num_events = 2;
  sys.rules.push_back({0, 1, db, 0});  // A_k triggers B_k after db
  sys.rules.push_back({1, 0, da, 1});  // B_{k-1} frees A_k after da
  return sys;
}

TEST(AsyncTiming, MicropipelinePeriod) {
  const ErAnalysis a = analyze_er_system(micropipeline(3, 5));
  ASSERT_TRUE(a.live);
  EXPECT_EQ(a.period, Rational(8));  // (3+5)/1 occurrence around the loop
  EXPECT_EQ(a.critical_events.size(), 2u);
}

TEST(AsyncTiming, TimingAssignmentIsValid) {
  const ErSystem sys = micropipeline(3, 5);
  const ErAnalysis a = analyze_er_system(sys);
  EXPECT_TRUE(is_valid_timing(sys, a.period, a.scaled_offset));
  // Perturbing an offset downward must break a rule somewhere.
  auto bad = a.scaled_offset;
  bad[1] -= 1;
  EXPECT_FALSE(is_valid_timing(sys, a.period, bad));
}

TEST(AsyncTiming, MoreConcurrencyShortensPeriod) {
  // A second token (occurrence offset 2) lets both stages overlap.
  ErSystem sys;
  sys.num_events = 2;
  sys.rules.push_back({0, 1, 5, 0});
  sys.rules.push_back({1, 0, 3, 2});
  const ErAnalysis a = analyze_er_system(sys);
  ASSERT_TRUE(a.live);
  EXPECT_EQ(a.period, Rational(8, 2));
}

TEST(AsyncTiming, SlowestLoopDominates) {
  // Three events, two loops: 0<->1 with total 10/1, 1<->2 with 4/1.
  ErSystem sys;
  sys.num_events = 3;
  sys.rules.push_back({0, 1, 6, 0});
  sys.rules.push_back({1, 0, 4, 1});
  sys.rules.push_back({1, 2, 1, 0});
  sys.rules.push_back({2, 1, 3, 1});
  const ErAnalysis a = analyze_er_system(sys);
  EXPECT_EQ(a.period, Rational(10));
  // Critical events are exactly the slow loop's.
  EXPECT_NE(std::find(a.critical_events.begin(), a.critical_events.end(), 0),
            a.critical_events.end());
  EXPECT_NE(std::find(a.critical_events.begin(), a.critical_events.end(), 1),
            a.critical_events.end());
  EXPECT_EQ(std::find(a.critical_events.begin(), a.critical_events.end(), 2),
            a.critical_events.end());
}

TEST(AsyncTiming, CriticalRulesAreTight) {
  const ErSystem sys = micropipeline(3, 5);
  const ErAnalysis a = analyze_er_system(sys);
  // Both rules sit on the unique critical cycle: equality holds.
  for (const EventRule& r : sys.rules) {
    const std::int64_t lhs = a.scaled_offset[static_cast<std::size_t>(r.to)];
    const std::int64_t rhs = a.scaled_offset[static_cast<std::size_t>(r.from)] +
                             r.delay * a.period.den() - a.period.num() * r.occurrence;
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(AsyncTiming, ZeroOccurrenceCycleIsDeadlock) {
  ErSystem sys;
  sys.num_events = 2;
  sys.rules.push_back({0, 1, 1, 0});
  sys.rules.push_back({1, 0, 1, 0});
  const ErAnalysis a = analyze_er_system(sys);
  EXPECT_FALSE(a.live);
}

TEST(AsyncTiming, Validation) {
  ErSystem sys;
  sys.num_events = 2;
  sys.rules.push_back({0, 1, -1, 0});
  sys.rules.push_back({1, 0, 1, 1});
  EXPECT_THROW((void)analyze_er_system(sys), std::invalid_argument);
  sys.rules[0] = {0, 1, 1, -1};
  EXPECT_THROW((void)analyze_er_system(sys), std::invalid_argument);
  // Not strongly connected:
  ErSystem open_sys;
  open_sys.num_events = 2;
  open_sys.rules.push_back({0, 1, 1, 1});
  EXPECT_THROW((void)analyze_er_system(open_sys), std::invalid_argument);
}

TEST(AsyncTiming, IsValidTimingRejectsSizeMismatch) {
  const ErSystem sys = micropipeline(1, 1);
  EXPECT_FALSE(is_valid_timing(sys, Rational(2), {0}));
}

}  // namespace
}  // namespace mcr::apps
