#include "graph/bellman_ford.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/result.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

std::vector<std::int64_t> weights_as_costs(const Graph& g) {
  std::vector<std::int64_t> c(static_cast<std::size_t>(g.num_arcs()));
  for (ArcId a = 0; a < g.num_arcs(); ++a) c[static_cast<std::size_t>(a)] = g.weight(a);
  return c;
}

TEST(BellmanFord, NoNegativeCycleOnPositiveRing) {
  const Graph g = gen::ring({1, 2, 3});
  const auto res = bellman_ford_all(g, weights_as_costs(g));
  EXPECT_FALSE(res.has_negative_cycle);
  ASSERT_EQ(res.dist.size(), 3u);
  // Super-source: all distances <= 0... here all costs positive => 0.
  for (const auto d : res.dist) EXPECT_EQ(d, 0);
}

TEST(BellmanFord, DetectsNegativeRing) {
  const Graph g = gen::ring({1, -2, -1});  // total -2
  const auto res = bellman_ford_all(g, weights_as_costs(g));
  ASSERT_TRUE(res.has_negative_cycle);
  EXPECT_TRUE(is_valid_cycle(g, res.cycle));
  EXPECT_LT(cycle_weight(g, res.cycle), 0);
  EXPECT_TRUE(res.dist.empty());
}

TEST(BellmanFord, DistancesArePotentials) {
  // Mixed weights, no negative cycle: check feasibility of distances.
  GraphBuilder b(4);
  b.add_arc(0, 1, -3);
  b.add_arc(1, 2, 2);
  b.add_arc(2, 3, -1);
  b.add_arc(3, 0, 5);  // cycle total +3
  b.add_arc(0, 2, 1);
  const Graph g = b.build();
  const auto cost = weights_as_costs(g);
  const auto res = bellman_ford_all(g, cost);
  ASSERT_FALSE(res.has_negative_cycle);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_LE(res.dist[static_cast<std::size_t>(g.dst(a))],
              res.dist[static_cast<std::size_t>(g.src(a))] + cost[static_cast<std::size_t>(a)]);
  }
}

TEST(BellmanFord, NegativeSelfLoop) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 1, -1);
  const Graph g = b.build();
  const auto res = bellman_ford_all(g, weights_as_costs(g));
  ASSERT_TRUE(res.has_negative_cycle);
  EXPECT_EQ(res.cycle.size(), 1u);
}

TEST(BellmanFord, ZeroCycleIsNotNegative) {
  const Graph g = gen::ring({2, -1, -1});
  EXPECT_FALSE(has_negative_cycle(g, weights_as_costs(g)));
}

TEST(BellmanFord, FindsDeepNegativeCycle) {
  // Long chain into a far negative cycle.
  GraphBuilder b(20);
  for (NodeId v = 0; v + 1 < 17; ++v) b.add_arc(v, v + 1, 1);
  b.add_arc(16, 17, 1);
  b.add_arc(17, 18, -4);
  b.add_arc(18, 19, 1);
  b.add_arc(19, 17, 1);  // cycle 17->18->19->17 total -2
  const Graph g = b.build();
  const auto res = bellman_ford_all(g, weights_as_costs(g));
  ASSERT_TRUE(res.has_negative_cycle);
  EXPECT_TRUE(is_valid_cycle(g, res.cycle));
  EXPECT_EQ(res.cycle.size(), 3u);
  EXPECT_EQ(cycle_weight(g, res.cycle), -2);
}

TEST(BellmanFord, CostSizeMismatchThrows) {
  const Graph g = gen::ring({1, 2, 3});
  const std::vector<std::int64_t> wrong(2, 0);
  EXPECT_THROW(bellman_ford_all(g, wrong), std::invalid_argument);
}

TEST(BellmanFord, CountersTrackWork) {
  const Graph g = gen::ring({1, 2, 3});
  OpCounters counters;
  (void)bellman_ford_all(g, weights_as_costs(g), &counters);
  EXPECT_GT(counters.arc_scans, 0u);
}

TEST(BellmanFordReal, MatchesIntegerOnIntegralCosts) {
  const Graph g = gen::ring({3, -1, -1});
  std::vector<double> cost{3.0, -1.0, -1.0};
  const auto res = bellman_ford_all_real(g, cost);
  EXPECT_FALSE(res.has_negative_cycle);
  std::vector<double> cost2{3.0, -2.0, -1.5};
  const auto res2 = bellman_ford_all_real(g, cost2);
  EXPECT_TRUE(res2.has_negative_cycle);
  EXPECT_TRUE(is_valid_cycle(g, res2.cycle));
}

TEST(BellmanFordReal, FractionalThreshold) {
  // Costs w - lambda for the ring {1,2,3}: mean 2. lambda=2.1 => negative.
  const Graph g = gen::ring({1, 2, 3});
  std::vector<double> cost(3);
  for (ArcId a = 0; a < 3; ++a) {
    cost[static_cast<std::size_t>(a)] = static_cast<double>(g.weight(a)) - 2.1;
  }
  EXPECT_TRUE(bellman_ford_all_real(g, cost).has_negative_cycle);
  for (ArcId a = 0; a < 3; ++a) {
    cost[static_cast<std::size_t>(a)] = static_cast<double>(g.weight(a)) - 1.9;
  }
  EXPECT_FALSE(bellman_ford_all_real(g, cost).has_negative_cycle);
}

TEST(BellmanFord, EmptyGraph) {
  const Graph g(0, {});
  const auto res = bellman_ford_all(g, {});
  EXPECT_FALSE(res.has_negative_cycle);
  EXPECT_TRUE(res.dist.empty());
}

}  // namespace
}  // namespace mcr
