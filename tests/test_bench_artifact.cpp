// BENCH artifact pipeline — the contracts under test:
//   * write -> parse round-trips every field (including hostile strings
//     in build flags and skip cells).
//   * Self-diff is always clean: zero regressions, zero improvements.
//   * The gate flags a real slowdown, but only when the candidate lands
//     outside the baseline's CI (noise guard), and flags improvements
//     symmetrically.
//   * Schema versioning: a newer artifact is rejected, not misread.
//   * summarize_samples: median/MAD right, CI brackets the median,
//     degenerate CI for tiny samples, deterministic across calls.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "benchkit/artifact.h"
#include "benchkit/runner.h"
#include "support/json.h"

namespace mcr {
namespace {

using namespace mcr::bench;

SampleStats stats_around(double median, double half_width) {
  SampleStats s;
  s.samples = {median, median - half_width / 2, median + half_width / 2};
  s.median = median;
  s.mad = half_width / 2;
  s.ci_lower = median - half_width;
  s.ci_upper = median + half_width;
  return s;
}

BenchCell ran_cell(const std::string& instance, const std::string& solver,
                   double median, double ci_half_width) {
  BenchCell c;
  c.workload = "sprand";
  c.instance = instance;
  c.n = 128;
  c.m = 256;
  c.solver = solver;
  c.ran = true;
  c.seconds = stats_around(median, ci_half_width);
  c.phases = {{"solve", median}, {"scc_decompose", median / 10}};
  c.counters = {{"cycles", 1e6}, {"task_clock_ns", median * 1e9}};
  c.counters_available = true;
  return c;
}

BenchArtifact small_artifact() {
  BenchArtifact a;
  a.name = "unit";
  a.scale = "small";
  a.warmup = 1;
  a.repetitions = 3;
  a.counters_backend = "perf_event";
  a.build.git_sha = "abc123";
  a.build.compiler = "GNU 12.2.0";
  a.build.flags = "-O3 -DNDEBUG -DQUOTED=\"x\\y\"";  // hostile on purpose
  a.build.build_type = "Release";
  a.build.cpu_model = "Testor 9000";
  a.build.governor = "performance";
  a.build.hardware_threads = 4;
  a.cells.push_back(ran_cell("n128_m256", "howard", 0.010, 0.002));
  a.cells.push_back(ran_cell("n128_m256", "ko", 0.020, 0.001));
  BenchCell skipped;
  skipped.workload = "sprand";
  skipped.instance = "n8192_m8192";
  skipped.n = 8192;
  skipped.m = 8192;
  skipped.solver = "karp";
  skipped.skip_reason = "mem";
  a.cells.push_back(skipped);
  return a;
}

TEST(BenchArtifact, JsonRoundTripPreservesEverything) {
  const BenchArtifact a = small_artifact();
  std::ostringstream os;
  write_artifact(os, a);
  const BenchArtifact b = artifact_from_json(json::parse(os.str()));

  EXPECT_EQ(b.schema_version, kBenchSchemaVersion);
  EXPECT_EQ(b.name, a.name);
  EXPECT_EQ(b.scale, a.scale);
  EXPECT_EQ(b.warmup, a.warmup);
  EXPECT_EQ(b.repetitions, a.repetitions);
  EXPECT_EQ(b.counters_backend, a.counters_backend);
  EXPECT_EQ(b.build.git_sha, a.build.git_sha);
  EXPECT_EQ(b.build.flags, a.build.flags);
  EXPECT_EQ(b.build.cpu_model, a.build.cpu_model);
  EXPECT_EQ(b.build.hardware_threads, a.build.hardware_threads);
  ASSERT_EQ(b.cells.size(), a.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const BenchCell& x = a.cells[i];
    const BenchCell& y = b.cells[i];
    EXPECT_EQ(y.workload, x.workload);
    EXPECT_EQ(y.instance, x.instance);
    EXPECT_EQ(y.n, x.n);
    EXPECT_EQ(y.m, x.m);
    EXPECT_EQ(y.solver, x.solver);
    EXPECT_EQ(y.ran, x.ran);
    EXPECT_EQ(y.skip_reason, x.skip_reason);
    EXPECT_EQ(y.seconds.samples, x.seconds.samples);
    EXPECT_DOUBLE_EQ(y.seconds.median, x.seconds.median);
    EXPECT_DOUBLE_EQ(y.seconds.mad, x.seconds.mad);
    EXPECT_DOUBLE_EQ(y.seconds.ci_lower, x.seconds.ci_lower);
    EXPECT_DOUBLE_EQ(y.seconds.ci_upper, x.seconds.ci_upper);
    EXPECT_EQ(y.phases, x.phases);
    EXPECT_EQ(y.counters, x.counters);
    EXPECT_EQ(y.counters_available, x.counters_available);
  }
}

TEST(BenchArtifact, SkippedCellsSerializeWithoutTimingBlocks) {
  std::ostringstream os;
  write_artifact(os, small_artifact());
  const json::Value doc = json::parse(os.str());
  const auto& cells = doc.at("cells").as_array();
  const json::Value& skipped = cells.back();
  EXPECT_FALSE(skipped.at("ran").as_bool());
  EXPECT_EQ(skipped.at("skip_reason").as_string(), "mem");
  EXPECT_FALSE(skipped.has("seconds"));
  EXPECT_FALSE(skipped.has("counters"));
}

TEST(BenchArtifact, UnavailableCountersSerializeAsMarkerString) {
  BenchArtifact a = small_artifact();
  a.counters_backend = "unavailable";
  a.counters_fallback_reason = "EACCES";
  for (BenchCell& c : a.cells) {
    c.counters.clear();
    c.counters_available = false;
  }
  const json::Value doc = json::parse(artifact_json(a));
  EXPECT_EQ(doc.at("counters").as_string(), "unavailable");
  EXPECT_EQ(doc.at("counters_fallback_reason").as_string(), "EACCES");
  const json::Value& cell = doc.at("cells").as_array()[0];
  EXPECT_EQ(cell.at("counters").as_string(), "unavailable");
  const BenchArtifact b = artifact_from_json(doc);
  EXPECT_FALSE(b.cells[0].counters_available);
}

TEST(BenchArtifact, NewerSchemaVersionIsRejected) {
  BenchArtifact a = small_artifact();
  a.schema_version = kBenchSchemaVersion + 1;
  EXPECT_THROW((void)artifact_from_json(json::parse(artifact_json(a))),
               std::runtime_error);
  EXPECT_THROW((void)artifact_from_json(json::parse("{\"other\":1}")),
               std::runtime_error);
}

TEST(BenchDiff, SelfDiffIsClean) {
  const BenchArtifact a = small_artifact();
  const DiffReport report = diff_artifacts(a, a);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.improvements, 0);
  EXPECT_EQ(report.incomparable, 0);
  std::ostringstream os;
  print_diff(os, report, /*all_cells=*/false);
  EXPECT_NE(os.str().find("0 regression(s)"), std::string::npos) << os.str();
}

TEST(BenchDiff, FlagsSlowdownOutsideBaselineCi) {
  const BenchArtifact base = small_artifact();
  BenchArtifact cand = small_artifact();
  // howard: 10ms -> 14ms, way past the CI upper bound (12ms).
  cand.cells[0].seconds = stats_around(0.014, 0.002);
  const DiffReport report = diff_artifacts(base, cand, DiffOptions{5.0});
  EXPECT_EQ(report.regressions, 1);
  const CellDiff* howard = nullptr;
  for (const CellDiff& d : report.cells) {
    if (d.solver == "howard") howard = &d;
  }
  ASSERT_NE(howard, nullptr);
  EXPECT_TRUE(howard->regression);
  EXPECT_NEAR(howard->delta_pct, 40.0, 1e-9);
  std::ostringstream os;
  print_diff(os, report, /*all_cells=*/false);
  EXPECT_NE(os.str().find("REGRESSION"), std::string::npos) << os.str();
}

TEST(BenchDiff, CiGuardSuppressesNoiseWithinBounds) {
  const BenchArtifact base = small_artifact();
  BenchArtifact cand = small_artifact();
  // howard: 10ms -> 11.5ms is +15% but inside the baseline CI
  // [8ms, 12ms] — noise, not a regression.
  cand.cells[0].seconds = stats_around(0.0115, 0.002);
  const DiffReport report = diff_artifacts(base, cand, DiffOptions{5.0});
  EXPECT_EQ(report.regressions, 0);
}

TEST(BenchDiff, FlagsImprovementSymmetrically) {
  const BenchArtifact base = small_artifact();
  BenchArtifact cand = small_artifact();
  cand.cells[1].seconds = stats_around(0.010, 0.001);  // ko: 20ms -> 10ms
  const DiffReport report = diff_artifacts(base, cand);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.improvements, 1);
}

TEST(BenchDiff, CounterAvailabilityAsymmetryIsANoteNotARegression) {
  const BenchArtifact base = small_artifact();  // counters available
  BenchArtifact cand = small_artifact();
  for (BenchCell& c : cand.cells) {
    c.counters.clear();
    c.counters_available = false;  // e.g. perf_event_open denied in CI
  }
  cand.counters_backend = "unavailable";
  const DiffReport report = diff_artifacts(base, cand, DiffOptions{5.0});
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.improvements, 0);
  bool saw_note = false;
  for (const CellDiff& d : report.cells) {
    if (!d.comparable) continue;
    EXPECT_TRUE(d.comparable);
    EXPECT_EQ(d.note, "counters: baseline only");
    EXPECT_TRUE(d.counter_delta_pct.empty());
    saw_note = true;
  }
  EXPECT_TRUE(saw_note);
  // And the mirror image: candidate gained counters the baseline lacks.
  const DiffReport mirror = diff_artifacts(cand, base, DiffOptions{5.0});
  EXPECT_EQ(mirror.regressions, 0);
  for (const CellDiff& d : mirror.cells) {
    if (d.comparable) {
      EXPECT_EQ(d.note, "counters: candidate only");
    }
  }
}

TEST(BenchDiff, CountersCompareOnlyMutuallyAvailableFields) {
  const BenchArtifact base = small_artifact();
  BenchArtifact cand = small_artifact();
  // Candidate dropped task_clock_ns and gained branch_misses; only the
  // shared "cycles" field should be compared.
  for (BenchCell& c : cand.cells) {
    c.counters.erase("task_clock_ns");
    c.counters["branch_misses"] = 777.0;
    c.counters["cycles"] = 1.5e6;  // +50% vs base's 1e6
  }
  const DiffReport report = diff_artifacts(base, cand, DiffOptions{5.0});
  EXPECT_EQ(report.regressions, 0);  // counters never drive the verdict
  for (const CellDiff& d : report.cells) {
    if (!d.comparable) continue;
    ASSERT_EQ(d.counter_delta_pct.size(), 1u);
    EXPECT_NEAR(d.counter_delta_pct.at("cycles"), 50.0, 1e-9);
  }
  std::ostringstream os;
  print_diff(os, report, /*all_cells=*/true);
  EXPECT_NE(os.str().find("cycles"), std::string::npos) << os.str();
}

TEST(BenchDiff, MissingNewAndSkipChangedCellsAreIncomparable) {
  const BenchArtifact base = small_artifact();
  BenchArtifact cand = small_artifact();
  cand.cells.erase(cand.cells.begin());             // howard gone
  cand.cells.back().ran = true;                     // karp now runs
  cand.cells.back().skip_reason.clear();
  cand.cells.back().seconds = stats_around(0.5, 0.1);
  BenchCell extra = ran_cell("n256_m512", "yto", 0.03, 0.01);
  cand.cells.push_back(extra);
  const DiffReport report = diff_artifacts(base, cand);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_EQ(report.incomparable, 3);  // missing + skip-changed + new
}

TEST(SampleStatsSummary, MedianMadAndCi) {
  const SampleStats s = summarize_samples({0.5, 0.1, 0.3, 0.2, 0.4});
  EXPECT_DOUBLE_EQ(s.median, 0.3);
  EXPECT_DOUBLE_EQ(s.mad, 0.1);
  EXPECT_LE(s.ci_lower, s.median);
  EXPECT_GE(s.ci_upper, s.median);
  EXPECT_GE(s.ci_lower, 0.1);
  EXPECT_LE(s.ci_upper, 0.5);
  EXPECT_EQ(s.samples.size(), 5u);
}

TEST(SampleStatsSummary, DeterministicAcrossCalls) {
  const std::vector<double> samples{1.0, 1.2, 0.9, 1.1, 1.05, 0.95, 1.3};
  const SampleStats a = summarize_samples(samples);
  const SampleStats b = summarize_samples(samples);
  EXPECT_DOUBLE_EQ(a.ci_lower, b.ci_lower);
  EXPECT_DOUBLE_EQ(a.ci_upper, b.ci_upper);
}

TEST(SampleStatsSummary, TinySamplesDegenerateToMinMaxCi) {
  const SampleStats two = summarize_samples({2.0, 4.0});
  EXPECT_DOUBLE_EQ(two.median, 3.0);
  EXPECT_DOUBLE_EQ(two.ci_lower, 2.0);
  EXPECT_DOUBLE_EQ(two.ci_upper, 4.0);
  const SampleStats none = summarize_samples({});
  EXPECT_DOUBLE_EQ(none.median, 0.0);
  EXPECT_DOUBLE_EQ(none.mad, 0.0);
}

TEST(SampleStatsSummary, OutlierMovesMeanNotMedian) {
  const SampleStats s = summarize_samples({0.10, 0.11, 0.09, 0.10, 5.0});
  EXPECT_DOUBLE_EQ(s.median, 0.10);
  EXPECT_LE(s.mad, 0.02);
}

}  // namespace
}  // namespace mcr
