#include <gtest/gtest.h>

#include "benchkit/runner.h"
#include "benchkit/workloads.h"
#include "graph/scc.h"

namespace mcr::bench {
namespace {

TEST(Workloads, DefaultScaleIsSmall) {
  // The test environment does not set MCR_BENCH_SCALE.
  if (std::getenv("MCR_BENCH_SCALE") == nullptr) {
    EXPECT_EQ(bench_scale(), Scale::kSmall);
  }
  EXPECT_EQ(scale_name(Scale::kFull), "full");
}

TEST(Workloads, FullGridMatchesPaper) {
  const auto grid = table2_grid(Scale::kFull);
  EXPECT_EQ(grid.size(), 25u);  // 5 sizes x 5 densities
  EXPECT_EQ(grid.front().n, 512);
  EXPECT_EQ(grid.front().m, 512);
  EXPECT_EQ(grid.back().n, 8192);
  EXPECT_EQ(grid.back().m, 24576);
}

TEST(Workloads, DensitiesAreTheFivePaperColumns) {
  const auto grid = table2_grid(Scale::kMedium);
  // For n = 1024: m in {1024, 1536, 2048, 2560, 3072}.
  std::vector<ArcId> ms;
  for (const auto& cell : grid) {
    if (cell.n == 1024) ms.push_back(cell.m);
  }
  EXPECT_EQ(ms, (std::vector<ArcId>{1024, 1536, 2048, 2560, 3072}));
}

TEST(Workloads, InstancesAreDeterministicPerTrial) {
  const GridCell cell{128, 256};
  const Graph a = table2_instance(cell, 0);
  const Graph b = table2_instance(cell, 0);
  const Graph c = table2_instance(cell, 1);
  EXPECT_EQ(a.num_arcs(), 256);
  EXPECT_EQ(a.weight(10), b.weight(10));
  // Different trials differ.
  int diff = 0;
  for (ArcId e = 0; e < a.num_arcs(); ++e) diff += a.weight(e) != c.weight(e) ? 1 : 0;
  EXPECT_GT(diff, 50);
}

TEST(Workloads, InstancesAreStronglyConnected) {
  EXPECT_TRUE(is_strongly_connected(table2_instance({64, 128}, 2)));
}

TEST(Workloads, CircuitSuiteNonEmptyAndSized) {
  const auto suite = circuit_suite(Scale::kSmall);
  ASSERT_GE(suite.size(), 5u);
  EXPECT_EQ(suite.front().config.registers, 32);
}

TEST(Runner, TimesASolver) {
  const Graph g = table2_instance({64, 128}, 0);
  const auto run = time_solver("howard", g);
  ASSERT_TRUE(run.ran);
  EXPECT_GT(run.seconds, 0.0);
  ASSERT_TRUE(run.result.has_cycle);
}

TEST(Runner, MemoryGuardSkipsQuadraticSpaceSolvers) {
  const Graph g = table2_instance({64, 128}, 0);
  // With a 1 KiB budget even n=64 Karp (34 KB) must be guarded out.
  const auto run = time_solver("karp", g, 1024);
  EXPECT_FALSE(run.ran);
  EXPECT_EQ(run.skip_reason, "mem");
  // Howard is linear-space and passes the same budget check... 64+128
  // times 64 bytes exceeds 1 KiB, so use a roomier budget for it.
  const auto run2 = time_solver("howard", g, 1 << 20);
  EXPECT_TRUE(run2.ran);
}

TEST(Runner, EstimatedBytesOrdering) {
  EXPECT_GT(estimated_bytes("karp", 1000, 3000), estimated_bytes("howard", 1000, 3000));
  EXPECT_GT(estimated_bytes("ho", 1000, 3000), estimated_bytes("karp", 1000, 3000));
}

TEST(Runner, TimeBudgetSkipsAfterExceeding) {
  TimeBudget budget(0.5);
  EXPECT_FALSE(budget.should_skip("lawler"));
  budget.record("lawler", 0.1);
  EXPECT_FALSE(budget.should_skip("lawler"));
  budget.record("lawler", 1.0);
  EXPECT_TRUE(budget.should_skip("lawler"));
  EXPECT_FALSE(budget.should_skip("howard"));
}

}  // namespace
}  // namespace mcr::bench
