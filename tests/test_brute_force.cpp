#include "core/brute_force.h"

#include <gtest/gtest.h>

#include "core/driver.h"
#include "core/verify.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

TEST(BruteForce, RingMean) {
  const auto solver = make_brute_force_solver(ProblemKind::kCycleMean);
  const auto r = minimum_cycle_mean(gen::ring({1, 2, 3}), *solver);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(2));
  EXPECT_EQ(r.cycle.size(), 3u);
}

TEST(BruteForce, PicksBestOfManyCycles) {
  const Graph g = gen::complete(5, 1, 100, 42);
  const auto solver = make_brute_force_solver(ProblemKind::kCycleMean);
  const auto r = minimum_cycle_mean(g, *solver);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleMean).ok);
  EXPECT_GT(r.counters.cycle_evaluations, 20u);  // many cycles examined
}

TEST(BruteForce, RatioKind) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 10, 1);
  b.add_arc(1, 0, 10, 9);  // ratio 2
  b.add_arc(0, 0, 30, 10);  // ratio 3
  const Graph g = b.build();
  const auto solver = make_brute_force_solver(ProblemKind::kCycleRatio);
  const auto r = minimum_cycle_ratio(g, *solver);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(2));
}

TEST(BruteForce, MeanIgnoresTransit) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 10, 5);
  b.add_arc(1, 0, 20, 5);
  const auto solver = make_brute_force_solver(ProblemKind::kCycleMean);
  const auto r = minimum_cycle_mean(b.build(), *solver);
  EXPECT_EQ(r.value, Rational(15));
}

TEST(BruteForce, CapThrows) {
  const Graph g = gen::complete(7, 1, 9, 1);
  const auto solver = make_brute_force_solver(ProblemKind::kCycleMean, 5);
  EXPECT_THROW((void)solver->solve_scc(g), std::runtime_error);
}

TEST(BruteForce, NamesAndKinds) {
  EXPECT_EQ(make_brute_force_solver(ProblemKind::kCycleMean)->name(), "brute_force");
  EXPECT_EQ(make_brute_force_solver(ProblemKind::kCycleRatio)->name(),
            "brute_force_ratio");
  EXPECT_EQ(make_brute_force_solver(ProblemKind::kCycleRatio)->kind(),
            ProblemKind::kCycleRatio);
}

}  // namespace
}  // namespace mcr
