#include "cli.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mcr::cli {
namespace {

TEST(Cli, PositionalOnly) {
  const Options o = parse({"file.dimacs", "other"});
  ASSERT_EQ(o.positional.size(), 2u);
  EXPECT_EQ(o.positional[0], "file.dimacs");
  EXPECT_TRUE(o.named.empty());
}

TEST(Cli, KeyValuePairs) {
  const Options o = parse({"--n", "512", "--m=1024"});
  EXPECT_EQ(o.get("n"), "512");
  EXPECT_EQ(o.get("m"), "1024");
}

TEST(Cli, BareFlagBeforeAnotherFlag) {
  const Options o = parse({"--verify", "--algo", "karp"});
  EXPECT_TRUE(o.has("verify"));
  EXPECT_EQ(o.get("verify"), "");
  EXPECT_EQ(o.get("algo"), "karp");
}

TEST(Cli, FlagConsumesFollowingBareToken) {
  // Documented behavior: "--key value" binds; use --key= for bare flags
  // followed by positionals.
  const Options o = parse({"--algo", "howard", "input.dimacs"});
  EXPECT_EQ(o.get("algo"), "howard");
  ASSERT_EQ(o.positional.size(), 1u);
  EXPECT_EQ(o.positional[0], "input.dimacs");
}

TEST(Cli, EqualsFormDoesNotConsume) {
  const Options o = parse({"--verify=", "input.dimacs"});
  EXPECT_TRUE(o.has("verify"));
  ASSERT_EQ(o.positional.size(), 1u);
}

TEST(Cli, GetFallbacks) {
  const Options o = parse({});
  EXPECT_EQ(o.get("missing", "dflt"), "dflt");
  EXPECT_EQ(o.get_int("missing", 42), 42);
}

TEST(Cli, GetIntParses) {
  const Options o = parse({"--n", "123", "--neg", "-7"});
  EXPECT_EQ(o.get_int("n", 0), 123);
  EXPECT_EQ(o.get_int("neg", 0), -7);
}

TEST(Cli, GetIntRejectsGarbage) {
  const Options o = parse({"--n", "12x"});
  EXPECT_THROW((void)o.get_int("n", 0), std::invalid_argument);
  const Options o2 = parse({"--n", "abc"});
  EXPECT_THROW((void)o2.get_int("n", 0), std::invalid_argument);
}

TEST(Cli, MalformedOptionsThrow) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
  EXPECT_THROW(parse({"---x"}), std::invalid_argument);
}

TEST(Cli, ArgcArgvOverloadSkipsProgramName) {
  const char* argv[] = {"prog", "--n", "5", "pos"};
  const Options o = parse(4, argv);
  EXPECT_EQ(o.get_int("n", 0), 5);
  ASSERT_EQ(o.positional.size(), 1u);
}

TEST(Cli, LastOccurrenceWins) {
  const Options o = parse({"--n", "1", "--n", "2"});
  EXPECT_EQ(o.get("n"), "2");
}

TEST(Cli, GetAllPreservesEveryOccurrenceInOrder) {
  // Repeatable flags (mcr_router --worker, mcr_load --target): get()
  // stays last-wins, get_all() sees every occurrence in argv order.
  const Options o = parse({"--worker", "unix:/tmp/a.sock", "--replicas", "2",
                           "--worker", "9301", "--worker=unix:/tmp/b.sock"});
  const std::vector<std::string> workers = o.get_all("worker");
  ASSERT_EQ(workers.size(), 3u);
  EXPECT_EQ(workers[0], "unix:/tmp/a.sock");
  EXPECT_EQ(workers[1], "9301");
  EXPECT_EQ(workers[2], "unix:/tmp/b.sock");
  EXPECT_EQ(o.get("worker"), "unix:/tmp/b.sock");  // last-wins unchanged
  ASSERT_EQ(o.get_all("replicas").size(), 1u);
}

TEST(Cli, GetAllOfMissingKeyIsEmpty) {
  const Options o = parse({"--n", "1"});
  EXPECT_TRUE(o.get_all("missing").empty());
}

}  // namespace
}  // namespace mcr::cli
