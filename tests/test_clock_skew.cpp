#include "apps/clock_skew.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.h"
#include "support/prng.h"

namespace mcr::apps {
namespace {

// Two registers in a loop; arcs carry (max delay, min delay).
Graph two_reg(std::int64_t max01, std::int64_t min01, std::int64_t max10,
              std::int64_t min10) {
  GraphBuilder b(2);
  b.add_arc(0, 1, max01, min01);
  b.add_arc(1, 0, max10, min10);
  return b.build();
}

TEST(ClockSkew, SymmetricLoopNeedsAverage) {
  // maxd 10 and 2: zero-skew period is 10, but skews average the loop:
  // T* = (10 + 2) / 2 = 6.
  const Graph g = two_reg(10, 10, 2, 2);
  EXPECT_EQ(zero_skew_period(g), 10);
  const ClockPeriodResult r = min_clock_period(g);
  EXPECT_EQ(r.min_period, Rational(6));
}

TEST(ClockSkew, HoldConstraintsLimitBorrowing) {
  // Large spread between min and max delay on one stage: the race cycle
  // pairing that stage's setup with its own hold binds:
  //   T >= maxd(e) - mind(e) = 10 - 2 = 8, beating the loop average 6.
  const Graph g = two_reg(10, 2, 2, 1);
  const ClockPeriodResult r = min_clock_period(g);
  EXPECT_EQ(r.min_period, Rational(8));
}

TEST(ClockSkew, FeasibleScheduleSatisfiesAllConstraints) {
  const Graph g = two_reg(10, 8, 4, 1);
  const ClockPeriodResult r = min_clock_period(g);
  const std::int64_t T =
      (r.min_period.num() + r.min_period.den() - 1) / r.min_period.den();
  const auto sched = feasible_schedule(g, T);
  ASSERT_TRUE(sched.has_value());
  const auto& s = sched->skew;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto u = static_cast<std::size_t>(g.src(a));
    const auto v = static_cast<std::size_t>(g.dst(a));
    EXPECT_LE(s[u] + g.weight(a), s[v] + T) << "setup, arc " << a;
    EXPECT_GE(s[u] + g.transit(a), s[v]) << "hold, arc " << a;
  }
}

TEST(ClockSkew, InfeasiblePeriodRejected) {
  const Graph g = two_reg(10, 10, 2, 2);
  EXPECT_FALSE(feasible_schedule(g, 5).has_value());  // below T* = 6
  EXPECT_TRUE(feasible_schedule(g, 6).has_value());
}

TEST(ClockSkew, FractionalOptimum) {
  // Triangle of slow/fast stages: T* = (9 + 3 + 1) / 3 = 13/3.
  GraphBuilder b(3);
  b.add_arc(0, 1, 9, 9);
  b.add_arc(1, 2, 3, 3);
  b.add_arc(2, 0, 1, 1);
  const ClockPeriodResult r = min_clock_period(b.build());
  EXPECT_EQ(r.min_period, Rational(13, 3));
  // Integer clocks need ceil(13/3) = 5.
  EXPECT_EQ(static_cast<std::int64_t>(r.skew_at_ceiling.size()), 3);
}

TEST(ClockSkew, SkewNeverHelpsBelowLoopAverage) {
  // Whatever the skews, T* >= average of the dominant loop.
  Prng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    GraphBuilder b(4);
    Rational loop_avg(0);
    std::int64_t total = 0;
    for (NodeId v = 0; v < 4; ++v) {
      const std::int64_t d = rng.uniform_int(1, 30);
      total += d;
      b.add_arc(v, (v + 1) % 4, d, d);
    }
    loop_avg = Rational(total, 4);
    const ClockPeriodResult r = min_clock_period(b.build());
    EXPECT_EQ(r.min_period, loop_avg) << "trial " << trial;
  }
}

TEST(ClockSkew, ZeroSkewMatchesLargestStage) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 7, 2);
  b.add_arc(1, 2, 12, 4);
  b.add_arc(2, 0, 3, 1);
  EXPECT_EQ(zero_skew_period(b.build()), 12);
}

TEST(ClockSkew, OptimalNeverWorseThanZeroSkew) {
  Prng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    GraphBuilder b(6);
    for (NodeId v = 0; v < 6; ++v) {
      const std::int64_t maxd = rng.uniform_int(2, 40);
      b.add_arc(v, (v + 1) % 6, maxd, rng.uniform_int(1, maxd));
      if (rng.bernoulli(0.5)) {
        const std::int64_t m2 = rng.uniform_int(2, 40);
        b.add_arc(v, static_cast<NodeId>(rng.uniform_int(0, 5)), m2,
                  rng.uniform_int(1, m2));
      }
    }
    const Graph g = b.build();
    const ClockPeriodResult r = min_clock_period(g);
    EXPECT_LE(r.min_period, Rational(zero_skew_period(g))) << trial;
    // And feasibility flips exactly at the optimum for integer periods.
    const std::int64_t ceil_t =
        (r.min_period.num() + r.min_period.den() - 1) / r.min_period.den();
    EXPECT_TRUE(feasible_schedule(g, ceil_t).has_value());
    if (Rational(ceil_t - 1) < r.min_period) {
      EXPECT_FALSE(feasible_schedule(g, ceil_t - 1).has_value());
    }
  }
}

TEST(ClockSkew, ValidationRejectsBadDelays) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 5, 7);  // min > max
  b.add_arc(1, 0, 5, 1);
  EXPECT_THROW((void)min_clock_period(b.build()), std::invalid_argument);
  GraphBuilder b2(2);
  b2.add_arc(0, 1, 5, -1);  // negative min
  b2.add_arc(1, 0, 5, 1);
  EXPECT_THROW((void)zero_skew_period(b2.build()), std::invalid_argument);
}

TEST(ClockSkew, SelfLoopRegister) {
  GraphBuilder b(1);
  b.add_arc(0, 0, 8, 8);
  const ClockPeriodResult r = min_clock_period(b.build());
  EXPECT_EQ(r.min_period, Rational(8));  // skew cannot help a self-loop
}

TEST(MarginSchedule, UniformLoopMargin) {
  // Loop delays 10 and 2 at period 8: margin = MCM of (8-10, 8-2) = 2.
  const Graph g = two_reg(10, 10, 2, 2);
  const MarginSchedule m = max_margin_schedule(g, 8);
  EXPECT_EQ(m.margin, Rational(2));
}

TEST(MarginSchedule, SkewsSatisfyMarginOnEveryArc) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 9, 9);
  b.add_arc(1, 2, 3, 3);
  b.add_arc(2, 0, 1, 1);
  b.add_arc(0, 2, 6, 6);
  const Graph g = b.build();
  const std::int64_t T = 10;
  const MarginSchedule m = max_margin_schedule(g, T);
  const std::int64_t den = m.margin.den();
  // s(u) + maxd + t <= s(v) + T, scaled by den.
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const auto u = static_cast<std::size_t>(g.src(a));
    const auto v = static_cast<std::size_t>(g.dst(a));
    EXPECT_LE(m.scaled_skew[u] + g.weight(a) * den + m.margin.num(),
              m.scaled_skew[v] + T * den)
        << "arc " << a;
  }
}

TEST(MarginSchedule, NegativeMarginWhenPeriodInfeasible) {
  const Graph g = two_reg(10, 10, 2, 2);  // T* (setup-only) = 6
  const MarginSchedule m = max_margin_schedule(g, 5);
  EXPECT_EQ(m.margin, Rational(-1));  // one unit short of T* = 6
}

TEST(MarginSchedule, MarginZeroExactlyAtOptimum) {
  const Graph g = two_reg(10, 10, 2, 2);
  EXPECT_EQ(max_margin_schedule(g, 6).margin, Rational(0));
}

}  // namespace
}  // namespace mcr::apps
