#include "core/critical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/result.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

// Two triangles sharing no nodes, joined one-way; means 2 and 4.
Graph two_triangles() {
  GraphBuilder b(6);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 2, 2);
  b.add_arc(2, 0, 3);  // mean 2
  b.add_arc(2, 3, 100);
  b.add_arc(3, 4, 4);
  b.add_arc(4, 5, 4);
  b.add_arc(5, 3, 4);  // mean 4
  return b.build();
}

TEST(LambdaCosts, MeanIgnoresTransit) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 10, 7);
  b.add_arc(1, 0, 20, 3);
  const Graph g = b.build();
  const auto mean_costs = lambda_costs(g, Rational(3, 2), ProblemKind::kCycleMean);
  EXPECT_EQ(mean_costs[0], 10 * 2 - 3 * 1);
  EXPECT_EQ(mean_costs[1], 20 * 2 - 3 * 1);
  const auto ratio_costs = lambda_costs(g, Rational(3, 2), ProblemKind::kCycleRatio);
  EXPECT_EQ(ratio_costs[0], 10 * 2 - 3 * 7);
  EXPECT_EQ(ratio_costs[1], 20 * 2 - 3 * 3);
}

TEST(LambdaCosts, NegativeCycleIffBelowValue) {
  const Graph g = gen::ring({1, 2, 3});  // mean 2
  // At lambda = 2 the ring has cost 0; at 5/2 it is negative.
  const auto at2 = lambda_costs(g, Rational(2), ProblemKind::kCycleMean);
  std::int64_t total = 0;
  for (const auto c : at2) total += c;
  EXPECT_EQ(total, 0);
  const auto at52 = lambda_costs(g, Rational(5, 2), ProblemKind::kCycleMean);
  total = 0;
  for (const auto c : at52) total += c;
  EXPECT_LT(total, 0);
}

TEST(CriticalSubgraph, RingEntirelyCritical) {
  const Graph g = gen::ring({1, 2, 3});
  const CriticalSubgraph crit = critical_subgraph(g, Rational(2), ProblemKind::kCycleMean);
  EXPECT_EQ(crit.arcs.size(), 3u);
  EXPECT_EQ(crit.nodes.size(), 3u);
}

TEST(CriticalSubgraph, OnlyOptimalTriangleCritical) {
  const Graph g = two_triangles();
  const CriticalSubgraph crit = critical_subgraph(g, Rational(2), ProblemKind::kCycleMean);
  // The mean-4 triangle's arcs cannot all be critical; the mean-2
  // triangle's arcs must all be.
  for (const ArcId a : {0, 1, 2}) {
    EXPECT_NE(std::find(crit.arcs.begin(), crit.arcs.end(), a), crit.arcs.end())
        << "arc " << a << " should be critical";
  }
  // No cycle among critical arcs within the second triangle: the
  // optimum cycle extraction must return the first triangle.
  const auto cycle = extract_optimal_cycle(g, Rational(2), ProblemKind::kCycleMean);
  EXPECT_EQ(cycle_mean(g, cycle), Rational(2));
}

TEST(CriticalSubgraph, ValueAboveOptimumThrows) {
  // At lambda > lambda* the transformed graph has a negative cycle, so
  // no feasible potentials exist.
  const Graph g = gen::ring({1, 2, 3});
  EXPECT_THROW(critical_subgraph(g, Rational(3), ProblemKind::kCycleMean),
               std::invalid_argument);
}

TEST(CriticalSubgraph, ValueBelowOptimumHasNoCriticalCycle) {
  // At lambda < lambda* potentials exist but no cycle is tight: the
  // extraction reports that by throwing.
  const Graph g = gen::ring({1, 2, 3});
  const CriticalSubgraph crit = critical_subgraph(g, Rational(1), ProblemKind::kCycleMean);
  EXPECT_LT(crit.arcs.size(), 3u);  // cannot all be tight below optimum
  EXPECT_THROW(extract_optimal_cycle(g, Rational(1), ProblemKind::kCycleMean),
               std::invalid_argument);
}

TEST(CriticalSubgraph, PotentialsAreFeasible) {
  const Graph g = two_triangles();
  const CriticalSubgraph crit = critical_subgraph(g, Rational(2), ProblemKind::kCycleMean);
  const auto cost = lambda_costs(g, Rational(2), ProblemKind::kCycleMean);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_LE(crit.scaled_potential[static_cast<std::size_t>(g.dst(a))],
              crit.scaled_potential[static_cast<std::size_t>(g.src(a))] +
                  cost[static_cast<std::size_t>(a)]);
  }
}

TEST(ExtractOptimalCycle, ReturnsValidOptimalCycle) {
  const Graph g = gen::ring({5, 5, 5});
  const auto cycle = extract_optimal_cycle(g, Rational(5), ProblemKind::kCycleMean);
  EXPECT_TRUE(is_valid_cycle(g, cycle));
  EXPECT_EQ(cycle_mean(g, cycle), Rational(5));
}

TEST(ExtractOptimalCycle, SelfLoopOptimum) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 10);
  b.add_arc(1, 0, 10);
  b.add_arc(1, 1, 3);
  const Graph g = b.build();
  const auto cycle = extract_optimal_cycle(g, Rational(3), ProblemKind::kCycleMean);
  ASSERT_EQ(cycle.size(), 1u);
  EXPECT_EQ(cycle_mean(g, cycle), Rational(3));
}

TEST(ExtractOptimalCycle, RatioKind) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 6, 2);
  b.add_arc(1, 0, 6, 4);  // cycle ratio 12/6 = 2
  const Graph g = b.build();
  const auto cycle = extract_optimal_cycle(g, Rational(2), ProblemKind::kCycleRatio);
  EXPECT_EQ(cycle_ratio(g, cycle), Rational(2));
}

TEST(ExtractOptimalCycle, ValueAboveOptimumThrows) {
  const Graph g = gen::ring({1, 2, 3});
  // 5/2 is above the optimum 2: a negative cycle exists there, caught
  // by the potential computation.
  EXPECT_THROW(extract_optimal_cycle(g, Rational(5, 2), ProblemKind::kCycleMean),
               std::invalid_argument);
}

TEST(CycleHelpers, WeightTransitMeanRatio) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 3, 2);
  b.add_arc(1, 0, 5, 6);
  const Graph g = b.build();
  const std::vector<ArcId> cycle{0, 1};
  EXPECT_EQ(cycle_weight(g, cycle), 8);
  EXPECT_EQ(cycle_transit(g, cycle), 8);
  EXPECT_EQ(cycle_mean(g, cycle), Rational(4));
  EXPECT_EQ(cycle_ratio(g, cycle), Rational(1));
  EXPECT_THROW((void)cycle_mean(g, {}), std::invalid_argument);
}

TEST(CycleHelpers, IsValidCycleChecks) {
  const Graph g = gen::ring({1, 2, 3});
  EXPECT_TRUE(is_valid_cycle(g, {0, 1, 2}));
  EXPECT_FALSE(is_valid_cycle(g, {0, 2}));   // does not chain
  EXPECT_FALSE(is_valid_cycle(g, {0, 1}));   // does not close
  EXPECT_FALSE(is_valid_cycle(g, {}));       // empty
  EXPECT_FALSE(is_valid_cycle(g, {0, 99}));  // out of range
}

TEST(ArcSlacks, CriticalArcsHaveZeroSlack) {
  const Graph g = two_triangles();
  const auto slack = arc_slacks(g, Rational(2), ProblemKind::kCycleMean);
  const CriticalSubgraph crit = critical_subgraph(g, Rational(2), ProblemKind::kCycleMean);
  std::vector<bool> is_critical(static_cast<std::size_t>(g.num_arcs()), false);
  for (const ArcId a : crit.arcs) is_critical[static_cast<std::size_t>(a)] = true;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_GE(slack[static_cast<std::size_t>(a)], 0);
    EXPECT_EQ(slack[static_cast<std::size_t>(a)] == 0,
              is_critical[static_cast<std::size_t>(a)])
        << "arc " << a;
  }
}

TEST(ArcSlacks, ScaledByDenominator) {
  // Ring {1,2}: lambda* = 3/2; slacks are in halves.
  const Graph g = gen::ring({1, 2});
  const auto slack = arc_slacks(g, Rational(3, 2), ProblemKind::kCycleMean);
  // Both arcs are critical (the unique cycle is optimal).
  EXPECT_EQ(slack[0], 0);
  EXPECT_EQ(slack[1], 0);
}

TEST(ArcSlacks, AboveOptimumThrows) {
  const Graph g = gen::ring({1, 2, 3});
  EXPECT_THROW(arc_slacks(g, Rational(3), ProblemKind::kCycleMean),
               std::invalid_argument);
}

TEST(OptimalArcSet, ExactlyTheOptimalTriangle) {
  const Graph g = two_triangles();
  const auto arcs = optimal_arc_set(g, Rational(2), ProblemKind::kCycleMean);
  EXPECT_EQ(arcs, (std::vector<ArcId>{0, 1, 2}));
}

TEST(OptimalArcSet, TiedCyclesAllIncluded) {
  // Two disjoint rings with the same mean 3: all six arcs optimal.
  GraphBuilder b(6);
  b.add_arc(0, 1, 2);
  b.add_arc(1, 2, 3);
  b.add_arc(2, 0, 4);
  b.add_arc(3, 4, 3);
  b.add_arc(4, 5, 3);
  b.add_arc(5, 3, 3);
  b.add_arc(0, 3, 100);
  const Graph g = b.build();
  const auto arcs = optimal_arc_set(g, Rational(3), ProblemKind::kCycleMean);
  EXPECT_EQ(arcs.size(), 6u);
}

TEST(OptimalArcSet, ExcludesTightNonCycleArcs) {
  // A tight arc hanging off the optimal cycle is critical but on no
  // optimum cycle.
  GraphBuilder b(3);
  b.add_arc(0, 1, 2);
  b.add_arc(1, 0, 2);   // optimal 2-cycle, mean 2
  b.add_arc(1, 2, 2);   // tight continuation (slack 0) but dead end
  b.add_arc(2, 0, 50);  // way off
  const Graph g = b.build();
  const CriticalSubgraph crit = critical_subgraph(g, Rational(2), ProblemKind::kCycleMean);
  EXPECT_GE(crit.arcs.size(), 3u);  // includes the dead-end tight arc
  const auto arcs = optimal_arc_set(g, Rational(2), ProblemKind::kCycleMean);
  EXPECT_EQ(arcs, (std::vector<ArcId>{0, 1}));
}

TEST(OptimalArcSet, RatioKind) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 6, 2);
  b.add_arc(1, 0, 6, 4);   // ratio 2 (optimal)
  b.add_arc(0, 0, 30, 10);  // ratio 3
  const Graph g = b.build();
  const auto arcs = optimal_arc_set(g, Rational(2), ProblemKind::kCycleRatio);
  EXPECT_EQ(arcs, (std::vector<ArcId>{0, 1}));
}

}  // namespace
}  // namespace mcr
