// The heart of the reproduction's correctness story: every algorithm in
// the study must produce the exact same minimum cycle mean as Karp's
// algorithm (the Theta(nm) exact reference) on a broad sweep of random
// and structured instances, and every result must pass the exact
// optimality certificate.
#include <gtest/gtest.h>

#include <tuple>

#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "gen/circuit.h"
#include "gen/sprand.h"
#include "gen/structured.h"

namespace mcr {
namespace {

struct Instance {
  std::string family;
  Graph graph;
};

Graph make_instance(const std::string& family, int size_class, std::uint64_t seed) {
  const NodeId n = size_class == 0 ? 24 : (size_class == 1 ? 60 : 120);
  if (family == "sprand_sparse") {
    gen::SprandConfig cfg;
    cfg.n = n;
    cfg.m = n + n / 2;
    cfg.seed = seed;
    return gen::sprand(cfg);
  }
  if (family == "sprand_dense") {
    gen::SprandConfig cfg;
    cfg.n = n;
    cfg.m = 3 * n;
    cfg.seed = seed;
    return gen::sprand(cfg);
  }
  if (family == "sprand_hamiltonian") {
    gen::SprandConfig cfg;
    cfg.n = n;
    cfg.m = n;
    cfg.seed = seed;
    return gen::sprand(cfg);
  }
  if (family == "sprand_negative") {
    gen::SprandConfig cfg;
    cfg.n = n;
    cfg.m = 2 * n;
    cfg.min_weight = -1000;
    cfg.max_weight = 1000;
    cfg.seed = seed;
    return gen::sprand(cfg);
  }
  if (family == "circuit") {
    gen::CircuitConfig cfg;
    cfg.registers = n;
    cfg.module_size = 8;
    cfg.seed = seed;
    return gen::circuit(cfg);
  }
  if (family == "torus") {
    const NodeId side = size_class == 0 ? 5 : (size_class == 1 ? 8 : 11);
    return gen::torus(side, side, 1, 100, seed);
  }
  if (family == "layered") {
    return gen::layered_feedback(size_class == 0 ? 4 : 8, 3, 1, 50, seed);
  }
  ADD_FAILURE() << "unknown family " << family;
  return Graph(0, {});
}

using Param = std::tuple<std::string, std::string, int, int>;  // solver, family, size, seed

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [solver, family, size_class, seed] = info.param;
  return solver + "_" + family + "_s" + std::to_string(size_class) + "_r" +
         std::to_string(seed);
}

class CrossValidation : public ::testing::TestWithParam<Param> {};

TEST_P(CrossValidation, MatchesKarpAndCertifies) {
  const auto& [solver_name, family, size_class, seed] = GetParam();
  const Graph g = make_instance(family, size_class, 0xC0FFEE + static_cast<std::uint64_t>(seed));

  const auto reference = minimum_cycle_mean(g, "karp");
  const auto solver = SolverRegistry::instance().create(solver_name);
  const auto r = minimum_cycle_mean(g, *solver);

  ASSERT_EQ(r.has_cycle, reference.has_cycle);
  if (!r.has_cycle) return;
  EXPECT_EQ(r.value, reference.value)
      << solver_name << " disagrees with karp on " << family << "/" << size_class << "/"
      << seed << ": " << r.value << " vs " << reference.value;
  const auto cert = verify_result(g, r, ProblemKind::kCycleMean);
  EXPECT_TRUE(cert.ok) << solver_name << " failed certification: " << cert.message;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossValidation,
    ::testing::Combine(
        ::testing::Values("burns", "ko", "yto", "howard", "ho", "dg", "lawler", "karp2",
                          "oa1", "ko_bin", "yto_pair", "lawler_improved",
                          "howard_naive_init", "cycle_cancel", "megiddo"),
        ::testing::Values("sprand_sparse", "sprand_dense", "sprand_hamiltonian",
                          "sprand_negative", "circuit", "torus", "layered"),
        ::testing::Values(0, 1), ::testing::Values(1, 2, 3)),
    param_name);

// Larger instances, fewer combos: the fast exact solvers on all families.
class CrossValidationLarge : public ::testing::TestWithParam<Param> {};

TEST_P(CrossValidationLarge, MatchesKarp) {
  const auto& [solver_name, family, size_class, seed] = GetParam();
  const Graph g = make_instance(family, size_class, 0xFACE + static_cast<std::uint64_t>(seed));
  const auto reference = minimum_cycle_mean(g, "karp");
  const auto r = minimum_cycle_mean(g, solver_name);
  ASSERT_EQ(r.has_cycle, reference.has_cycle);
  if (r.has_cycle) {
    EXPECT_EQ(r.value, reference.value) << solver_name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SweepLarge, CrossValidationLarge,
    ::testing::Combine(::testing::Values("howard", "yto", "ho", "dg"),
                       ::testing::Values("sprand_sparse", "sprand_dense", "circuit"),
                       ::testing::Values(2), ::testing::Values(1, 2)),
    param_name);

}  // namespace
}  // namespace mcr
