#include "graph/cycle_enum.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/result.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

TEST(CycleEnum, RingHasExactlyOne) {
  const Graph g = gen::ring({1, 2, 3, 4});
  EXPECT_EQ(count_simple_cycles(g), 1u);
}

TEST(CycleEnum, PathHasNone) {
  EXPECT_EQ(count_simple_cycles(gen::path(5)), 0u);
}

TEST(CycleEnum, SelfLoopCounts) {
  GraphBuilder b(2);
  b.add_arc(0, 0, 1);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 1, 1);
  EXPECT_EQ(count_simple_cycles(b.build()), 2u);
}

TEST(CycleEnum, CompleteDigraphK3) {
  // 3 two-cycles + 2 three-cycles = 5.
  const Graph g = gen::complete(3, 1, 1, 1);
  EXPECT_EQ(count_simple_cycles(g), 5u);
}

TEST(CycleEnum, CompleteDigraphK4) {
  // K4: C(4,2)*1 + C(4,3)*2 + C(4,4)*6 = 6 + 8 + 6 = 20.
  const Graph g = gen::complete(4, 1, 1, 1);
  EXPECT_EQ(count_simple_cycles(g), 20u);
}

TEST(CycleEnum, ParallelArcsGiveDistinctCycles) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  b.add_arc(0, 1, 2);
  b.add_arc(1, 0, 3);
  // Two distinct 2-cycles through the two parallel arcs.
  EXPECT_EQ(count_simple_cycles(b.build()), 2u);
}

TEST(CycleEnum, VisitedCyclesAreValidAndUnique) {
  const Graph g = gen::complete(4, 1, 9, 7);
  std::set<std::vector<ArcId>> seen;
  enumerate_simple_cycles(g, [&](std::span<const ArcId> cycle) {
    std::vector<ArcId> c(cycle.begin(), cycle.end());
    EXPECT_TRUE(is_valid_cycle(g, c));
    // Canonicalize by rotating smallest arc id first.
    auto smallest = std::min_element(c.begin(), c.end());
    std::rotate(c.begin(), smallest, c.end());
    EXPECT_TRUE(seen.insert(c).second) << "duplicate cycle";
    return true;
  });
  EXPECT_EQ(seen.size(), 20u);
}

TEST(CycleEnum, EarlyStopViaVisitor) {
  const Graph g = gen::complete(4, 1, 1, 1);
  std::uint64_t visited = 0;
  const std::uint64_t total = enumerate_simple_cycles(g, [&](std::span<const ArcId>) {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(visited, 3u);
  EXPECT_EQ(total, 3u);
}

TEST(CycleEnum, MaxCyclesExceededThrows) {
  const Graph g = gen::complete(5, 1, 1, 1);
  EXPECT_THROW(count_simple_cycles(g, 10), std::runtime_error);
}

TEST(CycleEnum, TwoDisjointRings) {
  const Graph g = gen::scc_chain(2, 3, 1, 5, 3);
  EXPECT_EQ(count_simple_cycles(g), 2u);
}

TEST(CycleEnum, EmptyGraph) {
  EXPECT_EQ(count_simple_cycles(Graph(0, {})), 0u);
}

TEST(CycleEnum, FigureEightSharedNode) {
  // Two triangles sharing node 0: exactly 2 simple cycles.
  GraphBuilder b(5);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 2, 1);
  b.add_arc(2, 0, 1);
  b.add_arc(0, 3, 1);
  b.add_arc(3, 4, 1);
  b.add_arc(4, 0, 1);
  EXPECT_EQ(count_simple_cycles(b.build()), 2u);
}

}  // namespace
}  // namespace mcr
