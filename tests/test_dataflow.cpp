#include "apps/dataflow.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/driver.h"

namespace mcr::apps {
namespace {

SdfGraph two_actor(std::int64_t p, std::int64_t c, std::int64_t d,
                   std::int64_t ta = 1, std::int64_t tb = 1) {
  SdfGraph sdf;
  sdf.actors = {{ta}, {tb}};
  sdf.channels.push_back({0, 1, p, c, 0});
  sdf.channels.push_back({1, 0, c, p, d});  // feedback with d tokens
  return sdf;
}

TEST(Sdf, RepetitionVectorHomogeneous) {
  const SdfGraph sdf = two_actor(1, 1, 1);
  EXPECT_EQ(repetition_vector(sdf), (std::vector<std::int64_t>{1, 1}));
}

TEST(Sdf, RepetitionVectorMultirate) {
  // A produces 3 per firing, B consumes 2: q = (2, 3).
  const SdfGraph sdf = two_actor(3, 2, 6);
  EXPECT_EQ(repetition_vector(sdf), (std::vector<std::int64_t>{2, 3}));
}

TEST(Sdf, RepetitionVectorChain) {
  // 1 -> (2:3) -> (4:1): rates 1, 2/3, 8/3 -> q = (3, 2, 8).
  SdfGraph sdf;
  sdf.actors = {{1}, {1}, {1}};
  sdf.channels.push_back({0, 1, 2, 3, 0});
  sdf.channels.push_back({1, 2, 4, 1, 0});
  EXPECT_EQ(repetition_vector(sdf), (std::vector<std::int64_t>{3, 2, 8}));
}

TEST(Sdf, InconsistentGraphDetected) {
  // Cycle with mismatched rates: A -(2:1)-> B -(1:1)-> A forces
  // q_b = 2 q_a and q_a = q_b simultaneously.
  SdfGraph sdf;
  sdf.actors = {{1}, {1}};
  sdf.channels.push_back({0, 1, 2, 1, 0});
  sdf.channels.push_back({1, 0, 1, 1, 0});
  EXPECT_TRUE(repetition_vector(sdf).empty());
  const SdfAnalysis a = analyze_sdf(sdf);
  EXPECT_FALSE(a.consistent);
  EXPECT_THROW((void)expand_to_hsdf(sdf), std::invalid_argument);
}

TEST(Sdf, HsdfExpansionSize) {
  const SdfGraph sdf = two_actor(3, 2, 6);
  const HsdfExpansion h = expand_to_hsdf(sdf);
  EXPECT_EQ(h.graph.num_nodes(), 5);  // 2 + 3 copies
  EXPECT_EQ(h.actor_of[0], 0);
  EXPECT_EQ(h.actor_of[2], 1);
  EXPECT_EQ(h.firing_of[3], 1);
}

TEST(Sdf, HomogeneousSelfLoopIterationBound) {
  // One actor, exec 7, self channel with 2 tokens: bound 7/2.
  SdfGraph sdf;
  sdf.actors = {{7}};
  sdf.channels.push_back({0, 0, 1, 1, 2});
  const SdfAnalysis a = analyze_sdf(sdf);
  ASSERT_TRUE(a.consistent);
  ASSERT_TRUE(a.deadlock_free);
  EXPECT_EQ(a.iteration_period, Rational(7, 2));
}

TEST(Sdf, ClassicTwoActorLoop) {
  // A(3) -> B(4) -> A with one token on the feedback: period 3 + 4 = 7.
  const SdfGraph sdf = two_actor(1, 1, 1, 3, 4);
  const SdfAnalysis a = analyze_sdf(sdf);
  ASSERT_TRUE(a.deadlock_free);
  EXPECT_EQ(a.iteration_period, Rational(7));
}

TEST(Sdf, MoreTokensMorePipelining) {
  // Same loop with 2 tokens: period halves to 7/2.
  const SdfGraph sdf = two_actor(1, 1, 2, 3, 4);
  EXPECT_EQ(analyze_sdf(sdf).iteration_period, Rational(7, 2));
}

TEST(Sdf, DeadlockDetected) {
  const SdfGraph sdf = two_actor(1, 1, 0);  // no tokens anywhere
  const SdfAnalysis a = analyze_sdf(sdf);
  EXPECT_TRUE(a.consistent);
  EXPECT_FALSE(a.deadlock_free);
}

TEST(Sdf, MultirateIterationBound) {
  // A fires 2x (exec 5), B fires 3x (exec 2) per iteration; feedback
  // holds a full iteration's worth of tokens (6): every copy of A and B
  // in one iteration forms the critical structure.
  SdfGraph sdf = two_actor(3, 2, 6, 5, 2);
  const SdfAnalysis a = analyze_sdf(sdf);
  ASSERT_TRUE(a.consistent);
  ASSERT_TRUE(a.deadlock_free);
  // Sanity bounds: at least the busiest actor's serial work per
  // iteration on one resource-unbounded schedule is max over cycles; it
  // must be at least exec(A) + exec(B) spread over the loop tokens and
  // at most the fully serialized iteration.
  EXPECT_GE(a.iteration_period, Rational(5 + 2, 6));
  EXPECT_LE(a.iteration_period, Rational(2 * 5 + 3 * 2));
  // And it must agree with running MCR on the expansion directly.
  const HsdfExpansion h = expand_to_hsdf(sdf);
  const CycleResult r = maximum_cycle_ratio(h.graph, "yto_ratio");
  EXPECT_EQ(a.iteration_period, r.value);
}

TEST(Sdf, AcyclicGraphHasZeroPeriodBound) {
  SdfGraph sdf;
  sdf.actors = {{5}, {3}};
  sdf.channels.push_back({0, 1, 1, 1, 0});
  const SdfAnalysis a = analyze_sdf(sdf);
  ASSERT_TRUE(a.deadlock_free);
  EXPECT_EQ(a.iteration_period, Rational(0));
}

TEST(Sdf, Validation) {
  SdfGraph sdf;
  sdf.actors = {{1}};
  sdf.channels.push_back({0, 5, 1, 1, 0});  // bad endpoint
  EXPECT_THROW((void)repetition_vector(sdf), std::invalid_argument);
  sdf.channels[0] = {0, 0, 0, 1, 0};  // zero rate
  EXPECT_THROW((void)repetition_vector(sdf), std::invalid_argument);
  sdf.channels[0] = {0, 0, 1, 1, -1};  // negative tokens
  EXPECT_THROW((void)repetition_vector(sdf), std::invalid_argument);
  sdf.channels[0] = {0, 0, 1, 1, 1};
  sdf.actors[0].exec_time = -1;
  EXPECT_THROW((void)repetition_vector(sdf), std::invalid_argument);
}

TEST(Sdf, DisconnectedComponentsMinimalIndependently) {
  SdfGraph sdf;
  sdf.actors = {{1}, {1}, {1}, {1}};
  sdf.channels.push_back({0, 1, 2, 1, 0});  // q0=1, q1=2
  sdf.channels.push_back({2, 3, 1, 3, 0});  // q2=3, q3=1
  EXPECT_EQ(repetition_vector(sdf), (std::vector<std::int64_t>{1, 2, 3, 1}));
}

TEST(Sdf, SampleRateConverterPipeline) {
  // A classic 160:147 fragment (44.1kHz -> 48kHz style, scaled down):
  // A -(8:7)-> B with a feedback B -(7:8)-> A holding 56 tokens.
  SdfGraph sdf;
  sdf.actors = {{2}, {3}};
  sdf.channels.push_back({0, 1, 8, 7, 0});
  sdf.channels.push_back({1, 0, 7, 8, 56});
  const auto q = repetition_vector(sdf);
  EXPECT_EQ(q, (std::vector<std::int64_t>{7, 8}));
  const SdfAnalysis a = analyze_sdf(sdf);
  ASSERT_TRUE(a.consistent);
  EXPECT_TRUE(a.deadlock_free);
  EXPECT_GT(a.iteration_period, Rational(0));
}

}  // namespace
}  // namespace mcr::apps
