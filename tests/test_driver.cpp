#include "core/driver.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/registry.h"
#include "core/verify.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

TEST(Driver, AcyclicGraphHasNoCycle) {
  const auto r = minimum_cycle_mean(gen::path(5), "howard");
  EXPECT_FALSE(r.has_cycle);
}

TEST(Driver, EmptyGraph) {
  const auto r = minimum_cycle_mean(Graph(0, {}), "howard");
  EXPECT_FALSE(r.has_cycle);
}

TEST(Driver, SingleSelfLoop) {
  GraphBuilder b(1);
  b.add_arc(0, 0, 42);
  const auto r = minimum_cycle_mean(b.build(), "howard");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(42));
  EXPECT_EQ(r.cycle.size(), 1u);
}

TEST(Driver, TakesMinimumAcrossComponents) {
  // Three rings with means 5, 2, 9 chained one-way.
  GraphBuilder b(9);
  const auto add_ring = [&](NodeId base, std::int64_t w) {
    b.add_arc(base, base + 1, w);
    b.add_arc(base + 1, base + 2, w);
    b.add_arc(base + 2, base, w);
  };
  add_ring(0, 5);
  add_ring(3, 2);
  add_ring(6, 9);
  b.add_arc(0, 3, 1000);
  b.add_arc(3, 6, 1000);
  const Graph g = b.build();
  const auto r = minimum_cycle_mean(g, "karp");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(2));
  // Cycle arcs map back to parent-graph ids: all inside the middle ring.
  for (const ArcId a : r.cycle) {
    EXPECT_GE(g.src(a), 3);
    EXPECT_LE(g.src(a), 5);
  }
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleMean).ok);
}

TEST(Driver, IgnoresAcyclicComponents) {
  // A ring feeding a long acyclic tail.
  GraphBuilder b(6);
  b.add_arc(0, 1, 4);
  b.add_arc(1, 0, 6);
  b.add_arc(1, 2, 1);
  b.add_arc(2, 3, 1);
  b.add_arc(3, 4, 1);
  b.add_arc(4, 5, 1);
  const auto r = minimum_cycle_mean(b.build(), "yto");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(5));
}

TEST(Driver, MaxCycleMeanViaNegation) {
  GraphBuilder b(4);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 0, 1);   // mean 1
  b.add_arc(2, 3, 10);
  b.add_arc(3, 2, 20);  // mean 15
  const Graph g = b.build();
  const auto mx = maximum_cycle_mean(g, "howard");
  ASSERT_TRUE(mx.has_cycle);
  EXPECT_EQ(mx.value, Rational(15));
  const auto mn = minimum_cycle_mean(g, "howard");
  EXPECT_EQ(mn.value, Rational(1));
}

TEST(Driver, RatioSolverOnMeanProblemThrows) {
  const auto solver = SolverRegistry::instance().create("howard_ratio");
  EXPECT_THROW((void)minimum_cycle_mean(gen::ring({1, 2}), *solver),
               std::invalid_argument);
}

TEST(Driver, MeanSolverOnRatioProblemThrows) {
  const auto solver = SolverRegistry::instance().create("howard");
  EXPECT_THROW((void)minimum_cycle_ratio(gen::ring({1, 2}), *solver),
               std::invalid_argument);
}

TEST(Driver, RatioValidatesTransitTimes) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1, 0);
  b.add_arc(1, 0, 1, 0);  // zero-transit cycle
  EXPECT_THROW((void)minimum_cycle_ratio(b.build(), "howard_ratio"),
               std::invalid_argument);

  GraphBuilder b2(2);
  b2.add_arc(0, 1, 1, -1);
  b2.add_arc(1, 0, 1, 2);
  EXPECT_THROW((void)minimum_cycle_ratio(b2.build(), "howard_ratio"),
               std::invalid_argument);
}

TEST(Driver, RatioAllowsZeroTransitArcsOffCycles) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 5, 0);  // zero transit, not on every cycle
  b.add_arc(1, 0, 5, 2);
  b.add_arc(1, 2, 1, 1);
  b.add_arc(2, 1, 1, 1);
  const Graph g = b.build();
  const auto r = minimum_cycle_ratio(g, "howard_ratio");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(1));  // the 1,1 cycle: 2/2
}

TEST(Driver, MaximumCycleRatio) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 10, 2);
  b.add_arc(1, 0, 10, 2);  // ratio 5
  b.add_arc(0, 0, 2, 1);   // ratio 2
  const auto r = maximum_cycle_ratio(b.build(), "howard_ratio");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(5));
}

TEST(Driver, UnknownSolverNameThrows) {
  EXPECT_THROW((void)minimum_cycle_mean(gen::ring({1}), "does_not_exist"),
               std::out_of_range);
}

TEST(Driver, CountersAggregateAcrossComponents) {
  const Graph g = gen::scc_chain(3, 4, 1, 9, 5);
  const auto r = minimum_cycle_mean(g, "howard");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_GE(r.counters.iterations, 3u);  // at least one per component
}

TEST(Driver, NegativeWeights) {
  GraphBuilder b(3);
  b.add_arc(0, 1, -5);
  b.add_arc(1, 2, -7);
  b.add_arc(2, 0, 3);  // mean -3
  const auto r = minimum_cycle_mean(b.build(), "howard");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(-3));
}

}  // namespace
}  // namespace mcr
