// Tests for the robustness layer: fault-plan parsing, the determinism
// contract of the injector, checked 64-bit arithmetic and the numeric
// promotion path, and — when the hooks are compiled in
// (MCR_FAULT_INJECTION) — fault-driven regression tests for the socket
// I/O helpers, the self-healing thread pool, and client retry against a
// live in-process server. In a default Release build the hook-dependent
// tests GTEST_SKIP (the hooks fold to constants there by design).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/driver.h"
#include "core/registry.h"
#include "core/verify.h"
#include "fault/fault.h"
#include "graph/bellman_ford.h"
#include "graph/builder.h"
#include "graph/io.h"
#include "support/checked.h"
#include "support/int128.h"
#include "support/rational.h"
#include "svc/client.h"
#include "svc/errors.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "support/thread_pool.h"

namespace {

using namespace mcr;

// ---------------------------------------------------------------------------
// Plan parsing (available in every build).

TEST(FaultPlan, ParseRoundTrips) {
  const fault::Plan plan = fault::Plan::parse(
      "seed=42,alloc=0.25,read_eintr=0.5,write_short=0.125,worker_death=1,"
      "clock_skip=0.75,phase=0.0625,stall_ms=7,clock_skip_ms=1234,"
      "max_per_site=9,max_deaths=3");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.alloc, 0.25);
  EXPECT_DOUBLE_EQ(plan.read_eintr, 0.5);
  EXPECT_DOUBLE_EQ(plan.write_short, 0.125);
  EXPECT_DOUBLE_EQ(plan.worker_death, 1.0);
  EXPECT_DOUBLE_EQ(plan.phase_error, 0.0625);
  EXPECT_EQ(plan.stall_ms, 7);
  EXPECT_EQ(plan.clock_skip_ms, 1234);
  EXPECT_EQ(plan.max_per_site, 9u);
  EXPECT_EQ(plan.max_deaths, 3u);
  // parse(to_string()) is the identity on the canonical form.
  const std::string canonical = plan.to_string();
  EXPECT_EQ(fault::Plan::parse(canonical).to_string(), canonical);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW((void)fault::Plan::parse("no_such_key=1"), std::invalid_argument);
  EXPECT_THROW((void)fault::Plan::parse("alloc=1.5"), std::invalid_argument);
  EXPECT_THROW((void)fault::Plan::parse("alloc=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)fault::Plan::parse("alloc=banana"), std::invalid_argument);
  EXPECT_THROW((void)fault::Plan::parse("alloc"), std::invalid_argument);
  EXPECT_THROW((void)fault::Plan::parse("seed=twelve"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Checked arithmetic: exact wrap boundaries and a randomized cross-check
// against an int128 reference.

constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();

TEST(Checked, WrapBoundaries) {
  EXPECT_EQ(checked_add(kMax - 1, 1), kMax);
  EXPECT_THROW((void)checked_add(kMax, 1), NumericOverflow);
  EXPECT_EQ(checked_add(kMin + 1, -1), kMin);
  EXPECT_THROW((void)checked_add(kMin, -1), NumericOverflow);

  EXPECT_EQ(checked_sub(kMin + 1, 1), kMin);
  EXPECT_THROW((void)checked_sub(kMin, 1), NumericOverflow);
  EXPECT_THROW((void)checked_sub(0, kMin), NumericOverflow);  // |kMin| > kMax

  EXPECT_EQ(checked_mul(kMax / 2, 2), kMax - 1);
  EXPECT_THROW((void)checked_mul(kMax / 2 + 1, 2), NumericOverflow);
  EXPECT_THROW((void)checked_mul(kMin, -1), NumericOverflow);

  EXPECT_EQ(checked_neg(kMax), -kMax);
  EXPECT_EQ(checked_neg(kMin + 1), kMax);
  EXPECT_THROW((void)checked_neg(kMin), NumericOverflow);  // the one bad negation
}

TEST(Checked, CheckedI64BehavesLikeInt64UntilOverflow) {
  CheckedI64 acc(40);
  acc += CheckedI64(2);
  EXPECT_EQ(acc.value(), 42);
  EXPECT_LT(CheckedI64(1), CheckedI64(2));
  EXPECT_EQ(CheckedI64(7), CheckedI64(7));
  EXPECT_EQ((-CheckedI64(5)).value(), -5);
  EXPECT_THROW((void)(CheckedI64(kMax) + CheckedI64(1)), NumericOverflow);
  EXPECT_THROW((void)(CheckedI64(kMin) - CheckedI64(1)), NumericOverflow);
  EXPECT_THROW((void)-CheckedI64(kMin), NumericOverflow);
}

TEST(Checked, RandomizedAgainstInt128Reference) {
  std::mt19937_64 rng(20260805);
  // Mix magnitudes so both the overflowing and non-overflowing branches
  // get real coverage.
  std::uniform_int_distribution<std::int64_t> full(kMin, kMax);
  std::uniform_int_distribution<std::int64_t> small(-1'000'000, 1'000'000);
  for (int i = 0; i < 20'000; ++i) {
    const std::int64_t a = (i % 3 == 0) ? small(rng) : full(rng);
    const std::int64_t b = (i % 2 == 0) ? small(rng) : full(rng);
    const auto in_range = [](int128 v) {
      return v >= int128(kMin) && v <= int128(kMax);
    };
    const int128 sum = int128(a) + int128(b);
    if (in_range(sum)) {
      EXPECT_EQ(checked_add(a, b), static_cast<std::int64_t>(sum));
    } else {
      EXPECT_THROW((void)checked_add(a, b), NumericOverflow);
    }
    const int128 diff = int128(a) - int128(b);
    if (in_range(diff)) {
      EXPECT_EQ(checked_sub(a, b), static_cast<std::int64_t>(diff));
    } else {
      EXPECT_THROW((void)checked_sub(a, b), NumericOverflow);
    }
    const int128 prod = int128(a) * int128(b);
    if (in_range(prod)) {
      EXPECT_EQ(checked_mul(a, b), static_cast<std::int64_t>(prod));
    } else {
      EXPECT_THROW((void)checked_mul(a, b), NumericOverflow);
    }
  }
}

TEST(Checked, RationalFromInt128RoundTrips) {
  // Reducible in 128 bits: (kMax * 6) / 12 = kMax / 2 (kMax is odd)
  // after the 128-bit gcd, which fits — the intermediate kMax * 6 does
  // not, so from_int128 must reduce before narrowing.
  const Rational r = Rational::from_int128(int128(kMax) * 6, int128(12));
  EXPECT_EQ(r, Rational(kMax, 2));
  // Sign normalization through the wide path.
  EXPECT_EQ(Rational::from_int128(int128(5), int128(-10)), Rational(-1, 2));
  // Irreducible and out of range: must throw, never truncate.
  EXPECT_THROW((void)Rational::from_int128(int128(kMax) * 2 + 1, int128(2)),
               NumericOverflow);
}

// ---------------------------------------------------------------------------
// Numeric promotion: adversarial weights overflow the int64 recurrences
// and the solvers transparently re-solve wide, with the promotion
// counted. The paper's regime (|w| <= 1e4) never takes this path.

TEST(Promotion, KarpPromotesAndStaysExact) {
  constexpr std::int64_t kHuge = 3'000'000'000'000'000'000;  // ~ INT64_MAX / 3
  GraphBuilder b(4);
  for (NodeId u = 0; u < 4; ++u) b.add_arc(u, (u + 1) % 4, kHuge);
  const Graph g = b.build();
  const auto solver = SolverRegistry::instance().create("karp");
  const CycleResult r = minimum_cycle_mean(g, *solver);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(kHuge, 1));
  EXPECT_GT(r.counters.numeric_promotions, 0u);
}

TEST(Promotion, VerifierStaysExactOnHugeWitness) {
  // The verifier is the oracle the chaos harness trusts, so it must not
  // wrap where the solvers promote: summing this witness in int64 wraps
  // to a negative mean and a correct answer would be reported as wrong.
  constexpr std::int64_t kHuge = 3'000'000'000'000'000'000;
  GraphBuilder b(4);
  for (NodeId u = 0; u < 4; ++u) b.add_arc(u, (u + 1) % 4, kHuge);
  const Graph g = b.build();
  const std::vector<ArcId> ring = {0, 1, 2, 3};
  EXPECT_EQ(cycle_mean(g, ring), Rational(kHuge, 1));
  EXPECT_THROW((void)cycle_weight(g, ring), NumericOverflow);

  const auto solver = SolverRegistry::instance().create("karp");
  const CycleResult r = minimum_cycle_mean(g, *solver);
  const auto cert = verify_result(g, r, ProblemKind::kCycleMean);
  EXPECT_TRUE(cert.ok) << cert.message;

  // Ratio objective, negative weights, non-unit transits (sum reduces
  // back into int64 range): same contract end to end.
  GraphBuilder rb(3);
  rb.add_arc(0, 1, -kHuge, 2);
  rb.add_arc(1, 2, -kHuge, 3);
  rb.add_arc(2, 0, -kHuge, 1);
  const Graph rg = rb.build();
  const auto rsolver = SolverRegistry::instance().create("howard_ratio");
  const CycleResult rr = minimum_cycle_ratio(rg, *rsolver);
  ASSERT_TRUE(rr.has_cycle);
  EXPECT_EQ(rr.value, Rational(-kHuge / 2, 1));
  const auto rcert = verify_result(rg, rr, ProblemKind::kCycleRatio);
  EXPECT_TRUE(rcert.ok) << rcert.message;
}

TEST(Promotion, BellmanFordPromotesOnHugeCosts) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 0);
  b.add_arc(1, 2, 0);
  b.add_arc(2, 0, 0);
  const Graph g = b.build();
  constexpr std::int64_t kHuge = -4'000'000'000'000'000'000;
  const std::vector<std::int64_t> cost = {kHuge, kHuge, kHuge};
  OpCounters counters;
  const BellmanFordResult r = bellman_ford_all(g, cost, &counters);
  EXPECT_TRUE(r.has_negative_cycle);
  EXPECT_EQ(r.cycle.size(), 3u);
  EXPECT_GT(counters.numeric_promotions, 0u);
}

// ---------------------------------------------------------------------------
// Hook-dependent tests. The Injector type only exists under
// MCR_FAULT_INJECTION; everything below skips without it.

#if defined(MCR_FAULT_INJECTION) && MCR_FAULT_INJECTION
constexpr bool kHooksCompiledIn = true;
#else
constexpr bool kHooksCompiledIn = false;
#endif

#define MCR_REQUIRE_HOOKS()                                              \
  if (!kHooksCompiledIn)                                                 \
  GTEST_SKIP() << "fault hooks compiled out (build with -DMCR_FAULT_INJECTION=ON)"

#if defined(MCR_FAULT_INJECTION) && MCR_FAULT_INJECTION

std::string drive_trace(const fault::Plan& plan) {
  fault::Injector injector(plan);
  // A fixed mixed workload over every site.
  for (int i = 0; i < 200; ++i) {
    (void)injector.decide(fault::Site::kSockRead);
    (void)injector.decide(fault::Site::kSockWrite);
    if (i % 2 == 0) (void)injector.decide(fault::Site::kAlloc);
    if (i % 3 == 0) (void)injector.decide(fault::Site::kWorkerDeath);
    if (i % 5 == 0) (void)injector.decide(fault::Site::kPhase);
  }
  return injector.trace_string();
}

TEST(Injector, SameSeedSameTraceBitIdentical) {
  MCR_REQUIRE_HOOKS();
  fault::Plan plan = fault::Plan::parse(
      "read_eintr=0.2,read_short=0.1,write_reset=0.15,alloc=0.1,"
      "worker_death=0.3,phase=0.2,max_deaths=5");
  plan.seed = 99;
  const std::string first = drive_trace(plan);
  const std::string second = drive_trace(plan);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  plan.seed = 100;
  EXPECT_NE(drive_trace(plan), first) << "different seed should reschedule";
}

TEST(Injector, DecisionIsPureInSiteAndSequence) {
  MCR_REQUIRE_HOOKS();
  // Interleaving draws across sites must not change what each site
  // sees: site draws depend on the per-site sequence only.
  fault::Plan plan = fault::Plan::parse("read_eintr=0.5,write_reset=0.5");
  plan.seed = 7;
  std::vector<fault::Action> reads_alone;
  {
    fault::Injector injector(plan);
    for (int i = 0; i < 64; ++i) {
      reads_alone.push_back(injector.decide(fault::Site::kSockRead).action);
    }
  }
  {
    fault::Injector injector(plan);
    for (int i = 0; i < 64; ++i) {
      (void)injector.decide(fault::Site::kSockWrite);  // interleaved noise
      EXPECT_EQ(injector.decide(fault::Site::kSockRead).action, reads_alone
                    [static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Injector, MaxPerSiteCapsFiring) {
  MCR_REQUIRE_HOOKS();
  fault::Plan plan = fault::Plan::parse("read_eintr=1,max_per_site=5");
  fault::Injector injector(plan);
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (injector.decide(fault::Site::kSockRead).action != fault::Action::kNone) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(injector.fired_count(fault::Site::kSockRead), 5u);
  EXPECT_EQ(injector.evaluation_count(fault::Site::kSockRead), 50u);
}

TEST(Injector, MaxDeathsCapsBelowMaxPerSite) {
  MCR_REQUIRE_HOOKS();
  fault::Plan plan = fault::Plan::parse("worker_death=1,max_per_site=100,max_deaths=2");
  fault::Injector injector(plan);
  int deaths = 0;
  for (int i = 0; i < 20; ++i) {
    if (injector.decide(fault::Site::kWorkerDeath).action == fault::Action::kDeath) {
      ++deaths;
    }
  }
  EXPECT_EQ(deaths, 2);
}

TEST(Injector, SuppressScopeHidesHooksWithoutConsumingSequence) {
  MCR_REQUIRE_HOOKS();
  fault::Plan plan = fault::Plan::parse("read_eintr=1");
  fault::Injector injector(plan);
  fault::Injector::install(&injector);
  {
    fault::SuppressScope suppress;
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(MCR_FAULT_POINT(fault::Site::kSockRead).action,
                fault::Action::kNone);
    }
  }
  EXPECT_EQ(injector.evaluation_count(fault::Site::kSockRead), 0u)
      << "suppressed draws must not consume sequence numbers";
  EXPECT_EQ(MCR_FAULT_POINT(fault::Site::kSockRead).action, fault::Action::kEintr);
  fault::Injector::install(nullptr);
}

// ---------------------------------------------------------------------------
// Socket helpers under injected faults (satellite: EINTR/short/reset
// regression through read_full / write_full / read_frame).

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

TEST(SocketFaults, ReadFullSurvivesEintrAndShortReads) {
  MCR_REQUIRE_HOOKS();
  SocketPair sp;
  const std::string message = "the quick brown fox jumps over the lazy dog";
  ASSERT_TRUE(svc::write_full(sp.fds[0], message));

  fault::Plan plan = fault::Plan::parse("read_eintr=1,max_per_site=4");
  // Also mix in short reads once the EINTR budget is exhausted: cap
  // applies per *fired* injection, so after 4 EINTRs the stream still
  // completes.
  plan.read_short = 1.0;
  fault::Injector injector(plan);
  fault::Injector::install(&injector);
  std::string buf(message.size(), '\0');
  const std::ptrdiff_t n = svc::read_full(sp.fds[1], buf.data(), buf.size());
  fault::Injector::install(nullptr);

  EXPECT_EQ(n, static_cast<std::ptrdiff_t>(message.size()));
  EXPECT_EQ(buf, message);
  EXPECT_GT(injector.evaluation_count(fault::Site::kSockRead), 1u)
      << "injected EINTR/short rounds should force extra read attempts";
}

TEST(SocketFaults, ReadFullReportsInjectedReset) {
  MCR_REQUIRE_HOOKS();
  SocketPair sp;
  ASSERT_TRUE(svc::write_full(sp.fds[0], "payload"));
  fault::Injector injector(fault::Plan::parse("read_reset=1"));
  fault::Injector::install(&injector);
  char buf[7];
  errno = 0;
  const std::ptrdiff_t n = svc::read_full(sp.fds[1], buf, sizeof buf);
  fault::Injector::install(nullptr);
  EXPECT_EQ(n, -1);
  EXPECT_EQ(errno, ECONNRESET);
}

TEST(SocketFaults, WriteFullSurvivesShortWritesAndEintr) {
  MCR_REQUIRE_HOOKS();
  SocketPair sp;
  const std::string message(2000, 'x');
  fault::Injector injector(
      fault::Plan::parse("write_short=0.7,write_eintr=0.3,max_per_site=50"));
  fault::Injector::install(&injector);
  const bool ok = svc::write_full(sp.fds[0], message);
  fault::Injector::install(nullptr);
  ASSERT_TRUE(ok);

  std::string buf(message.size(), '\0');
  EXPECT_EQ(svc::read_full(sp.fds[1], buf.data(), buf.size()),
            static_cast<std::ptrdiff_t>(message.size()));
  EXPECT_EQ(buf, message);
}

TEST(SocketFaults, WriteFullReportsInjectedReset) {
  MCR_REQUIRE_HOOKS();
  SocketPair sp;
  fault::Injector injector(fault::Plan::parse("write_reset=1"));
  fault::Injector::install(&injector);
  errno = 0;
  const bool ok = svc::write_full(sp.fds[0], "payload");
  fault::Injector::install(nullptr);
  EXPECT_FALSE(ok);
  EXPECT_EQ(errno, ECONNRESET);
}

TEST(SocketFaults, ReadFrameSurvivesChoppedDelivery) {
  MCR_REQUIRE_HOOKS();
  SocketPair sp;
  const std::string payload = R"({"verb":"PING"})";
  ASSERT_TRUE(svc::write_full(sp.fds[0], svc::encode_frame(payload)));
  fault::Injector injector(
      fault::Plan::parse("read_short=1,max_per_site=1000"));
  fault::Injector::install(&injector);
  std::string out;
  const svc::ReadStatus status = svc::read_frame(sp.fds[1], 1 << 20, out);
  fault::Injector::install(nullptr);
  EXPECT_EQ(status, svc::ReadStatus::kOk);
  EXPECT_EQ(out, payload);
  // Every byte delivered one at a time: header (8) + payload.
  EXPECT_GE(injector.evaluation_count(fault::Site::kSockRead),
            8u + payload.size());
}

// ---------------------------------------------------------------------------
// Thread pool: stalls delay, deaths respawn, no task is lost.

TEST(PoolFaults, SurvivesWorkerStallsAndDeaths) {
  MCR_REQUIRE_HOOKS();
  fault::Injector injector(fault::Plan::parse(
      "worker_stall=0.3,worker_death=1,stall_ms=1,max_per_site=1000,max_deaths=3"));
  fault::Injector::install(&injector);
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 60; ++i) {
      pool.submit([&executed] { executed.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(executed.load(), 60);
    EXPECT_EQ(pool.deaths(), 3u) << "max_deaths bounds respawns";
  }  // destructor joins retired + live workers
  fault::Injector::install(nullptr);
}

// ---------------------------------------------------------------------------
// Client retry against a live faulty server.

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/mcr_fault_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

TEST(ClientRetry, SolvesCorrectlyThroughInjectedResets) {
  MCR_REQUIRE_HOOKS();
  GraphBuilder b(6);
  for (NodeId u = 0; u < 6; ++u) b.add_arc(u, (u + 1) % 6, 5 + u);
  const Graph ring = b.build();  // single cycle, mean (5+...+10)/6 = 15/2
  std::ostringstream dimacs;
  write_dimacs(dimacs, ring, "retry test");

  svc::ServerOptions options;
  options.unix_socket_path = unique_socket_path();
  svc::Server server(options);
  server.start();

  fault::Injector injector(fault::Plan::parse(
      "read_reset=0.1,read_eintr=0.2,write_short=0.2,alloc=0.05,"
      "max_per_site=200,seed=4242"));
  fault::Injector::install(&injector);
  {
    // Only the server's threads draw faults; this thread is the test
    // driver (same discipline as mcr_chaos).
    fault::SuppressScope suppress;
    svc::Client client = svc::Client::connect_unix(options.unix_socket_path);
    svc::RetryPolicy policy;
    policy.max_attempts = 10;
    policy.initial_backoff_ms = 1.0;
    policy.max_backoff_ms = 10.0;
    client.set_retry_policy(policy);

    std::string fingerprint;
    for (int attempt = 0; attempt < 10 && fingerprint.empty(); ++attempt) {
      try {
        fingerprint = client.load_dimacs_text(dimacs.str());
      } catch (const svc::ServiceError&) {  // injected alloc failure
      } catch (const svc::TransportError&) {
        client.reconnect();
      }
    }
    ASSERT_FALSE(fingerprint.empty());

    int verified = 0;
    for (int i = 0; i < 8; ++i) {
      try {
        const json::Value r = client.solve_retry(fingerprint, "min_mean");
        const json::Value& result = r.at("result");
        ASSERT_TRUE(result.at("has_cycle").as_bool());
        EXPECT_EQ(static_cast<std::int64_t>(result.at("value_num").as_double()), 15);
        EXPECT_EQ(static_cast<std::int64_t>(result.at("value_den").as_double()), 2);
        ++verified;
      } catch (const svc::ServiceError& e) {
        // Permitted: typed, documented failure (e.g. INTERNAL from an
        // injected alloc fault). Never a wrong answer.
        EXPECT_FALSE(e.code().empty());
      } catch (const svc::TransportError&) {
        client.reconnect();
      }
    }
    EXPECT_GT(verified, 0) << "retry should push at least one solve through";
  }
  fault::Injector::install(nullptr);
  server.stop_and_drain();
  EXPECT_GT(injector.fired_count(), 0u);
}

#else  // !MCR_FAULT_INJECTION

TEST(Injector, HooksCompiledOut) { MCR_REQUIRE_HOOKS(); }

TEST(FaultMacro, FoldsToNoFault) {
  // The macro must be usable (and inert) in every build.
  EXPECT_EQ(MCR_FAULT_POINT(fault::Site::kAlloc).action, fault::Action::kNone);
  fault::SuppressScope scope;  // no-op stand-in compiles
}

#endif  // MCR_FAULT_INJECTION

}  // namespace
