#include <gtest/gtest.h>

#include <stdexcept>

#include "gen/circuit.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/scc.h"
#include "graph/traversal.h"

namespace mcr {
namespace {

TEST(Sprand, ShapeMatchesConfig) {
  gen::SprandConfig cfg;
  cfg.n = 100;
  cfg.m = 250;
  cfg.seed = 3;
  const Graph g = gen::sprand(cfg);
  EXPECT_EQ(g.num_nodes(), 100);
  EXPECT_EQ(g.num_arcs(), 250);
}

TEST(Sprand, StronglyConnectedByConstruction) {
  gen::SprandConfig cfg;
  cfg.n = 64;
  cfg.m = 64;  // just the Hamiltonian cycle
  const Graph g = gen::sprand(cfg);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Sprand, WeightsInDefaultInterval) {
  gen::SprandConfig cfg;
  cfg.n = 50;
  cfg.m = 200;
  const Graph g = gen::sprand(cfg);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_GE(g.weight(a), 1);
    EXPECT_LE(g.weight(a), 10000);
    EXPECT_EQ(g.transit(a), 1);
  }
}

TEST(Sprand, CustomWeightAndTransitIntervals) {
  gen::SprandConfig cfg;
  cfg.n = 30;
  cfg.m = 90;
  cfg.min_weight = -5;
  cfg.max_weight = 5;
  cfg.min_transit = 2;
  cfg.max_transit = 4;
  const Graph g = gen::sprand(cfg);
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_GE(g.weight(a), -5);
    EXPECT_LE(g.weight(a), 5);
    EXPECT_GE(g.transit(a), 2);
    EXPECT_LE(g.transit(a), 4);
  }
}

TEST(Sprand, DeterministicPerSeed) {
  gen::SprandConfig cfg;
  cfg.n = 40;
  cfg.m = 100;
  cfg.seed = 77;
  const Graph a = gen::sprand(cfg);
  const Graph b = gen::sprand(cfg);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (ArcId e = 0; e < a.num_arcs(); ++e) {
    EXPECT_EQ(a.src(e), b.src(e));
    EXPECT_EQ(a.dst(e), b.dst(e));
    EXPECT_EQ(a.weight(e), b.weight(e));
  }
}

TEST(Sprand, DifferentSeedsDiffer) {
  gen::SprandConfig cfg;
  cfg.n = 40;
  cfg.m = 100;
  cfg.seed = 1;
  const Graph a = gen::sprand(cfg);
  cfg.seed = 2;
  const Graph b = gen::sprand(cfg);
  int diff = 0;
  for (ArcId e = 0; e < a.num_arcs(); ++e) {
    if (a.weight(e) != b.weight(e)) ++diff;
  }
  EXPECT_GT(diff, 10);
}

TEST(Sprand, NoSelfLoopsInRandomPart) {
  gen::SprandConfig cfg;
  cfg.n = 25;
  cfg.m = 200;
  const Graph g = gen::sprand(cfg);
  for (ArcId a = 0; a < g.num_arcs(); ++a) EXPECT_NE(g.src(a), g.dst(a));
}

TEST(Sprand, RejectsBadConfigs) {
  gen::SprandConfig cfg;
  cfg.n = 10;
  cfg.m = 5;  // m < n
  EXPECT_THROW(gen::sprand(cfg), std::invalid_argument);
  cfg.n = 0;
  cfg.m = 0;
  EXPECT_THROW(gen::sprand(cfg), std::invalid_argument);
  cfg.n = 5;
  cfg.m = 10;
  cfg.min_weight = 10;
  cfg.max_weight = 1;
  EXPECT_THROW(gen::sprand(cfg), std::invalid_argument);
}

TEST(Circuit, ShapeAndDelays) {
  gen::CircuitConfig cfg;
  cfg.registers = 128;
  cfg.seed = 5;
  const Graph g = gen::circuit(cfg);
  EXPECT_EQ(g.num_nodes(), 128);
  EXPECT_GE(g.num_arcs(), 128);  // avg_fanout >= 1
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_GE(g.weight(a), cfg.min_delay);
    EXPECT_LE(g.weight(a), cfg.max_delay);
    EXPECT_EQ(g.transit(a), 1);
  }
}

TEST(Circuit, SparseLikeRealCircuits) {
  gen::CircuitConfig cfg;
  cfg.registers = 512;
  cfg.avg_fanout = 1.6;
  cfg.seed = 6;
  const Graph g = gen::circuit(cfg);
  const double density = static_cast<double>(g.num_arcs()) / g.num_nodes();
  EXPECT_GE(density, 1.0);
  EXPECT_LE(density, 3.0);
}

TEST(Circuit, IsCyclicAndHasMultipleSccs) {
  gen::CircuitConfig cfg;
  cfg.registers = 256;
  cfg.module_size = 16;
  cfg.seed = 7;
  const Graph g = gen::circuit(cfg);
  EXPECT_TRUE(has_cycle(g));
  const SccDecomposition scc = strongly_connected_components(g);
  EXPECT_GT(scc.num_components, 1);
}

TEST(Circuit, Deterministic) {
  gen::CircuitConfig cfg;
  cfg.registers = 64;
  cfg.seed = 9;
  const Graph a = gen::circuit(cfg);
  const Graph b = gen::circuit(cfg);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (ArcId e = 0; e < a.num_arcs(); ++e) {
    EXPECT_EQ(a.src(e), b.src(e));
    EXPECT_EQ(a.dst(e), b.dst(e));
    EXPECT_EQ(a.weight(e), b.weight(e));
  }
}

TEST(Circuit, RejectsBadConfigs) {
  gen::CircuitConfig cfg;
  cfg.registers = 0;
  EXPECT_THROW(gen::circuit(cfg), std::invalid_argument);
  cfg.registers = 10;
  cfg.avg_fanout = 0.5;
  EXPECT_THROW(gen::circuit(cfg), std::invalid_argument);
}

TEST(Structured, RingWeights) {
  const Graph g = gen::ring({4, 5, 6});
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 3);
  EXPECT_TRUE(is_strongly_connected(g));
  EXPECT_EQ(g.weight(0), 4);
  EXPECT_EQ(g.dst(2), 0);
}

TEST(Structured, CompleteHasAllArcs) {
  const Graph g = gen::complete(5, 1, 9, 1);
  EXPECT_EQ(g.num_arcs(), 20);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Structured, LayeredFeedbackIsCyclic) {
  const Graph g = gen::layered_feedback(4, 3, 1, 9, 2);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_TRUE(has_cycle(g));
}

TEST(Structured, TorusShape) {
  const Graph g = gen::torus(3, 4, 1, 9, 2);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(g.num_arcs(), 24);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(Structured, SccChainComponents) {
  const Graph g = gen::scc_chain(3, 4, 1, 9, 2);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(strongly_connected_components(g).num_components, 3);
}

TEST(Structured, PathIsAcyclic) {
  EXPECT_FALSE(has_cycle(gen::path(6)));
}

TEST(Structured, Validation) {
  EXPECT_THROW(gen::ring({}), std::invalid_argument);
  EXPECT_THROW(gen::complete(1, 1, 2, 3), std::invalid_argument);
  EXPECT_THROW(gen::torus(0, 3, 1, 2, 3), std::invalid_argument);
  EXPECT_THROW(gen::layered_feedback(0, 3, 1, 2, 3), std::invalid_argument);
  EXPECT_THROW(gen::scc_chain(0, 3, 1, 2, 3), std::invalid_argument);
  EXPECT_THROW(gen::path(0), std::invalid_argument);
}

}  // namespace
}  // namespace mcr
