#include "graph/graph.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.h"

namespace mcr {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_arc(0, 1, 10);
  b.add_arc(1, 2, 20);
  b.add_arc(2, 0, 30);
  return b.build();
}

TEST(Graph, EmptyGraph) {
  const Graph g(0, {});
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_arcs(), 0);
  EXPECT_EQ(g.min_weight(), 0);
  EXPECT_EQ(g.max_weight(), 0);
  EXPECT_EQ(g.total_transit(), 0);
}

TEST(Graph, NodesWithoutArcs) {
  const Graph g(5, {});
  EXPECT_EQ(g.num_nodes(), 5);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.out_arcs(v).empty());
    EXPECT_TRUE(g.in_arcs(v).empty());
  }
}

TEST(Graph, ArcAccessors) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_arcs(), 3);
  EXPECT_EQ(g.src(0), 0);
  EXPECT_EQ(g.dst(0), 1);
  EXPECT_EQ(g.weight(0), 10);
  EXPECT_EQ(g.transit(0), 1);
  EXPECT_EQ(g.weight(2), 30);
}

TEST(Graph, OutAndInAdjacency) {
  const Graph g = triangle();
  ASSERT_EQ(g.out_arcs(0).size(), 1u);
  EXPECT_EQ(g.dst(g.out_arcs(0)[0]), 1);
  ASSERT_EQ(g.in_arcs(0).size(), 1u);
  EXPECT_EQ(g.src(g.in_arcs(0)[0]), 2);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
}

TEST(Graph, ParallelArcsAndSelfLoops) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  b.add_arc(0, 1, 2);  // parallel
  b.add_arc(1, 1, 3);  // self-loop
  b.add_arc(1, 0, 4);
  const Graph g = b.build();
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(1), 3u);  // two parallels + self-loop
  EXPECT_EQ(g.out_degree(1), 2u);
}

TEST(Graph, AdjacencyPreservesInsertionOrder) {
  GraphBuilder b(2);
  const ArcId a0 = b.add_arc(0, 1, 5);
  const ArcId a1 = b.add_arc(0, 1, 6);
  const Graph g = b.build();
  ASSERT_EQ(g.out_arcs(0).size(), 2u);
  EXPECT_EQ(g.out_arcs(0)[0], a0);
  EXPECT_EQ(g.out_arcs(0)[1], a1);
}

TEST(Graph, WeightExtremesAndTransitTotal) {
  GraphBuilder b(2);
  b.add_arc(0, 1, -7, 2);
  b.add_arc(1, 0, 13, 5);
  const Graph g = b.build();
  EXPECT_EQ(g.min_weight(), -7);
  EXPECT_EQ(g.max_weight(), 13);
  EXPECT_EQ(g.total_transit(), 7);
}

TEST(Graph, OutOfRangeEndpointsThrow) {
  std::vector<ArcSpec> arcs{ArcSpec{0, 3, 1, 1}};
  EXPECT_THROW(Graph(2, arcs), std::out_of_range);
  std::vector<ArcSpec> arcs2{ArcSpec{-1, 0, 1, 1}};
  EXPECT_THROW(Graph(2, arcs2), std::out_of_range);
}

TEST(Graph, NegativeNodeCountThrows) {
  EXPECT_THROW(Graph(-1, {}), std::invalid_argument);
}

TEST(Graph, MoveConstructionPreservesContent) {
  Graph g = triangle();
  const Graph moved = std::move(g);
  EXPECT_EQ(moved.num_nodes(), 3);
  EXPECT_EQ(moved.num_arcs(), 3);
  EXPECT_EQ(moved.weight(1), 20);
}

TEST(GraphBuilder, AddNodeAssignsDenseIds) {
  GraphBuilder b;
  EXPECT_EQ(b.add_node(), 0);
  EXPECT_EQ(b.add_node(), 1);
  EXPECT_EQ(b.num_nodes(), 2);
}

TEST(GraphBuilder, EnsureNodeGrows) {
  GraphBuilder b;
  b.ensure_node(4);
  EXPECT_EQ(b.num_nodes(), 5);
  b.ensure_node(2);  // no shrink
  EXPECT_EQ(b.num_nodes(), 5);
  EXPECT_THROW(b.ensure_node(-1), std::out_of_range);
}

TEST(GraphBuilder, ArcEndpointValidation) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_arc(0, 2, 1), std::out_of_range);
  EXPECT_THROW(b.add_arc(-1, 0, 1), std::out_of_range);
}

TEST(GraphBuilder, ArcIdsAreSequential) {
  GraphBuilder b(2);
  EXPECT_EQ(b.add_arc(0, 1, 1), 0);
  EXPECT_EQ(b.add_arc(1, 0, 1), 1);
  EXPECT_EQ(b.num_arcs(), 2);
}

TEST(GraphBuilder, BuildIsRepeatable) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  const Graph g1 = b.build();
  b.add_arc(1, 0, 2);
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_arcs(), 1);
  EXPECT_EQ(g2.num_arcs(), 2);
}

TEST(Graph, LargeCsrConsistency) {
  // Every arc id must appear exactly once in out_arcs and in in_arcs.
  GraphBuilder b(50);
  for (NodeId u = 0; u < 50; ++u) {
    for (NodeId k = 1; k <= 3; ++k) {
      b.add_arc(u, (u * 7 + k * 13) % 50, u + k);
    }
  }
  const Graph g = b.build();
  std::vector<int> seen_out(static_cast<std::size_t>(g.num_arcs()), 0);
  std::vector<int> seen_in(static_cast<std::size_t>(g.num_arcs()), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const ArcId a : g.out_arcs(v)) {
      EXPECT_EQ(g.src(a), v);
      ++seen_out[static_cast<std::size_t>(a)];
    }
    for (const ArcId a : g.in_arcs(v)) {
      EXPECT_EQ(g.dst(a), v);
      ++seen_in[static_cast<std::size_t>(a)];
    }
  }
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_EQ(seen_out[static_cast<std::size_t>(a)], 1);
    EXPECT_EQ(seen_in[static_cast<std::size_t>(a)], 1);
  }
}

}  // namespace
}  // namespace mcr
