// Typed tests exercising the shared addressable-heap concept across the
// binary, pairing, and Fibonacci heaps, including a randomized
// differential test against a sorted-container reference model.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "ds/binary_heap.h"
#include "ds/fibonacci_heap.h"
#include "ds/pairing_heap.h"
#include "support/prng.h"

namespace mcr {
namespace {

template <typename H>
class HeapTest : public ::testing::Test {};

using HeapTypes = ::testing::Types<BinaryHeap<std::int64_t>, PairingHeap<std::int64_t>,
                                   FibonacciHeap<std::int64_t>>;
TYPED_TEST_SUITE(HeapTest, HeapTypes);

TYPED_TEST(HeapTest, StartsEmpty) {
  TypeParam h(10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.contains(3));
}

TYPED_TEST(HeapTest, InsertAndMin) {
  TypeParam h(10);
  h.insert(3, 30);
  h.insert(1, 10);
  h.insert(2, 20);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.min_item(), 1);
  EXPECT_EQ(h.key(3), 30);
  EXPECT_TRUE(h.contains(2));
}

TYPED_TEST(HeapTest, ExtractMinOrdersKeys) {
  TypeParam h(10);
  const std::vector<std::int64_t> keys{50, 20, 90, 10, 70};
  for (std::int32_t i = 0; i < 5; ++i) h.insert(i, keys[static_cast<std::size_t>(i)]);
  std::vector<std::int64_t> got;
  while (!h.empty()) got.push_back(keys[static_cast<std::size_t>(h.extract_min())]);
  EXPECT_EQ(got, (std::vector<std::int64_t>{10, 20, 50, 70, 90}));
}

TYPED_TEST(HeapTest, ExtractRemovesItem) {
  TypeParam h(4);
  h.insert(0, 5);
  h.insert(1, 6);
  EXPECT_EQ(h.extract_min(), 0);
  EXPECT_FALSE(h.contains(0));
  EXPECT_EQ(h.size(), 1u);
}

TYPED_TEST(HeapTest, DecreaseKeyPromotes) {
  TypeParam h(4);
  h.insert(0, 10);
  h.insert(1, 20);
  h.insert(2, 30);
  h.decrease_key(2, 5);
  EXPECT_EQ(h.min_item(), 2);
  EXPECT_EQ(h.key(2), 5);
}

TYPED_TEST(HeapTest, DecreaseKeyToEqualIsAllowed) {
  TypeParam h(2);
  h.insert(0, 10);
  h.decrease_key(0, 10);
  EXPECT_EQ(h.key(0), 10);
}

TYPED_TEST(HeapTest, UpdateKeyBothDirections) {
  TypeParam h(4);
  h.insert(0, 10);
  h.insert(1, 20);
  h.update_key(0, 30);  // increase
  EXPECT_EQ(h.min_item(), 1);
  h.update_key(0, 1);  // decrease
  EXPECT_EQ(h.min_item(), 0);
}

TYPED_TEST(HeapTest, EraseMiddle) {
  TypeParam h(5);
  for (std::int32_t i = 0; i < 5; ++i) h.insert(i, 10 * (i + 1));
  h.erase(2);
  EXPECT_FALSE(h.contains(2));
  EXPECT_EQ(h.size(), 4u);
  std::vector<std::int32_t> got;
  while (!h.empty()) got.push_back(h.extract_min());
  EXPECT_EQ(got, (std::vector<std::int32_t>{0, 1, 3, 4}));
}

TYPED_TEST(HeapTest, EraseMin) {
  TypeParam h(3);
  h.insert(0, 1);
  h.insert(1, 2);
  h.erase(0);
  EXPECT_EQ(h.min_item(), 1);
}

TYPED_TEST(HeapTest, EraseLastLeavesEmpty) {
  TypeParam h(2);
  h.insert(1, 7);
  h.erase(1);
  EXPECT_TRUE(h.empty());
}

TYPED_TEST(HeapTest, ReinsertAfterExtract) {
  TypeParam h(2);
  h.insert(0, 5);
  (void)h.extract_min();
  h.insert(0, 3);
  EXPECT_EQ(h.min_item(), 0);
  EXPECT_EQ(h.key(0), 3);
}

TYPED_TEST(HeapTest, DuplicateKeysAllowed) {
  TypeParam h(4);
  for (std::int32_t i = 0; i < 4; ++i) h.insert(i, 42);
  std::set<std::int32_t> items;
  while (!h.empty()) items.insert(h.extract_min());
  EXPECT_EQ(items.size(), 4u);
}

TYPED_TEST(HeapTest, RandomizedDifferentialAgainstReferenceModel) {
  constexpr std::int32_t kCapacity = 200;
  TypeParam h(kCapacity);
  // Reference: item -> key plus an ordered (key, item) set.
  std::map<std::int32_t, std::int64_t> ref;
  std::set<std::pair<std::int64_t, std::int32_t>> ordered;
  Prng rng(12345);

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op < 4) {  // insert
      const std::int32_t item = static_cast<std::int32_t>(rng.uniform_int(0, kCapacity - 1));
      if (ref.count(item)) continue;
      const std::int64_t key = rng.uniform_int(-1000, 1000);
      h.insert(item, key);
      ref[item] = key;
      ordered.insert({key, item});
    } else if (op < 6) {  // decrease_key
      if (ref.empty()) continue;
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.uniform_int(0, static_cast<std::int64_t>(ref.size()) - 1)));
      const std::int64_t nk = it->second - rng.uniform_int(0, 100);
      h.decrease_key(it->first, nk);
      ordered.erase({it->second, it->first});
      ordered.insert({nk, it->first});
      it->second = nk;
    } else if (op < 7) {  // update_key (either direction)
      if (ref.empty()) continue;
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.uniform_int(0, static_cast<std::int64_t>(ref.size()) - 1)));
      const std::int64_t nk = rng.uniform_int(-1000, 1000);
      h.update_key(it->first, nk);
      ordered.erase({it->second, it->first});
      ordered.insert({nk, it->first});
      it->second = nk;
    } else if (op < 8) {  // erase
      if (ref.empty()) continue;
      auto it = ref.begin();
      std::advance(it, static_cast<long>(rng.uniform_int(0, static_cast<std::int64_t>(ref.size()) - 1)));
      h.erase(it->first);
      ordered.erase({it->second, it->first});
      ref.erase(it);
    } else {  // extract_min
      if (ref.empty()) {
        EXPECT_TRUE(h.empty());
        continue;
      }
      const std::int64_t min_key = ordered.begin()->first;
      const std::int32_t got = h.extract_min();
      // Any item with the minimal key is acceptable.
      EXPECT_EQ(ref.at(got), min_key) << "step " << step;
      ordered.erase({ref.at(got), got});
      ref.erase(got);
    }
    ASSERT_EQ(h.size(), ref.size());
    if (!ref.empty()) {
      EXPECT_EQ(h.key(h.min_item()), ordered.begin()->first);
    }
  }
}

}  // namespace
}  // namespace mcr
