// Howard-specific behaviour: the paper's headline observations are
// about its iteration counts (§4.3) and its epsilon semantics (Fig. 1).
#include <gtest/gtest.h>

#include "algo/algorithms.h"
#include "core/driver.h"
#include "core/verify.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr {
namespace {

TEST(Howard, IterationCountIsDrasticallySmall) {
  // §4.3: "The number of iterations of the Howard's algorithm is
  // drastically small compared to the other algorithms" (conjectured
  // O(lg n) on average).
  gen::SprandConfig cfg;
  cfg.n = 500;
  cfg.m = 1500;
  cfg.seed = 1;
  const Graph g = gen::sprand(cfg);
  const auto howard = minimum_cycle_mean(g, "howard");
  ASSERT_TRUE(howard.has_cycle);
  EXPECT_LT(howard.counters.iterations, 60u);  // n/2 would be 250

  const auto yto = minimum_cycle_mean(g, "yto");
  EXPECT_LT(howard.counters.iterations, yto.counters.iterations / 2);
}

TEST(Howard, PolicyCycleEvaluationsCounted) {
  gen::SprandConfig cfg;
  cfg.n = 100;
  cfg.m = 300;
  cfg.seed = 2;
  const auto r = minimum_cycle_mean(gen::sprand(cfg), "howard");
  EXPECT_GT(r.counters.cycle_evaluations, 0u);
  EXPECT_GT(r.counters.node_visits, 0u);
}

TEST(Howard, LargeEpsilonGivesApproximateResult) {
  // With a coarse epsilon Howard may stop early; the result must still
  // be a real cycle within epsilon of optimal.
  gen::SprandConfig cfg;
  cfg.n = 200;
  cfg.m = 600;
  cfg.seed = 3;
  const Graph g = gen::sprand(cfg);
  SolverConfig sc;
  sc.epsilon = 50.0;  // huge: weights are in [1, 10000]
  const auto solver = make_howard_solver(sc);
  const auto r = minimum_cycle_mean(g, *solver);
  ASSERT_TRUE(r.has_cycle);
  EXPECT_TRUE(is_valid_cycle(g, r.cycle));
  EXPECT_EQ(cycle_mean(g, r.cycle), r.value);
  const auto approx = verify_result_approx(g, r, ProblemKind::kCycleMean, 50.0);
  EXPECT_TRUE(approx.ok) << approx.message;
  // And it is an upper bound on the true optimum.
  const auto exact = minimum_cycle_mean(g, "karp");
  EXPECT_GE(r.value, exact.value);
}

TEST(Howard, DefaultEpsilonIsExactOnAdversarialTies) {
  // Many cycles with close means; exact comparisons must pick 13/7.
  GraphBuilder b(20);
  // Cycle A: 7 arcs totalling 13 -> 13/7 ~ 1.857
  for (NodeId v = 0; v < 7; ++v) {
    b.add_arc(v, (v + 1) % 7, v == 0 ? 7 : 1);
  }
  // Cycle B: 8 arcs totalling 15 -> 15/8 = 1.875
  for (NodeId v = 7; v < 15; ++v) {
    b.add_arc(v, v == 14 ? 7 : v + 1, v == 7 ? 8 : 1);
  }
  b.add_arc(0, 7, 100);
  b.add_arc(7, 0, 100);
  const auto r = minimum_cycle_mean(b.build(), "howard");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(13, 7));
}

TEST(Howard, WorksOnSingleCycleGraphs) {
  // Policy iteration degenerate case: out-degree 1 everywhere.
  const auto r = minimum_cycle_mean(gen::ring({3, 1, 4, 1, 5}), "howard");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, Rational(14, 5));
  EXPECT_EQ(r.counters.iterations, 1u);  // policy is the whole graph
}

TEST(Howard, RatioVariantMatchesOracle) {
  gen::SprandConfig cfg;
  cfg.n = 14;
  cfg.m = 30;
  cfg.min_transit = 1;
  cfg.max_transit = 5;
  cfg.seed = 4;
  const Graph g = gen::sprand(cfg);
  const auto r = minimum_cycle_ratio(g, "howard_ratio");
  const auto oracle = minimum_cycle_ratio(g, "brute_force_ratio");
  EXPECT_EQ(r.value, oracle.value);
}

TEST(Howard, RescaleRegressionMean) {
  // Regression for the truncating distance rescale. Found by fuzzing:
  // on this instance the optimal policy-cycle denominator changes
  // between iterations, and the old dist * new_den / cur_den integer
  // rescale rounded stale distances toward zero, breaking the
  // strict-decrease termination argument — the policy oscillated for
  // ~1400 iterations until the safety valve fired (feasibility_checks
  // counts the cycle-canceling rescue). The exact lcm rescale converges
  // in 2 iterations with no rescue.
  GraphBuilder b(9);
  b.add_arc(0, 1, -2);
  b.add_arc(1, 2, -2);
  b.add_arc(2, 3, -10);
  b.add_arc(3, 4, 12);
  b.add_arc(4, 5, 9);
  b.add_arc(5, 6, 4);
  b.add_arc(6, 7, -2);
  b.add_arc(7, 8, -1);
  b.add_arc(8, 0, 0);
  b.add_arc(5, 8, 10);
  b.add_arc(1, 5, 12);
  b.add_arc(0, 4, 12);
  b.add_arc(6, 8, -12);
  b.add_arc(6, 2, -3);
  b.add_arc(6, 5, -10);
  b.add_arc(0, 2, 6);
  b.add_arc(3, 0, 3);
  b.add_arc(3, 4, 3);
  b.add_arc(8, 8, 11);
  const Graph g = b.build();
  const auto r = minimum_cycle_mean(g, "howard");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, minimum_cycle_mean(g, "brute_force").value);
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleMean).ok);
  EXPECT_EQ(r.counters.feasibility_checks, 0u);  // no safety-valve rescue
  EXPECT_LE(r.counters.iterations, 16u);         // pre-fix: ~1400
}

TEST(Howard, RescaleRegressionRatio) {
  // Ratio-mode sibling of RescaleRegressionMean: transit times make the
  // policy-cycle denominators change every iteration, so the old
  // truncating rescale stalled (~1200 iterations, valve rescue) where
  // the exact lcm rescale takes 2.
  GraphBuilder b(6);
  b.add_arc(0, 1, -4, 1);
  b.add_arc(1, 2, -8, 3);
  b.add_arc(2, 3, -4, 1);
  b.add_arc(3, 4, 10, 2);
  b.add_arc(4, 5, 10, 3);
  b.add_arc(5, 0, 10, 3);
  b.add_arc(4, 4, -2, 7);
  b.add_arc(2, 1, 5, 7);
  b.add_arc(0, 0, 2, 2);
  const Graph g = b.build();
  const auto r = minimum_cycle_ratio(g, "howard_ratio");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_EQ(r.value, minimum_cycle_ratio(g, "brute_force_ratio").value);
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleRatio).ok);
  EXPECT_EQ(r.counters.feasibility_checks, 0u);  // no safety-valve rescue
  EXPECT_LE(r.counters.iterations, 16u);         // pre-fix: ~1200
}

TEST(Howard, ManyComponentsViaDriver) {
  const Graph g = gen::scc_chain(10, 6, 1, 100, 6);
  const auto r = minimum_cycle_mean(g, "howard");
  ASSERT_TRUE(r.has_cycle);
  EXPECT_TRUE(verify_result(g, r, ProblemKind::kCycleMean).ok);
}

}  // namespace
}  // namespace mcr
