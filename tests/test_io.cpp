#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"

namespace mcr {
namespace {

Graph sample() {
  GraphBuilder b(3);
  b.add_arc(0, 1, 10, 1);
  b.add_arc(1, 2, -5, 3);
  b.add_arc(2, 0, 7, 1);
  return b.build();
}

TEST(DimacsIo, WriteFormat) {
  std::ostringstream os;
  write_dimacs(os, sample(), "hello");
  const std::string s = os.str();
  EXPECT_NE(s.find("c hello"), std::string::npos);
  EXPECT_NE(s.find("p mcr 3 3"), std::string::npos);
  EXPECT_NE(s.find("a 1 2 10"), std::string::npos);
  // Transit written only when != 1.
  EXPECT_NE(s.find("a 2 3 -5 3"), std::string::npos);
}

TEST(DimacsIo, RoundTrip) {
  std::stringstream ss;
  write_dimacs(ss, sample());
  const Graph g = read_dimacs(ss);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 3);
  EXPECT_EQ(g.weight(1), -5);
  EXPECT_EQ(g.transit(1), 3);
  EXPECT_EQ(g.transit(0), 1);
  EXPECT_EQ(g.src(2), 2);
  EXPECT_EQ(g.dst(2), 0);
}

TEST(DimacsIo, ReadSkipsCommentsAndBlankLines) {
  std::istringstream is("c top comment\n\np mcr 2 1\nc mid\na 1 2 5\n");
  const Graph g = read_dimacs(is);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_EQ(g.weight(0), 5);
}

TEST(DimacsIo, DefaultTransitIsOne) {
  std::istringstream is("p mcr 2 1\na 1 2 5\n");
  const Graph g = read_dimacs(is);
  EXPECT_EQ(g.transit(0), 1);
}

TEST(DimacsIo, MissingProblemLineThrows) {
  std::istringstream is("a 1 2 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, NoProblemLineAtAllThrows) {
  std::istringstream is("c nothing here\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, ArcCountMismatchThrows) {
  std::istringstream is("p mcr 2 2\na 1 2 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, EndpointOutOfRangeThrows) {
  std::istringstream is("p mcr 2 1\na 1 3 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, UnknownLineKindThrows) {
  std::istringstream is("p mcr 2 1\nz nonsense\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, MalformedProblemLineThrows) {
  std::istringstream is("p spx 2 1\na 1 2 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, NonPositiveTransitThrowsWithLineNumber) {
  std::istringstream zero("p mcr 2 1\na 1 2 5 0\n");
  try {
    (void)read_dimacs(zero);
    FAIL() << "zero transit accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("transit"), std::string::npos) << e.what();
  }
  std::istringstream negative("p mcr 2 2\na 1 2 5 2\na 2 1 5 -3\n");
  try {
    (void)read_dimacs(negative);
    FAIL() << "negative transit accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(DimacsIo, TrailingTokensOnArcLineThrow) {
  std::istringstream is("p mcr 2 1\na 1 2 5 1 junk\n");
  EXPECT_THROW((void)read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, WriteRejectsNonPositiveTransit) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 5, 0);  // representable in memory, not in the format
  b.add_arc(1, 0, 5, 2);
  std::ostringstream os;
  EXPECT_THROW(write_dimacs(os, b.build()), std::invalid_argument);
}

TEST(DimacsIo, RoundTripNegativeWeights) {
  GraphBuilder b(4);
  b.add_arc(0, 1, -10000, 1);
  b.add_arc(1, 2, -1, 1);
  b.add_arc(2, 3, 0, 1);
  b.add_arc(3, 0, -42, 1);
  const Graph g = b.build();
  std::stringstream ss;
  write_dimacs(ss, g);
  const Graph h = read_dimacs(ss);
  ASSERT_EQ(h.num_arcs(), g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_EQ(h.src(a), g.src(a));
    EXPECT_EQ(h.dst(a), g.dst(a));
    EXPECT_EQ(h.weight(a), g.weight(a));
    EXPECT_EQ(h.transit(a), g.transit(a));
  }
}

TEST(DimacsIo, RoundTripMultiTransit) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 7, 5);
  b.add_arc(1, 2, -3, 1);   // default-transit arc mixed in
  b.add_arc(2, 0, 11, 1000000);
  b.add_arc(0, 0, -9, 2);   // self loop with transit
  const Graph g = b.build();
  std::stringstream ss;
  write_dimacs(ss, g);
  const Graph h = read_dimacs(ss);
  ASSERT_EQ(h.num_arcs(), g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_EQ(h.src(a), g.src(a));
    EXPECT_EQ(h.dst(a), g.dst(a));
    EXPECT_EQ(h.weight(a), g.weight(a));
    EXPECT_EQ(h.transit(a), g.transit(a));
  }
}

TEST(DimacsIo, FileSaveAndLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mcr_io_test.dimacs").string();
  save_dimacs(path, sample(), "file test");
  const Graph g = load_dimacs(path);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 3);
  std::remove(path.c_str());
}

TEST(DimacsIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_dimacs("/nonexistent/path/graph.dimacs"), std::runtime_error);
}

}  // namespace
}  // namespace mcr
