#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"

namespace mcr {
namespace {

Graph sample() {
  GraphBuilder b(3);
  b.add_arc(0, 1, 10, 1);
  b.add_arc(1, 2, -5, 3);
  b.add_arc(2, 0, 7, 1);
  return b.build();
}

TEST(DimacsIo, WriteFormat) {
  std::ostringstream os;
  write_dimacs(os, sample(), "hello");
  const std::string s = os.str();
  EXPECT_NE(s.find("c hello"), std::string::npos);
  EXPECT_NE(s.find("p mcr 3 3"), std::string::npos);
  EXPECT_NE(s.find("a 1 2 10"), std::string::npos);
  // Transit written only when != 1.
  EXPECT_NE(s.find("a 2 3 -5 3"), std::string::npos);
}

TEST(DimacsIo, RoundTrip) {
  std::stringstream ss;
  write_dimacs(ss, sample());
  const Graph g = read_dimacs(ss);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 3);
  EXPECT_EQ(g.weight(1), -5);
  EXPECT_EQ(g.transit(1), 3);
  EXPECT_EQ(g.transit(0), 1);
  EXPECT_EQ(g.src(2), 2);
  EXPECT_EQ(g.dst(2), 0);
}

TEST(DimacsIo, ReadSkipsCommentsAndBlankLines) {
  std::istringstream is("c top comment\n\np mcr 2 1\nc mid\na 1 2 5\n");
  const Graph g = read_dimacs(is);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_EQ(g.weight(0), 5);
}

TEST(DimacsIo, DefaultTransitIsOne) {
  std::istringstream is("p mcr 2 1\na 1 2 5\n");
  const Graph g = read_dimacs(is);
  EXPECT_EQ(g.transit(0), 1);
}

TEST(DimacsIo, MissingProblemLineThrows) {
  std::istringstream is("a 1 2 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, NoProblemLineAtAllThrows) {
  std::istringstream is("c nothing here\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, ArcCountMismatchThrows) {
  std::istringstream is("p mcr 2 2\na 1 2 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, EndpointOutOfRangeThrows) {
  std::istringstream is("p mcr 2 1\na 1 3 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, UnknownLineKindThrows) {
  std::istringstream is("p mcr 2 1\nz nonsense\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, MalformedProblemLineThrows) {
  std::istringstream is("p spx 2 1\na 1 2 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, NonPositiveTransitThrowsWithLineNumber) {
  std::istringstream zero("p mcr 2 1\na 1 2 5 0\n");
  try {
    (void)read_dimacs(zero);
    FAIL() << "zero transit accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("transit"), std::string::npos) << e.what();
  }
  std::istringstream negative("p mcr 2 2\na 1 2 5 2\na 2 1 5 -3\n");
  try {
    (void)read_dimacs(negative);
    FAIL() << "negative transit accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(DimacsIo, TrailingTokensOnArcLineThrow) {
  std::istringstream is("p mcr 2 1\na 1 2 5 1 junk\n");
  EXPECT_THROW((void)read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, WriteRejectsNonPositiveTransit) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 5, 0);  // representable in memory, not in the format
  b.add_arc(1, 0, 5, 2);
  std::ostringstream os;
  EXPECT_THROW(write_dimacs(os, b.build()), std::invalid_argument);
}

TEST(DimacsIo, RoundTripNegativeWeights) {
  GraphBuilder b(4);
  b.add_arc(0, 1, -10000, 1);
  b.add_arc(1, 2, -1, 1);
  b.add_arc(2, 3, 0, 1);
  b.add_arc(3, 0, -42, 1);
  const Graph g = b.build();
  std::stringstream ss;
  write_dimacs(ss, g);
  const Graph h = read_dimacs(ss);
  ASSERT_EQ(h.num_arcs(), g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_EQ(h.src(a), g.src(a));
    EXPECT_EQ(h.dst(a), g.dst(a));
    EXPECT_EQ(h.weight(a), g.weight(a));
    EXPECT_EQ(h.transit(a), g.transit(a));
  }
}

TEST(DimacsIo, RoundTripMultiTransit) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 7, 5);
  b.add_arc(1, 2, -3, 1);   // default-transit arc mixed in
  b.add_arc(2, 0, 11, 1000000);
  b.add_arc(0, 0, -9, 2);   // self loop with transit
  const Graph g = b.build();
  std::stringstream ss;
  write_dimacs(ss, g);
  const Graph h = read_dimacs(ss);
  ASSERT_EQ(h.num_arcs(), g.num_arcs());
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    EXPECT_EQ(h.src(a), g.src(a));
    EXPECT_EQ(h.dst(a), g.dst(a));
    EXPECT_EQ(h.weight(a), g.weight(a));
    EXPECT_EQ(h.transit(a), g.transit(a));
  }
}

TEST(DimacsIo, FileSaveAndLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mcr_io_test.dimacs").string();
  save_dimacs(path, sample(), "file test");
  const Graph g = load_dimacs(path);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 3);
  std::remove(path.c_str());
}

TEST(DimacsIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_dimacs("/nonexistent/path/graph.dimacs"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// The buffered line scanner has a fast path for canonical arc lines and
// falls back to the legacy token-extraction path for anything unusual.
// These tests pin the exact error strings (and the deliberate legacy
// quirks) so the fast path can never drift from the reference behavior.

std::string read_error(const std::string& text) {
  std::istringstream is(text);
  try {
    (void)read_dimacs(is);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return "";
}

TEST(DimacsScanner, ExactErrorStrings) {
  EXPECT_EQ(read_error("p mcr 4 1\na 1\n"),
            "read_dimacs: line 2: malformed arc line");
  EXPECT_EQ(read_error("p mcr 4 1\na 1 2 3 4 5\n"),
            "read_dimacs: line 2: trailing tokens after arc line ('5')");
  // Endpoint range via the fast path (canonical tokens)...
  EXPECT_EQ(read_error("p mcr 4 1\na 1 9 3\n"),
            "read_dimacs: line 2: arc endpoint out of range");
  // ...and via the legacy path (a '+' sign is canonical too, tabs are
  // whitespace): same string either way.
  EXPECT_EQ(read_error("p mcr 4 1\na\t+1\t9\t3\n"),
            "read_dimacs: line 2: arc endpoint out of range");
  EXPECT_EQ(read_error("p mcr 4 1\na 1 2 3 0\n"),
            "read_dimacs: line 2: non-positive transit time 0 (the format "
            "requires t >= 1)");
  EXPECT_EQ(read_error("p mcr 4 1\na 1 2 3 -7\n"),
            "read_dimacs: line 2: non-positive transit time -7 (the format "
            "requires t >= 1)");
  // A weight that overflows int64 declines the fast path; the stream
  // extraction then fails the same way a non-number would.
  EXPECT_EQ(read_error("p mcr 4 1\na 1 2 99999999999999999999\n"),
            "read_dimacs: line 2: malformed arc line");
  EXPECT_EQ(read_error("a 1 2 3\n"), "read_dimacs: line 1: arc line before problem line");
  EXPECT_EQ(read_error("x 1 2\n"), "read_dimacs: line 1: unknown line kind 'x'");
  EXPECT_EQ(read_error("p mcr x 1\n"),
            "read_dimacs: line 1: malformed problem line (expected 'p mcr <n> <m>')");
  EXPECT_EQ(read_error(""), "read_dimacs: missing problem line");
  EXPECT_EQ(read_error("p mcr 4 2\na 1 2 3\n"),
            "read_dimacs: arc count mismatch (declared 2, found 1)");
}

TEST(DimacsScanner, WhitespaceOnlyLineReportsNulKind) {
  // Legacy quirk, preserved bug-for-bug: token extraction from a
  // whitespace-only line leaves kind = '\0', so the message embeds a
  // NUL — which what() (a C string) truncates at.
  EXPECT_EQ(read_error("p mcr 4 0\n \n"),
            "read_dimacs: line 2: unknown line kind '");
}

TEST(DimacsScanner, UnreadableFourthTokenFallsBackToTransitOne) {
  // Legacy quirk, preserved bug-for-bug: a 4th token that fails int64
  // extraction falls back to t = 1, and the stuck failbit hides it from
  // the trailing-token check.
  std::istringstream is("p mcr 2 1\na 1 2 5 x\n");
  const Graph g = read_dimacs(is);
  ASSERT_EQ(g.num_arcs(), 1);
  EXPECT_EQ(g.weight(0), 5);
  EXPECT_EQ(g.transit(0), 1);
  // Same stuck-failbit quirk when the junk is glued to the weight: "3x"
  // reads weight 3, then 'x' consumes the transit extraction.
  std::istringstream glued("p mcr 4 1\na 1 2 3x\n");
  const Graph g2 = read_dimacs(glued);
  ASSERT_EQ(g2.num_arcs(), 1);
  EXPECT_EQ(g2.weight(0), 3);
  EXPECT_EQ(g2.transit(0), 1);
}

TEST(DimacsScanner, CrlfAndFinalLineWithoutNewline) {
  // CR is line-internal whitespace (the scanner splits on LF only), so
  // CRLF files parse; a last line with no terminator still counts.
  std::istringstream is("p mcr 2 2\r\na 1 2 5\r\na 2 1 -3 4");
  const Graph g = read_dimacs(is);
  ASSERT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.weight(0), 5);
  EXPECT_EQ(g.transit(0), 1);
  EXPECT_EQ(g.weight(1), -3);
  EXPECT_EQ(g.transit(1), 4);
}

TEST(DimacsScanner, FastAndSlowPathsAgreeOnEquivalentSpellings) {
  // The same graph spelled canonically (fast path) and with legacy
  // oddities (leading whitespace, '+' signs, tab separators — slow
  // path) must parse identically.
  std::istringstream fast("p mcr 3 3\na 1 2 10\na 2 3 -5 3\na 3 1 7\n");
  std::istringstream slow(
      "p mcr 3 3\n  a 1 2 10\na\t+2\t+3\t-5\t+3\na 3 1 +7\n");
  const Graph a = read_dimacs(fast);
  const Graph b = read_dimacs(slow);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (ArcId e = 0; e < a.num_arcs(); ++e) {
    EXPECT_EQ(a.src(e), b.src(e));
    EXPECT_EQ(a.dst(e), b.dst(e));
    EXPECT_EQ(a.weight(e), b.weight(e));
    EXPECT_EQ(a.transit(e), b.transit(e));
  }
}

TEST(DimacsScanner, ChunkBoundarySafety) {
  // A file big enough to span multiple 1 MiB read chunks, with the
  // header asserting the exact arc count: no line is lost or doubled at
  // chunk boundaries.
  constexpr int kArcs = 150000;  // ~1.7 MB of text
  std::string text = "p mcr 2 " + std::to_string(kArcs) + "\n";
  for (int i = 0; i < kArcs; ++i) {
    text += (i % 2) == 0 ? "a 1 2 7\n" : "a 2 1 -345678 9\n";
  }
  std::istringstream is(text);
  const Graph g = read_dimacs(is);
  ASSERT_EQ(g.num_arcs(), kArcs);
  EXPECT_EQ(g.weight(0), 7);
  EXPECT_EQ(g.weight(1), -345678);
  EXPECT_EQ(g.transit(1), 9);
}

}  // namespace
}  // namespace mcr
