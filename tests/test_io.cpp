#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "graph/builder.h"

namespace mcr {
namespace {

Graph sample() {
  GraphBuilder b(3);
  b.add_arc(0, 1, 10, 1);
  b.add_arc(1, 2, -5, 3);
  b.add_arc(2, 0, 7, 1);
  return b.build();
}

TEST(DimacsIo, WriteFormat) {
  std::ostringstream os;
  write_dimacs(os, sample(), "hello");
  const std::string s = os.str();
  EXPECT_NE(s.find("c hello"), std::string::npos);
  EXPECT_NE(s.find("p mcr 3 3"), std::string::npos);
  EXPECT_NE(s.find("a 1 2 10"), std::string::npos);
  // Transit written only when != 1.
  EXPECT_NE(s.find("a 2 3 -5 3"), std::string::npos);
}

TEST(DimacsIo, RoundTrip) {
  std::stringstream ss;
  write_dimacs(ss, sample());
  const Graph g = read_dimacs(ss);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 3);
  EXPECT_EQ(g.weight(1), -5);
  EXPECT_EQ(g.transit(1), 3);
  EXPECT_EQ(g.transit(0), 1);
  EXPECT_EQ(g.src(2), 2);
  EXPECT_EQ(g.dst(2), 0);
}

TEST(DimacsIo, ReadSkipsCommentsAndBlankLines) {
  std::istringstream is("c top comment\n\np mcr 2 1\nc mid\na 1 2 5\n");
  const Graph g = read_dimacs(is);
  EXPECT_EQ(g.num_nodes(), 2);
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_EQ(g.weight(0), 5);
}

TEST(DimacsIo, DefaultTransitIsOne) {
  std::istringstream is("p mcr 2 1\na 1 2 5\n");
  const Graph g = read_dimacs(is);
  EXPECT_EQ(g.transit(0), 1);
}

TEST(DimacsIo, MissingProblemLineThrows) {
  std::istringstream is("a 1 2 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, NoProblemLineAtAllThrows) {
  std::istringstream is("c nothing here\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, ArcCountMismatchThrows) {
  std::istringstream is("p mcr 2 2\na 1 2 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, EndpointOutOfRangeThrows) {
  std::istringstream is("p mcr 2 1\na 1 3 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, UnknownLineKindThrows) {
  std::istringstream is("p mcr 2 1\nz nonsense\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, MalformedProblemLineThrows) {
  std::istringstream is("p spx 2 1\na 1 2 5\n");
  EXPECT_THROW(read_dimacs(is), std::runtime_error);
}

TEST(DimacsIo, FileSaveAndLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "mcr_io_test.dimacs").string();
  save_dimacs(path, sample(), "file test");
  const Graph g = load_dimacs(path);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_arcs(), 3);
  std::remove(path.c_str());
}

TEST(DimacsIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_dimacs("/nonexistent/path/graph.dimacs"), std::runtime_error);
}

}  // namespace
}  // namespace mcr
