// mcr::json — the dependency-free reader behind mcr_bench_diff. The
// contracts under test: round-trips of the constructs our writers emit,
// escape handling (including \uXXXX and surrogate pairs), strictness
// (trailing garbage, truncation, and malformed numbers throw with a
// byte offset), and the typed accessor errors.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "support/json.h"

namespace mcr {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(json::parse("42").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-0.5e3").as_double(), -500.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const json::Value v = json::parse(
      R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].as_double(), 2.0);
  EXPECT_TRUE(a[2].at("b").as_bool());
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_TRUE(v.has("e"));
  EXPECT_FALSE(v.has("missing"));
}

TEST(Json, DecodesStringEscapes) {
  EXPECT_EQ(json::parse(R"("q\"b\\s\/n\nr\rt\tf\fb\b")").as_string(),
            "q\"b\\s/n\nr\rt\tf\fb\b");
  EXPECT_EQ(json::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 (😀) as \ud83d\ude00.
  EXPECT_EQ(json::parse(R"("\ud83d\ude00")").as_string(), "\xf0\x9f\x98\x80");
}

TEST(Json, WhitespaceAroundTokensIsFine) {
  const json::Value v = json::parse(" { \"k\" :\n[ 1 ,\t2 ] } ");
  EXPECT_EQ(v.at("k").as_array().size(), 2u);
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
        "\"bad\\q\"", "{\"a\":1}garbage", "[1] [2]", "nan", "+1",
        "{\"a\" 1}", "\"\\ud83d\""}) {
    EXPECT_THROW((void)json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, ErrorsNameTheByteOffset) {
  try {
    (void)json::parse("[1, x]");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const json::Value v = json::parse(R"({"n":1,"s":"x"})");
  EXPECT_THROW((void)v.at("n").as_string(), std::runtime_error);
  EXPECT_THROW((void)v.at("s").as_double(), std::runtime_error);
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
  EXPECT_THROW((void)v.at("n").at("x"), std::runtime_error);  // not an object
}

TEST(Json, DefaultingAccessors) {
  const json::Value v = json::parse(R"({"n":2.5,"s":"x"})");
  EXPECT_DOUBLE_EQ(v.number_or("n", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(v.number_or("gone", -1.0), -1.0);
  EXPECT_EQ(v.string_or("s", "d"), "x");
  EXPECT_EQ(v.string_or("gone", "d"), "d");
}

TEST(Json, ParseFileErrorsNameThePath) {
  try {
    (void)json::parse_file("/nonexistent/mcr.json");
    FAIL() << "expected error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/mcr.json"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace mcr
