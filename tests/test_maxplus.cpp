#include "apps/maxplus.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/driver.h"
#include "gen/sprand.h"
#include "gen/structured.h"
#include "graph/builder.h"

namespace mcr::apps {
namespace {

TEST(MaxPlus, RingSpectrum) {
  const Graph g = gen::ring({2, 4, 6});  // max (and only) cycle mean: 4
  const MaxPlusSpectrum s = maxplus_spectrum(g);
  EXPECT_EQ(s.eigenvalue, Rational(4));
  EXPECT_EQ(s.critical_nodes.size(), 3u);
  EXPECT_TRUE(is_maxplus_eigenpair(g, s.eigenvalue, s.scaled_eigenvector));
}

TEST(MaxPlus, SelfLoopDominates) {
  GraphBuilder b(2);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 0, 1);   // mean 1
  b.add_arc(1, 1, 10);  // mean 10 — the eigenvalue
  const Graph g = b.build();
  const MaxPlusSpectrum s = maxplus_spectrum(g);
  EXPECT_EQ(s.eigenvalue, Rational(10));
  EXPECT_EQ(s.critical_nodes, (std::vector<NodeId>{1}));
  EXPECT_TRUE(is_maxplus_eigenpair(g, s.eigenvalue, s.scaled_eigenvector));
}

TEST(MaxPlus, FractionalEigenvalueScaledVector) {
  const Graph g = gen::ring({1, 2});  // eigenvalue 3/2
  const MaxPlusSpectrum s = maxplus_spectrum(g);
  EXPECT_EQ(s.eigenvalue, Rational(3, 2));
  EXPECT_TRUE(is_maxplus_eigenpair(g, s.eigenvalue, s.scaled_eigenvector));
}

TEST(MaxPlus, EigenvalueEqualsMaximumCycleMean) {
  gen::SprandConfig cfg;
  cfg.n = 60;
  cfg.m = 180;
  cfg.seed = 17;
  const Graph g = gen::sprand(cfg);
  const MaxPlusSpectrum s = maxplus_spectrum(g);
  EXPECT_EQ(s.eigenvalue, maximum_cycle_mean(g, "karp").value);
}

TEST(MaxPlus, EigenpairOnRandomStronglyConnectedGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    gen::SprandConfig cfg;
    cfg.n = 40;
    cfg.m = 120;
    cfg.seed = seed;
    const Graph g = gen::sprand(cfg);
    const MaxPlusSpectrum s = maxplus_spectrum(g);
    EXPECT_TRUE(is_maxplus_eigenpair(g, s.eigenvalue, s.scaled_eigenvector))
        << "seed " << seed;
    EXPECT_FALSE(s.critical_nodes.empty());
  }
}

TEST(MaxPlus, RejectsNonStronglyConnected) {
  EXPECT_THROW((void)maxplus_spectrum(gen::path(3)), std::invalid_argument);
  GraphBuilder b(3);
  b.add_arc(0, 1, 1);
  b.add_arc(1, 0, 1);
  b.add_arc(1, 2, 1);  // node 2 cannot reach back
  EXPECT_THROW((void)maxplus_spectrum(b.build()), std::invalid_argument);
}

TEST(MaxPlus, IsEigenpairRejectsWrongVector) {
  const Graph g = gen::ring({2, 4, 6});
  const MaxPlusSpectrum s = maxplus_spectrum(g);
  auto bad = s.scaled_eigenvector;
  bad[0] += 1;
  EXPECT_FALSE(is_maxplus_eigenpair(g, s.eigenvalue, bad));
  EXPECT_FALSE(is_maxplus_eigenpair(g, s.eigenvalue + Rational(1), s.scaled_eigenvector));
  EXPECT_FALSE(is_maxplus_eigenpair(g, s.eigenvalue, {}));
}

TEST(CycleTime, SingleSccUniformRate) {
  const Graph g = gen::ring({3, 5});
  const CycleTimeVector chi = maxplus_cycle_time(g);
  EXPECT_TRUE(chi.has_rate[0]);
  EXPECT_EQ(chi.chi[0], Rational(4));
  EXPECT_EQ(chi.chi[1], Rational(4));
}

TEST(CycleTime, DownstreamInheritsFastestUpstreamClock) {
  // Loop A (rate 7) feeds chain -> loop B (rate 2) also feeds it.
  GraphBuilder b(5);
  b.add_arc(0, 0, 7);  // loop A
  b.add_arc(1, 1, 2);  // loop B
  b.add_arc(0, 2, 1);
  b.add_arc(1, 2, 1);
  b.add_arc(2, 3, 1);
  const Graph g = b.build();
  const CycleTimeVector chi = maxplus_cycle_time(g);
  EXPECT_EQ(chi.chi[0], Rational(7));
  EXPECT_EQ(chi.chi[1], Rational(2));
  // Node 2 and 3 are paced by the slower producer (max growth rate).
  EXPECT_EQ(chi.chi[2], Rational(7));
  EXPECT_EQ(chi.chi[3], Rational(7));
  // Node 4 is untouched by any cycle.
  EXPECT_FALSE(chi.has_rate[4]);
}

TEST(CycleTime, AcyclicGraphHasNoRates) {
  const CycleTimeVector chi = maxplus_cycle_time(gen::path(4));
  for (const bool h : chi.has_rate) EXPECT_FALSE(h);
}

TEST(CycleTime, UpstreamUnaffectedByDownstreamLoops) {
  GraphBuilder b(3);
  b.add_arc(0, 1, 1);  // 0 is acyclic, feeds the loop
  b.add_arc(1, 2, 5);
  b.add_arc(2, 1, 3);  // loop rate 4
  const Graph g = b.build();
  const CycleTimeVector chi = maxplus_cycle_time(g);
  EXPECT_FALSE(chi.has_rate[0]);
  EXPECT_EQ(chi.chi[1], Rational(4));
  EXPECT_EQ(chi.chi[2], Rational(4));
}

}  // namespace
}  // namespace mcr::apps
